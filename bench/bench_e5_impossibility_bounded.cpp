// E5 — Theorem 19: with bounded faults (t = 1 suffices) and n = f+2
// processes, f CAS objects cannot implement consensus.
//
// Drives the covering-argument execution from the proof against the
// staged protocol (the strongest f-object candidate) and against Figure 2
// restricted to f objects, for f = 1..4.  Reports the disagreement, the
// fault accounting (at most one overriding fault per object), and — for
// f = 2 — the full adversary log, which is a readable instantiation of
// the proof.
#include <iostream>
#include <numeric>

#include "proto/registry.hpp"
#include "sched/adversary.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  (void)cli;
  std::cout << "=== E5: impossibility with bounded faults and n = f+2 "
               "(Theorem 19, covering adversary) ===\n\n";

  ff::util::Table table({"candidate", "f", "n", "claim20", "p0 decided",
                         "p_{f+1} decided", "disagree", "faults used",
                         "steps"});
  for (std::uint32_t f = 1; f <= 4; ++f) {
    for (const bool staged : {true, false}) {
      std::unique_ptr<sched::MachineFactory> factory;
      std::string name;
      if (staged) {
        factory = proto::machine_factory(
            "staged", proto::Params{{"f", f}, {"t", 1}});
        name = "staged(f=" + std::to_string(f) + ",t=1)";
      } else {
        factory =
            proto::machine_factory("f-plus-one", proto::Params{{"k", f}});
        name = "Fig2 on f=" + std::to_string(f) + " objects";
      }
      const auto result =
          sched::run_covering_adversary(*factory, f, inputs(f + 2));
      std::uint32_t faults = 0;
      for (const auto c : result.faults_per_object) faults += c;
      table.add(name, f, f + 2, result.claim20_held,
                result.p0_decision ? std::to_string(*result.p0_decision)
                                   : "-",
                result.last_decision ? std::to_string(*result.last_decision)
                                     : "-",
                result.disagreement, faults, result.total_steps);
    }
  }
  // Register-augmented candidate: Theorem 19's covering schedule also
  // defeats announce-and-tiebreak (f = 1: one CAS object, n = 3).
  {
    const auto announce =
        proto::machine_factory("announce-cas", proto::Params{{"n", 3}});
    const auto result =
        sched::run_covering_adversary(*announce, 1, inputs(3));
    std::uint32_t faults = 0;
    for (const auto c : result.faults_per_object) faults += c;
    table.add("announce+tiebreak (registers)", 1, 3, result.claim20_held,
              result.p0_decision ? std::to_string(*result.p0_decision)
                                 : "-",
              result.last_decision ? std::to_string(*result.last_decision)
                                   : "-",
              result.disagreement, faults, result.total_steps);
  }
  std::cout << table << '\n';

  std::cout << "Adversary log for staged(f=2, t=1), n=4 — the proof's "
               "execution, step by step:\n";
  const auto factory =
      proto::machine_factory("staged", proto::Params{{"f", 2}, {"t", 1}});
  const auto detail = sched::run_covering_adversary(*factory, 2, inputs(4));
  for (const auto& line : detail.log) std::cout << "  " << line << '\n';

  std::cout << "\nTightness: the SAME (f, t=1) configurations with only "
               "f+1 processes are proven correct in E3/E6.\n";
  return 0;
}
