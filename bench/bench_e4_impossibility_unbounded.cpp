// E4 — Theorem 18: with an unbounded number of overriding faults per
// object and more than two processes, f CAS objects cannot implement
// consensus.
//
// The theorem quantifies over ALL protocols; an experiment cannot check
// that, but it can do what the proof does — exhibit the violating
// execution — for the natural candidate protocols, and verify that the
// proof's REDUCED MODEL (all faults caused by one process's operations)
// already suffices:
//   (a) Figure 2 run with only f objects (all faulty), n = 3;
//   (b) Herlihy's protocol on one faulty object, n = 3;
//   (c) the staged protocol when its bounded-fault assumption is revoked;
//   (d) candidates (a)-(b) re-checked in the reduced model.
// Each row reports the witness schedule the model checker found.
#include <iostream>
#include <numeric>

#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

void run_row(util::Table& table, const std::string& name,
             const sched::MachineFactory& factory, std::uint32_t objects,
             std::uint32_t n, bool reduced_model) {
  sched::SimConfig config;
  config.num_objects = objects;
  config.num_registers = factory.registers_used();
  config.kind = model::FaultKind::kOverriding;
  config.t = model::kUnbounded;
  if (reduced_model) config.faulting_processes = {0};
  const sched::SimWorld world(config, factory, inputs(n));
  const auto result = sched::explore(world);
  // Report the MINIMAL witness (BFS) — more readable than the DFS one.
  const auto shortest = sched::find_shortest_violation(world);
  const auto* witness = shortest.violation ? &*shortest.violation
                        : result.violation ? &*result.violation
                                           : nullptr;
  table.add(name, objects, n, reduced_model ? "p0 only" : "any",
            result.states_visited,
            result.violation
                ? std::string(sched::to_string(result.violation->kind))
                : "none (?)",
            witness != nullptr ? witness->schedule_string() : "-");
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  (void)cli;
  std::cout << "=== E4: impossibility with unbounded faults per object "
               "(Theorem 18) ===\n\n";

  ff::util::Table table({"candidate protocol", "objects", "n", "faulter",
                         "states", "violation", "minimal witness (p! = "
                         "faulty step)"});
  for (std::uint32_t f = 1; f <= 3; ++f) {
    run_row(table, "Fig2 on f=" + std::to_string(f) + " objects",
            *proto::machine_factory("f-plus-one", proto::Params{{"k", f}}),
            f, 3, false);
  }
  run_row(table, "Herlihy on 1 faulty object",
          *proto::machine_factory("single-cas"), 1, 3, false);
  run_row(table, "staged f=1 (t bound revoked)",
          *proto::machine_factory("staged",
                                  proto::Params{{"f", 1}, {"t", 1}}),
          1, 3, false);
  // Theorem 18 explicitly allows an unbounded number of correct
  // read/write registers — they do not help.
  run_row(table, "announce+tiebreak (3 registers)",
          *proto::machine_factory("announce-cas", proto::Params{{"n", 3}}),
          1, 3, false);
  run_row(table, "Fig2 on 1 object [reduced]",
          *proto::machine_factory("f-plus-one", proto::Params{{"k", 1}}), 1,
          3, true);
  run_row(table, "Herlihy [reduced]", *proto::machine_factory("single-cas"),
          1, 3, true);
  std::cout << table
            << "\nEvery candidate admits a violating execution; the reduced "
               "model (only p0's CASes fault)\nalready suffices, exactly as "
               "the proof of Theorem 18 constructs it.\n"
               "Contrast: the same candidates with f+1 objects are proven "
               "correct in E2.\n";
  return 0;
}
