// B6 — throughput of the batched owner-computes frontier explorer.
//
// Three questions feed the BENCH trajectory:
//   * How fast is the frontier engine against the work-stealing parallel
//     DFS on the reference instance (staged f=1 t=2, three distinct
//     inputs — symmetry-reduced, so the canonical-fingerprint path is
//     hot)?  Both engines run back-to-back within each repetition and
//     the PAIRED states/sec ratio is taken per round, so machine noise
//     hits both sides of each division; the reported speedup is the
//     median of the per-round ratios.
//   * Does the frontier census stay bit-equal to the parallel engine's
//     while it wins?  Every repetition cross-checks states, terminals,
//     per-kind violation counts and agreed values.
//   * Is the disk-spill path free of census drift?  A forced-spill run
//     (mem_limit_bytes = 1: every wave spills) must reproduce the
//     in-memory census exactly while actually writing runs.
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    machine-readable BENCH_B6 report for
//                    scripts/bench_gate.py
//   --smoke          reduced repetition count for CI gating (check.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "sched/frontier_explorer.hpp"
#include "sched/parallel_explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/json.hpp"

namespace {

using namespace ff;

constexpr std::uint32_t kThreads = 8;  // capped to hardware concurrency

std::vector<std::uint64_t> distinct_inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

/// The reference instance: staged f=1 t=2 under overriding faults with
/// three DISTINCT inputs — big enough to spread over shards (~360k
/// canonical states), distinct inputs so validity tracking stays hot.
struct Instance {
  std::unique_ptr<sched::MachineFactory> factory;
  sched::SimConfig config;
  std::vector<std::uint64_t> inputs;
};

Instance reference_instance() {
  Instance inst;
  inst.factory =
      proto::machine_factory("staged", proto::Params{{"f", 1}, {"t", 2}});
  inst.config.num_objects = inst.factory->objects_used();
  inst.config.num_registers = inst.factory->registers_used();
  inst.config.kind = model::FaultKind::kOverriding;
  inst.config.t = 2;
  inst.inputs = distinct_inputs(3);
  return inst;
}

sched::ExploreOptions full_space() {
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  return options;
}

bool census_equal(const sched::ExploreResult& a,
                  const sched::ExploreResult& b) {
  return a.states_visited == b.states_visited &&
         a.terminal_states == b.terminal_states &&
         a.violations_by_kind == b.violations_by_kind &&
         a.agreed_values == b.agreed_values;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- google-benchmark suite ------------------------------------------------

void BM_ParallelExploreStaged(benchmark::State& state) {
  const Instance inst = reference_instance();
  const sched::SimWorld world(inst.config, *inst.factory, inst.inputs);
  sched::ParallelExploreOptions options;
  options.explore = full_space();
  options.num_threads = kThreads;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = sched::parallel_explore(world, options);
    states = result.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelExploreStaged)->Unit(benchmark::kMillisecond);

void BM_FrontierExploreStaged(benchmark::State& state) {
  const Instance inst = reference_instance();
  sched::FrontierExploreOptions options;
  options.explore = full_space();
  options.num_threads = kThreads;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = sched::frontier_explore(inst.config, *inst.factory,
                                                inst.inputs, options);
    states = result.explore.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrontierExploreStaged)->Unit(benchmark::kMillisecond);

void BM_FrontierForcedSpill(benchmark::State& state) {
  // Same instance with a one-byte watermark: every wave spills, so this
  // measures the sort + run-write + merge-join overhead end to end.
  const Instance inst = reference_instance();
  const auto dir =
      std::filesystem::temp_directory_path() / "ffb6_bm_spill";
  sched::FrontierExploreOptions options;
  options.explore = full_space();
  options.num_threads = kThreads;
  options.spill_dir = dir.string();
  options.mem_limit_bytes = 1;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = sched::frontier_explore(inst.config, *inst.factory,
                                                inst.inputs, options);
    states = result.explore.states_visited;
    benchmark::DoNotOptimize(result);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_FrontierForcedSpill)->Unit(benchmark::kMillisecond);

// --- JSON report mode ------------------------------------------------------

/// Paired throughput rounds: parallel then frontier back-to-back, the
/// per-round states/sec ratio recorded, speedup = median of the ratios.
void emit_throughput(util::JsonWriter& w, const Instance& inst,
                     std::uint64_t reps) {
  const sched::SimWorld world(inst.config, *inst.factory, inst.inputs);
  sched::ParallelExploreOptions popts;
  popts.explore = full_space();
  popts.num_threads = kThreads;
  sched::FrontierExploreOptions fopts;
  fopts.explore = full_space();
  fopts.num_threads = kThreads;

  std::vector<double> ratios;
  double parallel_secs = 0.0;
  double frontier_secs = 0.0;
  std::uint64_t states = 0;
  std::uint64_t parallel_peak = 0;
  std::uint64_t frontier_peak = 0;
  std::uint64_t waves = 0;
  bool census_ok = true;
  bool complete = true;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    const auto pr = sched::parallel_explore(world, popts);
    const double psecs = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const auto fr =
        sched::frontier_explore(inst.config, *inst.factory, inst.inputs,
                                fopts);
    const double fsecs = seconds_since(start);

    census_ok = census_ok && census_equal(fr.explore, pr);
    complete = complete && pr.complete && fr.explore.complete;
    if (psecs > 0.0 && fsecs > 0.0 && pr.states_visited > 0) {
      ratios.push_back(
          (static_cast<double>(fr.explore.states_visited) / fsecs) /
          (static_cast<double>(pr.states_visited) / psecs));
    }
    parallel_secs += psecs;
    frontier_secs += fsecs;
    states = fr.explore.states_visited;
    parallel_peak = pr.peak_bytes;
    frontier_peak = fr.explore.peak_bytes;
    waves = fr.stats.waves;
  }

  w.key("throughput").begin_object();
  w.kv("protocol", "staged f=1 t=2 n=3 distinct");
  w.kv("threads", std::uint64_t{kThreads});
  w.kv("reps", reps);
  w.kv("states", states);
  w.kv("waves", waves);
  w.kv("parallel_mean_seconds",
       reps > 0 ? parallel_secs / static_cast<double>(reps) : 0.0);
  w.kv("frontier_mean_seconds",
       reps > 0 ? frontier_secs / static_cast<double>(reps) : 0.0);
  w.kv("parallel_peak_bytes", parallel_peak);
  w.kv("frontier_peak_bytes", frontier_peak);
  w.kv("census_match", census_ok);
  w.kv("complete", complete);
  w.kv("speedup", median(std::move(ratios)));
  w.end_object();
}

/// Forced-spill parity: mem_limit_bytes = 1 spills every wave; the
/// census must be bit-equal to the in-memory frontier run AND runs must
/// actually have been written (else the spill path went untested).
void emit_spill_parity(util::JsonWriter& w, const Instance& inst) {
  sched::FrontierExploreOptions fopts;
  fopts.explore = full_space();
  fopts.num_threads = kThreads;
  const auto in_memory =
      sched::frontier_explore(inst.config, *inst.factory, inst.inputs, fopts);

  const auto dir = std::filesystem::temp_directory_path() / "ffb6_spill";
  fopts.spill_dir = dir.string();
  fopts.mem_limit_bytes = 1;
  const auto start = std::chrono::steady_clock::now();
  const auto spilled =
      sched::frontier_explore(inst.config, *inst.factory, inst.inputs, fopts);
  const double secs = seconds_since(start);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  w.key("spill").begin_object();
  w.kv("seconds", secs);
  w.kv("spill_runs", spilled.stats.spill_runs);
  w.kv("spilled_records", spilled.stats.spilled_records);
  w.kv("spill_bytes", spilled.stats.spill_bytes);
  w.kv("peak_bytes", spilled.explore.peak_bytes);
  w.kv("spill_parity",
       census_equal(spilled.explore, in_memory.explore) &&
           spilled.stats.spill_runs > 0);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t reps = smoke ? 3 : 7;
  const Instance inst = reference_instance();

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B6");
  w.kv("smoke", smoke);
  emit_throughput(w, inst, reps);
  emit_spill_parity(w, inst);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B6 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
