// B6 — throughput of the batched owner-computes frontier explorer.
//
// Three questions feed the BENCH trajectory:
//   * How fast is the frontier engine against the work-stealing parallel
//     DFS on the reference instance (staged f=1 t=2, three distinct
//     inputs — symmetry-reduced, so the canonical-fingerprint path is
//     hot)?  Both engines run back-to-back within each repetition and
//     the PAIRED states/sec ratio is taken per round, so machine noise
//     hits both sides of each division; the reported speedup is the
//     median of the per-round ratios.
//   * Does the frontier census stay bit-equal to the parallel engine's
//     while it wins?  Every repetition cross-checks states, terminals,
//     per-kind violation counts and agreed values.
//   * Is the disk-spill path free of census drift?  A forced-spill run
//     (mem_limit_bytes = 1: every wave spills) must reproduce the
//     in-memory census exactly while actually writing runs.
//
// Both sides of every pair are verify::JobSpecs run through
// verify::instantiate()/execute().  The parallel job keeps sleep-set POR
// on (its normal regime); the frontier job sets sleep_sets = false
// because the engine — and JobSpec::validate() — rejects the
// combination outright.  The censuses still compare equal: sleep sets
// prune transitions, never states.
//
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    machine-readable BENCH_B6 report for
//                    scripts/bench_gate.py
//   --smoke          reduced repetition count for CI gating (check.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

constexpr std::uint32_t kThreads = 8;  // capped to hardware concurrency

/// The reference job: staged f=1 t=2 under overriding faults with three
/// DISTINCT inputs — big enough to spread over shards (~360k canonical
/// states), distinct inputs so validity tracking stays hot.
verify::JobSpec reference_spec(verify::Engine engine) {
  verify::JobSpec spec;
  spec.protocol = "staged";
  spec.params = {{"f", 1}, {"t", 2}};
  spec.t = 2;
  spec.processes = 3;
  spec.engine = engine;
  spec.threads = kThreads;
  spec.stop_at_first_violation = false;
  if (engine == verify::Engine::kFrontier) spec.sleep_sets = false;
  return spec;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double report_seconds(const verify::Report& report) {
  return static_cast<double>(report.engine_micros) * 1e-6;
}

// --- google-benchmark suite ------------------------------------------------

void run_reference(benchmark::State& state, const verify::JobSpec& spec) {
  const verify::Instance instance = verify::instantiate(spec);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const verify::Report report = verify::execute(instance);
    states = report.states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_ParallelExploreStaged(benchmark::State& state) {
  run_reference(state, reference_spec(verify::Engine::kParallel));
}
BENCHMARK(BM_ParallelExploreStaged)->Unit(benchmark::kMillisecond);

void BM_FrontierExploreStaged(benchmark::State& state) {
  run_reference(state, reference_spec(verify::Engine::kFrontier));
}
BENCHMARK(BM_FrontierExploreStaged)->Unit(benchmark::kMillisecond);

void BM_FrontierForcedSpill(benchmark::State& state) {
  // Same instance with a one-byte watermark: every wave spills, so this
  // measures the sort + run-write + merge-join overhead end to end.
  const auto dir =
      std::filesystem::temp_directory_path() / "ffb6_bm_spill";
  verify::JobSpec spec = reference_spec(verify::Engine::kFrontier);
  spec.spill_dir = dir.string();
  spec.mem_limit_bytes = 1;
  run_reference(state, spec);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_FrontierForcedSpill)->Unit(benchmark::kMillisecond);

// --- JSON report mode ------------------------------------------------------

/// Paired throughput rounds: parallel then frontier back-to-back, the
/// per-round states/sec ratio recorded, speedup = median of the ratios.
void emit_throughput(util::JsonWriter& w, std::uint64_t reps) {
  const verify::Instance parallel_instance =
      verify::instantiate(reference_spec(verify::Engine::kParallel));
  const verify::Instance frontier_instance =
      verify::instantiate(reference_spec(verify::Engine::kFrontier));

  std::vector<double> ratios;
  double parallel_secs = 0.0;
  double frontier_secs = 0.0;
  std::uint64_t states = 0;
  std::uint64_t parallel_peak = 0;
  std::uint64_t frontier_peak = 0;
  std::uint64_t waves = 0;
  bool census_ok = true;
  bool complete = true;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const verify::Report pr = verify::execute(parallel_instance);
    const double psecs = report_seconds(pr);
    const verify::Report fr = verify::execute(frontier_instance);
    const double fsecs = report_seconds(fr);

    census_ok = census_ok && census_equal(fr, pr);
    complete = complete && pr.complete && fr.complete;
    if (psecs > 0.0 && fsecs > 0.0 && pr.states_visited > 0) {
      ratios.push_back((static_cast<double>(fr.states_visited) / fsecs) /
                       (static_cast<double>(pr.states_visited) / psecs));
    }
    parallel_secs += psecs;
    frontier_secs += fsecs;
    states = fr.states_visited;
    parallel_peak = pr.peak_bytes;
    frontier_peak = fr.peak_bytes;
    waves = fr.frontier->waves;
  }

  w.key("throughput").begin_object();
  w.kv("protocol", "staged f=1 t=2 n=3 distinct");
  w.kv("threads", std::uint64_t{kThreads});
  w.kv("reps", reps);
  w.kv("states", states);
  w.kv("waves", waves);
  w.kv("parallel_mean_seconds",
       reps > 0 ? parallel_secs / static_cast<double>(reps) : 0.0);
  w.kv("frontier_mean_seconds",
       reps > 0 ? frontier_secs / static_cast<double>(reps) : 0.0);
  w.kv("parallel_peak_bytes", parallel_peak);
  w.kv("frontier_peak_bytes", frontier_peak);
  w.kv("census_match", census_ok);
  w.kv("complete", complete);
  w.kv("speedup", median(std::move(ratios)));
  w.end_object();
}

/// Forced-spill parity: mem_limit_bytes = 1 spills every wave; the
/// census must be bit-equal to the in-memory frontier run AND runs must
/// actually have been written (else the spill path went untested).
void emit_spill_parity(util::JsonWriter& w) {
  const verify::Report in_memory = verify::execute(
      verify::instantiate(reference_spec(verify::Engine::kFrontier)));

  const auto dir = std::filesystem::temp_directory_path() / "ffb6_spill";
  verify::JobSpec spec = reference_spec(verify::Engine::kFrontier);
  spec.spill_dir = dir.string();
  spec.mem_limit_bytes = 1;
  const verify::Report spilled =
      verify::execute(verify::instantiate(spec));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  w.key("spill").begin_object();
  w.kv("seconds", report_seconds(spilled));
  w.kv("spill_runs", spilled.frontier->spill_runs);
  w.kv("spilled_records", spilled.frontier->spilled_records);
  w.kv("spill_bytes", spilled.frontier->spill_bytes);
  w.kv("peak_bytes", spilled.peak_bytes);
  w.kv("spill_parity", census_equal(spilled, in_memory) &&
                           spilled.frontier->spill_runs > 0);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t reps = smoke ? 3 : 7;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B6");
  w.kv("smoke", smoke);
  emit_throughput(w, reps);
  emit_spill_parity(w);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B6 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
