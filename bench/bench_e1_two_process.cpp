// E1 — Theorem 4 / Figure 1: a single CAS object with unboundedly many
// overriding faults solves consensus for two processes.
//
// Regenerates:
//   (a) the exhaustive verdict (every schedule × every fault placement)
//       for n = 2 — and, as the tight-boundary contrast, the violation
//       at n = 3;
//   (b) a threaded agreement-rate sweep over fault probabilities — the
//       rate must be 1.0 at every fault rate for n = 2.
#include <iostream>
#include <memory>

#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

void exhaustive_table() {
  util::Table table({"n", "t", "states", "terminal", "verdict"});
  for (std::uint32_t n = 2; n <= 4; ++n) {
    sched::SimConfig config;
    config.num_objects = 1;
    config.kind = model::FaultKind::kOverriding;
    config.t = model::kUnbounded;
    std::vector<std::uint64_t> inputs;
    for (std::uint32_t i = 0; i < n; ++i) inputs.push_back(i + 1);
    const sched::SimWorld world(config, *proto::machine_factory("single-cas"),
                                inputs);
    const auto result = sched::explore(world);
    table.add(n, "inf", result.states_visited, result.terminal_states,
              result.violation
                  ? std::string(sched::to_string(result.violation->kind))
                  : std::string(result.complete ? "OK (proven)" : "capped"));
  }
  std::cout << "Exhaustive model checking, Figure 1 protocol, 1 faulty CAS "
               "(overriding, t=inf):\n"
            << table
            << "Paper: (f,inf,2)-tolerant -- OK at n=2, impossible beyond "
               "(consensus number of the faulty object is 2).\n\n";
}

void threaded_table(std::uint64_t trials) {
  util::Table table(
      {"fault policy", "n", "trials", "agreement", "steps/proc"});
  struct Row {
    const char* name;
    double rate;
  };
  const Row rows[] = {{"never (p=0.00)", 0.0},
                      {"rare (p=0.10)", 0.10},
                      {"half (p=0.50)", 0.50},
                      {"always (p=1.00)", 1.0}};
  for (const Row& row : rows) {
    for (std::uint32_t n : {2u, 3u}) {
      std::unique_ptr<faults::FaultPolicy> policy;
      if (row.rate <= 0.0) {
        policy = std::make_unique<faults::NeverFault>();
      } else if (row.rate >= 1.0) {
        policy = std::make_unique<faults::AlwaysFault>();
      } else {
        policy = std::make_unique<faults::ProbabilisticFault>(row.rate, 99);
      }
      faults::FaultyCas object(0, model::FaultKind::kOverriding,
                               policy.get(), nullptr);
      const auto protocol_ptr = proto::protocol("single-cas", {}, {&object});
      consensus::Protocol& protocol = *protocol_ptr;

      runtime::StressOptions options;
      options.processes = n;
      options.budget.max_units = trials;
      options.seed = 0xE1;
      const auto report = runtime::run_stress(protocol, options);
      table.add(row.name, n, report.trials, report.ok_rate(),
                report.steps_per_process.mean());
    }
  }
  std::cout << "Threaded stress, Figure 1 protocol (n=2 rows must be 1.0; "
               "n=3 rows may degrade -- outside the theorem):\n"
            << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto trials = cli.get_uint("trials", 400);
  std::cout << "=== E1: two-process consensus from one overriding-faulty "
               "CAS (Theorem 4, Figure 1) ===\n\n";
  exhaustive_table();
  threaded_table(trials);
  return 0;
}
