// E3 — Theorem 6 / Figure 3: f CAS objects, ALL possibly faulty with at
// most t overriding faults each, give (f,t,f+1)-tolerant consensus.
//
// Regenerates:
//   (a) exhaustive verdicts for the small (f,t) cells at n = f+1;
//   (b) a threaded sweep over f × t with an always-faulting adversary
//       under a (f,t) budget: agreement 1.0, plus the observed highest
//       stage that actually carried information vs the conservative
//       maxStage = t·(4f+f²) bound (the paper chose correctness over
//       tightness — this table quantifies the slack);
//   (c) step-complexity per process (mean/max CAS operations).
#include <algorithm>
#include <iostream>
#include <memory>
#include <numeric>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"
#include "model/tolerance.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

void exhaustive_table(std::uint64_t state_cap) {
  util::Table table({"f", "t", "n", "maxStage", "states", "verdict",
                     "worst-case steps"});
  const std::tuple<std::uint32_t, std::uint32_t> cells[] = {
      {1, 1}, {1, 2}, {1, 3}, {2, 1}};
  for (const auto& [f, t] : cells) {
    const std::uint32_t n = f + 1;
    sched::SimConfig config;
    config.num_objects = f;
    config.kind = model::FaultKind::kOverriding;
    config.t = t;
    std::vector<std::uint64_t> inputs(n);
    std::iota(inputs.begin(), inputs.end(), 1);
    const sched::SimWorld world(
        config,
        *proto::machine_factory("staged",
                                proto::Params{{"f", f}, {"t", t}}),
        inputs);
    sched::ExploreOptions options;
    options.max_states = state_cap;
    const auto result = sched::explore(world, options);
    // The machine-checked wait-freedom bound: worst total steps across
    // every schedule (only computed when the space was fully covered).
    std::string bound = "-";
    if (result.complete && !result.violation) {
      const auto longest = sched::longest_execution(world, options);
      if (longest.complete && longest.bounded) {
        bound = std::to_string(longest.max_total_steps);
      }
    }
    table.add(f, t, n, model::staged_max_stage(f, t), result.states_visited,
              result.violation
                  ? std::string(sched::to_string(result.violation->kind))
                  : std::string(result.complete ? "OK (proven)"
                                                : "OK (capped)"),
              bound);
  }
  std::cout << "Exhaustive model checking, Figure 3, all objects faulty "
               "('worst-case steps' is the proven wait-freedom bound over "
               "all schedules):\n"
            << table << '\n';
}

void threaded_table(std::uint64_t trials) {
  util::Table table({"f", "t", "n", "maxStage", "trials", "agreement",
                     "steps/proc mean", "steps/proc max", "solo bound",
                     "conv stage max"});
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (std::uint32_t t = 1; t <= 3; ++t) {
      const std::uint32_t n = f + 1;
      faults::FaultBudget budget(f, f, t);
      faults::AlwaysFault policy;
      faults::VectorTraceSink trace;
      std::vector<std::unique_ptr<faults::FaultyCas>> bank;
      std::vector<objects::CasObject*> raw;
      for (std::uint32_t i = 0; i < f; ++i) {
        bank.push_back(std::make_unique<faults::FaultyCas>(
            i, model::FaultKind::kOverriding, &policy, &budget, &trace));
        raw.push_back(bank.back().get());
      }
      const auto protocol_ptr = proto::protocol(
          "staged", proto::Params{{"f", f}, {"t", t}}, raw);
      consensus::Protocol& protocol = *protocol_ptr;
      protocol.set_step_limit(10'000'000);

      // Convergence stage of a trial: the earliest stage s such that every
      // landed write carrying stage ≥ s holds the same value.  The paper's
      // maxStage bound guarantees convergence by maxStage; this measures
      // how early it actually happens under the worst adversary we run.
      std::uint32_t worst_convergence = 0;
      runtime::StressOptions options;
      options.processes = n;
      options.budget.max_units = trials;
      options.seed = 0xE3 + f * 100 + t;
      const auto report = runtime::run_stress(
          protocol, options,
          [&](std::uint64_t) {
            budget.reset();
            trace.clear();
          },
          [&](std::uint64_t, const runtime::TrialOutcome&) {
            std::vector<std::pair<std::uint32_t, std::uint32_t>> writes;
            for (const auto& ev : trace.snapshot()) {
              if (ev.obs.after != ev.obs.before &&
                  !ev.obs.after.is_bottom()) {
                const auto sv = model::StagedValue::unpack(ev.obs.after);
                writes.emplace_back(sv.stage(), sv.value());
              }
            }
            std::sort(writes.begin(), writes.end());
            // Scan from the top: find the lowest stage above which all
            // written values agree.
            std::uint32_t convergence = 0;
            if (!writes.empty()) {
              const std::uint32_t final_value = writes.back().second;
              for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
                if (it->second != final_value) break;
                convergence = it->first;
              }
            }
            worst_convergence = std::max(worst_convergence, convergence);
          });
      const std::uint64_t max_stage = model::staged_max_stage(f, t);
      table.add(f, t, n, max_stage, report.trials, report.ok_rate(),
                report.steps_per_process.mean(),
                report.steps_per_process.max(), max_stage * f + 2,
                worst_convergence);
    }
  }
  std::cout << "Threaded stress, Figure 3, always-faulting adversary under "
               "the (f,t) budget.\nAgreement must be 1.0; 'conv stage max' "
               "(worst stage at which values converged) vs maxStage "
               "quantifies how conservative the paper's bound is:\n"
            << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto trials = cli.get_uint("trials", 100);
  const auto cap = cli.get_uint("state-cap", 6'000'000);
  std::cout << "=== E3: consensus from f all-faulty CAS objects, bounded "
               "faults (Theorem 6, Figure 3) ===\n\n";
  exhaustive_table(cap);
  threaded_table(trials);
  return 0;
}
