// B2 — protocol cost scaling (google-benchmark).
//
//   * solo decide() latency of Figure 2 vs f            (linear: f+1 CAS)
//   * solo decide() latency of Figure 3 vs (f, t)       (≈ f·t·(4f+f²) CAS)
//   * contended decide() latency, n threads on Figure 2
//   * the trial-harness overhead (thread spawn + barrier) for calibration
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "objects/atomic_cas.hpp"
#include "model/tolerance.hpp"
#include "proto/registry.hpp"
#include "runtime/thread_runner.hpp"

namespace {

using namespace ff;

struct FaultyBank {
  FaultyBank(std::uint32_t count, std::uint32_t f, std::uint32_t t,
             double rate)
      : budget(count, f, t), policy(rate, 0xB2) {
    for (std::uint32_t i = 0; i < count; ++i) {
      objects.push_back(std::make_unique<faults::FaultyCas>(
          i, model::FaultKind::kOverriding, &policy, &budget));
      raw.push_back(objects.back().get());
    }
  }
  faults::FaultBudget budget;
  faults::ProbabilisticFault policy;
  std::vector<std::unique_ptr<faults::FaultyCas>> objects;
  std::vector<objects::CasObject*> raw;
};

void BM_FPlusOneSoloDecide(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  FaultyBank bank(f + 1, f, model::kUnbounded, 0.5);
  const auto protocol_ptr =
      proto::protocol("f-plus-one", proto::Params{{"k", f + 1}}, bank.raw);
  consensus::Protocol& protocol = *protocol_ptr;
  for (auto _ : state) {
    state.PauseTiming();
    protocol.reset();
    bank.budget.reset();
    state.ResumeTiming();
    benchmark::DoNotOptimize(protocol.decide(7, 0));
  }
  state.counters["cas_steps"] = f + 1;
}
BENCHMARK(BM_FPlusOneSoloDecide)->DenseRange(1, 6);

void BM_StagedSoloDecide(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  FaultyBank bank(f, f, t, 0.5);
  const auto protocol_ptr =
      proto::protocol("staged", proto::Params{{"f", f}, {"t", t}}, bank.raw);
  consensus::Protocol& protocol = *protocol_ptr;
  for (auto _ : state) {
    state.PauseTiming();
    protocol.reset();
    bank.budget.reset();
    state.ResumeTiming();
    benchmark::DoNotOptimize(protocol.decide(7, 0));
  }
  state.counters["maxStage"] =
      static_cast<double>(model::staged_max_stage(f, t));
  state.counters["cas_steps"] =
      static_cast<double>(model::staged_max_stage(f, t) * f + 2);
}
BENCHMARK(BM_StagedSoloDecide)
    ->ArgsProduct({{1, 2, 3, 4}, {1, 2, 4}});

void BM_FPlusOneContendedTrial(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint32_t kF = 2;
  FaultyBank bank(kF + 1, kF, model::kUnbounded, 0.5);
  const auto protocol_ptr =
      proto::protocol("f-plus-one", proto::Params{{"k", kF + 1}}, bank.raw);
  consensus::Protocol& protocol = *protocol_ptr;
  std::uint64_t trial = 0;
  for (auto _ : state) {
    state.PauseTiming();
    protocol.reset();
    bank.budget.reset();
    const auto inputs = runtime::make_inputs(n, trial++, 0xB2);
    state.ResumeTiming();
    const auto outcome = runtime::run_trial(protocol, inputs);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_FPlusOneContendedTrial)->RangeMultiplier(2)->Range(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_TrialHarnessOverhead(benchmark::State& state) {
  // Calibration: the cost of spawning n threads through the barrier with
  // a protocol whose decide() is a single uncontended CAS.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  objects::AtomicCas object(0);
  const auto protocol_ptr = proto::protocol("single-cas", {}, {&object});
  consensus::Protocol& protocol = *protocol_ptr;
  std::uint64_t trial = 0;
  for (auto _ : state) {
    state.PauseTiming();
    protocol.reset();
    const auto inputs = runtime::make_inputs(n, trial++, 0xB2);
    state.ResumeTiming();
    const auto outcome = runtime::run_trial(protocol, inputs);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_TrialHarnessOverhead)->RangeMultiplier(2)->Range(2, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
