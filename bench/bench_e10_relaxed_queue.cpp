// E10 (extension) — relaxed data structures as functional faults (§6).
//
// The paper's related-work section observes that relaxed objects
// (quasi-linearizable queues, SprayList-style pops) "form a special case
// of the general functional faults model": a relaxed dequeue violates
// FIFO's Φ but satisfies the structured Φ′_k (returned element within
// the first k+1).  This harness measures the deviation that a policy ×
// budget actually produces, confirming that every observation stays
// inside its declared Φ′ — the property that makes relaxation usable at
// all.
#include <algorithm>
#include <iostream>
#include <memory>

#include "faults/budget.hpp"
#include "faults/policy.hpp"
#include "faults/relaxed_queue.hpp"
#include "proto/queue_client.hpp"
#include "proto/registry.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

void run_row(util::Table& table, std::uint32_t k, double rate,
             std::uint32_t t, std::uint64_t ops) {
  faults::ProbabilisticFault policy(rate, 0xE10 + k);
  std::unique_ptr<faults::FaultBudget> budget;
  if (t != model::kUnbounded) {
    budget = std::make_unique<faults::FaultBudget>(1, 1, t);
  }
  faults::RelaxedQueue queue(0, k, &policy, budget.get());

  // The enqueue-then-drain client comes from the shared protocol IR —
  // the same single-source definition the registry exposes everywhere.
  const auto program =
      proto::build_program("queue-client", proto::Params{{"ops", ops}});
  const auto run = proto::run_queue_client(*program, queue);

  util::StreamingStats distance;
  std::uint64_t relaxed = 0;
  bool all_within_phi_prime = true;
  for (const auto& ev : queue.trace()) {
    const auto d = model::relaxation_distance(ev.obs);
    all_within_phi_prime =
        all_within_phi_prime && d.has_value() && *d <= k;
    if (d && *d > 0) {
      ++relaxed;
      distance.add(static_cast<double>(*d));
    }
  }
  table.add(k,
            t == model::kUnbounded ? std::string("inf") : std::to_string(t),
            rate, run.dequeues, relaxed,
            relaxed == 0 ? 0.0 : distance.mean(),
            relaxed == 0 ? 0.0 : distance.max(), all_within_phi_prime);
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto ops = cli.get_uint("ops", 5'000);
  std::cout << "=== E10 (extension): k-relaxed dequeues as structured "
               "functional faults (Section 6) ===\n\n";

  ff::util::Table table({"k", "t", "fault rate", "dequeues",
                         "relaxed pops", "mean dist", "max dist",
                         "all within phi'_k"});
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    run_row(table, k, 0.25, model::kUnbounded, ops);
    run_row(table, k, 1.00, model::kUnbounded, ops);
  }
  run_row(table, 4, 1.00, /*t=*/10, ops);  // budgeted: exactly 10 relaxations
  std::cout << table
            << "\nEvery observation satisfies its declared Φ'_k — the "
               "structured-deviation contract that\nDefinition 1 "
               "formalizes is exactly what quasi-linearizable structures "
               "promise.\n";
  return 0;
}
