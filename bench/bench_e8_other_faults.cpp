// E8 — Section 3.4 taxonomy: the other CAS functional faults behave as
// the paper classifies them.
//
//   * silent, bounded      → tolerable with a retry/confirm protocol;
//   * silent, unbounded    → non-termination (consensus unachievable);
//   * invisible            → breaks even two-process Herlihy (reducible
//                            to a data fault);
//   * arbitrary            → breaks Herlihy; comparable to the responsive
//                            arbitrary data fault;
//   * nonresponsive        → a single fault stalls a process forever.
//
// Contrast row: the OVERRIDING fault — the paper's case study — is the
// one that leaves two-process consensus intact on a single object.
#include <iostream>
#include <numeric>

#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

std::string run_cell(const sched::MachineFactory& factory,
                     model::FaultKind kind, std::uint32_t t,
                     std::uint32_t n, bool killed_is_violation = false) {
  sched::SimConfig config;
  config.num_objects = factory.objects_used();
  config.kind = kind;
  config.t = t;
  const sched::SimWorld world(config, factory, inputs(n));
  sched::ExploreOptions options;
  options.killed_is_violation = killed_is_violation;
  const auto result = sched::explore(world, options);
  if (result.violation) {
    return std::string(sched::to_string(result.violation->kind));
  }
  return result.complete ? "OK (proven)" : "OK (capped)";
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  (void)cli;
  using model::FaultKind;
  using model::kUnbounded;

  std::cout << "=== E8: the other CAS functional faults (Section 3.4) "
               "===\n\n";

  ff::util::Table table(
      {"fault kind", "t", "protocol", "n", "verdict", "paper says"});
  const auto herlihy_ptr = proto::machine_factory("single-cas");
  const auto retry_ptr = proto::machine_factory("retry-silent");
  const sched::MachineFactory& herlihy = *herlihy_ptr;
  const sched::MachineFactory& retry = *retry_ptr;

  table.add("overriding", "inf", "Fig 1", 2,
            run_cell(herlihy, FaultKind::kOverriding, kUnbounded, 2),
            "tolerable (Thm 4)");
  table.add("silent", "1", "Fig 1", 2,
            run_cell(herlihy, FaultKind::kSilent, 1, 2),
            "plain protocol fails");
  table.add("silent", "3", "retry/confirm", 2,
            run_cell(retry, FaultKind::kSilent, 3, 2),
            "bounded: retry until success");
  table.add("silent", "3", "retry/confirm", 3,
            run_cell(retry, FaultKind::kSilent, 3, 3),
            "bounded: retry until success");
  table.add("silent", "inf", "retry/confirm", 2,
            run_cell(retry, FaultKind::kSilent, kUnbounded, 2),
            "unbounded: never terminates");
  table.add("invisible", "1", "Fig 1", 2,
            run_cell(herlihy, FaultKind::kInvisible, 1, 2),
            "reducible to a data fault");
  table.add("arbitrary", "1", "Fig 1", 2,
            run_cell(herlihy, FaultKind::kArbitrary, 1, 2),
            "like responsive-arbitrary data fault");
  table.add("nonresponsive", "1", "Fig 1", 2,
            run_cell(herlihy, FaultKind::kNonresponsive, 1, 2, true),
            "impossible [Jayanti et al.]");

  std::cout << table
            << "\nOnly the overriding fault preserves two-process consensus "
               "on a single object —\nthe structure of Φ′ (correct output, "
               "one-sided comparison error) is what the\nFigure 1-3 "
               "constructions exploit.\n";
  return 0;
}
