// E9 (extension) — functional faults beyond CAS: fetch-and-add with the
// carry/off-by-one fault (§7 future work; the intro's own example of a
// functional fault).
//
// Regenerates three tables:
//   (a) drift of a single faulty counter vs the per-object fault bound t
//       — the structured Φ′ (±1 per fault) yields |error| ≤ t, the
//       functional-fault dividend in its simplest form;
//   (b) median-replicated counter (2f+1 replicas, f faulty with
//       UNBOUNDED faults) — exact reads at quiescence, vs the mean-based
//       foil that a single drifter pulls away;
//   (c) the resource trade: exact (2f+1 objects) vs bounded-error
//       (1 object, error ≤ t).
#include <cstdlib>
#include <iostream>
#include <memory>

#include "counter/robust_counter.hpp"
#include "faults/budget.hpp"
#include "faults/faulty_faa.hpp"
#include "faults/policy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;
using model::CounterValue;

void drift_table(std::uint64_t ops) {
  util::Table table({"t (fault bound)", "ops", "true sum", "observed",
                     "abs error", "bound"});
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 16u}) {
    faults::AlwaysFault policy;
    faults::FaultBudget budget(1, 1, t);
    faults::FaultyFetchAdd object(0, model::FaultKind::kOverriding,
                                  &policy, &budget, nullptr, 0xE9 + t);
    counter::DriftBoundedCounter counter(object, t);
    CounterValue sum = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      counter.add(3, 0);
      sum += 3;
    }
    const CounterValue observed = object.debug_read();
    table.add(t, ops, sum, observed, std::llabs(observed - sum), t);
  }
  std::cout << "(a) single faulty counter, off-by-one faults, bounded t "
               "(|error| <= t always):\n"
            << table << '\n';
}

void median_table(std::uint64_t ops) {
  util::Table table({"construction", "replicas", "f faulty", "true sum",
                     "read", "abs error"});
  for (std::uint32_t f : {1u, 2u, 3u}) {
    const std::uint32_t k = 2 * f + 1;
    faults::AlwaysFault policy;
    faults::FaultBudget budget(k, f, model::kUnbounded);
    std::vector<std::unique_ptr<faults::FaultyFetchAdd>> bank;
    std::vector<objects::FetchAddObject*> raw;
    for (std::uint32_t i = 0; i < k; ++i) {
      auto object = std::make_unique<faults::FaultyFetchAdd>(
          i, model::FaultKind::kOverriding, &policy, &budget, nullptr,
          0xE9 + i);
      // Worst drift: always +1 so errors accumulate instead of cancel.
      object->set_drift_source([](std::uint64_t) { return 1; });
      raw.push_back(object.get());
      bank.push_back(std::move(object));
    }
    counter::MedianCounter median(raw);
    counter::MeanCounter mean(raw);
    CounterValue sum = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      median.add(1, 0);
      sum += 1;
    }
    const CounterValue med = median.read(0);
    const CounterValue avg = mean.read(0);
    table.add("median (robust)", k, f, sum, med, std::llabs(med - sum));
    table.add("mean (foil)", k, f, sum, avg, std::llabs(avg - sum));
  }
  std::cout << "(b) replicated counters, f always-drifting replicas with "
               "UNBOUNDED faults\n(median must be exact; the mean foil is "
               "pulled off by ~ops*f/(2f+1)):\n"
            << table << '\n';
}

void trade_table() {
  util::Table table({"construction", "objects", "fault budget tolerated",
                     "accuracy"});
  table.add("median-replicated", "2f+1", "f objects, unbounded t",
            "exact at quiescence");
  table.add("single drift-bounded", "1", "1 object, t off-by-one faults",
            "|error| <= t");
  table.add("single, arbitrary data faults", "1", "-",
            "unbounded error (no structure to exploit)");
  std::cout << "(c) the resource/accuracy trade (structured faults are "
               "cheaper to tolerate):\n"
            << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto ops = cli.get_uint("ops", 10'000);
  std::cout << "=== E9 (extension): the fetch-and-add carry fault and "
               "robust counters ===\n\n";
  drift_table(ops);
  median_table(ops);
  trade_table();
  return 0;
}
