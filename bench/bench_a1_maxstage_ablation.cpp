// A1 (ablation) — how tight is Theorem 6's stage budget?
//
// The paper sets maxStage = t·(4f+f²) and notes "choosing an earlier
// maximal stage might work, but we chose to concentrate on correctness
// and space complexity rather than on performance".  This ablation
// quantifies the slack: for each (f, t) it runs the staged protocol with
// maxStage = 1, 2, ... and reports the exhaustive verdict of each
// truncation, locating the smallest stage budget that the model checker
// proves safe (for n = f+1, the regime of the theorem).
//
// Expected shape: correctness holds far below the proven bound — the
// bound is conservative by roughly an order of magnitude at these sizes —
// and very small budgets (maxStage ≈ 1) are refuted with concrete
// counterexamples.
#include <iostream>
#include <numeric>

#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

std::string probe(std::uint32_t f, std::uint32_t t, std::uint32_t max_stage,
                  std::uint64_t state_cap) {
  const std::uint32_t n = f + 1;
  sched::SimConfig config;
  config.num_objects = f;
  config.kind = model::FaultKind::kOverriding;
  config.t = t;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 1);
  const sched::SimWorld world(
      config,
      *proto::machine_factory(
          "staged",
          proto::Params{{"f", f}, {"t", t}, {"max_stage", max_stage}}),
      inputs);
  sched::ExploreOptions options;
  options.max_states = state_cap;
  const auto result = sched::explore(world, options);
  if (result.violation) {
    return std::string(sched::to_string(result.violation->kind));
  }
  return result.complete ? "OK (proven)" : "OK? (capped)";
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto state_cap = cli.get_uint("state-cap", 2'000'000);

  std::cout << "=== A1 ablation: shrinking Figure 3's maxStage below the "
               "proven t*(4f+f^2) ===\n\n";

  const std::pair<std::uint32_t, std::uint32_t> cells[] = {
      {1, 1}, {1, 2}, {1, 3}, {2, 1}};
  ff::util::Table table({"f", "t", "proven maxStage", "smallest safe",
                         "slack factor", "verdicts (maxStage=1,2,...)"});
  for (const auto& [f, t] : cells) {
    const auto proven =
        static_cast<std::uint32_t>(model::staged_max_stage(f, t));
    std::string verdicts;
    std::uint32_t smallest_safe = 0;
    // Scan upward; verdicts are monotone in practice (more stages only
    // add convergence rounds), so stop a little past the first safe one.
    for (std::uint32_t ms = 1; ms <= proven; ++ms) {
      const std::string v = probe(f, t, ms, state_cap);
      if (!verdicts.empty()) verdicts += ", ";
      verdicts += std::to_string(ms) + ":" +
                  (v == "OK (proven)" ? "ok" : v);
      if (v == "OK (proven)" && smallest_safe == 0) smallest_safe = ms;
      if (smallest_safe != 0 && ms >= smallest_safe + 1) break;
    }
    table.add(f, t, proven, smallest_safe,
              smallest_safe == 0
                  ? std::string("-")
                  : util::Table::to_cell(static_cast<double>(proven) /
                                         smallest_safe),
              verdicts);
  }
  std::cout << table
            << "\nThe paper's bound guarantees correctness; the model "
               "checker shows how much smaller the\nstage budget could be "
               "at these parameter sizes (per-instance proofs, not a "
               "general theorem).\n";
  return 0;
}
