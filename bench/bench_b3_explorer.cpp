// B3 — model-checker throughput: states visited per second and state-space
// size across representative configurations of each protocol machine.
//
// This calibrates what "exhaustive" costs and explains where the
// hierarchy prober switches from proofs to stress evidence.
//
// Every registry-backed run is described as a verify::JobSpec and
// executed through verify::instantiate()/execute() — the bench never
// builds ExploreOptions for them by hand.  Two baselines are exempt by
// design: the retired hand-written machines (tests/legacy/) and the
// faithful pre-PR-4 explorer replica below are not registry protocols,
// so a JobSpec cannot name them; they stay raw worlds.
//
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    write a machine-readable BENCH_B3.json report:
//                    states/sec and peak state counts for the reduced
//                    (symmetry + sleep sets), unreduced, pre-sized and
//                    legacy-hot-path explorers on a symmetric reference
//                    instance, plus reduction_factor, hotpath_speedup,
//                    ir_overhead (the ffgen-GENERATED machines
//                    machine_factory selects vs the retired hand-written
//                    machines, gated at <= 0.02), interpreter_overhead
//                    (IrMachine oracle, informational),
//                    codegen_census_match (generated == interpreted
//                    census for every registry protocol, gated) and the
//                    batched StatePool throughput.
//   --smoke          smaller reference instance for CI gating
//                    (scripts/check.sh stage 7 / scripts/bench_gate.py).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "legacy/machines.hpp"
#include "proto/pool.hpp"
#include "proto/registry.hpp"
#include "sched/explore_common.hpp"
#include "sched/explorer.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

/// Full-space staged job: the common base every reference instance below
/// specializes.  stop_at_first_violation = false is the bench-wide rule —
/// throughput is defined over the whole reachable graph.
verify::JobSpec staged_spec(std::uint64_t f, std::uint32_t t,
                            std::uint32_t n) {
  verify::JobSpec spec;
  spec.protocol = "staged";
  spec.params = {{"f", f}, {"t", t}};
  spec.t = t;
  spec.processes = n;
  spec.stop_at_first_violation = false;
  return spec;
}

/// Reduction-free variant (the raw-engine regime most sections measure).
verify::JobSpec unreduced(verify::JobSpec spec) {
  spec.symmetry_reduction = false;
  spec.sleep_sets = false;
  return spec;
}

void run_explore(benchmark::State& state, const verify::JobSpec& spec) {
  const verify::Instance instance = verify::instantiate(spec);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const verify::Report report = verify::execute(instance);
    states = report.states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_ExploreHerlihy(benchmark::State& state) {
  verify::JobSpec spec;
  spec.protocol = "single-cas";
  spec.processes = static_cast<std::uint32_t>(state.range(0));
  spec.stop_at_first_violation = false;
  run_explore(state, spec);
}
BENCHMARK(BM_ExploreHerlihy)->DenseRange(2, 5);

void BM_ExploreFPlusOne(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  verify::JobSpec spec;
  spec.protocol = "f-plus-one";
  spec.params = {{"k", f + 1}};
  spec.t = model::kUnbounded;
  spec.processes = 3;
  spec.stop_at_first_violation = false;
  run_explore(state, spec);
}
BENCHMARK(BM_ExploreFPlusOne)->DenseRange(1, 2);

void BM_ExploreStaged(benchmark::State& state) {
  run_explore(state,
              staged_spec(1, static_cast<std::uint32_t>(state.range(0)), 2));
}
BENCHMARK(BM_ExploreStaged)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_ExploreStagedTwoObjects(benchmark::State& state) {
  run_explore(state, staged_spec(2, 1, 2));
}
BENCHMARK(BM_ExploreStagedTwoObjects)->Unit(benchmark::kMillisecond);

// --- Parallel explorer speedup --------------------------------------------
//
// staged f=1, t=2 at n=3 reaches ~1.37M distinct states — large enough
// that the parallel explorer's thread sweep exposes real scaling, small
// enough for a full-space traversal per iteration.  Compare
// BM_ExploreMillionSequential against BM_ExploreMillionParallel/N for the
// wall-clock speedup; the `states` counter confirms both traversals cover
// the identical reachable set.

void BM_ExploreMillionSequential(benchmark::State& state) {
  run_explore(state, staged_spec(1, 2, 3));
}
BENCHMARK(BM_ExploreMillionSequential)->Unit(benchmark::kMillisecond);

void BM_ExploreMillionParallel(benchmark::State& state) {
  verify::JobSpec spec = staged_spec(1, 2, 3);
  spec.engine = verify::Engine::kParallel;
  spec.threads = static_cast<std::uint32_t>(state.range(0));
  run_explore(state, spec);
}
BENCHMARK(BM_ExploreMillionParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelExploreStagedSmall(benchmark::State& state) {
  // Same configuration as BM_ExploreStaged t=2 — overhead comparison on a
  // small graph, where locking cost dominates and parallelism cannot win.
  verify::JobSpec spec = staged_spec(1, 2, 2);
  spec.engine = verify::Engine::kParallel;
  spec.threads = static_cast<std::uint32_t>(state.range(0));
  run_explore(state, spec);
}
BENCHMARK(BM_ParallelExploreStagedSmall)->Arg(1)->Arg(4);

void BM_SimWorldStepApply(benchmark::State& state) {
  // Cost of one simulated step (clone-free path): drive a solo staged
  // run repeatedly.
  verify::JobSpec spec = staged_spec(2, 2, 1);
  const verify::Instance instance = verify::instantiate(spec);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sched::SimWorld world = instance.world();
    while (!world.terminal()) world.apply({0, false, 0});
    steps += world.total_steps();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimWorldStepApply);

void BM_SimWorldClone(benchmark::State& state) {
  // Cost of the snapshot the DFS takes per expanded state.
  verify::JobSpec spec = staged_spec(3, 2, 4);
  const verify::Instance instance = verify::instantiate(spec);
  const sched::SimWorld world = instance.world();
  for (auto _ : state) {
    sched::SimWorld copy = world;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SimWorldClone);

// --- JSON report mode ------------------------------------------------------

/// The pre-PR-4 explorer hot path, kept faithful as an in-file baseline
/// so hotpath_speedup stays measurable after the real explorer moved on:
/// per-child full world copy + apply, a full world.encode() per
/// generated child (and again per frame pop), the pre-PR dual-SplitMix64
/// fingerprint fold, node-based unordered containers for the visited set
/// and the on-path cycle map, per-frame choice vectors — no flat table,
/// no incremental encoding, no in-place stepping, no arenas, no
/// reductions.  It runs the same census, terminal checks and back-edge
/// cycle detection the old explore() ran.
sched::detail::Fingerprint legacy_fingerprint(
    const std::vector<std::uint64_t>& encoded) {
  sched::detail::Fingerprint fp{0x243f6a8885a308d3ULL,
                                0x13198a2e03707344ULL};
  for (const std::uint64_t w : encoded) {
    fp.a = util::mix64(fp.a ^ w);
    fp.b = util::mix64(fp.b + w + 0xa5a5a5a5a5a5a5a5ULL);
  }
  return fp;
}

std::uint64_t legacy_explore_count(const sched::SimWorld& initial) {
  struct Frame {
    sched::SimWorld world;
    std::vector<sched::Choice> choices;
    std::size_t next = 0;
  };
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  std::uint64_t violations = 0;
  std::unordered_set<sched::detail::Fingerprint,
                     sched::detail::FingerprintHash>
      visited;
  std::unordered_map<sched::detail::Fingerprint, std::uint64_t,
                     sched::detail::FingerprintHash>
      on_path;
  std::vector<Frame> stack;
  std::vector<sched::Choice> path;
  const auto root_fp = legacy_fingerprint(initial.encode());
  visited.insert(root_fp);
  on_path.emplace(root_fp, 0);
  stack.push_back(Frame{initial, initial.enabled(), 0});
  std::uint64_t states = 1;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.choices.size()) {
      on_path.erase(legacy_fingerprint(frame.world.encode()));
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const sched::Choice choice = frame.choices[frame.next++];
    sched::SimWorld child = frame.world;
    child.apply(choice);
    const auto fp = legacy_fingerprint(child.encode());
    path.push_back(choice);
    if (const auto it = on_path.find(fp); it != on_path.end()) {
      // Back-edge: nontermination if a process steps in the segment.
      for (std::size_t i = it->second; i < path.size(); ++i) {
        if (path[i].pid != sched::kAdversaryPid) {
          ++violations;
          break;
        }
      }
      path.pop_back();
      continue;
    }
    if (visited.contains(fp)) {
      path.pop_back();
      continue;
    }
    visited.insert(fp);
    ++states;
    if (child.terminal()) {
      std::string detail;
      if (sched::detail::check_terminal(child, options, detail)) {
        ++violations;
      }
      path.pop_back();
      continue;
    }
    auto choices = child.enabled();
    on_path.emplace(fp, path.size());
    stack.push_back(Frame{std::move(child), std::move(choices), 0});
  }
  benchmark::DoNotOptimize(violations);
  return states;
}

/// Symmetric reference job: staged consensus (pid-oblivious) at n
/// processes with EQUAL inputs, one object, overriding faults.  Equal
/// inputs matter: with distinct inputs every process block stays
/// distinguishable and orbits are trivial, while equal inputs let the
/// canonical block sort collapse runs that differ only by which process
/// took which role — the regime the reduction targets.
verify::JobSpec symmetric_reference(std::uint32_t t, std::uint32_t n) {
  verify::JobSpec spec = staged_spec(1, t, n);
  spec.equal_inputs = true;
  return spec;
}

/// Hot-path reference job: staged f=1 t=2 at n=3 DISTINCT inputs —
/// ~1.37M distinct states with trivial orbits, so it isolates the raw
/// sequential engine (flat table, incremental encoding, in-place
/// stepping) from the reductions.  machine_factory() selects the
/// ffgen-generated machine here (staged f=1 t=2 is in the generation
/// grid), so this job measures the generated path; flipping
/// `interpreted` puts the SAME job on the IrMachine oracle.
verify::JobSpec hotpath_reference() {
  return unreduced(staged_spec(1, 2, 3));
}

/// The SAME hot-path instance driven by the retired hand-written staged
/// machine (tests/legacy/) — the baseline the ir_overhead figure divides
/// against.  Not a registry protocol, hence not a JobSpec: the raw world
/// and ExploreOptions here are the documented exception.
sched::SimWorld handwritten_hotpath_reference() {
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 2;
  static const consensus::StagedFactory factory(1, 2);
  return sched::SimWorld(config, factory, inputs(3));
}

struct TimedExplore {
  verify::Report report;
  double seconds = 0;
};

TimedExplore timed_execute(const verify::Instance& instance) {
  TimedExplore out;
  out.report = verify::execute(instance);
  out.seconds = static_cast<double>(out.report.engine_micros) * 1e-6;
  return out;
}

/// Raw-engine timing for the hand-written baseline only (see
/// handwritten_hotpath_reference); mirrors what execute() runs for the
/// registry sides of each paired round.
TimedExplore timed_explore_legacy(const sched::SimWorld& world,
                                  const sched::ExploreOptions& options) {
  TimedExplore out;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sched::explore(world, options);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.report.complete = result.complete;
  out.report.states_visited = result.states_visited;
  out.report.terminal_states = result.terminal_states;
  out.report.violations_found = result.violations_found;
  out.report.max_depth = result.max_depth;
  out.report.agreed_values = result.agreed_values;
  return out;
}

void emit_section(util::JsonWriter& w, std::string_view name,
                  std::uint64_t states, double seconds,
                  std::uint64_t max_depth) {
  w.key(name).begin_object();
  w.kv("peak_states", states);
  w.kv("seconds", seconds);
  w.kv("states_per_sec", seconds > 0 ? static_cast<double>(states) / seconds
                                     : 0.0);
  w.kv("max_depth", max_depth);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  // Symmetric instance: staged t=1 n=4 (~136k unreduced states) for the
  // smoke gate, staged t=2 n=4 (~10.1M unreduced states) for the full
  // report.  Equal inputs — see symmetric_reference().
  const std::uint32_t sym_t = smoke ? 1 : 2;
  const std::uint32_t sym_n = 4;
  const verify::JobSpec sym_spec = symmetric_reference(sym_t, sym_n);

  const TimedExplore reduced = timed_execute(verify::instantiate(sym_spec));
  const TimedExplore unreduced_run =
      timed_execute(verify::instantiate(unreduced(sym_spec)));

  const double reduction_factor =
      reduced.report.states_visited > 0
          ? static_cast<double>(unreduced_run.report.states_visited) /
                static_cast<double>(reduced.report.states_visited)
          : 0.0;

  // Hot-path instance (reductions OFF throughout): new engine without
  // and with the expected_states pre-sizing hint, against the faithful
  // pre-PR baseline.
  const verify::JobSpec hot_spec = hotpath_reference();
  const verify::Instance hot_instance = verify::instantiate(hot_spec);
  const TimedExplore hot = timed_execute(hot_instance);
  // The reserve()/pre-sizing satellite, isolated: same unreduced search
  // with the fingerprint table and DFS containers sized up front
  // (expected_states is an exec hint — same job fingerprint).
  verify::JobSpec presized_spec = hot_spec;
  presized_spec.expected_states = hot.report.states_visited;
  const verify::Instance presized_instance =
      verify::instantiate(presized_spec);
  const TimedExplore presized = timed_execute(presized_instance);

  const auto legacy_start = std::chrono::steady_clock::now();
  const std::uint64_t legacy_states =
      legacy_explore_count(hot_instance.world());
  const double legacy_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    legacy_start)
          .count();

  const auto rate = [](std::uint64_t states, double seconds) {
    return seconds > 0 ? static_cast<double>(states) / seconds : 0.0;
  };

  // Machine overhead on the identical instance, three ways: the
  // ffgen-GENERATED machine (what machine_factory selects and what
  // ir_overhead now gates at <= 0.02), the IrMachine INTERPRETER (the
  // differential oracle, informational interpreter_overhead), and the
  // retired HAND-WRITTEN machine as the baseline denominator.  Each
  // round runs the three sides back-to-back and takes the PAIRED rate
  // ratio within the round, and the reported overhead is the MEDIAN of
  // the per-round ratios: slow machine-wide drift (thermal throttling,
  // co-tenant load) hits both sides of a pair equally, and the median
  // discards the rounds a scheduler hiccup poisoned — a 2% gate needs a
  // statistic whose run-to-run spread is well under 2%.
  verify::JobSpec interpreted_spec = presized_spec;
  interpreted_spec.interpreted = true;
  const verify::Instance interpreted_instance =
      verify::instantiate(interpreted_spec);
  const sched::SimWorld handwritten_world = handwritten_hotpath_reference();
  sched::ExploreOptions handwritten_opts;
  handwritten_opts.stop_at_first_violation = false;
  handwritten_opts.symmetry_reduction = false;
  handwritten_opts.sleep_sets = false;
  // The overhead rounds run with the table pre-sized to the census (the
  // count is known from the hot run above): mid-run rehashes and the
  // page faults of growing a ~50MB table are per-run noise that lands
  // on one side of a paired ratio, and the 2% gate cannot afford it.
  handwritten_opts.expected_states = hot.report.states_visited;
  TimedExplore generated_best;
  TimedExplore interpreted_best;
  TimedExplore handwritten_best;
  const auto keep_best = [](TimedExplore& best, TimedExplore run) {
    if (best.seconds == 0 || run.seconds < best.seconds) best = std::move(run);
  };
  std::vector<double> generated_ratios;
  std::vector<double> interpreted_ratios;
  for (int i = 0; i < 7; ++i) {
    TimedExplore generated_run = timed_execute(presized_instance);
    TimedExplore interpreted_run = timed_execute(interpreted_instance);
    TimedExplore handwritten_run =
        timed_explore_legacy(handwritten_world, handwritten_opts);
    const double handwritten_run_rate =
        rate(handwritten_run.report.states_visited, handwritten_run.seconds);
    const double generated_run_rate =
        rate(generated_run.report.states_visited, generated_run.seconds);
    const double interpreted_run_rate =
        rate(interpreted_run.report.states_visited, interpreted_run.seconds);
    if (generated_run_rate > 0) {
      generated_ratios.push_back(handwritten_run_rate / generated_run_rate);
    }
    if (interpreted_run_rate > 0) {
      interpreted_ratios.push_back(handwritten_run_rate /
                                   interpreted_run_rate);
    }
    keep_best(generated_best, std::move(generated_run));
    keep_best(interpreted_best, std::move(interpreted_run));
    keep_best(handwritten_best, std::move(handwritten_run));
  }
  const auto median = [](std::vector<double> v) {
    if (v.empty()) return 2.0;  // no valid round: fail the gate loudly
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
  };
  const double ir_overhead = median(generated_ratios) - 1.0;
  const double interpreter_overhead = median(interpreted_ratios) - 1.0;
  const bool ir_census_match =
      interpreted_best.report.states_visited ==
          handwritten_best.report.states_visited &&
      interpreted_best.report.terminal_states ==
          handwritten_best.report.terminal_states &&
      interpreted_best.report.agreed_values ==
          handwritten_best.report.agreed_values;

  // Generated-vs-interpreter census equality over EVERY simulable
  // registry protocol at default parameters (small instance: n=2, t=1,
  // crash budget 1 where the protocol has a recovery entry).  This is
  // the report-level restatement of test_codegen's grid — gated by
  // scripts/bench_gate.py so a drifted generated tree cannot ship a
  // green benchmark report.  Each side is one JobSpec; they differ only
  // in the `interpreted` exec choice.
  bool codegen_census_match = true;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    verify::JobSpec spec;
    spec.protocol = info.name;
    spec.processes = 2;
    spec.stop_at_first_violation = false;
    spec.symmetry_reduction = false;
    spec.sleep_sets = false;
    if (proto::build_program(info.name)->has_recovery()) {
      spec.crash_budget = 1;
    }
    verify::JobSpec oracle_spec = spec;
    oracle_spec.interpreted = true;
    const verify::Report generated_census =
        verify::execute(verify::instantiate(spec));
    const verify::Report oracle_census =
        verify::execute(verify::instantiate(oracle_spec));
    codegen_census_match = codegen_census_match &&
                           census_equal(generated_census, oracle_census);
  }

  // A2 immunity-pruning differential (ffcheck, DESIGN.md §3h): for every
  // simulable registry protocol, the census with proved-immune overriding
  // branches skipped must be bit-equal to the brute-force census, and the
  // sweep's prune factor (checks+skips)/checks is gated >= 1.0 — the
  // analyzer never makes exploration do more work, and exceeds 1 whenever
  // some protocol proved an object immune (tas does).
  bool immune_census_match = true;
  std::uint64_t immune_checks = 0;
  std::uint64_t immune_skips = 0;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    verify::JobSpec spec;
    spec.protocol = info.name;
    spec.processes = 2;
    spec.stop_at_first_violation = false;
    spec.symmetry_reduction = false;
    spec.sleep_sets = false;
    if (proto::build_program(info.name)->has_recovery()) {
      spec.crash_budget = 1;
    }
    verify::JobSpec brute_spec = spec;
    brute_spec.immunity_pruning = false;
    const verify::Report pruned = verify::execute(verify::instantiate(spec));
    const verify::Report brute =
        verify::execute(verify::instantiate(brute_spec));
    immune_census_match = immune_census_match && census_equal(pruned, brute);
    immune_checks += pruned.immunity_checks;
    immune_skips += pruned.immunity_skips;
  }
  const double immune_prune_factor =
      immune_checks + immune_skips == 0
          ? 1.0
          : static_cast<double>(immune_checks + immune_skips) /
                static_cast<double>(
                    std::max<std::uint64_t>(1, immune_checks));

  // Batched SoA pool throughput (GATED >= 2.0 now that the frontier
  // explorer leans on the kernels): the generated staged batch kernel
  // stepping all lanes with ONE indirect call per round, against the
  // pool's own per-lane fallback — a vector of IrMachine interpreters,
  // one virtual deliver() per lane per round — which is exactly what
  // deliver_all() runs when the Program has no generated entry and what
  // the frontier's scalar arena path degenerates to off-grid.  A third,
  // informational rate drives the SAME rounds through scalar GENERATED
  // machines: that pair isolates pure dispatch cost and lands near 1x,
  // which is why it is reported but not gated.
  //
  // Like the ir_overhead rounds above, each repetition constructs both
  // sides untimed (lane setup is amortized across a whole wave in the
  // frontier engine), times only the delivery sweeps back-to-back, and
  // the gated speedup is the MEDIAN of the paired per-rep ratios — a
  // one-shot timing of a sub-millisecond region is scheduler noise.
  const auto pool_program =
      proto::build_program("staged", proto::Params{{"f", 1}, {"t", 2}});
  const auto pool_factory =
      proto::machine_factory("staged", proto::Params{{"f", 1}, {"t", 2}});
  const std::size_t pool_lanes = smoke ? 1024 : 4096;
  const std::size_t pool_rounds = 64;
  std::vector<std::uint64_t> returned(pool_lanes, 0);
  for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
    returned[lane] = util::mix64(lane) % 3;
  }
  double pool_rate = 0.0;
  double scalar_rate = 0.0;
  double generated_scalar_rate = 0.0;
  std::uint64_t pool_deliveries = 0;
  std::vector<double> pool_ratios;
  for (int rep = 0; rep < 7; ++rep) {
    proto::StatePool pool(pool_program, pool_lanes);
    for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
      pool.add(static_cast<objects::ProcessId>(lane % 4), 1 + lane % 3);
    }
    std::uint64_t rep_pool_deliveries = 0;
    const auto pool_start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < pool_rounds; ++round) {
      std::uint64_t active = 0;
      for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
        if (!pool.done(lane)) ++active;
      }
      if (active == 0) break;
      pool.deliver_all(returned.data());
      rep_pool_deliveries += active;
    }
    const double pool_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pool_start)
            .count();
    benchmark::DoNotOptimize(pool);

    std::vector<proto::IrMachine> interps;
    interps.reserve(pool_lanes);
    for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
      interps.emplace_back(pool_program,
                           static_cast<objects::ProcessId>(lane % 4),
                           1 + lane % 3);
    }
    std::uint64_t rep_scalar_deliveries = 0;
    const auto scalar_start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < pool_rounds; ++round) {
      std::uint64_t active = 0;
      for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
        if (!interps[lane].done()) ++active;
      }
      if (active == 0) break;
      for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
        if (!interps[lane].done()) {
          interps[lane].deliver(model::Value::of(returned[lane]));
        }
      }
      rep_scalar_deliveries += active;
    }
    const double scalar_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scalar_start)
            .count();
    benchmark::DoNotOptimize(interps);

    std::vector<std::unique_ptr<sched::StepMachine>> machines;
    machines.reserve(pool_lanes);
    for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
      machines.push_back(pool_factory->make(
          static_cast<objects::ProcessId>(lane % 4), 1 + lane % 3));
    }
    std::uint64_t rep_generated_deliveries = 0;
    const auto generated_start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < pool_rounds; ++round) {
      std::uint64_t active = 0;
      for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
        if (!machines[lane]->done()) ++active;
      }
      if (active == 0) break;
      for (std::size_t lane = 0; lane < pool_lanes; ++lane) {
        if (!machines[lane]->done()) {
          machines[lane]->deliver(model::Value::of(returned[lane]));
        }
      }
      rep_generated_deliveries += active;
    }
    const double generated_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      generated_start)
            .count();
    benchmark::DoNotOptimize(machines);

    const double rep_pool_rate = rate(rep_pool_deliveries, pool_seconds);
    const double rep_scalar_rate = rate(rep_scalar_deliveries, scalar_seconds);
    pool_rate = std::max(pool_rate, rep_pool_rate);
    scalar_rate = std::max(scalar_rate, rep_scalar_rate);
    generated_scalar_rate = std::max(
        generated_scalar_rate, rate(rep_generated_deliveries,
                                    generated_seconds));
    pool_deliveries = rep_pool_deliveries;
    if (rep_scalar_rate > 0) {
      pool_ratios.push_back(rep_pool_rate / rep_scalar_rate);
    }
  }
  // An empty ratio list must read as 0 (gate fails loudly), not the
  // median lambda's empty-sentinel 2.0 (which would pass it).
  const double pool_batch_speedup =
      pool_ratios.empty() ? 0.0 : median(pool_ratios);
  const double legacy_rate = rate(legacy_states, legacy_seconds);
  const double hotpath_speedup =
      legacy_rate > 0
          ? rate(presized.report.states_visited, presized.seconds) /
                legacy_rate
          : 0.0;
  const double presize_speedup =
      hot.seconds > 0 && presized.seconds > 0
          ? rate(presized.report.states_visited, presized.seconds) /
                rate(hot.report.states_visited, hot.seconds)
          : 0.0;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B3");
  w.kv("smoke", smoke);
  w.key("symmetric_instance").begin_object();
  w.kv("protocol", "staged");
  w.kv("processes", std::uint64_t{sym_n});
  w.kv("inputs", "equal");
  w.kv("fault_kind", "overriding");
  w.kv("t", std::uint64_t{sym_t});
  w.end_object();
  emit_section(w, "reduced", reduced.report.states_visited, reduced.seconds,
               reduced.report.max_depth);
  emit_section(w, "unreduced", unreduced_run.report.states_visited,
               unreduced_run.seconds, unreduced_run.report.max_depth);
  w.kv("reduction_factor", reduction_factor);
  w.key("hotpath_instance").begin_object();
  w.kv("protocol", "staged");
  w.kv("processes", std::uint64_t{3});
  w.kv("inputs", "distinct");
  w.kv("fault_kind", "overriding");
  w.kv("t", std::uint64_t{2});
  w.end_object();
  emit_section(w, "hotpath_unreduced", hot.report.states_visited,
               hot.seconds, hot.report.max_depth);
  emit_section(w, "hotpath_presized", presized.report.states_visited,
               presized.seconds, presized.report.max_depth);
  emit_section(w, "legacy_baseline", legacy_states, legacy_seconds, 0);
  emit_section(w, "generated_machines", generated_best.report.states_visited,
               generated_best.seconds, generated_best.report.max_depth);
  emit_section(w, "interpreted_machines",
               interpreted_best.report.states_visited, interpreted_best.seconds,
               interpreted_best.report.max_depth);
  emit_section(w, "handwritten_machines",
               handwritten_best.report.states_visited,
               handwritten_best.seconds, handwritten_best.report.max_depth);
  w.kv("hotpath_speedup", hotpath_speedup);
  w.kv("presize_speedup", presize_speedup);
  // Fractional slowdown of what machine_factory actually selects — the
  // ffgen-GENERATED machine — vs the hand-written machines (0.05 = 5%
  // slower; negative = generated faster).  Gated at <= 0.02 by
  // scripts/bench_gate.py: straight-line codegen owes the census at
  // native speed.
  w.kv("ir_overhead", ir_overhead);
  // The interpreter's overhead on the same instance (informational —
  // the oracle only has to be correct, not fast).
  w.kv("interpreter_overhead", interpreter_overhead);
  w.kv("ir_census_match", ir_census_match);
  // Generated == interpreted census for every simulable registry
  // protocol (gated).
  w.kv("codegen_census_match", codegen_census_match);
  // A2 immunity pruning: census parity with pruning on vs off (gated),
  // and the branch-condition prune factor across the registry sweep
  // (gated >= 1.0; > 1 means proved-immune objects skipped real work).
  w.kv("immune_census_match", immune_census_match);
  w.kv("immune_prune_factor", immune_prune_factor);
  w.kv("immune_checks", immune_checks);
  w.kv("immune_skips", immune_skips);
  // Batched SoA pool vs the per-lane IrMachine fallback (gated >= 2.0:
  // the frontier explorer's throughput claim leans on the kernels).
  // generated_scalar_deliveries_per_sec is the same sweep through scalar
  // GENERATED machines — pure dispatch cost, informational.
  w.key("pool_batch").begin_object();
  w.kv("lanes", static_cast<std::uint64_t>(pool_lanes));
  w.kv("rounds", static_cast<std::uint64_t>(pool_rounds));
  w.kv("deliveries", pool_deliveries);
  w.kv("deliveries_per_sec", pool_rate);
  w.kv("scalar_deliveries_per_sec", scalar_rate);
  w.kv("generated_scalar_deliveries_per_sec", generated_scalar_rate);
  w.kv("speedup", pool_batch_speedup);
  w.end_object();
  // Sanity invariants the gate can assert without re-deriving them.
  w.kv("census_states_match",
       hot.report.states_visited == legacy_states &&
           presized.report.states_visited == hot.report.states_visited);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B3: reduction_factor=" << reduction_factor
            << " hotpath_speedup=" << hotpath_speedup
            << " ir_overhead=" << ir_overhead
            << " interpreter_overhead=" << interpreter_overhead
            << " codegen_census_match=" << codegen_census_match
            << " immune_prune_factor=" << immune_prune_factor
            << " immune_census_match=" << immune_census_match
            << " pool_batch_speedup=" << pool_batch_speedup << " -> " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
