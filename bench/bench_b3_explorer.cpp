// B3 — model-checker throughput: states visited per second and state-space
// size across representative configurations of each protocol machine.
//
// This calibrates what "exhaustive" costs and explains where the
// hierarchy prober switches from proofs to stress evidence.
#include <benchmark/benchmark.h>

#include <numeric>

#include "consensus/machines.hpp"
#include "sched/explorer.hpp"
#include "sched/parallel_explorer.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

template <typename FactoryT>
void run_explore(benchmark::State& state, const FactoryT& factory,
                 std::uint32_t objects, std::uint32_t t, std::uint32_t n) {
  sched::SimConfig config;
  config.num_objects = objects;
  config.kind = model::FaultKind::kOverriding;
  config.t = t;
  const sched::SimWorld world(config, factory, inputs(n));
  std::uint64_t states = 0;
  for (auto _ : state) {
    sched::ExploreOptions options;
    options.stop_at_first_violation = false;  // full-space traversal
    const auto result = sched::explore(world, options);
    states = result.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_ExploreHerlihy(benchmark::State& state) {
  run_explore(state, consensus::SingleCasFactory{}, 1, 1,
              static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_ExploreHerlihy)->DenseRange(2, 5);

void BM_ExploreFPlusOne(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  run_explore(state, consensus::FPlusOneFactory(f + 1), f + 1,
              model::kUnbounded, 3);
}
BENCHMARK(BM_ExploreFPlusOne)->DenseRange(1, 2);

void BM_ExploreStaged(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  run_explore(state, consensus::StagedFactory(1, t), 1, t, 2);
}
BENCHMARK(BM_ExploreStaged)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_ExploreStagedTwoObjects(benchmark::State& state) {
  run_explore(state, consensus::StagedFactory(2, 1), 2, 1, 2);
}
BENCHMARK(BM_ExploreStagedTwoObjects)->Unit(benchmark::kMillisecond);

// --- Parallel explorer speedup --------------------------------------------
//
// staged f=1, t=2 at n=3 reaches ~1.37M distinct states — large enough
// that the parallel explorer's thread sweep exposes real scaling, small
// enough for a full-space traversal per iteration.  Compare
// BM_ExploreMillionSequential against BM_ExploreMillionParallel/N for the
// wall-clock speedup; the `states` counter confirms both traversals cover
// the identical reachable set.

sched::SimWorld million_state_world() {
  static const consensus::StagedFactory factory(1, 2);
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 2;
  return sched::SimWorld(config, factory, inputs(3));
}

void BM_ExploreMillionSequential(benchmark::State& state) {
  const sched::SimWorld world = million_state_world();
  std::uint64_t states = 0;
  for (auto _ : state) {
    sched::ExploreOptions options;
    options.stop_at_first_violation = false;
    const auto result = sched::explore(world, options);
    states = result.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreMillionSequential)->Unit(benchmark::kMillisecond);

void BM_ExploreMillionParallel(benchmark::State& state) {
  const sched::SimWorld world = million_state_world();
  std::uint64_t states = 0;
  for (auto _ : state) {
    sched::ParallelExploreOptions options;
    options.explore.stop_at_first_violation = false;
    options.num_threads = static_cast<std::uint32_t>(state.range(0));
    const auto result = sched::parallel_explore(world, options);
    states = result.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreMillionParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelExploreStagedSmall(benchmark::State& state) {
  // Same configuration as BM_ExploreStaged t=2 — overhead comparison on a
  // small graph, where locking cost dominates and parallelism cannot win.
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  const consensus::StagedFactory factory(1, 2);
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 2;
  const sched::SimWorld world(config, factory, inputs(2));
  for (auto _ : state) {
    sched::ParallelExploreOptions options;
    options.explore.stop_at_first_violation = false;
    options.num_threads = threads;
    const auto result = sched::parallel_explore(world, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ParallelExploreStagedSmall)->Arg(1)->Arg(4);

void BM_SimWorldStepApply(benchmark::State& state) {
  // Cost of one simulated step (clone-free path): drive a solo staged
  // run repeatedly.
  const consensus::StagedFactory factory(2, 2);
  sched::SimConfig config;
  config.num_objects = 2;
  config.kind = model::FaultKind::kOverriding;
  config.t = 2;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sched::SimWorld world(config, factory, inputs(1));
    while (!world.terminal()) world.apply({0, false, 0});
    steps += world.total_steps();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimWorldStepApply);

void BM_SimWorldClone(benchmark::State& state) {
  // Cost of the snapshot the DFS takes per expanded state.
  const consensus::StagedFactory factory(3, 2);
  sched::SimConfig config;
  config.num_objects = 3;
  config.kind = model::FaultKind::kOverriding;
  config.t = 2;
  const sched::SimWorld world(config, factory, inputs(4));
  for (auto _ : state) {
    sched::SimWorld copy = world;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SimWorldClone);

}  // namespace

BENCHMARK_MAIN();
