// E2 — Theorem 5 / Figure 2: f+1 CAS objects, at most f of them with
// unboundedly many overriding faults, give f-tolerant consensus for any
// number of processes.
//
// Regenerates:
//   (a) exhaustive verdicts sweeping every choice of which f objects are
//       faulty (small f, n);
//   (b) a threaded sweep over f × n with a dynamically-designating
//       adversary: agreement must be 1.0 and steps/process exactly f+1;
//   (c) the boundary contrast: the same protocol given only f objects
//       (the Theorem 18 candidate) — the explorer exhibits disagreement.
#include <iostream>
#include <memory>
#include <numeric>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

void exhaustive_table() {
  util::Table table({"f", "objects", "n", "designations", "states(max)",
                     "verdict"});
  for (std::uint32_t f = 1; f <= 2; ++f) {
    const std::uint32_t k = f + 1;
    for (std::uint32_t n = 2; n <= 4; ++n) {
      std::uint64_t max_states = 0;
      bool all_ok = true;
      bool all_complete = true;
      for (std::uint32_t correct = 0; correct < k; ++correct) {
        sched::SimConfig config;
        config.num_objects = k;
        config.kind = model::FaultKind::kOverriding;
        config.t = model::kUnbounded;
        config.faulty.assign(k, true);
        config.faulty[correct] = false;
        const sched::SimWorld world(
            config, *proto::machine_factory("f-plus-one",
                                            proto::Params{{"k", k}}),
            inputs(n));
        const auto result = sched::explore(world);
        max_states = std::max(max_states, result.states_visited);
        all_ok = all_ok && !result.violation;
        all_complete = all_complete && result.complete;
      }
      table.add(f, k, n, k, max_states,
                all_ok ? (all_complete ? "OK (proven)" : "OK (capped)")
                       : "VIOLATION");
    }
  }
  std::cout << "Exhaustive model checking, Figure 2, every faulty-set "
               "designation (t=inf):\n"
            << table << '\n';
}

void threaded_table(std::uint64_t trials) {
  util::Table table({"f", "objects", "n", "trials", "agreement",
                     "steps/proc", "theory steps"});
  for (std::uint32_t f = 1; f <= 4; ++f) {
    for (std::uint32_t n : {2u, 4u, 8u}) {
      faults::FaultBudget budget(f + 1, f, model::kUnbounded);
      faults::ProbabilisticFault policy(0.6, 0xE2 + f);
      std::vector<std::unique_ptr<faults::FaultyCas>> bank;
      std::vector<objects::CasObject*> raw;
      for (std::uint32_t i = 0; i <= f; ++i) {
        bank.push_back(std::make_unique<faults::FaultyCas>(
            i, model::FaultKind::kOverriding, &policy, &budget));
        raw.push_back(bank.back().get());
      }
      const auto protocol_ptr =
          proto::protocol("f-plus-one", proto::Params{{"k", f + 1}}, raw);
      consensus::Protocol& protocol = *protocol_ptr;

      runtime::StressOptions options;
      options.processes = n;
      options.budget.max_units = trials;
      options.seed = 0xE2 * f + n;
      const auto report = runtime::run_stress(
          protocol, options, [&](std::uint64_t) { budget.reset(); });
      table.add(f, f + 1, n, report.trials, report.ok_rate(),
                report.steps_per_process.mean(), f + 1);
    }
  }
  std::cout << "Threaded stress, Figure 2 (agreement must be 1.0 "
               "everywhere; wait-freedom bound is exactly f+1 steps):\n"
            << table << '\n';
}

void boundary_table() {
  util::Table table(
      {"candidate", "objects", "n", "verdict", "witness schedule"});
  for (std::uint32_t f = 1; f <= 3; ++f) {
    sched::SimConfig config;
    config.num_objects = f;
    config.kind = model::FaultKind::kOverriding;
    config.t = model::kUnbounded;
    const sched::SimWorld world(
        config,
        *proto::machine_factory("f-plus-one", proto::Params{{"k", f}}),
        inputs(3));
    const auto result = sched::explore(world);
    table.add("Fig2 with only f=" + std::to_string(f) + " objects", f, 3,
              result.violation
                  ? std::string(sched::to_string(result.violation->kind))
                  : "no violation (?)",
              result.violation ? result.violation->schedule_string() : "-");
  }
  std::cout << "Boundary contrast (Theorem 18 candidate: drop the one "
               "guaranteed-correct object):\n"
            << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto trials = cli.get_uint("trials", 150);
  std::cout << "=== E2: f-tolerant consensus from f+1 CAS objects "
               "(Theorem 5, Figure 2) ===\n\n";
  exhaustive_table();
  threaded_table(trials);
  boundary_table();
  return 0;
}
