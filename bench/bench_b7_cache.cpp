// B7 — the persistent census cache: warm-hit speedup and report fidelity.
//
// One question feeds the BENCH trajectory: what does a verification
// re-run cost once the census is on disk?  The reference job (staged
// f=1 t=2 at n=3 distinct inputs — the same ~1.37M-state instance B3
// and B6 calibrate on; smoke drops to t=1) is run COLD into a fresh
// cache directory, then re-run WARM against the same directory.  Gated
// by scripts/bench_gate.py:
//   * speedup        cold_seconds / warm_seconds  >= 100x — a disk read
//                    plus a fingerprint fold must be orders of magnitude
//                    cheaper than the search it replaces;
//   * report_match   the warm Report is BIT-IDENTICAL to the cold one
//                    (canonical JSON compared byte for byte);
//   * cache_hit      the warm run was answered by the cache with
//                    fresh_states_expanded == 0.
// Modes:
//   (default)        google-benchmark suite (BM_WarmCacheLookup)
//   --json <path>    machine-readable BENCH_B7 report for
//                    scripts/bench_gate.py
//   --smoke          smaller reference instance for CI gating (check.sh).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "verify/cache.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

namespace fs = std::filesystem;

/// The reference job.  DFS engine: single-threaded search is the
/// steadiest cold-side denominator, and cacheability is what B7 gates,
/// not engine scaling (B6 owns that).  Smoke keeps the reductions on
/// (~360k canonical states — a cold second, and 100x headroom over a
/// warm disk read); the full report turns them off (~1.37M states).
verify::JobSpec reference_spec(bool smoke) {
  verify::JobSpec spec;
  spec.protocol = "staged";
  spec.params = {{"f", 1}, {"t", 2}};
  spec.t = 2;
  spec.processes = 3;
  spec.stop_at_first_violation = false;
  if (!smoke) {
    spec.symmetry_reduction = false;
    spec.sleep_sets = false;
  }
  return spec;
}

/// A fresh, empty cache directory under the system temp root.
fs::path fresh_cache_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- google-benchmark suite ------------------------------------------------

void BM_WarmCacheLookup(benchmark::State& state) {
  // Cost of one warm hit end to end: fingerprint the job, load the
  // entry, soundness-check the program fingerprint, parse the Report.
  const auto dir = fresh_cache_dir("ffb7_bm_cache");
  verify::Cache cache(dir.string());
  const verify::JobSpec spec = reference_spec(/*smoke=*/true);
  benchmark::DoNotOptimize(verify::run(spec, &cache));  // cold fill
  for (auto _ : state) {
    const verify::RunOutcome warm = verify::run(spec, &cache);
    if (!warm.cache_hit) state.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(warm);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_WarmCacheLookup)->Unit(benchmark::kMicrosecond);

// --- JSON report mode ------------------------------------------------------

int write_report(const std::string& path, bool smoke) {
  const verify::JobSpec spec = reference_spec(smoke);
  const auto dir = fresh_cache_dir("ffb7_cache");
  verify::Cache cache(dir.string());

  auto start = std::chrono::steady_clock::now();
  const verify::RunOutcome cold = verify::run(spec, &cache);
  const double cold_seconds = seconds_since(start);

  // Warm side: several reps, best and median — one disk read is cheap
  // enough that a single sample is scheduler noise.
  const int warm_reps = 9;
  std::vector<double> warm_times;
  bool warm_hits = true;
  bool zero_fresh = true;
  bool report_match = true;
  const std::string cold_json = cold.report.to_json();
  for (int rep = 0; rep < warm_reps; ++rep) {
    start = std::chrono::steady_clock::now();
    const verify::RunOutcome warm = verify::run(spec, &cache);
    warm_times.push_back(seconds_since(start));
    warm_hits = warm_hits && warm.cache_hit;
    zero_fresh = zero_fresh && warm.fresh_states_expanded == 0;
    report_match = report_match && warm.report.to_json() == cold_json;
  }
  std::sort(warm_times.begin(), warm_times.end());
  const double warm_median = warm_times[warm_times.size() / 2];
  const double warm_best = warm_times.front();

  const auto stats = cache.stats();
  std::error_code ec;
  fs::remove_all(dir, ec);

  const double speedup =
      warm_median > 0.0 ? cold_seconds / warm_median : 0.0;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B7");
  w.kv("smoke", smoke);
  w.kv("protocol", "staged f=1 t=2 n=3 distinct");
  w.kv("states", cold.report.states_visited);
  w.kv("fingerprint", verify::job_fingerprint(spec.canonicalized()).hex());
  w.kv("cold_seconds", cold_seconds);
  w.kv("warm_seconds", warm_median);
  w.kv("warm_best_seconds", warm_best);
  w.kv("warm_reps", std::uint64_t{warm_reps});
  w.kv("speedup", speedup);
  w.kv("cache_hit", warm_hits);
  w.kv("zero_fresh_states", zero_fresh);
  w.kv("report_match", report_match);
  w.kv("cold_was_hit", cold.cache_hit);  // must be false: dir was fresh
  w.kv("entry_bytes", stats.bytes);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B7: cold=" << cold_seconds << "s warm=" << warm_median
            << "s speedup=" << speedup << "x report_match=" << report_match
            << " cache_hit=" << warm_hits << " -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
