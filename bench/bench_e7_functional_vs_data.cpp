// E7 — the separation the paper's introduction highlights: functional
// faults are strictly easier to tolerate than data faults.  Afek et
// al.'s lower bound rules out consensus from base objects that are ALL
// subject to data faults, while Theorem 6 builds consensus from f CAS
// objects that are ALL subject to (bounded) overriding functional faults.
//
// Same budget, two fault models:
//   (a) exhaustive: staged protocol, f objects all faulty, budget (f,t) —
//       overriding functional faults → proven correct; data-corruption
//       faults (adversary may rewrite a register at any point) →
//       violation exhibited;
//   (b) threaded: the same protocol against an asynchronous corruption
//       gremlin thread vs against overriding injection.
#include <iostream>
#include <memory>
#include <numeric>

#include "faults/budget.hpp"
#include "faults/data_fault.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace ff;

void exhaustive_table() {
  util::Table table({"fault model", "f", "t", "n", "states", "verdict"});
  const std::pair<std::uint32_t, std::uint32_t> cells[] = {{1, 1}, {1, 2}};
  for (const auto& [f, t] : cells) {
    const std::uint32_t n = f + 1;
    std::vector<std::uint64_t> inputs(n);
    std::iota(inputs.begin(), inputs.end(), 1);
    for (const bool data_faults : {false, true}) {
      sched::SimConfig config;
      config.num_objects = f;
      config.t = t;
      if (data_faults) {
        config.kind = model::FaultKind::kDataCorruption;
        config.allow_corruption_steps = true;
      } else {
        config.kind = model::FaultKind::kOverriding;
      }
      const sched::SimWorld world(
          config,
          *proto::machine_factory("staged",
                                  proto::Params{{"f", f}, {"t", t}}),
          inputs);
      const auto result = sched::explore(world);
      table.add(data_faults ? "data corruption (Afek et al.)"
                            : "overriding (functional)",
                f, t, n, result.states_visited,
                result.violation
                    ? std::string(sched::to_string(result.violation->kind))
                    : std::string(result.complete ? "OK (proven)"
                                                  : "OK (capped)"));
    }
  }
  std::cout << "Exhaustive: staged protocol, ALL f objects faulty, same "
               "(f,t) budget, two fault models:\n"
            << table << '\n';
}

void threaded_table(std::uint64_t trials) {
  util::Table table({"fault model", "f", "t", "n", "trials", "agreement"});
  constexpr std::uint32_t kF = 2;
  constexpr std::uint32_t kT = 1;
  constexpr std::uint32_t kN = kF + 1;

  // (i) overriding functional faults, always-fault adversary.
  {
    faults::FaultBudget budget(kF, kF, kT);
    faults::AlwaysFault policy;
    std::vector<std::unique_ptr<faults::FaultyCas>> bank;
    std::vector<objects::CasObject*> raw;
    for (std::uint32_t i = 0; i < kF; ++i) {
      bank.push_back(std::make_unique<faults::FaultyCas>(
          i, model::FaultKind::kOverriding, &policy, &budget));
      raw.push_back(bank.back().get());
    }
    const auto protocol_ptr = proto::protocol(
        "staged", proto::Params{{"f", kF}, {"t", kT}}, raw);
    consensus::Protocol& protocol = *protocol_ptr;
    protocol.set_step_limit(10'000'000);
    runtime::StressOptions options;
    options.processes = kN;
    options.budget.max_units = trials;
    options.seed = 0xE7;
    const auto report = runtime::run_stress(
        protocol, options, [&](std::uint64_t) { budget.reset(); });
    table.add("overriding (functional)", kF, kT, kN, report.trials,
              report.ok_rate());
  }

  // (ii) asynchronous data corruption by a gremlin thread, same t per
  // object.  The gremlin writes arbitrary garbage at arbitrary moments.
  {
    std::vector<std::unique_ptr<faults::FaultyCas>> bank;
    std::vector<objects::CasObject*> raw;
    std::vector<faults::FaultyCas*> targets;
    for (std::uint32_t i = 0; i < kF; ++i) {
      bank.push_back(std::make_unique<faults::FaultyCas>(
          i, model::FaultKind::kNone, nullptr, nullptr));
      raw.push_back(bank.back().get());
      targets.push_back(bank.back().get());
    }
    const auto protocol_ptr = proto::protocol(
        "staged", proto::Params{{"f", kF}, {"t", kT}}, raw);
    consensus::Protocol& protocol = *protocol_ptr;
    protocol.set_step_limit(10'000'000);

    std::uint64_t ok = 0;
    std::uint64_t total = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      protocol.reset();
      faults::CorruptionGremlin::Options gremlin_options;
      gremlin_options.corruptions_per_object = kT;
      gremlin_options.seed = 0xE7 + trial;
      faults::CorruptionGremlin gremlin(targets, gremlin_options);
      gremlin.start();
      const auto inputs = runtime::make_inputs(kN, trial, 0xE7);
      const auto outcome = runtime::run_trial(protocol, inputs, trial + 1);
      gremlin.stop();
      ++total;
      if (outcome.verdict.ok()) ++ok;
    }
    table.add("data corruption (gremlin)", kF, kT, kN, total,
              static_cast<double>(ok) / static_cast<double>(total));
  }

  std::cout << "Threaded: same budget, functional vs data faults "
               "(functional row must be 1.0; the gremlin row degrades —\n"
               "timing-dependent, its corruptions must land in the "
               "vulnerable window to split the decision):\n"
            << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto trials = cli.get_uint("trials", 200);
  std::cout << "=== E7: functional faults beat the data-fault lower bound "
               "(Section 4 intro) ===\n\n";
  exhaustive_table();
  threaded_table(trials);
  return 0;
}
