// B5 — cost of the crash–recovery fault model.
//
// Two questions feed the BENCH trajectory:
//   * How much does the crash branch grow the state space?  The same
//     recoverable protocol is explored exhaustively at crash budgets
//     0, 1 and 2; the growth factor is states(b)/states(0), and the
//     budget-0 census must match the protocol's non-recoverable
//     original exactly (the crash plumbing must be free when unused).
//   * What does recoverable consensus cost on real threads?  Trials of
//     crashed-and-restarted worker threads (runtime::run_crash_trial)
//     against crash-free trials of the same protocol give the latency
//     of surviving a forced crash per process.
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    machine-readable BENCH_B5 report for
//                    scripts/bench_gate.py
//   --smoke          reduced trial counts for CI gating (check.sh).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>

#include "faults/crash_policy.hpp"
#include "objects/atomic_cas.hpp"
#include "proto/registry.hpp"
#include "runtime/crash_runner.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/json.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

sched::SimWorld make_world(const sched::MachineFactory& factory,
                           model::FaultKind kind, std::uint32_t t,
                           std::uint32_t n, std::uint32_t crash_budget) {
  sched::SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = kind == model::FaultKind::kNone ? 0 : t;
  config.crash_budget = crash_budget;
  return sched::SimWorld(config, factory, inputs(n));
}

sched::ExploreResult explore_full(const sched::SimWorld& world) {
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  return sched::explore(world, options);
}

// --- State-space growth of the crash branch -------------------------------

void BM_CrashBranchExploreStaged(benchmark::State& state) {
  // recoverable-staged under overriding faults AND crashes: the
  // cross-product instance.  Arg = crash budget.
  const auto factory = proto::machine_factory(
      "recoverable-staged", proto::Params{{"f", 1}, {"t", 1}});
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  const auto world =
      make_world(*factory, model::FaultKind::kOverriding, 1, 2, budget);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = explore_full(world);
    states = result.states_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_CrashBranchExploreStaged)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// --- Real-thread recoverable-consensus latency ----------------------------

void BM_RecoverableConsensusTrial(benchmark::State& state) {
  // Every process forced through `Arg` crashes before deciding: the
  // wall time per iteration is the latency of a fully crash-exercised
  // consensus trial (thread spawn + restart included).
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  objects::AtomicCas object(0);
  const auto protocol = proto::protocol(
      "recoverable-staged", proto::Params{{"f", 1}, {"t", 1}}, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);
  faults::RunLengthCrash policy(budget > 0 ? 1 : 0);
  for (auto _ : state) {
    ir.reset();
    const auto outcome = runtime::run_crash_trial(ir, {1, 2}, policy, budget);
    if (!outcome.verdict.ok()) state.SkipWithError("consensus violated");
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_RecoverableConsensusTrial)
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// --- JSON report mode ------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exhaustive explores at budgets 0/1/2 plus the budget-0 census check
/// against the protocol's non-recoverable original.
void emit_growth(util::JsonWriter& w, std::string_view key,
                 const std::string& recoverable, const proto::Params& params,
                 const std::string& original) {
  const auto factory = proto::machine_factory(recoverable, params);
  const auto baseline = proto::machine_factory(original, params);

  const auto original_census = explore_full(
      make_world(*baseline, model::FaultKind::kOverriding, 1, 2, 0));

  w.key(key).begin_object();
  w.kv("protocol", recoverable);
  std::uint64_t states_b0 = 0;
  for (const std::uint32_t budget : {0u, 1u, 2u}) {
    const auto world =
        make_world(*factory, model::FaultKind::kOverriding, 1, 2, budget);
    const auto start = std::chrono::steady_clock::now();
    const auto result = explore_full(world);
    const double secs = seconds_since(start);
    const std::string tag = "b" + std::to_string(budget);
    if (budget == 0) {
      states_b0 = result.states_visited;
      w.kv("crash_free_census_match",
           result.states_visited == original_census.states_visited &&
               result.terminal_states == original_census.terminal_states &&
               result.violations_by_kind ==
                   original_census.violations_by_kind);
    }
    w.kv("states_" + tag, result.states_visited);
    w.kv("terminals_" + tag, result.terminal_states);
    w.kv("complete_" + tag, result.complete);
    w.kv("seconds_" + tag, secs);
    if (budget > 0 && states_b0 > 0) {
      w.kv("growth_factor_" + tag,
           static_cast<double>(result.states_visited) /
               static_cast<double>(states_b0));
    }
  }
  w.end_object();
}

/// Crash-free vs forced-crash thread trials of recoverable consensus.
void emit_latency(util::JsonWriter& w, std::uint64_t trials) {
  objects::AtomicCas object(0);
  const auto protocol = proto::protocol(
      "recoverable-staged", proto::Params{{"f", 1}, {"t", 1}}, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);

  w.key("recoverable_latency").begin_object();
  w.kv("trials", trials);
  bool all_ok = true;
  std::uint64_t total_crashes = 0;

  faults::NeverCrash never;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < trials; ++i) {
    ir.reset();
    const auto outcome = runtime::run_crash_trial(ir, {1, 2}, never, 0);
    all_ok = all_ok && outcome.verdict.ok();
  }
  const double crash_free_secs = seconds_since(start);

  faults::RunLengthCrash every_first_op(1);
  start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < trials; ++i) {
    ir.reset();
    const auto outcome =
        runtime::run_crash_trial(ir, {1, 2}, every_first_op, 2);
    all_ok = all_ok && outcome.verdict.ok();
    total_crashes += outcome.crashes[0] + outcome.crashes[1];
  }
  const double crashed_secs = seconds_since(start);

  w.kv("all_ok", all_ok);
  w.kv("total_crashes", total_crashes);
  w.kv("crash_free_mean_ms",
       trials > 0 ? crash_free_secs * 1e3 / static_cast<double>(trials) : 0.0);
  w.kv("crashed_mean_ms",
       trials > 0 ? crashed_secs * 1e3 / static_cast<double>(trials) : 0.0);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t trials = smoke ? 40 : 400;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B5");
  w.kv("smoke", smoke);
  emit_growth(w, "crash_growth_staged", "recoverable-staged",
              proto::Params{{"f", 1}, {"t", 1}}, "staged");
  emit_growth(w, "crash_growth_cas", "recoverable-cas", proto::Params{},
              "single-cas");
  emit_latency(w, trials);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B5 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
