// B5 — cost of the crash–recovery fault model.
//
// Two questions feed the BENCH trajectory:
//   * How much does the crash branch grow the state space?  The same
//     recoverable protocol is explored exhaustively at crash budgets
//     0, 1 and 2; the growth factor is states(b)/states(0), and the
//     budget-0 census must match the protocol's non-recoverable
//     original exactly (the crash plumbing must be free when unused).
//   * What does recoverable consensus cost on real threads?  Trials of
//     crashed-and-restarted worker threads (runtime::run_crash_trial)
//     against crash-free trials of the same protocol give the latency
//     of surviving a forced crash per process.
//
// The exhaustive explores are verify::JobSpecs run through
// verify::instantiate()/execute(); the real-thread latency section
// drives runtime::run_crash_trial directly — a crash-POLICY trial
// harness (forced crash points, restart loops) is not one of the job
// layer's engines, so it stays raw by design.
//
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    machine-readable BENCH_B5 report for
//                    scripts/bench_gate.py
//   --smoke          reduced trial counts for CI gating (check.sh).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "faults/crash_policy.hpp"
#include "objects/atomic_cas.hpp"
#include "proto/registry.hpp"
#include "runtime/crash_runner.hpp"
#include "util/json.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

/// Full-space overriding-fault job at a given crash budget.
verify::JobSpec crash_spec(std::string protocol,
                           std::map<std::string, std::uint64_t> params,
                           std::uint32_t crash_budget) {
  verify::JobSpec spec;
  spec.protocol = std::move(protocol);
  spec.params = std::move(params);
  spec.kind = model::FaultKind::kOverriding;
  spec.t = 1;
  spec.processes = 2;
  spec.crash_budget = crash_budget;
  spec.stop_at_first_violation = false;
  return spec;
}

// --- State-space growth of the crash branch -------------------------------

void BM_CrashBranchExploreStaged(benchmark::State& state) {
  // recoverable-staged under overriding faults AND crashes: the
  // cross-product instance.  Arg = crash budget.
  const verify::Instance instance = verify::instantiate(
      crash_spec("recoverable-staged", {{"f", 1}, {"t", 1}},
                 static_cast<std::uint32_t>(state.range(0))));
  std::uint64_t states = 0;
  for (auto _ : state) {
    const verify::Report report = verify::execute(instance);
    states = report.states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_CrashBranchExploreStaged)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// --- Real-thread recoverable-consensus latency ----------------------------

void BM_RecoverableConsensusTrial(benchmark::State& state) {
  // Every process forced through `Arg` crashes before deciding: the
  // wall time per iteration is the latency of a fully crash-exercised
  // consensus trial (thread spawn + restart included).
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  objects::AtomicCas object(0);
  const auto protocol = proto::protocol(
      "recoverable-staged", proto::Params{{"f", 1}, {"t", 1}}, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);
  faults::RunLengthCrash policy(budget > 0 ? 1 : 0);
  for (auto _ : state) {
    ir.reset();
    const auto outcome = runtime::run_crash_trial(ir, {1, 2}, policy, budget);
    if (!outcome.verdict.ok()) state.SkipWithError("consensus violated");
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_RecoverableConsensusTrial)
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// --- JSON report mode ------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exhaustive explores at budgets 0/1/2 plus the budget-0 census check
/// against the protocol's non-recoverable original.
void emit_growth(util::JsonWriter& w, std::string_view key,
                 const std::string& recoverable,
                 const std::map<std::string, std::uint64_t>& params,
                 const std::string& original) {
  const verify::Report original_census =
      verify::execute(verify::instantiate(crash_spec(original, params, 0)));

  w.key(key).begin_object();
  w.kv("protocol", recoverable);
  std::uint64_t states_b0 = 0;
  for (const std::uint32_t budget : {0u, 1u, 2u}) {
    const verify::Report result = verify::execute(
        verify::instantiate(crash_spec(recoverable, params, budget)));
    const double secs = static_cast<double>(result.engine_micros) * 1e-6;
    const std::string tag = "b" + std::to_string(budget);
    if (budget == 0) {
      states_b0 = result.states_visited;
      w.kv("crash_free_census_match", census_equal(result, original_census));
    }
    w.kv("states_" + tag, result.states_visited);
    w.kv("terminals_" + tag, result.terminal_states);
    w.kv("complete_" + tag, result.complete);
    w.kv("seconds_" + tag, secs);
    if (budget > 0 && states_b0 > 0) {
      w.kv("growth_factor_" + tag,
           static_cast<double>(result.states_visited) /
               static_cast<double>(states_b0));
    }
  }
  w.end_object();
}

/// Crash-free vs forced-crash thread trials of recoverable consensus.
void emit_latency(util::JsonWriter& w, std::uint64_t trials) {
  objects::AtomicCas object(0);
  const auto protocol = proto::protocol(
      "recoverable-staged", proto::Params{{"f", 1}, {"t", 1}}, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);

  w.key("recoverable_latency").begin_object();
  w.kv("trials", trials);
  bool all_ok = true;
  std::uint64_t total_crashes = 0;

  faults::NeverCrash never;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < trials; ++i) {
    ir.reset();
    const auto outcome = runtime::run_crash_trial(ir, {1, 2}, never, 0);
    all_ok = all_ok && outcome.verdict.ok();
  }
  const double crash_free_secs = seconds_since(start);

  faults::RunLengthCrash every_first_op(1);
  start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < trials; ++i) {
    ir.reset();
    const auto outcome =
        runtime::run_crash_trial(ir, {1, 2}, every_first_op, 2);
    all_ok = all_ok && outcome.verdict.ok();
    total_crashes += outcome.crashes[0] + outcome.crashes[1];
  }
  const double crashed_secs = seconds_since(start);

  w.kv("all_ok", all_ok);
  w.kv("total_crashes", total_crashes);
  w.kv("crash_free_mean_ms",
       trials > 0 ? crash_free_secs * 1e3 / static_cast<double>(trials) : 0.0);
  w.kv("crashed_mean_ms",
       trials > 0 ? crashed_secs * 1e3 / static_cast<double>(trials) : 0.0);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t trials = smoke ? 40 : 400;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B5");
  w.kv("smoke", smoke);
  emit_growth(w, "crash_growth_staged", "recoverable-staged",
              {{"f", 1}, {"t", 1}}, "staged");
  emit_growth(w, "crash_growth_cas", "recoverable-cas", {}, "single-cas");
  emit_latency(w, trials);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B5 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
