// B4 — schedule-fuzzer throughput and time-to-first-violation.
//
// Two questions feed the BENCH trajectory:
//   * How many schedules (and simulated steps) per second does the
//     coverage-guided fuzzer execute on configurations with nothing to
//     find?  That is the raw search horsepower.
//   * How quickly does it surface a first witness on configurations the
//     explorers prove faulty?  Wall time per benchmark iteration IS the
//     time-to-first-violation; the counters record how many executions
//     and steps that took.
//
// Every configuration is a verify::JobSpec (engine = fuzz) executed
// through verify::instantiate()/execute() — the bench never fills
// FuzzOptions by hand.
//
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    write a machine-readable BENCH_B4.json report:
//                    schedules/sec and steps/sec on a proven-correct
//                    configuration, plus time-to-first-violation and
//                    executions-to-violation on proven-faulty ones.
//   --smoke          reduced budgets for CI gating (scripts/check.sh).
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "util/json.hpp"
#include "verify/run.hpp"

namespace {

using namespace ff;

verify::JobSpec fuzz_spec(std::string protocol,
                          std::map<std::string, std::uint64_t> params,
                          model::FaultKind kind, std::uint32_t t,
                          std::uint32_t n, std::uint64_t budget) {
  verify::JobSpec spec;
  spec.protocol = std::move(protocol);
  spec.params = std::move(params);
  spec.kind = kind;
  spec.t = t;
  spec.processes = n;
  spec.engine = verify::Engine::kFuzz;
  spec.fuzz_steps = budget;
  return spec;
}

// --- Throughput: schedules/sec and steps/sec on a correct config ----------

void run_throughput(benchmark::State& state, verify::JobSpec spec) {
  std::uint64_t execs = 0;
  std::uint64_t steps = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    const verify::Report report = verify::execute(verify::instantiate(spec));
    execs += report.fuzz->executions;
    steps += report.fuzz->total_steps;
    benchmark::DoNotOptimize(report);
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(execs), benchmark::Counter::kIsRate);
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_FuzzThroughputRetrySilent(benchmark::State& state) {
  // retry-silent at bounded t is explorer-proven correct: pure search.
  run_throughput(state, fuzz_spec("retry-silent", {},
                                  model::FaultKind::kSilent, 1, 2, 50'000));
}
BENCHMARK(BM_FuzzThroughputRetrySilent)->Unit(benchmark::kMillisecond);

void BM_FuzzThroughputStagedSafe(benchmark::State& state) {
  // staged f=1 t=1 n=2 is within the protocol's fault budget: correct.
  run_throughput(state,
                 fuzz_spec("staged", {{"f", 1}, {"t", 1}},
                           model::FaultKind::kOverriding, 1, 2, 50'000));
}
BENCHMARK(BM_FuzzThroughputStagedSafe)->Unit(benchmark::kMillisecond);

// --- Time-to-first-violation ----------------------------------------------

void run_first_violation(benchmark::State& state, verify::JobSpec spec) {
  std::uint64_t execs = 0;
  std::uint64_t steps = 0;
  std::uint64_t found = 0;
  std::uint64_t witness = 0;
  std::uint64_t shrunk = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    const verify::Report report = verify::execute(verify::instantiate(spec));
    execs += report.fuzz->executions;
    steps += report.fuzz->total_steps;
    if (report.violation) {
      ++found;
      witness += report.fuzz->witness_steps_found;
      shrunk += report.fuzz->witness_steps_shrunk;
    }
    benchmark::DoNotOptimize(report);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["found"] = static_cast<double>(found) / iters;
  state.counters["execs_to_violation"] = static_cast<double>(execs) / iters;
  state.counters["steps_to_violation"] = static_cast<double>(steps) / iters;
  state.counters["witness_steps"] = static_cast<double>(witness) / iters;
  state.counters["witness_steps_shrunk"] =
      static_cast<double>(shrunk) / iters;
}

void BM_FuzzFirstViolationSingleCas(benchmark::State& state) {
  // Figure 1: one overriding fault breaks single-CAS consensus at n=3.
  run_first_violation(
      state, fuzz_spec("single-cas", {}, model::FaultKind::kOverriding, 1, 3,
                       5'000'000));  // effectively until found
}
BENCHMARK(BM_FuzzFirstViolationSingleCas)->Unit(benchmark::kMicrosecond);

void BM_FuzzFirstViolationStaged(benchmark::State& state) {
  // staged f=1 t=1 at n=3 exceeds the protected-process count: faulty.
  run_first_violation(
      state, fuzz_spec("staged", {{"f", 1}, {"t", 1}},
                       model::FaultKind::kOverriding, 1, 3, 5'000'000));
}
BENCHMARK(BM_FuzzFirstViolationStaged)->Unit(benchmark::kMicrosecond);

void BM_FuzzFirstViolationLivelock(benchmark::State& state) {
  // retry-silent at t = ∞ livelocks: the witness is a machine-checked
  // cycle, exercising the in-execution revisit detector.
  run_first_violation(state,
                      fuzz_spec("retry-silent", {}, model::FaultKind::kSilent,
                                model::kUnbounded, 2, 5'000'000));
}
BENCHMARK(BM_FuzzFirstViolationLivelock)->Unit(benchmark::kMicrosecond);

// --- JSON report mode ------------------------------------------------------

void emit_throughput(util::JsonWriter& w, std::string_view name,
                     verify::JobSpec spec) {
  spec.seed = 1;
  const verify::Report report = verify::execute(verify::instantiate(spec));
  const double seconds = static_cast<double>(report.engine_micros) * 1e-6;
  w.key(name).begin_object();
  w.kv("executions", report.fuzz->executions);
  w.kv("total_steps", report.fuzz->total_steps);
  w.kv("unique_states", report.fuzz->unique_states);
  w.kv("seconds", seconds);
  w.kv("schedules_per_sec",
       seconds > 0 ? static_cast<double>(report.fuzz->executions) / seconds
                   : 0.0);
  w.kv("steps_per_sec",
       seconds > 0 ? static_cast<double>(report.fuzz->total_steps) / seconds
                   : 0.0);
  w.end_object();
}

void emit_first_violation(util::JsonWriter& w, std::string_view name,
                          verify::JobSpec spec) {
  spec.seed = 1;
  const verify::Report report = verify::execute(verify::instantiate(spec));
  const double seconds = static_cast<double>(report.engine_micros) * 1e-6;
  w.key(name).begin_object();
  w.kv("found", report.violation.has_value());
  if (report.violation) {
    w.kv("kind", to_string(report.violation->kind));
  }
  w.kv("time_to_first_violation_sec", seconds);
  w.kv("execs_to_violation", report.fuzz->executions);
  w.kv("steps_to_violation", report.fuzz->total_steps);
  w.kv("witness_steps", report.fuzz->witness_steps_found);
  w.kv("witness_steps_shrunk", report.fuzz->witness_steps_shrunk);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t throughput_budget = smoke ? 20'000 : 200'000;
  const std::uint64_t violation_budget = smoke ? 500'000 : 5'000'000;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B4");
  w.kv("smoke", smoke);
  emit_throughput(w, "throughput_retry_silent",
                  fuzz_spec("retry-silent", {}, model::FaultKind::kSilent, 1,
                            2, throughput_budget));
  emit_throughput(w, "throughput_staged_safe",
                  fuzz_spec("staged", {{"f", 1}, {"t", 1}},
                            model::FaultKind::kOverriding, 1, 2,
                            throughput_budget));
  emit_first_violation(w, "first_violation_single_cas",
                       fuzz_spec("single-cas", {},
                                 model::FaultKind::kOverriding, 1, 3,
                                 violation_budget));
  emit_first_violation(w, "first_violation_livelock",
                       fuzz_spec("retry-silent", {}, model::FaultKind::kSilent,
                                 model::kUnbounded, 2, violation_budget));
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B4 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
