// B4 — schedule-fuzzer throughput and time-to-first-violation.
//
// Two questions feed the BENCH trajectory:
//   * How many schedules (and simulated steps) per second does the
//     coverage-guided fuzzer execute on configurations with nothing to
//     find?  That is the raw search horsepower.
//   * How quickly does it surface a first witness on configurations the
//     explorers prove faulty?  Wall time per benchmark iteration IS the
//     time-to-first-violation; the counters record how many executions
//     and steps that took.
// Modes:
//   (default)        google-benchmark suite (all BM_* below)
//   --json <path>    write a machine-readable BENCH_B4.json report:
//                    schedules/sec and steps/sec on a proven-correct
//                    configuration, plus time-to-first-violation and
//                    executions-to-violation on proven-faulty ones.
//   --smoke          reduced budgets for CI gating (scripts/check.sh).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>

#include "proto/registry.hpp"
#include "sched/fuzzer.hpp"
#include "sched/sim_world.hpp"
#include "util/json.hpp"

namespace {

using namespace ff;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

template <typename FactoryT>
sched::SimWorld make_world(const FactoryT& factory, model::FaultKind kind,
                           std::uint32_t objects, std::uint32_t t,
                           std::uint32_t n) {
  sched::SimConfig config;
  config.num_objects = objects;
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = t;
  return sched::SimWorld(config, factory, inputs(n));
}

// --- Throughput: schedules/sec and steps/sec on a correct config ----------

void run_throughput(benchmark::State& state, const sched::SimWorld& world) {
  std::uint64_t execs = 0;
  std::uint64_t steps = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::FuzzOptions options;
    options.seed = seed++;
    options.budget.max_units = 50'000;
    const auto result = sched::fuzz(world, options);
    execs += result.stats.executions;
    steps += result.stats.total_steps;
    benchmark::DoNotOptimize(result);
  }
  state.counters["schedules/s"] = benchmark::Counter(
      static_cast<double>(execs), benchmark::Counter::kIsRate);
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_FuzzThroughputRetrySilent(benchmark::State& state) {
  // retry-silent at bounded t is explorer-proven correct: pure search.
  run_throughput(state, make_world(*proto::machine_factory("retry-silent"),
                                   model::FaultKind::kSilent, 1, 1, 2));
}
BENCHMARK(BM_FuzzThroughputRetrySilent)->Unit(benchmark::kMillisecond);

void BM_FuzzThroughputStagedSafe(benchmark::State& state) {
  // staged f=1 t=1 n=2 is within the protocol's fault budget: correct.
  run_throughput(state, make_world(*proto::machine_factory("staged",
                                     proto::Params{{"f", 1}, {"t", 1}}),
                                   model::FaultKind::kOverriding, 1, 1, 2));
}
BENCHMARK(BM_FuzzThroughputStagedSafe)->Unit(benchmark::kMillisecond);

// --- Time-to-first-violation ----------------------------------------------

void run_first_violation(benchmark::State& state,
                         const sched::SimWorld& world) {
  std::uint64_t execs = 0;
  std::uint64_t steps = 0;
  std::uint64_t found = 0;
  std::uint64_t witness = 0;
  std::uint64_t shrunk = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::FuzzOptions options;
    options.seed = seed++;
    options.budget.max_units = 5'000'000;  // effectively until found
    const auto result = sched::fuzz(world, options);
    execs += result.stats.executions;
    steps += result.stats.total_steps;
    if (result.violation) {
      ++found;
      witness += result.stats.witness_steps_found;
      shrunk += result.stats.witness_steps_shrunk;
    }
    benchmark::DoNotOptimize(result);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["found"] = static_cast<double>(found) / iters;
  state.counters["execs_to_violation"] = static_cast<double>(execs) / iters;
  state.counters["steps_to_violation"] = static_cast<double>(steps) / iters;
  state.counters["witness_steps"] = static_cast<double>(witness) / iters;
  state.counters["witness_steps_shrunk"] =
      static_cast<double>(shrunk) / iters;
}

void BM_FuzzFirstViolationSingleCas(benchmark::State& state) {
  // Figure 1: one overriding fault breaks single-CAS consensus at n=3.
  run_first_violation(state,
                      make_world(*proto::machine_factory("single-cas"),
                                 model::FaultKind::kOverriding, 1, 1, 3));
}
BENCHMARK(BM_FuzzFirstViolationSingleCas)->Unit(benchmark::kMicrosecond);

void BM_FuzzFirstViolationStaged(benchmark::State& state) {
  // staged f=1 t=1 at n=3 exceeds the protected-process count: faulty.
  run_first_violation(state,
                      make_world(*proto::machine_factory("staged",
                                     proto::Params{{"f", 1}, {"t", 1}}),
                                 model::FaultKind::kOverriding, 1, 1, 3));
}
BENCHMARK(BM_FuzzFirstViolationStaged)->Unit(benchmark::kMicrosecond);

void BM_FuzzFirstViolationLivelock(benchmark::State& state) {
  // retry-silent at t = ∞ livelocks: the witness is a machine-checked
  // cycle, exercising the in-execution revisit detector.
  run_first_violation(
      state, make_world(*proto::machine_factory("retry-silent"),
                        model::FaultKind::kSilent, 1, model::kUnbounded, 2));
}
BENCHMARK(BM_FuzzFirstViolationLivelock)->Unit(benchmark::kMicrosecond);

// --- JSON report mode ------------------------------------------------------

void emit_throughput(util::JsonWriter& w, std::string_view name,
                     const sched::SimWorld& world, std::uint64_t budget) {
  sched::FuzzOptions options;
  options.seed = 1;
  options.budget.max_units = budget;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sched::fuzz(world, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  w.key(name).begin_object();
  w.kv("executions", result.stats.executions);
  w.kv("total_steps", result.stats.total_steps);
  w.kv("unique_states", result.stats.unique_states);
  w.kv("seconds", seconds);
  w.kv("schedules_per_sec",
       seconds > 0 ? static_cast<double>(result.stats.executions) / seconds
                   : 0.0);
  w.kv("steps_per_sec",
       seconds > 0 ? static_cast<double>(result.stats.total_steps) / seconds
                   : 0.0);
  w.end_object();
}

void emit_first_violation(util::JsonWriter& w, std::string_view name,
                          const sched::SimWorld& world,
                          std::uint64_t budget) {
  sched::FuzzOptions options;
  options.seed = 1;
  options.budget.max_units = budget;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sched::fuzz(world, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  w.key(name).begin_object();
  w.kv("found", result.violation.has_value());
  if (result.violation) {
    w.kv("kind", to_string(result.violation->kind));
  }
  w.kv("time_to_first_violation_sec", seconds);
  w.kv("execs_to_violation", result.stats.executions);
  w.kv("steps_to_violation", result.stats.total_steps);
  w.kv("witness_steps", result.stats.witness_steps_found);
  w.kv("witness_steps_shrunk", result.stats.witness_steps_shrunk);
  w.end_object();
}

int write_report(const std::string& path, bool smoke) {
  const std::uint64_t throughput_budget = smoke ? 20'000 : 200'000;
  const std::uint64_t violation_budget = smoke ? 500'000 : 5'000'000;

  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "B4");
  w.kv("smoke", smoke);
  emit_throughput(w, "throughput_retry_silent",
                  make_world(*proto::machine_factory("retry-silent"),
                             model::FaultKind::kSilent, 1, 1, 2),
                  throughput_budget);
  emit_throughput(w, "throughput_staged_safe",
                  make_world(*proto::machine_factory("staged",
                                     proto::Params{{"f", 1}, {"t", 1}}),
                             model::FaultKind::kOverriding, 1, 1, 2),
                  throughput_budget);
  emit_first_violation(w, "first_violation_single_cas",
                       make_world(*proto::machine_factory("single-cas"),
                                  model::FaultKind::kOverriding, 1, 1, 3),
                       violation_budget);
  emit_first_violation(
      w, "first_violation_livelock",
      make_world(*proto::machine_factory("retry-silent"), model::FaultKind::kSilent,
                 1, model::kUnbounded, 2),
      violation_budget);
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << w.str() << "\n";
  std::cout << "B4 report -> " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_report(json_path, smoke);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
