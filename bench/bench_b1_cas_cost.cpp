// B1 — cost of the fault machinery: raw std::atomic CAS vs AtomicCas vs
// FaultyCas per fault kind and policy.  Single-threaded microbenchmark;
// the point is the overhead of the injection layer, not contention.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "objects/atomic_cas.hpp"

namespace {

using ff::model::FaultKind;
using ff::model::Value;

void BM_RawAtomicCas(benchmark::State& state) {
  std::atomic<std::uint64_t> word{0};
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint64_t expected = i;
    word.compare_exchange_strong(expected, i + 1);
    benchmark::DoNotOptimize(expected);
    ++i;
  }
}
BENCHMARK(BM_RawAtomicCas);

void BM_AtomicCasObject(benchmark::State& state) {
  ff::objects::AtomicCas object(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const Value old = object.cas(Value::of(i), Value::of(i + 1), 0);
    benchmark::DoNotOptimize(old);
    ++i;
  }
}
BENCHMARK(BM_AtomicCasObject);

void BM_FaultyCas(benchmark::State& state) {
  const auto kind = static_cast<FaultKind>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 100.0;

  ff::faults::FaultBudget budget(1, 1, ff::model::kUnbounded);
  std::unique_ptr<ff::faults::FaultPolicy> policy;
  if (rate <= 0.0) {
    policy = std::make_unique<ff::faults::NeverFault>();
  } else if (rate >= 1.0) {
    policy = std::make_unique<ff::faults::AlwaysFault>();
  } else {
    policy = std::make_unique<ff::faults::ProbabilisticFault>(rate, 42);
  }
  ff::faults::FaultyCas object(0, kind, policy.get(), &budget);

  std::uint64_t i = 0;
  for (auto _ : state) {
    const Value old = object.cas(Value::of(i), Value::of(i + 1), 0);
    benchmark::DoNotOptimize(old);
    ++i;
  }
  state.SetLabel(std::string(ff::model::to_string(kind)) + " rate=" +
                 std::to_string(state.range(1)) + "%");
}
BENCHMARK(BM_FaultyCas)
    ->ArgsProduct({{static_cast<long>(FaultKind::kOverriding),
                    static_cast<long>(FaultKind::kSilent),
                    static_cast<long>(FaultKind::kInvisible),
                    static_cast<long>(FaultKind::kArbitrary)},
                   {0, 10, 100}});

}  // namespace

BENCHMARK_MAIN();
