// E6 — Section 5.2 closing remark: f CAS objects with a bounded number of
// overriding faults each have consensus number exactly f+1, so faulty
// CAS ensembles populate EVERY level of the Herlihy consensus hierarchy.
//
// Regenerates the f × n grid of verdicts and the resulting consensus
// numbers.  Cells are proven exhaustively where feasible; larger cells
// use the covering adversary (for violations) and randomized walks (for
// stress evidence), with the method reported per cell.
#include <iostream>
#include <numeric>

#include "hierarchy/consensus_number.hpp"
#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const ff::util::Cli cli(argc, argv);
  const auto max_f = static_cast<std::uint32_t>(cli.get_uint("max-f", 4));
  const auto t = static_cast<std::uint32_t>(cli.get_uint("t", 1));

  std::cout << "=== E6: the Herlihy hierarchy from faulty CAS ensembles "
               "(Section 5.2) ===\n\n";

  ff::hierarchy::ProbeOptions options;
  options.explorer_max_states = cli.get_uint("state-cap", 1'500'000);
  options.walks = cli.get_uint("walks", 200);

  ff::util::Table grid({"f", "t", "n", "verdict", "method", "effort",
                        "detail"});
  ff::util::Table numbers({"f (faulty objects)", "t", "consensus number",
                           "theory (f+1)"});
  for (std::uint32_t f = 1; f <= max_f; ++f) {
    const auto estimate = ff::hierarchy::estimate_staged_consensus_number(
        f, t, f + 3, options);
    for (const auto& cell : estimate.cells) {
      grid.add(cell.f, cell.t, cell.n,
               std::string(ff::hierarchy::to_string(cell.evidence)),
               cell.method, cell.effort, cell.detail);
    }
    numbers.add(f, t, estimate.consensus_number, f + 1);
  }
  std::cout << grid << '\n' << numbers
            << "\nEach level n = f+1 of the hierarchy is realized by an "
               "ensemble of f bounded-fault CAS objects.\n\n";

  // Level 2, two ways: the textbook CORRECT test&set bit vs one
  // bounded-overriding-FAULTY CAS object — same consensus number, and
  // both refuted identically at n = 3.
  ff::util::Table level2({"object at level 2", "n=2", "n=3"});
  auto verdict = [](const ff::sched::MachineFactory& factory,
                    ff::sched::SimConfig config, std::uint32_t n) {
    std::vector<std::uint64_t> inputs(n);
    std::iota(inputs.begin(), inputs.end(), 10);
    config.num_registers = factory.registers_used();
    const ff::sched::SimWorld world(config, factory, inputs);
    const auto result = ff::sched::explore(world);
    return std::string(result.violation
                           ? ff::sched::to_string(result.violation->kind)
                           : (result.complete ? "OK (proven)" : "capped"));
  };
  {
    ff::sched::SimConfig clean;
    clean.num_objects = 1;
    clean.kind = ff::model::FaultKind::kNone;
    level2.add("correct test&set bit",
               verdict(*ff::proto::machine_factory(
                           "tas", ff::proto::Params{{"n", 2}}),
                       clean, 2),
               verdict(*ff::proto::machine_factory(
                           "tas", ff::proto::Params{{"n", 3}}),
                       clean, 3));
    ff::sched::SimConfig faulty;
    faulty.num_objects = 1;
    faulty.kind = ff::model::FaultKind::kOverriding;
    faulty.t = 1;
    level2.add("faulty CAS (1 overriding fault), staged protocol",
               verdict(*ff::proto::machine_factory(
                           "staged", ff::proto::Params{{"f", 1}, {"t", 1}}),
                       faulty, 2),
               verdict(*ff::proto::machine_factory(
                           "staged", ff::proto::Params{{"f", 1}, {"t", 1}}),
                       faulty, 3));
  }
  std::cout << "Level 2 from two directions (weak-but-correct vs "
               "strong-but-faulty):\n"
            << level2 << '\n';
  return 0;
}
