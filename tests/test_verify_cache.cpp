// The canonical job layer and its persistent census cache
// (verify/job.hpp, verify/cache.hpp, verify/run.hpp): canonical-JSON
// round-trips, strict validation, the semantic/exec fingerprint split,
// warm hits that are BIT-IDENTICAL to the cold Report, soundness under
// entry tampering and corruption, concurrent same-key publication, and
// cross-engine census parity when every engine runs the same JobSpec.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "model/fault_kind.hpp"
#include "proto/registry.hpp"
#include "verify/cache.hpp"
#include "verify/run.hpp"

namespace ff {
namespace {

namespace fs = std::filesystem;

using model::FaultKind;

/// The tiny reference job most tests run: single-CAS under one
/// overriding fault at n = 2 — a 7-state census, so every cold run is
/// microseconds.
verify::JobSpec tiny_spec() {
  verify::JobSpec spec;
  spec.protocol = "single-cas";
  spec.kind = FaultKind::kOverriding;
  spec.t = 1;
  spec.processes = 2;
  spec.stop_at_first_violation = false;
  return spec;
}

/// A fresh cache directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir.string();
}

std::string entry_path(const verify::Cache& cache,
                       const verify::JobSpec& spec) {
  return (fs::path(cache.dir()) /
          (verify::job_fingerprint(spec.canonicalized()).hex() + ".json"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void dump(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---------------------------------------------------------------------------
// Canonical JSON and fingerprints.
// ---------------------------------------------------------------------------

TEST(JobSpec, CanonicalJsonRoundTripsForEverySimulableProtocol) {
  // Equal jobs must serialize to equal bytes, and parse() must be the
  // exact inverse — for every registered protocol, params normalized
  // against its schema.
  std::size_t checked = 0;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    verify::JobSpec spec = tiny_spec();
    spec.protocol = info.name;
    const std::string json = spec.canonical_json();
    const verify::JobSpec reparsed = verify::JobSpec::parse(json);
    EXPECT_EQ(json, reparsed.canonical_json()) << info.name;
    EXPECT_EQ(spec.canonicalized(), reparsed) << info.name;
    EXPECT_EQ(verify::job_fingerprint(spec),
              verify::job_fingerprint(reparsed))
        << info.name;
    ++checked;
  }
  EXPECT_GE(checked, 8u);
}

TEST(JobSpec, CanonicalizationNormalizesParams) {
  // Schema defaults are filled in and unknown keys dropped, so "staged"
  // with no params and "staged" with an irrelevant key fingerprint the
  // same as the schema-default spelling.
  verify::JobSpec defaults = tiny_spec();
  defaults.protocol = "staged";
  verify::JobSpec noisy = defaults;
  noisy.params = {{"no-such-param", 99}};
  EXPECT_EQ(defaults.canonical_json(), noisy.canonical_json());
  EXPECT_EQ(verify::job_fingerprint(defaults), verify::job_fingerprint(noisy));
}

TEST(JobSpec, ExecHintsAreNotFingerprinted) {
  // Thread/shard counts, spill plumbing and table pre-sizing cannot
  // change the census, so they round-trip through the "exec" section but
  // never key the cache.
  verify::JobSpec base = tiny_spec();
  verify::JobSpec tuned = base;
  tuned.threads = 16;
  tuned.shard_count = 8;
  tuned.batch_lanes = 64;
  tuned.spill_dir = "/tmp/elsewhere";
  tuned.mem_limit_bytes = 1 << 20;
  tuned.expected_states = 12345;
  EXPECT_EQ(verify::job_fingerprint(base), verify::job_fingerprint(tuned));
  // ...but the hints are not lost: the document round-trips them.
  const verify::JobSpec reparsed =
      verify::JobSpec::parse(tuned.canonical_json());
  EXPECT_EQ(reparsed.threads, 16u);
  EXPECT_EQ(reparsed.spill_dir, "/tmp/elsewhere");
  EXPECT_EQ(reparsed.expected_states, 12345u);
}

TEST(JobSpec, SemanticEditsChangeTheFingerprint) {
  const verify::JobSpec base = tiny_spec();
  const auto fp = verify::job_fingerprint(base);
  for (const auto& edit : std::vector<verify::JobSpec>{
           [] { auto s = tiny_spec(); s.t = 2; return s; }(),
           [] { auto s = tiny_spec(); s.kind = FaultKind::kSilent; return s; }(),
           [] { auto s = tiny_spec(); s.processes = 3; return s; }(),
           [] { auto s = tiny_spec(); s.crash_budget = 1; return s; }(),
           [] { auto s = tiny_spec(); s.symmetry_reduction = false; return s; }(),
           [] { auto s = tiny_spec(); s.engine = verify::Engine::kParallel; return s; }(),
           [] { auto s = tiny_spec(); s.protocol = "staged"; return s; }(),
       }) {
    EXPECT_NE(fp, verify::job_fingerprint(edit)) << edit.canonical_json();
  }
}

TEST(JobSpec, ValidationRejectsIllegalCombinations) {
  {
    verify::JobSpec spec = tiny_spec();
    spec.engine = verify::Engine::kFrontier;  // sleep_sets defaults true
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.sleep_sets = false;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    verify::JobSpec spec = tiny_spec();
    spec.protocol = "no-such-protocol";
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    verify::JobSpec spec = tiny_spec();
    spec.processes = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    verify::JobSpec spec = tiny_spec();
    spec.engine = verify::Engine::kStress;  // kind != none: simulator-only
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.kind = FaultKind::kNone;
    spec.t = 0;
    EXPECT_NO_THROW(spec.validate());
    spec.crash_budget = 1;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  // Registered but not simulable: resolvable by name, rejected as a job.
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (info.simulable) continue;
    verify::JobSpec spec = tiny_spec();
    spec.protocol = info.name;
    EXPECT_THROW(spec.validate(), std::invalid_argument) << info.name;
  }
}

// ---------------------------------------------------------------------------
// The persistent cache: hits, misses, soundness.
// ---------------------------------------------------------------------------

TEST(VerifyCache, WarmHitIsBitIdenticalWithZeroFreshStates) {
  verify::Cache cache(fresh_dir("ffvc_warm"));
  const verify::JobSpec spec = tiny_spec();

  const verify::RunOutcome cold = verify::run(spec, &cache);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.fresh_states_expanded, 0u);

  const verify::RunOutcome warm = verify::run(spec, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.fresh_states_expanded, 0u);
  EXPECT_EQ(warm.report, cold.report);
  EXPECT_EQ(warm.report.to_json(), cold.report.to_json());
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.unreadable, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(VerifyCache, ReportJsonRoundTripsBitForBit) {
  // The stability contract to_json()/from_json() — including a
  // violation witness and the frontier section.
  verify::Cache cache(fresh_dir("ffvc_roundtrip"));
  for (verify::JobSpec spec :
       {tiny_spec(), [] {
          auto s = tiny_spec();
          s.engine = verify::Engine::kFrontier;
          s.sleep_sets = false;
          return s;
        }()}) {
    const verify::Report report = verify::run(spec, &cache).report;
    const verify::Report reparsed = verify::Report::parse(report.to_json());
    EXPECT_EQ(report, reparsed);
    EXPECT_EQ(report.to_json(), reparsed.to_json());
  }
}

TEST(VerifyCache, OptionEditsMissAndCoexist) {
  // A semantic edit is a different key: it must miss, run fresh, and
  // leave the original entry untouched.
  verify::Cache cache(fresh_dir("ffvc_edits"));
  const verify::JobSpec base = tiny_spec();
  verify::JobSpec wider = base;
  wider.processes = 3;

  EXPECT_FALSE(verify::run(base, &cache).cache_hit);
  EXPECT_FALSE(verify::run(wider, &cache).cache_hit);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_TRUE(verify::run(base, &cache).cache_hit);
  EXPECT_TRUE(verify::run(wider, &cache).cache_hit);
}

TEST(VerifyCache, TamperedProgramFingerprintIsNeverServed) {
  // The soundness re-check: even with the right 128-bit key, an entry
  // whose stored program fingerprint does not match the freshly
  // resolved IR must be a miss (and gets overwritten by the fresh run).
  verify::Cache cache(fresh_dir("ffvc_tamper"));
  const verify::JobSpec spec = tiny_spec();
  (void)verify::run(spec, &cache);

  const std::string path = entry_path(cache, spec);
  std::string text = slurp(path);
  const std::string key = "\"program_fingerprint\":\"";
  const auto at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  for (std::size_t i = 0; i < 16; ++i) text[at + key.size() + i] = '0';
  dump(path, text);

  const verify::RunOutcome outcome = verify::run(spec, &cache);
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_GT(outcome.fresh_states_expanded, 0u);
  // The fresh run re-published a sound entry; the next run hits again.
  EXPECT_TRUE(verify::run(spec, &cache).cache_hit);
}

TEST(VerifyCache, CorruptEntryIsAMissNeverACrash) {
  verify::Cache cache(fresh_dir("ffvc_corrupt"));
  const verify::JobSpec spec = tiny_spec();
  const verify::RunOutcome cold = verify::run(spec, &cache);
  const std::string path = entry_path(cache, spec);

  // Truncated mid-document, garbage, empty, wrong format version.
  for (const std::string& bad :
       {slurp(path).substr(0, 40), std::string("{not json"), std::string(),
        std::string("{\"ff_cache_version\":999}")}) {
    dump(path, bad);
    EXPECT_EQ(cache.stats().unreadable, 1u);
    const verify::RunOutcome outcome = verify::run(spec, &cache);
    EXPECT_FALSE(outcome.cache_hit);
    // The fresh run redid the search (its wall time differs, the census
    // cannot) and healed the entry in passing.
    EXPECT_TRUE(census_equal(outcome.report, cold.report));
    EXPECT_TRUE(verify::run(spec, &cache).cache_hit);
  }
}

TEST(VerifyCache, GcEvictsOnlyTheUnreadable) {
  verify::Cache cache(fresh_dir("ffvc_gc"));
  const verify::JobSpec base = tiny_spec();
  verify::JobSpec staged = tiny_spec();
  staged.protocol = "staged";
  (void)verify::run(base, &cache);
  (void)verify::run(staged, &cache);

  dump(entry_path(cache, staged), "{broken");
  EXPECT_EQ(cache.gc(), 1u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.unreadable, 0u);
  EXPECT_TRUE(verify::run(base, &cache).cache_hit);
  EXPECT_FALSE(verify::run(staged, &cache).cache_hit);
}

TEST(VerifyCache, InvalidateEvictsOneProtocol) {
  verify::Cache cache(fresh_dir("ffvc_invalidate"));
  const verify::JobSpec base = tiny_spec();
  verify::JobSpec staged = tiny_spec();
  staged.protocol = "staged";
  verify::JobSpec staged_wide = staged;
  staged_wide.processes = 3;
  (void)verify::run(base, &cache);
  (void)verify::run(staged, &cache);
  (void)verify::run(staged_wide, &cache);

  EXPECT_EQ(cache.invalidate("staged"), 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(verify::run(base, &cache).cache_hit);
  EXPECT_FALSE(verify::run(staged, &cache).cache_hit);
}

TEST(VerifyCache, ConcurrentSameKeyWritersConverge) {
  // Atomic write-rename: racing writers of the same key leave exactly
  // one loadable, byte-valid entry (all wrote identical content).
  const std::string dir = fresh_dir("ffvc_race");
  const verify::JobSpec spec = tiny_spec();
  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&dir, &spec] {
      verify::Cache cache(dir);
      (void)verify::run(spec, &cache);
    });
  }
  for (auto& t : writers) t.join();

  verify::Cache cache(dir);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.unreadable, 0u);
  const verify::RunOutcome warm = verify::run(spec, &cache);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(VerifyCache, UncacheableEnginesNeverTouchTheStore) {
  verify::Cache cache(fresh_dir("ffvc_uncacheable"));
  // Wall-clock fuzz deadline: nondeterministic truncation.
  verify::JobSpec timed = tiny_spec();
  timed.engine = verify::Engine::kFuzz;
  timed.fuzz_steps = 0;
  timed.fuzz_millis = 10;
  EXPECT_FALSE(timed.cacheable());
  EXPECT_FALSE(verify::run(timed, &cache).cache_hit);
  EXPECT_EQ(cache.stats().entries, 0u);
  // Real-thread stress trials: OS scheduling.
  verify::JobSpec stress = tiny_spec();
  stress.engine = verify::Engine::kStress;
  stress.kind = FaultKind::kNone;
  stress.t = 0;
  stress.trials = 4;
  EXPECT_FALSE(stress.cacheable());
  EXPECT_FALSE(verify::run(stress, &cache).cache_hit);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(VerifyCache, DeterministicFuzzIsCacheable) {
  // A step-budgeted fuzz run is a pure function of the spec: the second
  // run must be a hit with the identical campaign summary.
  verify::Cache cache(fresh_dir("ffvc_fuzz"));
  verify::JobSpec spec = tiny_spec();
  spec.engine = verify::Engine::kFuzz;
  spec.fuzz_steps = 5'000;
  ASSERT_TRUE(spec.cacheable());

  const verify::RunOutcome cold = verify::run(spec, &cache);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_TRUE(cold.report.fuzz.has_value());
  const verify::RunOutcome warm = verify::run(spec, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.report, cold.report);
}

// ---------------------------------------------------------------------------
// Engine parity through the job layer.
// ---------------------------------------------------------------------------

TEST(VerifyRun, EnginesAgreeOnTheCensusForTheSameJob) {
  // dfs, parallel and frontier runs of the same JobSpec must produce
  // census_equal Reports — the job layer's restatement of the
  // differential suites' core invariant.
  verify::JobSpec dfs = tiny_spec();
  dfs.protocol = "staged";
  dfs.processes = 3;
  verify::JobSpec par = dfs;
  par.engine = verify::Engine::kParallel;
  par.threads = 4;
  verify::JobSpec fro = dfs;
  fro.engine = verify::Engine::kFrontier;
  fro.threads = 4;
  fro.sleep_sets = false;

  const verify::Report a = verify::run(dfs).report;
  const verify::Report b = verify::run(par).report;
  const verify::Report c = verify::run(fro).report;
  EXPECT_TRUE(census_equal(a, b));
  EXPECT_TRUE(census_equal(a, c));
  EXPECT_TRUE(a.complete && b.complete && c.complete);
  ASSERT_TRUE(c.frontier.has_value());
  EXPECT_GT(c.frontier->waves, 0u);
}

}  // namespace
}  // namespace ff
