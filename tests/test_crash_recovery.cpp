// Differential crash-test suite for the crash–recovery fault model.
//
// Four pillars:
//   1. Budget 0 is a no-op: the census of every simulable registry
//      protocol with crash_budget = 0 equals a crash-free oracle — the
//      frozen pre-change legacy machine where one exists, the protocol's
//      non-recoverable original program for the recoverable variants
//      (identical semantics when crashes cannot happen).
//   2. The crash-branch census is identical across the sequential,
//      parallel and reduced explorers (sleep sets preserve every count;
//      symmetry preserves every orbit-invariant property).
//   3. Crash witnesses strictly replay and shrink to 1-minimal
//      schedules via shrink_witness — and the minimal recoverable-cas
//      disagreement witness necessarily contains a crash.
//   4. A recovered process never observes stale volatile locals:
//      statically (finalize() rejects a volatile local live at the
//      recovery entry) and dynamically (the pre-crash value is wiped
//      from the machine encoding the moment the crash branch is taken).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "explore_diff.hpp"
#include "proto/machine.hpp"
#include "proto/programs.hpp"
#include "proto/registry.hpp"
#include "sched/fuzzer.hpp"

namespace ff {
namespace {

using sched::Choice;
using sched::ExploreOptions;
using sched::ViolationKind;

sched::SimWorld make_crash_world(const sched::MachineFactory& factory,
                                 model::FaultKind kind, std::uint32_t t,
                                 std::uint32_t n,
                                 std::uint32_t crash_budget) {
  sched::SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = kind == model::FaultKind::kNone ? 0 : t;
  config.crash_budget = crash_budget;
  return sched::SimWorld(config, factory, testutil::iota_inputs(n));
}

void expect_same_census(const sched::ExploreResult& a,
                        const sched::ExploreResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.complete, b.complete) << label;
  EXPECT_EQ(a.states_visited, b.states_visited) << label;
  EXPECT_EQ(a.terminal_states, b.terminal_states) << label;
  EXPECT_EQ(a.violations_by_kind, b.violations_by_kind) << label;
  EXPECT_EQ(a.agreed_values, b.agreed_values) << label;
}

// ---------------------------------------------------------------------------
// 1. crash_budget = 0 reproduces the pre-change census exactly.

/// Crash-free oracle factory for each simulable registry protocol (at
/// its default parameters): the retired pre-change machine for the six
/// protocols that have one, the non-recoverable original program for the
/// recoverable variants.  The test fails when a registry protocol has no
/// oracle here, so new protocols must register a crash-free twin.
std::map<std::string, std::shared_ptr<const sched::MachineFactory>>
crash_free_oracles() {
  return {
      {"single-cas", std::make_shared<consensus::SingleCasFactory>()},
      {"f-plus-one", std::make_shared<consensus::FPlusOneFactory>(2)},
      {"staged", std::make_shared<consensus::StagedFactory>(1, 1)},
      {"retry-silent", std::make_shared<consensus::RetrySilentFactory>()},
      {"announce-cas", std::make_shared<consensus::AnnounceCasFactory>(2)},
      {"tas", std::make_shared<consensus::TasFactory>(2)},
      // The recoverable programs differ from their originals only in
      // local persistence and the recovery label — both invisible when
      // no crash can occur.
      {"recoverable-cas",
       std::make_shared<proto::IrMachineFactory>(proto::single_cas_program())},
      {"recoverable-staged",
       std::make_shared<proto::IrMachineFactory>(proto::staged_program(1, 1))},
  };
}

TEST(CrashBudgetZero, CensusEqualsPreChangeOracleForEveryRegistryProtocol) {
  const auto oracles = crash_free_oracles();
  for (const proto::ProtocolInfo& info :
       proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    const auto oracle = oracles.find(info.name);
    ASSERT_NE(oracle, oracles.end())
        << "registry protocol `" << info.name
        << "` has no crash-free oracle — add one to crash_free_oracles()";
    const auto factory = proto::machine_factory(info.name);

    for (const auto& [kind, t] :
         std::vector<std::pair<model::FaultKind, std::uint32_t>>{
             {model::FaultKind::kNone, 0},
             {model::FaultKind::kOverriding, 1},
             {model::FaultKind::kSilent, 1}}) {
      const std::string label = info.name + "/" +
                                std::string(model::to_string(kind)) +
                                "/budget0";
      const sched::SimWorld with_plumbing =
          make_crash_world(*factory, kind, t, 2, /*crash_budget=*/0);
      const sched::SimWorld crash_free =
          make_crash_world(*oracle->second, kind, t, 2, /*crash_budget=*/0);

      ExploreOptions options;
      options.stop_at_first_violation = false;
      expect_same_census(sched::explore(with_plumbing, options),
                         sched::explore(crash_free, options), label);
    }
  }
}

TEST(CrashBudgetZero, EncodingLayoutGainsExactlyOneWordPerProcessWithBudget) {
  const auto factory = proto::machine_factory("recoverable-cas");
  const std::uint32_t n = 2;
  const auto without =
      make_crash_world(*factory, model::FaultKind::kNone, 0, n, 0).encode();
  const auto with =
      make_crash_world(*factory, model::FaultKind::kNone, 0, n, 1).encode();
  // Budget 0 omits the per-process crashes_used word entirely, so the
  // crash-free encoding — and with it every pre-change fingerprint — is
  // reproduced bit for bit.
  EXPECT_EQ(with.size(), without.size() + n);
}

// ---------------------------------------------------------------------------
// 2. Crash-branch census identical across explorers and reductions.

struct CrashGridCase {
  std::string name;
  model::FaultKind kind;
  std::uint32_t t;
  std::uint32_t budget;
};

TEST(CrashCensus, IdenticalAcrossSequentialParallelAndReducedExplorers) {
  for (const char* protocol : {"recoverable-cas", "recoverable-staged"}) {
    const auto factory = proto::machine_factory(protocol);
    for (const CrashGridCase& gc : std::vector<CrashGridCase>{
             {"none/b1", model::FaultKind::kNone, 0, 1},
             {"none/b2", model::FaultKind::kNone, 0, 2},
             {"overriding/t1/b1", model::FaultKind::kOverriding, 1, 1}}) {
      const std::string label = std::string(protocol) + "/" + gc.name;
      const sched::SimWorld world =
          make_crash_world(*factory, gc.kind, gc.t, 2, gc.budget);

      ExploreOptions unreduced;
      unreduced.stop_at_first_violation = false;
      unreduced.symmetry_reduction = false;
      unreduced.sleep_sets = false;
      const auto base = sched::explore(world, unreduced);
      EXPECT_TRUE(base.complete) << label;

      // Sleep sets prune transitions only: every count is preserved.
      ExploreOptions sleep_only = unreduced;
      sleep_only.sleep_sets = true;
      expect_same_census(base, sched::explore(world, sleep_only),
                         label + " [sleep-sets]");

      // Symmetry folds states into orbits: counts become per-orbit, but
      // every checked property is orbit-invariant.
      ExploreOptions reduced = unreduced;
      reduced.symmetry_reduction = true;
      reduced.sleep_sets = true;
      const auto sym = sched::explore(world, reduced);
      EXPECT_EQ(base.complete, sym.complete) << label;
      EXPECT_EQ(base.agreed_values, sym.agreed_values) << label;
      EXPECT_EQ(base.violation.has_value(), sym.violation.has_value())
          << label;
      for (const ViolationKind kind :
           {ViolationKind::kInconsistent, ViolationKind::kInvalid,
            ViolationKind::kStalled, ViolationKind::kNontermination}) {
        EXPECT_EQ(base.violations_of(kind) > 0, sym.violations_of(kind) > 0)
            << label << " kind=" << sched::to_string(kind);
      }

      // The parallel explorer must agree with its sequential twin on
      // every graph-derived quantity, reductions on and off.
      for (const ExploreOptions& options : {unreduced, reduced}) {
        sched::ParallelExploreOptions popts;
        popts.explore = options;
        popts.num_threads = 4;
        const auto seq = sched::explore(world, options);
        const auto par = sched::parallel_explore(world, popts);
        expect_same_census(seq, par, label + " [parallel]");
        if (par.violation) {
          testutil::expect_witness_reproduces(world, *par.violation, label);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Crash witnesses strictly replay and shrink to 1-minimal.

TEST(CrashWitness, ExplorerWitnessReplaysAndShrinksTo1Minimal) {
  const auto factory = proto::machine_factory("recoverable-cas");
  const sched::SimWorld world = make_crash_world(
      *factory, model::FaultKind::kOverriding, 1, 2, /*crash_budget=*/1);

  const auto result = sched::explore(world, {});
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent);

  const std::vector<Choice>& schedule = result.violation->schedule;
  EXPECT_EQ(sched::classify_schedule(world, schedule),
            ViolationKind::kInconsistent);
  testutil::expect_witness_reproduces(world, *result.violation,
                                      "recoverable-cas crash witness");

  const std::vector<Choice> shrunk =
      sched::shrink_witness(world, schedule, ViolationKind::kInconsistent);
  EXPECT_LE(shrunk.size(), schedule.size());
  EXPECT_EQ(sched::classify_schedule(world, shrunk),
            ViolationKind::kInconsistent);

  // 1-minimality: dropping ANY single choice destroys the violation.
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    std::vector<Choice> dropped = shrunk;
    dropped.erase(dropped.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_NE(sched::classify_schedule(world, dropped),
              ViolationKind::kInconsistent)
        << "witness not 1-minimal: choice " << i << " is removable";
  }

  // The disagreement needs the crash: budget 0 explores clean (pillar 1),
  // so every minimal witness must spend crash budget.
  EXPECT_TRUE(std::any_of(shrunk.begin(), shrunk.end(),
                          [](const Choice& c) { return c.crash; }))
      << "minimal recoverable-cas witness lost its crash step";
}

TEST(CrashWitness, FuzzerFindsRepliesAndShrinksCrashViolation) {
  const auto factory = proto::machine_factory("recoverable-cas");
  const sched::SimWorld world = make_crash_world(
      *factory, model::FaultKind::kOverriding, 1, 2, /*crash_budget=*/1);

  sched::FuzzOptions options;
  options.seed = 0xC0FFEEu;
  options.stop_at_first_violation = true;
  options.shrink = true;
  const auto result = sched::fuzz(world, options);

  ASSERT_TRUE(result.violation.has_value());
  ASSERT_TRUE(result.original_violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent);
  // Both the raw discovery and the shrunk witness strictly replay.
  EXPECT_EQ(
      sched::classify_schedule(world, result.original_violation->schedule),
      ViolationKind::kInconsistent);
  EXPECT_EQ(sched::classify_schedule(world, result.violation->schedule),
            ViolationKind::kInconsistent);
  EXPECT_LE(result.violation->schedule.size(),
            result.original_violation->schedule.size());
}

// ---------------------------------------------------------------------------
// 4. A recovered process never observes stale locals.

/// Probe program: volatile `st` is set to 7 strictly before the recovery
/// label and never read again, so it is dead at the recovery entry and
/// finalize() accepts it — but its pre-crash value still sits in machine
/// state (and the encoding) at the CAS pause point.  The crash must wipe
/// it; a factory or machine that recycled pre-crash state would leak the
/// 7 into the recovered encoding and corrupt state memoization.
std::shared_ptr<const proto::Program> stale_local_probe_program() {
  proto::ProgramBuilder b("stale-probe");
  const auto st = b.local("st", b.cst(0));
  const auto out = b.persistent("out", b.input());
  const auto r = b.scratch("r");
  b.emit(st);
  b.emit(out);
  b.set(st, b.cst(7));
  const auto retry = b.label();
  b.bind(retry);
  b.recover_at(retry);
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.halt(b.ref(out));
  return b.finalize();
}

TEST(CrashRecovery, RecoveredProcessNeverObservesStaleLocals) {
  const proto::IrMachineFactory factory(stale_local_probe_program());
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kNone;
  config.t = 0;
  config.crash_budget = 1;
  sched::SimWorld world(config, factory, {5});

  // Paused at the CAS: st carries its pre-crash value 7 (and nothing
  // else in the encoding is 7 — input is 5, the object holds bottom).
  const auto before = world.encode();
  const auto it = std::find(before.begin(), before.end(), 7u);
  ASSERT_NE(it, before.end());
  const auto st_index =
      static_cast<std::size_t>(std::distance(before.begin(), it));
  EXPECT_EQ(std::count(before.begin(), before.end(), 7u), 1);

  // Take the crash branch.
  const auto enabled = world.enabled();
  const auto crash = std::find_if(enabled.begin(), enabled.end(),
                                  [](const Choice& c) { return c.crash; });
  ASSERT_NE(crash, enabled.end());
  world.apply(*crash);

  // Same layout, but the stale 7 is gone: the recovered process starts
  // from wiped volatile state.
  const auto after = world.encode();
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after[st_index], 0u);
  EXPECT_EQ(std::count(after.begin(), after.end(), 7u), 0);

  // And the recovered incarnation still finishes and decides its own
  // (persistent) proposal.
  while (!world.terminal()) {
    const auto choices = world.enabled();
    ASSERT_FALSE(choices.empty());
    const auto clean =
        std::find_if(choices.begin(), choices.end(),
                     [](const Choice& c) { return !c.fault && !c.crash; });
    ASSERT_NE(clean, choices.end());
    world.apply(*clean);
  }
  const auto decisions = world.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  ASSERT_TRUE(decisions[0].has_value());
  EXPECT_EQ(*decisions[0], 5u);
}

TEST(CrashRecovery, FinalizeRejectsVolatileLocalLiveAtRecovery) {
  proto::ProgramBuilder b("stale-read");
  const auto st = b.local("st", b.cst(0));
  const auto out = b.persistent("out", b.input());
  const auto r = b.scratch("r");
  b.emit(st);
  b.emit(out);
  b.set(st, b.cst(7));
  const auto retry = b.label();
  b.bind(retry);
  b.recover_at(retry);
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  // Reading st after the recovery label makes it live at the entry: a
  // recovered process would observe 0 where the first incarnation saw 7.
  b.halt(b.add(b.ref(out), b.ref(st)));
  EXPECT_THROW((void)b.finalize(), std::invalid_argument);
}

// Exhaustive crash-only sanity: recoverable protocols stay correct under
// crashes alone, at budgets 1 and 2 (complete proofs, no violation).
TEST(CrashRecovery, RecoverableProtocolsHoldUnderCrashesAlone) {
  for (const char* protocol : {"recoverable-cas", "recoverable-staged"}) {
    const auto factory = proto::machine_factory(protocol);
    for (const std::uint32_t budget : {1u, 2u}) {
      const sched::SimWorld world =
          make_crash_world(*factory, model::FaultKind::kNone, 0, 2, budget);
      ExploreOptions options;
      options.stop_at_first_violation = false;
      const auto result = sched::explore(world, options);
      EXPECT_TRUE(result.complete) << protocol << " budget=" << budget;
      EXPECT_EQ(result.violations_found, 0u)
          << protocol << " budget=" << budget;
    }
  }
}

}  // namespace
}  // namespace ff
