// Differential golden suite for the single-source protocol IR.
//
// The retired hand-written machines and thread protocols (tests/legacy/)
// are the oracles: for every protocol the IR definition must be
// OBSERVATIONALLY IDENTICAL, and the bar is deliberately bit-for-bit —
//   * a lockstep walk of the full reachable state space asserts the
//     SimWorld encodings (and the enabled choice sets) match at EVERY
//     state, so censuses cannot agree by coincidence;
//   * full-space censuses must match with the reductions on and off;
//   * a machine-level lockstep drives both StepMachines through a value
//     domain and additionally pins the DYNAMIC half of encode()
//     soundness: the encoding determines the paused pc and pending op
//     (the static half is finalize()'s liveness proof, DESIGN.md §3e);
//   * real-thread stress campaigns must reproduce the legacy verdicts
//     seed for seed (full report equality where the step counts are
//     schedule-independent);
//   * the registry's DERIVED object/register counts must equal the
//     legacy factories' hand-maintained constants — this pins the fix
//     for AnnounceCas/Tas-style factories silently inheriting
//     registers_used() = 0.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "explore_diff.hpp"
#include "faults/bank.hpp"
#include "faults/policy.hpp"
#include "faults/relaxed_queue.hpp"
#include "legacy/f_plus_one.hpp"
#include "legacy/machines.hpp"
#include "legacy/retry_silent.hpp"
#include "legacy/single_cas.hpp"
#include "legacy/staged.hpp"
#include "legacy/tas.hpp"
#include "model/tolerance.hpp"
#include "objects/atomic_cas.hpp"
#include "objects/register.hpp"
#include "proto/queue_client.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

// ---------------------------------------------------------------------------
// The legacy-vs-IR pairing grid.
// ---------------------------------------------------------------------------

struct DiffCase {
  std::string label;
  std::shared_ptr<const sched::MachineFactory> legacy;
  std::string proto_name;
  proto::Params params;
  FaultKind kind = FaultKind::kOverriding;
  std::uint32_t t = 1;
  std::uint32_t n = 2;
};

std::vector<DiffCase> diff_grid() {
  using consensus::AnnounceCasFactory;
  using consensus::FPlusOneFactory;
  using consensus::RetrySilentFactory;
  using consensus::SingleCasFactory;
  using consensus::StagedFactory;
  using consensus::TasFactory;

  std::vector<DiffCase> grid;
  const auto tag = [](std::uint32_t t) {
    return t == kUnbounded ? std::string("inf") : std::to_string(t);
  };

  for (const std::uint32_t n : {2u, 3u}) {
    for (const FaultKind kind : {FaultKind::kOverriding, FaultKind::kSilent}) {
      for (const std::uint32_t t : {1u, kUnbounded}) {
        grid.push_back({"single-cas/" + std::string(model::to_string(kind)) +
                            "/t" + tag(t) + "/n" + std::to_string(n),
                        std::make_shared<SingleCasFactory>(), "single-cas",
                        {}, kind, t, n});
      }
    }
  }
  grid.push_back({"single-cas/arbitrary/t1/n2",
                  std::make_shared<SingleCasFactory>(), "single-cas", {},
                  FaultKind::kArbitrary, 1, 2});
  grid.push_back({"single-cas/nonresponsive/t1/n2",
                  std::make_shared<SingleCasFactory>(), "single-cas", {},
                  FaultKind::kNonresponsive, 1, 2});

  for (const auto& [t, n] :
       std::vector<std::array<std::uint32_t, 2>>{{1, 2}, {kUnbounded, 2},
                                                 {1, 3}}) {
    grid.push_back({"fp1-k2/overriding/t" + tag(t) + "/n" + std::to_string(n),
                    std::make_shared<FPlusOneFactory>(2), "f-plus-one",
                    proto::Params{{"k", 2}}, FaultKind::kOverriding, t, n});
  }

  for (const auto& [f, t, n] : std::vector<std::array<std::uint32_t, 3>>{
           {1, 1, 2}, {1, 1, 3}, {2, 1, 2}, {1, 2, 2}}) {
    grid.push_back({"staged-f" + std::to_string(f) + "t" + std::to_string(t) +
                        "/overriding/n" + std::to_string(n),
                    std::make_shared<StagedFactory>(f, t), "staged",
                    proto::Params{{"f", f}, {"t", t}}, FaultKind::kOverriding,
                    t, n});
  }

  for (const auto& [t, n] : std::vector<std::array<std::uint32_t, 2>>{
           {1, 2}, {1, 3}, {kUnbounded, 2}}) {
    grid.push_back({"retry-silent/silent/t" + tag(t) + "/n" +
                        std::to_string(n),
                    std::make_shared<RetrySilentFactory>(), "retry-silent",
                    {}, FaultKind::kSilent, t, n});
  }

  for (const std::uint32_t n : {2u, 3u}) {
    grid.push_back({"announce/overriding/t1/n" + std::to_string(n),
                    std::make_shared<AnnounceCasFactory>(n), "announce-cas",
                    proto::Params{{"n", n}}, FaultKind::kOverriding, 1, n});
    grid.push_back({"tas/overriding/t1/n" + std::to_string(n),
                    std::make_shared<TasFactory>(n), "tas",
                    proto::Params{{"n", n}}, FaultKind::kOverriding, 1, n});
  }
  grid.push_back({"tas/silent/t1/n2", std::make_shared<TasFactory>(2), "tas",
                  proto::Params{{"n", 2}}, FaultKind::kSilent, 1, 2});
  return grid;
}

SimWorld make_world(const sched::MachineFactory& factory, FaultKind kind,
                    std::uint32_t t, std::uint32_t n) {
  SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = t;
  return SimWorld(config, factory, testutil::iota_inputs(n));
}

// ---------------------------------------------------------------------------
// 1. Lockstep walk: per-state encode() and enabled() equality.
// ---------------------------------------------------------------------------

void lockstep(SimWorld& legacy, SimWorld& ir,
              std::set<std::vector<std::uint64_t>>& visited,
              const std::string& label, std::uint32_t depth) {
  ASSERT_LT(depth, 100'000u) << label;
  const std::vector<std::uint64_t> enc = legacy.encode();
  ASSERT_EQ(enc, ir.encode()) << label << ": encodings diverge";
  if (!visited.insert(enc).second) return;
  ASSERT_LT(visited.size(), 400'000u) << label;

  const std::vector<sched::Choice> choices = legacy.enabled();
  ASSERT_EQ(choices, ir.enabled()) << label << ": enabled sets diverge";
  for (const sched::Choice& choice : choices) {
    SimWorld::StepUndo undo_legacy;
    SimWorld::StepUndo undo_ir;
    legacy.apply_with_undo(choice, undo_legacy);
    ir.apply_with_undo(choice, undo_ir);
    lockstep(legacy, ir, visited, label, depth + 1);
    if (testing::Test::HasFatalFailure()) return;
    ir.undo_step(undo_ir);
    legacy.undo_step(undo_legacy);
  }
}

TEST(ProtoIrDifferential, LockstepEncodeEquality) {
  for (const DiffCase& dc : diff_grid()) {
    SCOPED_TRACE(dc.label);
    const auto ir_factory = proto::machine_factory(dc.proto_name, dc.params);
    SimWorld legacy = make_world(*dc.legacy, dc.kind, dc.t, dc.n);
    SimWorld ir = make_world(*ir_factory, dc.kind, dc.t, dc.n);
    std::set<std::vector<std::uint64_t>> visited;
    lockstep(legacy, ir, visited, dc.label, 0);
    if (testing::Test::HasFatalFailure()) return;
    EXPECT_GE(visited.size(), 2u) << dc.label;
  }
}

// ---------------------------------------------------------------------------
// 2. Census equality, reductions on and off.
// ---------------------------------------------------------------------------

void expect_census_equal(const sched::ExploreResult& legacy,
                         const sched::ExploreResult& ir,
                         const std::string& label) {
  EXPECT_EQ(legacy.states_visited, ir.states_visited) << label;
  EXPECT_EQ(legacy.terminal_states, ir.terminal_states) << label;
  EXPECT_EQ(legacy.violations_found, ir.violations_found) << label;
  EXPECT_EQ(legacy.violations_by_kind, ir.violations_by_kind) << label;
  EXPECT_EQ(legacy.max_depth, ir.max_depth) << label;
  EXPECT_EQ(legacy.complete, ir.complete) << label;
  EXPECT_EQ(legacy.agreed_values, ir.agreed_values) << label;
}

TEST(ProtoIrDifferential, FullCensusMatchesWithAndWithoutReductions) {
  for (const DiffCase& dc : diff_grid()) {
    SCOPED_TRACE(dc.label);
    const auto ir_factory = proto::machine_factory(dc.proto_name, dc.params);
    const SimWorld legacy = make_world(*dc.legacy, dc.kind, dc.t, dc.n);
    const SimWorld ir = make_world(*ir_factory, dc.kind, dc.t, dc.n);
    for (const bool reduce : {true, false}) {
      sched::ExploreOptions options;
      options.stop_at_first_violation = false;
      options.killed_is_violation = dc.kind == FaultKind::kNonresponsive;
      options.symmetry_reduction = reduce;
      options.sleep_sets = reduce;
      const auto legacy_result = sched::explore(legacy, options);
      const auto ir_result = sched::explore(ir, options);
      expect_census_equal(legacy_result, ir_result,
                          dc.label + (reduce ? "/reduced" : "/unreduced"));
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Machine-level lockstep: encoding determines pc and pending op.
// ---------------------------------------------------------------------------

struct OpKey {
  sched::OpType type = sched::OpType::kNone;
  objects::ObjectId object = 0;
  std::uint64_t expected = 0;
  std::uint64_t desired = 0;

  friend bool operator==(const OpKey&, const OpKey&) noexcept = default;
};

OpKey key_of(const sched::PendingOp& op) {
  return OpKey{op.type, op.object, op.expected.raw(), op.desired.raw()};
}

void machine_lockstep(const sched::MachineFactory& legacy_factory,
                      std::shared_ptr<const proto::Program> program,
                      const std::vector<std::uint64_t>& domain,
                      std::uint32_t n, const std::string& label) {
  for (objects::ProcessId pid = 0; pid < n; ++pid) {
    // encode() → (pc, pending op) must be a function per pid: equal
    // encodings may not hide different control states.
    std::map<std::vector<std::uint64_t>,
             std::pair<std::uint32_t, OpKey>> seen;
    for (const std::uint64_t input : {1u, 2u}) {
      std::set<std::vector<std::uint64_t>> visited;
      std::vector<std::pair<std::unique_ptr<sched::StepMachine>,
                            proto::IrMachine>> stack;
      stack.emplace_back(legacy_factory.make(pid, input),
                         proto::IrMachine(program, pid, input));
      while (!stack.empty()) {
        auto [legacy, ir] = std::move(stack.back());
        stack.pop_back();

        std::vector<std::uint64_t> legacy_enc;
        std::vector<std::uint64_t> ir_enc;
        legacy->encode(legacy_enc);
        ir.encode(ir_enc);
        ASSERT_EQ(legacy_enc, ir_enc) << label << " pid=" << pid;
        ASSERT_EQ(legacy->done(), ir.done()) << label << " pid=" << pid;
        if (!visited.insert(ir_enc).second) continue;
        ASSERT_LT(visited.size(), 200'000u) << label;

        const sched::PendingOp op = ir.next_op();
        const auto [it, inserted] = seen.try_emplace(
            ir_enc, std::make_pair(ir.pc(), key_of(op)));
        if (!inserted) {
          EXPECT_EQ(it->second.first, ir.pc())
              << label << ": equal encodings pause at different pcs";
          EXPECT_EQ(it->second.second, key_of(op))
              << label << ": equal encodings request different ops";
        }
        if (ir.done()) {
          EXPECT_EQ(legacy->decision(), ir.decision())
              << label << " pid=" << pid;
          continue;
        }
        const sched::PendingOp legacy_op = legacy->next_op();
        ASSERT_EQ(key_of(legacy_op), key_of(op)) << label << " pid=" << pid;

        // A register write always returns ⊥; reads and CAS results range
        // over the domain.
        const std::vector<std::uint64_t> returns =
            op.type == sched::OpType::kRegWrite
                ? std::vector<std::uint64_t>{model::Value::bottom().raw()}
                : domain;
        for (const std::uint64_t v : returns) {
          auto legacy_clone = legacy->clone();
          proto::IrMachine ir_clone = ir;
          legacy_clone->deliver(model::Value::of(v));
          ir_clone.deliver(model::Value::of(v));
          stack.emplace_back(std::move(legacy_clone), std::move(ir_clone));
        }
      }
    }
  }
}

TEST(ProtoIrDifferential, MachineLockstepAndEncodingDeterminesPc) {
  const std::uint64_t bottom = model::Value::bottom().raw();
  const std::vector<std::uint64_t> plain{bottom, 1, 2};
  std::vector<std::uint64_t> staged{bottom,
                                    model::StagedValue(1, 0).pack().raw(),
                                    model::StagedValue(2, 1).pack().raw(),
                                    model::StagedValue(2, 5).pack().raw()};

  machine_lockstep(consensus::SingleCasFactory{},
                   proto::build_program("single-cas"), plain, 3,
                   "single-cas");
  machine_lockstep(consensus::FPlusOneFactory{2},
                   proto::build_program("f-plus-one"), plain, 2, "fp1-k2");
  machine_lockstep(consensus::RetrySilentFactory{},
                   proto::build_program("retry-silent"), plain, 2,
                   "retry-silent");
  machine_lockstep(consensus::StagedFactory{1, 1},
                   proto::build_program("staged"), staged, 2, "staged-f1t1");
  for (const std::uint32_t n : {2u, 3u}) {
    const proto::Params params{{"n", n}};
    machine_lockstep(consensus::AnnounceCasFactory{n},
                     proto::build_program("announce-cas", params), plain, n,
                     "announce-n" + std::to_string(n));
    machine_lockstep(consensus::TasFactory{n},
                     proto::build_program("tas", params), plain, n,
                     "tas-n" + std::to_string(n));
  }
}

// ---------------------------------------------------------------------------
// 4. Derived counts and names vs. the legacy hand-maintained constants.
// ---------------------------------------------------------------------------

TEST(ProtoIrRegistry, DerivedCountsMatchLegacyFactories) {
  const auto expect_counts = [](const sched::MachineFactory& legacy,
                                const std::string& name,
                                const proto::Params& params) {
    const auto ir = proto::machine_factory(name, params);
    EXPECT_EQ(legacy.objects_used(), ir->objects_used()) << name;
    EXPECT_EQ(legacy.registers_used(), ir->registers_used()) << name;
    EXPECT_EQ(legacy.pid_oblivious(), ir->pid_oblivious()) << name;
    EXPECT_EQ(legacy.name(), ir->name()) << name;
  };
  expect_counts(consensus::SingleCasFactory{}, "single-cas", {});
  expect_counts(consensus::FPlusOneFactory{3}, "f-plus-one",
                proto::Params{{"k", 3}});
  expect_counts(consensus::StagedFactory{2, 1}, "staged",
                proto::Params{{"f", 2}, {"t", 1}});
  expect_counts(consensus::RetrySilentFactory{}, "retry-silent", {});
  // These two are the registers_used() regression: the legacy factories
  // override it explicitly; a factory that forgot inherited the silent
  // default of 0 and the simulator allocated no registers.  The IR
  // derives the count from the operand bounds, so it CANNOT be forgotten.
  expect_counts(consensus::AnnounceCasFactory{3}, "announce-cas",
                proto::Params{{"n", 3}});
  expect_counts(consensus::TasFactory{2}, "tas", proto::Params{{"n", 2}});
}

TEST(ProtoIrRegistry, NamesAreCanonicalAcrossBothDrivers) {
  for (const proto::ProtocolInfo& info :
       proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    SCOPED_TRACE(info.name);
    const auto program = proto::build_program(info.name);
    EXPECT_EQ(info.name, program->name());
    EXPECT_EQ(info.name, proto::machine_factory(info.name)->name());

    std::deque<objects::AtomicCas> objects;
    std::deque<objects::AtomicRegister> registers;
    std::vector<objects::CasObject*> object_ptrs;
    std::vector<objects::AtomicRegister*> register_ptrs;
    for (std::uint32_t i = 0; i < program->num_objects(); ++i) {
      object_ptrs.push_back(&objects.emplace_back(i));
    }
    for (std::uint32_t i = 0; i < program->num_registers(); ++i) {
      register_ptrs.push_back(&registers.emplace_back(i));
    }
    const auto protocol =
        proto::protocol(info.name, {}, object_ptrs, register_ptrs);
    EXPECT_EQ(info.name, protocol->name());
    EXPECT_EQ(program->num_objects(), protocol->objects_used());
  }
}

TEST(ProtoIrRegistry, AliasesResolveAndUnknownNamesThrow) {
  const auto& registry = proto::ProtocolRegistry::instance();
  ASSERT_NE(registry.find("herlihy"), nullptr);
  EXPECT_EQ(registry.find("herlihy")->name, "single-cas");
  ASSERT_NE(registry.find("fp1"), nullptr);
  EXPECT_EQ(registry.find("fp1")->name, "f-plus-one");
  ASSERT_NE(registry.find("announce"), nullptr);
  EXPECT_EQ(registry.find("announce")->name, "announce-cas");
  EXPECT_EQ(registry.find("no-such-protocol"), nullptr);
  EXPECT_EQ(proto::build_program("herlihy")->name(), "single-cas");
  EXPECT_THROW((void)proto::build_program("no-such-protocol"),
               std::invalid_argument);
  EXPECT_THROW((void)proto::machine_factory("queue-client"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 5. Real-thread stress: verdicts must match the legacy protocols seed
//    for seed.
// ---------------------------------------------------------------------------

runtime::StressOptions stress_options(std::uint32_t n) {
  runtime::StressOptions options;
  options.processes = n;
  options.budget.max_units = 150;
  options.seed = 0xf00d;
  return options;
}

void expect_verdicts_identical(const runtime::StressReport& a,
                               const runtime::StressReport& b,
                               const std::string& label) {
  EXPECT_EQ(a.trials, b.trials) << label;
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.inconsistent, b.inconsistent) << label;
  EXPECT_EQ(a.invalid, b.invalid) << label;
  EXPECT_EQ(a.undecided, b.undecided) << label;
  EXPECT_EQ(a.first_violation, b.first_violation) << label;
}

void expect_reports_identical(const runtime::StressReport& a,
                              const runtime::StressReport& b,
                              const std::string& label) {
  expect_verdicts_identical(a, b, label);
  EXPECT_EQ(a.steps_per_process.count(), b.steps_per_process.count())
      << label;
  EXPECT_DOUBLE_EQ(a.steps_per_process.mean(), b.steps_per_process.mean())
      << label;
  EXPECT_DOUBLE_EQ(a.steps_per_process.min(), b.steps_per_process.min())
      << label;
  EXPECT_DOUBLE_EQ(a.steps_per_process.max(), b.steps_per_process.max())
      << label;
}

TEST(ProtoIrStress, SingleCasFaultFreeReportsMatchExactly) {
  // Exactly one CAS per decide(): the full report, step statistics
  // included, is schedule-independent and must reproduce bit-for-bit.
  for (const std::uint32_t n : {2u, 3u}) {
    objects::AtomicCas legacy_object(0);
    consensus::SingleCasConsensus legacy(legacy_object);
    objects::AtomicCas ir_object(0);
    const auto ir = proto::protocol("single-cas", {}, {&ir_object});
    const auto a = runtime::run_stress(legacy, stress_options(n));
    const auto b = runtime::run_stress(*ir, stress_options(n));
    expect_reports_identical(a, b, "single-cas/n" + std::to_string(n));
    EXPECT_TRUE(b.all_ok());
  }
}

TEST(ProtoIrStress, SingleCasOverridingUnboundedMatchesExactly) {
  // Theorem 4 territory: every CAS faults (overriding, t = ∞) yet two
  // processes still agree, and each decide() is still exactly one CAS.
  const auto make_bank = [] {
    faults::FaultyCasBank::Options options;
    options.objects = 1;
    options.kind = FaultKind::kOverriding;
    options.f = 1;
    options.t = kUnbounded;
    return options;
  };
  static faults::AlwaysFault always;
  auto legacy_options = make_bank();
  legacy_options.policy = &always;
  faults::FaultyCasBank legacy_bank(legacy_options);
  consensus::SingleCasConsensus legacy(*legacy_bank.raw()[0]);

  auto ir_options = make_bank();
  ir_options.policy = &always;
  faults::FaultyCasBank ir_bank(ir_options);
  const auto ir = proto::protocol("single-cas", {}, ir_bank.raw());

  const auto setup_legacy = [&](std::uint64_t) { legacy_bank.reset(); };
  const auto setup_ir = [&](std::uint64_t) { ir_bank.reset(); };
  const auto a = runtime::run_stress(legacy, stress_options(2), setup_legacy);
  const auto b = runtime::run_stress(*ir, stress_options(2), setup_ir);
  expect_reports_identical(a, b, "single-cas/overriding-inf");
  EXPECT_TRUE(b.all_ok());
}

TEST(ProtoIrStress, FPlusOneAndTasFaultFreeReportsMatchExactly) {
  {
    objects::AtomicCas legacy_o0(0);
    objects::AtomicCas legacy_o1(1);
    consensus::FPlusOneConsensus legacy({&legacy_o0, &legacy_o1});
    objects::AtomicCas ir_o0(0);
    objects::AtomicCas ir_o1(1);
    const auto ir = proto::protocol("f-plus-one", proto::Params{{"k", 2}},
                                    {&ir_o0, &ir_o1});
    const auto a = runtime::run_stress(legacy, stress_options(3));
    const auto b = runtime::run_stress(*ir, stress_options(3));
    expect_reports_identical(a, b, "f-plus-one/n3");
    EXPECT_TRUE(b.all_ok());
  }
  {
    objects::AtomicCas legacy_bit(0);
    objects::AtomicRegister legacy_a0(0);
    objects::AtomicRegister legacy_a1(1);
    consensus::TasConsensus legacy(legacy_bit, legacy_a0, legacy_a1);
    objects::AtomicCas ir_bit(0);
    objects::AtomicRegister ir_a0(0);
    objects::AtomicRegister ir_a1(1);
    const auto ir = proto::protocol("tas", proto::Params{{"n", 2}}, {&ir_bit},
                                    {&ir_a0, &ir_a1});
    const auto a = runtime::run_stress(legacy, stress_options(2));
    const auto b = runtime::run_stress(*ir, stress_options(2));
    expect_reports_identical(a, b, "tas/n2");
    EXPECT_TRUE(b.all_ok());
  }
}

TEST(ProtoIrStress, StagedAndRetrySilentVerdictsMatchSeedForSeed) {
  // Step counts here depend on the OS interleaving, so only the verdict
  // counters are schedule-independent; both campaigns must be all-ok on
  // these tolerance configurations.
  {
    objects::AtomicCas legacy_object(0);
    consensus::StagedConsensus legacy({&legacy_object}, 1);
    objects::AtomicCas ir_object(0);
    const auto ir = proto::protocol(
        "staged", proto::Params{{"f", 1}, {"t", 1}}, {&ir_object});
    const auto a = runtime::run_stress(legacy, stress_options(2));
    const auto b = runtime::run_stress(*ir, stress_options(2));
    expect_verdicts_identical(a, b, "staged-f1t1");
    EXPECT_TRUE(a.all_ok());
    EXPECT_TRUE(b.all_ok());
  }
  {
    static faults::PeriodicFault every_other(2);
    const auto make_bank = [] {
      faults::FaultyCasBank::Options options;
      options.objects = 1;
      options.kind = FaultKind::kSilent;
      options.f = 1;
      options.t = 1;
      return options;
    };
    auto legacy_options = make_bank();
    legacy_options.policy = &every_other;
    faults::FaultyCasBank legacy_bank(legacy_options);
    consensus::RetrySilentConsensus legacy(*legacy_bank.raw()[0]);
    auto ir_options = make_bank();
    ir_options.policy = &every_other;
    faults::FaultyCasBank ir_bank(ir_options);
    const auto ir = proto::protocol("retry-silent", {}, ir_bank.raw());

    const auto setup_legacy = [&](std::uint64_t) { legacy_bank.reset(); };
    const auto setup_ir = [&](std::uint64_t) { ir_bank.reset(); };
    const auto a =
        runtime::run_stress(legacy, stress_options(2), setup_legacy);
    const auto b = runtime::run_stress(*ir, stress_options(2), setup_ir);
    expect_verdicts_identical(a, b, "retry-silent/silent-t1");
    EXPECT_TRUE(a.all_ok());
    EXPECT_TRUE(b.all_ok());
  }
}

TEST(ProtoIrStress, AnnounceCasFaultFreeIsCorrectUnderThreads) {
  // No legacy thread twin exists for announce-cas (it was simulator-only
  // before the IR), so this pins absolute correctness instead: all-ok
  // and exactly one CAS per decide().
  objects::AtomicCas bit(0);
  objects::AtomicRegister a0(0);
  objects::AtomicRegister a1(1);
  objects::AtomicRegister a2(2);
  const auto ir = proto::protocol("announce-cas", proto::Params{{"n", 3}},
                                  {&bit}, {&a0, &a1, &a2});
  const auto report = runtime::run_stress(*ir, stress_options(3));
  EXPECT_TRUE(report.all_ok());
  EXPECT_DOUBLE_EQ(report.steps_per_process.mean(), 1.0);
}

// ---------------------------------------------------------------------------
// 6. Queue client via the same IR machinery.
// ---------------------------------------------------------------------------

TEST(ProtoIrQueue, QueueClientRunsAgainstRelaxedQueue) {
  const auto program =
      proto::build_program("queue-client", proto::Params{{"ops", 16}});
  EXPECT_TRUE(program->uses_queue());
  faults::NeverFault never;
  faults::RelaxedQueue queue(0, /*k=*/2, &never, /*budget=*/nullptr);
  const auto result = proto::run_queue_client(*program, queue);
  EXPECT_EQ(result.enqueues, 16u);
  EXPECT_EQ(result.dequeues, 16u);
  ASSERT_EQ(result.dequeued.size(), 16u);
  for (std::size_t i = 0; i < result.dequeued.size(); ++i) {
    ASSERT_TRUE(result.dequeued[i].has_value()) << i;
    EXPECT_EQ(*result.dequeued[i], i + 1) << i;  // fault-free FIFO order
  }
  EXPECT_THROW((void)proto::protocol("queue-client", {}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ff
