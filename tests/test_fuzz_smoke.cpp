// tier2-fuzz smoke tests: a short wall-clock-bounded fuzz campaign per
// seed protocol.  Not part of the default (tier1) ctest label — run via
//   ctest -L tier2-fuzz
// Each campaign is capped at ~5 seconds of wall clock (and a generous
// step budget so fast machines finish far earlier).  The assertions are
// sanity-level: the fuzzer makes progress, never fabricates a witness
// that does not replay, and reports truncation honestly.
#include <gtest/gtest.h>

#include <string>

#include "explore_diff.hpp"
#include "sched/fuzzer.hpp"

namespace ff::sched {
namespace {

using testutil::differential_grid;
using testutil::expect_witness_reproduces;
using testutil::GridCase;
using testutil::make_world;

class FuzzSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzSmoke, FiveSecondCampaign) {
  const std::string cell = GetParam();
  for (const GridCase& gc : differential_grid()) {
    if (gc.name != cell) continue;
    const SimWorld world = make_world(gc);

    FuzzOptions fo;
    fo.seed = 0xfacade;
    fo.killed_is_violation = gc.kind == model::FaultKind::kNonresponsive;
    fo.budget.max_units = 400'000;
    fo.budget.max_millis = 5'000;
    const FuzzResult run = fuzz(world, fo);

    EXPECT_GT(run.stats.executions, 0u) << gc.name;
    EXPECT_GT(run.stats.unique_states, 0u) << gc.name;
    EXPECT_GE(run.stats.unique_states, run.stats.corpus_entries) << gc.name;
    if (run.violation) {
      expect_witness_reproduces(world, *run.violation, gc.name);
      EXPECT_EQ(classify_schedule(world, run.violation->schedule,
                                  fo.killed_is_violation),
                run.violation->kind)
          << gc.name;
    } else {
      // No violation: the run must have ended for an honest reason —
      // budget/deadline truncation (complete = false, nothing found).
      EXPECT_FALSE(run.complete) << gc.name;
    }
    return;
  }
  FAIL() << "grid cell " << cell << " missing";
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FuzzSmoke,
    ::testing::Values("single-cas/overriding/t1/n3",
                      "single-cas/data/t1/n2",
                      "tas/overriding/t1/n2",
                      "fp1-k2/overriding/t1/n2",
                      "staged-f1t1/overriding/n2",
                      "retry-silent/silent/tinf/n2",
                      "announce/overriding/t1/n2"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ff::sched
