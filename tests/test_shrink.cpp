// Property tests for shrink_witness (sched/fuzzer.hpp): over hundreds of
// seeded random violating schedules, the shrunk witness must
//   * still exhibit the SAME violation kind (verified by strict replay),
//   * be no longer than the original,
//   * be 1-minimal — removing any single remaining step, and in fact any
//     remaining contiguous chunk, no longer exhibits the kind,
//   * be a fixpoint: shrinking again changes nothing (idempotence).
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "explore_diff.hpp"
#include "sched/fuzzer.hpp"
#include "sched/sim_world.hpp"
#include "util/rng.hpp"

namespace ff::sched {
namespace {

using testutil::differential_grid;
using testutil::GridCase;
using testutil::make_world;

struct RecordedViolation {
  std::string label;
  SimWorld initial;
  std::vector<Choice> schedule;
  ViolationKind kind;
  bool killed_is_violation;
};

/// Biased random walk that RECORDS its choices and stops at the first
/// violation it can certify: a violating terminal state, or a revisited
/// state with a process step in the repeated segment.
std::optional<RecordedViolation> record_walk(const GridCase& gc,
                                             std::uint64_t seed,
                                             std::uint64_t max_steps) {
  const SimWorld initial = make_world(gc);
  const bool killed = gc.kind == model::FaultKind::kNonresponsive;
  SimWorld world = initial;
  util::Xoshiro256 rng(seed);
  std::vector<Choice> schedule;
  std::vector<std::vector<std::uint64_t>> encodes{world.encode()};

  while (!world.terminal() && schedule.size() < max_steps) {
    const auto choices = world.enabled();
    std::vector<Choice> faulty;
    std::vector<Choice> clean;
    for (const Choice& c : choices) (c.fault ? faulty : clean).push_back(c);
    const std::vector<Choice>& pool =
        (!faulty.empty() && rng.chance(0.5)) ? faulty : clean;
    const std::vector<Choice>& chosen = pool.empty() ? choices : pool;
    const Choice pick = chosen[rng.below(chosen.size())];
    world.apply(pick);
    schedule.push_back(pick);
    encodes.push_back(world.encode());

    // In-walk cycle certificate (nontermination witness).
    const auto& fin = encodes.back();
    for (std::size_t i = 0; i + 1 < encodes.size(); ++i) {
      if (encodes[i] != fin) continue;
      for (std::size_t k = i; k < schedule.size(); ++k) {
        if (schedule[k].pid != kAdversaryPid) {
          return RecordedViolation{gc.name + "/seed" + std::to_string(seed),
                                   initial, schedule,
                                   ViolationKind::kNontermination, killed};
        }
      }
      break;
    }
  }
  if (!world.terminal()) return std::nullopt;
  const auto kind = classify_schedule(initial, schedule, killed);
  if (!kind) return std::nullopt;
  return RecordedViolation{gc.name + "/seed" + std::to_string(seed), initial,
                           schedule, *kind, killed};
}

std::vector<GridCase> seed_cells() {
  std::vector<GridCase> cells;
  for (const GridCase& gc : differential_grid()) {
    if (gc.name == "single-cas/overriding/t1/n3" ||
        gc.name == "single-cas/arbitrary/t1/n2" ||
        gc.name == "single-cas/silent/tinf/n2" ||
        gc.name == "staged-f1t1/overriding/n3" ||
        gc.name == "retry-silent/silent/tinf/n2") {
      cells.push_back(gc);
    }
  }
  return cells;
}

TEST(ShrinkWitness, TwoHundredRandomWitnessesAreMinimalAndIdempotent) {
  const std::vector<GridCase> cells = seed_cells();
  ASSERT_EQ(cells.size(), 5u);

  constexpr std::size_t kTarget = 200;
  constexpr std::uint64_t kMaxWalkSteps = 60;
  std::size_t collected = 0;
  std::uint64_t seed = 1;
  std::size_t attempts = 0;
  std::map<ViolationKind, std::size_t> kinds_seen;

  while (collected < kTarget) {
    ASSERT_LT(attempts, 50'000u)
        << "could not collect " << kTarget << " violating walks";
    const GridCase& gc = cells[attempts % cells.size()];
    ++attempts;
    const auto rec = record_walk(gc, seed++, kMaxWalkSteps);
    if (!rec) continue;
    ++collected;

    const auto& [label, initial, schedule, kind, killed] = *rec;
    ++kinds_seen[kind];
    const std::vector<Choice> shrunk =
        shrink_witness(initial, schedule, kind, killed);

    // Same-kind violation, verified by strict replay.
    EXPECT_EQ(classify_schedule(initial, shrunk, killed), kind) << label;
    // Never longer than the original.
    EXPECT_LE(shrunk.size(), schedule.size()) << label;

    // 1-minimality over every contiguous chunk (single steps included:
    // len = 1).  Removing anything kills the violation.
    for (std::size_t len = 1; len <= shrunk.size(); ++len) {
      for (std::size_t start = 0; start + len <= shrunk.size(); ++start) {
        std::vector<Choice> cand;
        cand.reserve(shrunk.size() - len);
        cand.insert(cand.end(), shrunk.begin(),
                    shrunk.begin() + static_cast<std::ptrdiff_t>(start));
        cand.insert(cand.end(),
                    shrunk.begin() + static_cast<std::ptrdiff_t>(start + len),
                    shrunk.end());
        EXPECT_NE(classify_schedule(initial, cand, killed), kind)
            << label << ": chunk [" << start << ", " << (start + len)
            << ") is removable — witness not minimal";
      }
    }

    // Idempotence: a shrunk witness is a fixpoint.
    EXPECT_EQ(shrink_witness(initial, shrunk, kind, killed), shrunk)
        << label;
  }
  // The witness pool must exercise more than one violation class, and
  // must include machine-checked cycles (the hardest case to shrink).
  EXPECT_GE(kinds_seen.size(), 2u);
  EXPECT_GE(kinds_seen[ViolationKind::kNontermination], 1u);
  SUCCEED() << "verified " << collected << " witnesses over " << attempts
            << " walks";
}

// A schedule that does not exhibit the requested kind is returned
// unchanged (documented contract).
TEST(ShrinkWitness, NonViolatingInputIsReturnedUnchanged) {
  for (const GridCase& gc : differential_grid()) {
    if (gc.name != "retry-silent/silent/t1/n2") continue;
    const SimWorld initial = make_world(gc);
    // Record some correct terminal run.
    const auto rec = record_walk(gc, /*seed=*/3, /*max_steps=*/200);
    ASSERT_FALSE(rec.has_value());  // cell is explorer-proven correct
    SimWorld world = initial;
    std::vector<Choice> schedule;
    while (!world.terminal()) {
      const Choice c = world.enabled().front();
      world.apply(c);
      schedule.push_back(c);
    }
    EXPECT_EQ(shrink_witness(initial, schedule,
                             ViolationKind::kInconsistent, false),
              schedule);
    return;
  }
  FAIL() << "grid cell retry-silent/silent/t1/n2 missing";
}

}  // namespace
}  // namespace ff::sched
