// Unit tests for the model layer: CAS sequential specification, deviating
// postconditions Φ′, observation classification, and value packing.
#include <gtest/gtest.h>

#include "model/cas_semantics.hpp"
#include "model/cas_triples.hpp"
#include "model/fault_kind.hpp"
#include "model/tolerance.hpp"
#include "model/value.hpp"

namespace ff::model {
namespace {

const Value kBot = Value::bottom();
const Value kA = Value::of(7);
const Value kB = Value::of(42);
const Value kC = Value::of(99);

TEST(Value, BottomIsDistinguished) {
  EXPECT_TRUE(kBot.is_bottom());
  EXPECT_FALSE(kA.is_bottom());
  EXPECT_NE(kBot, kA);
  EXPECT_EQ(Value::bottom(), Value::bottom());
}

TEST(Value, DefaultConstructedIsBottom) {
  EXPECT_TRUE(Value{}.is_bottom());
}

TEST(Value, EqualityIsByRawWord) {
  EXPECT_EQ(Value::of(7), Value::of(7));
  EXPECT_NE(Value::of(7), Value::of(8));
}

TEST(Value, ToStringRendersBottomAndNumbers) {
  EXPECT_EQ(kA.to_string(), "7");
  EXPECT_FALSE(kBot.to_string().empty());
}

TEST(StagedValue, PackUnpackRoundTrip) {
  const StagedValue sv(123456, 77);
  const Value packed = sv.pack();
  EXPECT_FALSE(packed.is_bottom());
  const StagedValue back = StagedValue::unpack(packed);
  EXPECT_EQ(back.value(), 123456u);
  EXPECT_EQ(back.stage(), 77u);
  EXPECT_EQ(back, sv);
}

TEST(StagedValue, DistinctPairsPackDistinctly) {
  EXPECT_NE(StagedValue(1, 2).pack(), StagedValue(2, 1).pack());
  EXPECT_NE(StagedValue(1, 2).pack(), StagedValue(1, 3).pack());
}

TEST(StagedValue, OnlyAllOnesPairCollidesWithBottom) {
  EXPECT_TRUE(StagedValue(0xFFFFFFFFu, 0xFFFFFFFFu).pack().is_bottom());
  EXPECT_FALSE(StagedValue(0xFFFFFFFFu, 0).pack().is_bottom());
  EXPECT_FALSE(StagedValue(0, 0xFFFFFFFFu).pack().is_bottom());
}

// --- Sequential specification -------------------------------------------

TEST(CasApply, SuccessWritesAndReturnsOld) {
  const CasEffect e = cas_apply(kBot, {kBot, kA});
  EXPECT_TRUE(e.success);
  EXPECT_EQ(e.after, kA);
  EXPECT_EQ(e.returned, kBot);
}

TEST(CasApply, FailureLeavesContentAndReturnsOld) {
  const CasEffect e = cas_apply(kB, {kBot, kA});
  EXPECT_FALSE(e.success);
  EXPECT_EQ(e.after, kB);
  EXPECT_EQ(e.returned, kB);
}

TEST(CasApply, OverridingAlwaysWrites) {
  const CasEffect e = cas_apply_overriding(kB, {kBot, kA});
  EXPECT_TRUE(e.success);
  EXPECT_EQ(e.after, kA);
  EXPECT_EQ(e.returned, kB);
}

TEST(CasApply, SilentNeverWrites) {
  const CasEffect e = cas_apply_silent(kBot, {kBot, kA});
  EXPECT_FALSE(e.success);
  EXPECT_EQ(e.after, kBot);
  EXPECT_EQ(e.returned, kBot);
}

// --- Φ and Φ′ --------------------------------------------------------------

TEST(Phi, HoldsForCorrectSuccess) {
  EXPECT_TRUE(satisfies_phi({kBot, kA, kBot}, {kBot, kA}));
}

TEST(Phi, HoldsForCorrectFailure) {
  EXPECT_TRUE(satisfies_phi({kB, kB, kB}, {kBot, kA}));
}

TEST(Phi, ViolatedByOverridingWrite) {
  // R′ = B ≠ exp = ⊥, yet R = A was written.
  EXPECT_FALSE(satisfies_phi({kB, kA, kB}, {kBot, kA}));
}

TEST(Phi, ViolatedBySilentDrop) {
  // R′ = ⊥ = exp, yet nothing was written.
  EXPECT_FALSE(satisfies_phi({kBot, kBot, kBot}, {kBot, kA}));
}

TEST(Phi, ViolatedByWrongOutput) {
  EXPECT_FALSE(satisfies_phi({kB, kB, kC}, {kBot, kA}));
}

TEST(PhiPrime, OverridingMatchesItsDeviation) {
  const CasObservation obs{kB, kA, kB};
  const CasCall call{kBot, kA};
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kOverriding, obs, call));
  EXPECT_FALSE(satisfies_phi_prime(FaultKind::kSilent, obs, call));
}

TEST(PhiPrime, OverridingSubsumesCorrectSuccess) {
  // Φ′ of overriding also covers the case where the comparison succeeds —
  // the fault is one-sided.
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kOverriding, {kBot, kA, kBot},
                                  {kBot, kA}));
}

TEST(PhiPrime, SilentMatchesItsDeviation) {
  const CasObservation obs{kBot, kBot, kBot};
  const CasCall call{kBot, kA};
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kSilent, obs, call));
  EXPECT_FALSE(satisfies_phi_prime(FaultKind::kOverriding, obs, call));
}

TEST(PhiPrime, InvisibleRequiresCorrectRegisterBehaviour) {
  // Output wrong, register per spec: invisible.
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kInvisible, {kB, kB, kC},
                                  {kBot, kA}));
  // Register also wrong: not an invisible fault.
  EXPECT_FALSE(satisfies_phi_prime(FaultKind::kInvisible, {kB, kC, kC},
                                   {kBot, kA}));
}

TEST(PhiPrime, ArbitraryRequiresOnlyCorrectOutput) {
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kArbitrary, {kB, kC, kB},
                                  {kBot, kA}));
  EXPECT_FALSE(satisfies_phi_prime(FaultKind::kArbitrary, {kB, kC, kC},
                                   {kBot, kA}));
}

TEST(PhiPrime, NonresponsiveNeverMatchesAnObservation) {
  EXPECT_FALSE(satisfies_phi_prime(FaultKind::kNonresponsive,
                                   {kBot, kA, kBot}, {kBot, kA}));
}

TEST(PhiPrime, DataCorruptionAdmitsAnything) {
  EXPECT_TRUE(satisfies_phi_prime(FaultKind::kDataCorruption, {kB, kC, kC},
                                  {kBot, kA}));
}

// --- classify ---------------------------------------------------------------

TEST(Classify, CorrectExecutions) {
  EXPECT_EQ(classify({kBot, kA, kBot}, {kBot, kA}), FaultKind::kNone);
  EXPECT_EQ(classify({kB, kB, kB}, {kBot, kA}), FaultKind::kNone);
}

TEST(Classify, Overriding) {
  EXPECT_EQ(classify({kB, kA, kB}, {kBot, kA}), FaultKind::kOverriding);
}

TEST(Classify, Silent) {
  EXPECT_EQ(classify({kBot, kBot, kBot}, {kBot, kA}), FaultKind::kSilent);
}

TEST(Classify, Invisible) {
  EXPECT_EQ(classify({kB, kB, kC}, {kBot, kA}), FaultKind::kInvisible);
}

TEST(Classify, ArbitraryWrite) {
  // Written value is neither `desired` nor the old content.
  EXPECT_EQ(classify({kB, kC, kB}, {kBot, kA}), FaultKind::kArbitrary);
}

TEST(Classify, UnstructuredGoesToDataCorruption) {
  // Both register and output wrong.
  EXPECT_EQ(classify({kB, kC, kC}, {kBot, kA}), FaultKind::kDataCorruption);
}

// --- TripleChecker instantiation -------------------------------------------

TEST(CasTripleChecker, AgreesWithClassify) {
  CasFaultIndex index{};
  const auto checker = make_cas_checker(&index);

  const CasCall call{kBot, kA};
  // Correct.
  auto r = checker.classify(call, CasObservation{kBot, kA, kBot});
  EXPECT_EQ(r.verdict, StepVerdict::kCorrect);
  // Overriding.
  r = checker.classify(call, CasObservation{kB, kA, kB});
  ASSERT_EQ(r.verdict, StepVerdict::kCharacterized);
  EXPECT_EQ(*r.characterization, index.overriding);
  // Silent.
  r = checker.classify(call, CasObservation{kBot, kBot, kBot});
  ASSERT_EQ(r.verdict, StepVerdict::kCharacterized);
  EXPECT_EQ(*r.characterization, index.silent);
  // Invisible.
  r = checker.classify(call, CasObservation{kB, kB, kC});
  ASSERT_EQ(r.verdict, StepVerdict::kCharacterized);
  EXPECT_EQ(*r.characterization, index.invisible);
  // Unstructured.
  r = checker.classify(call, CasObservation{kB, kC, kC});
  EXPECT_EQ(r.verdict, StepVerdict::kUnstructured);
}

TEST(Tolerance, SpecAdmission) {
  const ToleranceSpec spec{2, 3, 4};
  EXPECT_TRUE(spec.admits(2, 3, 4));
  EXPECT_TRUE(spec.admits(0, 0, 1));
  EXPECT_FALSE(spec.admits(3, 3, 4));
  EXPECT_FALSE(spec.admits(2, 4, 4));
  EXPECT_FALSE(spec.admits(2, 3, 5));
}

TEST(Tolerance, UnboundedParameters) {
  const ToleranceSpec f_tolerant{2, kUnbounded, kUnbounded};
  EXPECT_TRUE(f_tolerant.admits(2, 1000000, 1000000));
  EXPECT_FALSE(f_tolerant.admits(3, 1, 1));
  EXPECT_EQ(f_tolerant.to_string(), "(2,inf,inf)");
}

TEST(Tolerance, StagedMaxStageFormula) {
  // maxStage = t·(4f+f²)
  EXPECT_EQ(staged_max_stage(1, 1), 5u);
  EXPECT_EQ(staged_max_stage(2, 1), 12u);
  EXPECT_EQ(staged_max_stage(3, 2), 42u);
  EXPECT_EQ(staged_max_stage(5, 4), 180u);
}

TEST(Tolerance, TotalFaultBudget) {
  EXPECT_EQ(total_fault_budget(3, 4), 12u);
  EXPECT_EQ(total_fault_budget(1, 1), 1u);
}

TEST(FaultKindTraits, Responsiveness) {
  EXPECT_TRUE(is_responsive(FaultKind::kOverriding));
  EXPECT_TRUE(is_responsive(FaultKind::kSilent));
  EXPECT_FALSE(is_responsive(FaultKind::kNonresponsive));
}

TEST(FaultKindTraits, Structure) {
  EXPECT_TRUE(is_structured(FaultKind::kOverriding));
  EXPECT_TRUE(is_structured(FaultKind::kSilent));
  EXPECT_TRUE(is_structured(FaultKind::kInvisible));
  EXPECT_FALSE(is_structured(FaultKind::kArbitrary));
  EXPECT_FALSE(is_structured(FaultKind::kDataCorruption));
}

TEST(FaultKindTraits, FunctionalVsData) {
  EXPECT_TRUE(is_functional(FaultKind::kOverriding));
  EXPECT_FALSE(is_functional(FaultKind::kDataCorruption));
  EXPECT_FALSE(is_functional(FaultKind::kNone));
}

}  // namespace
}  // namespace ff::model
