// Read/write registers in the simulator and the register-augmented
// Theorem 18 candidate: registers are correct and unbounded in the lower
// bound's statement, yet (consensus number 1) they cannot rescue an
// f-object protocol from overriding faults.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using consensus::AnnounceCasFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 10);  // inputs 10, 11, ... (≠ pids)
  return v;
}

SimConfig cfg(std::uint32_t n, FaultKind kind, std::uint32_t t) {
  SimConfig c;
  c.num_objects = 1;
  c.num_registers = n;
  c.kind = kind;
  c.t = t;
  return c;
}

TEST(Registers, WriteThenReadRoundTrips) {
  const AnnounceCasFactory factory(1);
  SimWorld world(cfg(1, FaultKind::kNone, 0), factory, inputs(1));
  // p0: write A[0]=10, CAS, read A[0].
  world.apply({0, false, 0});
  EXPECT_EQ(world.register_value(0), model::Value::of(10));
  world.apply({0, false, 0});
  world.apply({0, false, 0});
  EXPECT_TRUE(world.terminal());
  EXPECT_EQ(world.decisions()[0], 10u);
}

TEST(Registers, RegisterStepsNeverOfferFaultBranches) {
  const AnnounceCasFactory factory(2);
  SimWorld world(cfg(2, FaultKind::kOverriding, kUnbounded), factory,
                 inputs(2));
  // Both processes' next steps are register writes: no fault choices.
  for (const auto& choice : world.enabled()) EXPECT_FALSE(choice.fault);
}

TEST(Registers, RegisterContentDistinguishesEncodedStates) {
  const AnnounceCasFactory factory(2);
  SimWorld a(cfg(2, FaultKind::kNone, 0), factory, inputs(2));
  SimWorld b = a;
  a.apply({0, false, 0});  // p0 announces
  b.apply({1, false, 0});  // p1 announces
  EXPECT_NE(a.encode(), b.encode());
}

TEST(AnnounceCas, FaultFreeCorrectForManyProcesses) {
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const AnnounceCasFactory factory(n);
    SimWorld world(cfg(n, FaultKind::kOverriding, 0), factory, inputs(n));
    const auto result = sched::explore(world);
    EXPECT_TRUE(result.complete) << "n=" << n;
    EXPECT_FALSE(result.violation.has_value()) << "n=" << n;
    EXPECT_EQ(result.agreed_values.size(), n) << "n=" << n;
  }
}

TEST(AnnounceCas, ToleratesUnboundedOverridingFaultsForTwoProcs) {
  // The Theorem 4 phenomenon extends to this protocol shape: at n = 2 the
  // returned-old chain still pairs the winner and the adopter correctly.
  const AnnounceCasFactory factory(2);
  SimWorld world(cfg(2, FaultKind::kOverriding, kUnbounded), factory,
                 inputs(2));
  const auto result = sched::explore(world);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
}

TEST(AnnounceCas, RegistersDoNotRescueThreeProcesses) {
  // Theorem 18 fidelity: even WITH correct registers, one faulty CAS
  // object cannot carry three processes.
  const AnnounceCasFactory factory(3);
  SimWorld world(cfg(3, FaultKind::kOverriding, 1), factory, inputs(3));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kInconsistent);
}

TEST(AnnounceCas, FactoryMetadata) {
  const AnnounceCasFactory factory(5);
  EXPECT_EQ(factory.objects_used(), 1u);
  EXPECT_EQ(factory.registers_used(), 5u);
  EXPECT_EQ(factory.name(), "announce-cas");
}

}  // namespace
}  // namespace ff
