// Unit tests for the utility substrate: RNG determinism and distribution
// sanity, statistics accumulators, tables, CLI parsing, spin barrier.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ff::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(42);
  Xoshiro256 b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Mix64IsDeterministicAndSpread) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Avalanche smoke test: flipping one input bit flips ~half the output.
  const std::uint64_t d = mix64(0x1234) ^ mix64(0x1235);
  const int bits = __builtin_popcountll(d);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

// --- stats -------------------------------------------------------------

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(StreamingStats, EmptyIsZero) {
  const StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all;
  StreamingStats left;
  StreamingStats right;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01() * 100;
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  a.add(3.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(Histogram, ClampsToLastBucket) {
  Histogram h(4);
  h.add(0);
  h.add(3);
  h.add(100);  // clamped into bucket 3
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.max_bucket(), 3u);
}

// --- table -------------------------------------------------------------

TEST(Table, RendersAlignedMarkdown) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value   |"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5000"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::to_cell(true), "yes");
  EXPECT_EQ(Table::to_cell(false), "no");
  EXPECT_EQ(Table::to_cell(3.0), "3");
  EXPECT_EQ(Table::to_cell(0.25), "0.2500");
  EXPECT_EQ(Table::to_cell(7), "7");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  // Rendering must not throw or misalign.
  EXPECT_FALSE(t.to_string().empty());
}

// --- cli ----------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  // Note: "--flag value" binds greedily, so bare boolean flags must be
  // followed by another --flag (or nothing) — hence --flag precedes
  // --gamma here and the positional comes earlier.
  const char* argv[] = {"prog",       "--alpha=3", "--beta", "7",
                        "positional", "--flag",    "--gamma=x"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("gamma", ""), "x");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", -5), -5);
  EXPECT_EQ(cli.get_uint("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 0.5), 0.5);
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

// --- spin barrier --------------------------------------------------------

TEST(SpinBarrier, SynchronizesAndReuses) {
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of this round has incremented.
        if (counter.load() < (round + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kThreads));
}

}  // namespace
}  // namespace ff::util
