// Machine-checked wait-freedom bounds: longest_execution() computes the
// worst-case total step count over ALL schedules and fault placements.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::RetrySilentFactory;
using consensus::SingleCasFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

SimConfig cfg(std::uint32_t objects, FaultKind kind, std::uint32_t t) {
  SimConfig c;
  c.num_objects = objects;
  c.kind = kind;
  c.t = t;
  return c;
}

TEST(LongestExecution, HerlihyIsExactlyNSteps) {
  // Every process takes exactly one CAS step regardless of schedule and
  // faults: the longest (= only) execution length is n.
  const SingleCasFactory factory;
  for (std::uint32_t n = 1; n <= 4; ++n) {
    const SimWorld world(cfg(1, FaultKind::kOverriding, kUnbounded),
                         factory, inputs(n));
    const auto result = sched::longest_execution(world);
    EXPECT_TRUE(result.complete) << "n=" << n;
    EXPECT_TRUE(result.bounded) << "n=" << n;
    EXPECT_EQ(result.max_total_steps, n) << "n=" << n;
  }
}

TEST(LongestExecution, FPlusOneIsExactlyNTimesK) {
  // Figure 2: each of n processes executes exactly k CASes.
  for (const auto& [k, n] : {std::pair{2u, 2u}, {2u, 3u}, {3u, 3u}}) {
    const FPlusOneFactory factory(k);
    const SimWorld world(cfg(k, FaultKind::kOverriding, kUnbounded),
                         factory, inputs(n));
    const auto result = sched::longest_execution(world);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.bounded);
    EXPECT_EQ(result.max_total_steps, k * n) << "k=" << k << " n=" << n;
  }
}

TEST(LongestExecution, StagedWorstCaseIsFiniteAndAboveSolo) {
  // The staged protocol's retry loops make the bound schedule-dependent;
  // the checker certifies it is finite (wait-freedom!) and locates it
  // between the solo cost and a crude upper bound.
  const StagedFactory factory(1, 1);
  const SimWorld world(cfg(1, FaultKind::kOverriding, 1), factory,
                       inputs(2));
  const auto result = sched::longest_execution(world);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.bounded);
  const std::uint64_t solo = 1 * 5 + 2;  // f·maxStage + 2
  EXPECT_GE(result.max_total_steps, solo);
  EXPECT_LE(result.max_total_steps, 4 * solo);
}

TEST(LongestExecution, UnboundedSilentRetryIsDetectedAsUnbounded) {
  const RetrySilentFactory factory;
  const SimWorld world(cfg(1, FaultKind::kSilent, kUnbounded), factory,
                       inputs(2));
  const auto result = sched::longest_execution(world);
  EXPECT_FALSE(result.bounded);
}

TEST(LongestExecution, BoundedSilentRetryHasFiniteBound) {
  const RetrySilentFactory factory;
  const SimWorld world(cfg(1, FaultKind::kSilent, 2), factory, inputs(2));
  const auto result = sched::longest_execution(world);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.bounded);
  // Each silent fault costs the victim at most 2 extra steps; 2 procs ×
  // (1 attempt + 1 confirm) + recovery is comfortably under 12.
  EXPECT_GE(result.max_total_steps, 4u);
  EXPECT_LE(result.max_total_steps, 12u);
}

TEST(LongestExecution, RespectsStateCap) {
  const StagedFactory factory(2, 2);
  const SimWorld world(cfg(2, FaultKind::kOverriding, 2), factory,
                       inputs(3));
  sched::ExploreOptions options;
  options.max_states = 100;
  const auto result = sched::longest_execution(world, options);
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace ff
