// Tests of the universal construction layer: the consensus-backed log
// and Replicated<T> objects, on correct and on faulty CAS substrates.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "legacy/f_plus_one.hpp"
#include "legacy/single_cas.hpp"
#include "faults/bank.hpp"
#include "objects/atomic_cas.hpp"
#include "universal/log.hpp"
#include "universal/replicated.hpp"
#include "util/spin_barrier.hpp"

namespace ff::universal {
namespace {

// --- sequential object types for Replicated<T> ------------------------------

struct Counter {
  using State = std::int64_t;
  static State initial() { return 0; }
  static void apply(State& state, std::uint32_t payload) {
    state += static_cast<std::int32_t>(payload);
  }
};

struct AppendLog {
  using State = std::vector<std::uint32_t>;
  static State initial() { return {}; }
  static void apply(State& state, std::uint32_t payload) {
    state.push_back(payload);
  }
};

/// Slot factory over correct CAS objects.
ConsensusLog::SlotFactory correct_slots(
    std::vector<std::unique_ptr<objects::AtomicCas>>& storage) {
  return [&storage](std::uint64_t) {
    storage.push_back(std::make_unique<objects::AtomicCas>(0));
    return std::make_unique<consensus::SingleCasConsensus>(*storage.back());
  };
}

/// Slot factory over faulty CAS banks (Figure 2, f=1 → 2 objects each).
ConsensusLog::SlotFactory faulty_slots(
    std::vector<std::unique_ptr<faults::FaultyCasBank>>& storage,
    faults::FaultPolicy& policy) {
  return [&storage, &policy](std::uint64_t slot) {
    faults::FaultyCasBank::Options options;
    options.objects = 2;
    options.f = 1;
    options.policy = &policy;
    options.seed = 0x10c + slot;
    storage.push_back(std::make_unique<faults::FaultyCasBank>(options));
    return std::make_unique<consensus::FPlusOneConsensus>(
        storage.back()->raw());
  };
}

// --- Operation packing -------------------------------------------------------

TEST(Operation, PackUnpackRoundTrip) {
  const Operation op{7, 12345, 0xDEADBEEF};
  const Operation back = Operation::unpack(op.pack());
  EXPECT_EQ(back, op);
}

TEST(Operation, DistinctProposersPackDistinctly) {
  EXPECT_NE((Operation{1, 0, 5}).pack(), (Operation{2, 0, 5}).pack());
  EXPECT_NE((Operation{1, 0, 5}).pack(), (Operation{1, 1, 5}).pack());
}

// --- ConsensusLog ------------------------------------------------------------

TEST(ConsensusLog, SingleThreadAppendsInOrder) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  ConsensusLog log(8, correct_slots(storage));
  std::uint64_t cursor = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto result = log.append({0, i, i * 10}, cursor);
    EXPECT_EQ(result.index, i);
    EXPECT_EQ(result.losses, 0u);
  }
  EXPECT_EQ(log.known_prefix(), 8u);
  EXPECT_THROW(log.append({0, 9, 0}, cursor), std::length_error);
}

TEST(ConsensusLog, LearnReturnsDecidedOperations) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  ConsensusLog log(4, correct_slots(storage));
  std::uint64_t cursor = 0;
  log.append({3, 0, 111}, cursor);
  const Operation learned = log.learn(0, /*pid=*/5);
  EXPECT_EQ(learned.pid, 3u);
  EXPECT_EQ(learned.payload, 111u);
}

TEST(ConsensusLog, ConcurrentAppendersProduceOneTotalOrder) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kOpsEach = 20;
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  ConsensusLog log(kThreads * kOpsEach + 8, correct_slots(storage));

  util::SpinBarrier barrier(kThreads);
  std::vector<std::vector<std::uint64_t>> won(kThreads);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      std::uint64_t cursor = 0;
      for (std::uint32_t i = 0; i < kOpsEach; ++i) {
        const auto result = log.append(
            {static_cast<objects::ProcessId>(p), i, p * 1000 + i}, cursor);
        won[p].push_back(result.index);
      }
    });
  }
  for (auto& t : threads) t.join();

  // All operations landed, each in a distinct slot, own ops in order.
  std::set<std::uint64_t> slots;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    ASSERT_EQ(won[p].size(), kOpsEach);
    for (std::size_t i = 0; i + 1 < won[p].size(); ++i) {
      EXPECT_LT(won[p][i], won[p][i + 1]);
    }
    slots.insert(won[p].begin(), won[p].end());
  }
  EXPECT_EQ(slots.size(), kThreads * kOpsEach);
  // The decided prefix contains every op exactly once.
  EXPECT_GE(log.known_prefix(), kThreads * kOpsEach);
}

TEST(ConsensusLog, WorksOverFaultyCasSubstrate) {
  faults::ProbabilisticFault policy(0.6, 77);
  std::vector<std::unique_ptr<faults::FaultyCasBank>> storage;
  ConsensusLog log(64, faulty_slots(storage, policy));

  constexpr std::uint32_t kThreads = 3;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      std::uint64_t cursor = 0;
      std::uint64_t last = 0;
      for (std::uint32_t i = 0; i < 15; ++i) {
        const auto result = log.append(
            {static_cast<objects::ProcessId>(p), i, i}, cursor);
        if (i > 0 && result.index <= last) failed.store(true);
        last = result.index;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(log.known_prefix(), 45u);
}

// --- Replicated<T> -----------------------------------------------------------

TEST(Replicated, CounterSequential) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  Replicated<Counter> counter(16, correct_slots(storage));
  auto handle = counter.handle(0);
  EXPECT_EQ(handle.apply(5), 5);
  EXPECT_EQ(handle.apply(7), 12);
  EXPECT_EQ(handle.state(), 12);
}

TEST(Replicated, TwoHandlesConverge) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  Replicated<Counter> counter(16, correct_slots(storage));
  auto a = counter.handle(0);
  auto b = counter.handle(1);
  a.apply(10);
  b.apply(1);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.state(), 11);
}

TEST(Replicated, AllReplicasSeeTheSameOrder) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kOpsEach = 10;
  faults::ProbabilisticFault policy(0.5, 99);
  std::vector<std::unique_ptr<faults::FaultyCasBank>> storage;
  Replicated<AppendLog> object(kThreads * kOpsEach + 4,
                               faulty_slots(storage, policy));

  util::SpinBarrier barrier(kThreads);
  std::vector<std::vector<std::uint32_t>> finals(kThreads);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      auto handle = object.handle(static_cast<objects::ProcessId>(p));
      barrier.arrive_and_wait();
      for (std::uint32_t i = 0; i < kOpsEach; ++i) {
        handle.apply(p * 100 + i);
      }
      barrier.arrive_and_wait();  // everyone finished appending
      finals[p] = handle.state();
    });
  }
  for (auto& t : threads) t.join();

  // Every replica applied the identical sequence.
  for (std::uint32_t p = 1; p < kThreads; ++p) {
    EXPECT_EQ(finals[p], finals[0]) << "replica " << p << " diverged";
  }
  EXPECT_EQ(finals[0].size(), kThreads * kOpsEach);
  // Per-proposer subsequences appear in program order.
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    std::uint32_t expected = 0;
    for (const std::uint32_t payload : finals[0]) {
      if (payload / 100 == p) {
        EXPECT_EQ(payload % 100, expected);
        ++expected;
      }
    }
    EXPECT_EQ(expected, kOpsEach);
  }
}

TEST(Replicated, HandleTracksAppliedCount) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  Replicated<Counter> counter(8, correct_slots(storage));
  auto handle = counter.handle(2);
  EXPECT_EQ(handle.applied(), 0u);
  handle.apply(1);
  EXPECT_EQ(handle.applied(), 1u);
  EXPECT_EQ(handle.pid(), 2u);
}

}  // namespace
}  // namespace ff::universal
