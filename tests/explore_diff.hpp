// Shared differential-testing helper: runs the sequential and the
// parallel explorer over the same SimWorld and asserts their results are
// equivalent.
//
// Quantities that are properties of the reachable state GRAPH must match
// exactly: states_visited, terminal_states, per-terminal violation counts
// (inconsistent / invalid / stalled), the agreed-value set, and
// completeness.  kNontermination counts are traversal-defined in both
// explorers (DFS back-edges vs. SCC-internal process edges), so only
// presence/absence is compared.  Witnesses are validated semantically by
// replaying them — see expect_witness_reproduces().
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"
#include "sched/parallel_explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff::testutil {

inline std::vector<std::uint64_t> iota_inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

/// One cell of the differential grid: a protocol machine factory plus a
/// fault kind and an (f, t) budget.
struct GridCase {
  std::string name;
  std::shared_ptr<const sched::MachineFactory> factory;
  model::FaultKind kind = model::FaultKind::kOverriding;
  std::uint32_t t = 1;
  std::uint32_t n = 2;
  bool corruption_steps = false;
};

[[nodiscard]] inline sched::SimWorld make_world(const GridCase& gc) {
  sched::SimConfig config;
  config.num_objects = gc.factory->objects_used();
  config.num_registers = gc.factory->registers_used();
  config.kind = gc.kind;
  config.t = gc.t;
  config.allow_corruption_steps = gc.corruption_steps;
  return sched::SimWorld(config, *gc.factory, iota_inputs(gc.n));
}

[[nodiscard]] inline sched::ExploreOptions full_space_options(
    const GridCase& gc) {
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  options.killed_is_violation =
      gc.kind == model::FaultKind::kNonresponsive;
  return options;
}

/// The seed-protocol × fault-kind × (f, t) grid.  Every configuration is
/// small enough for an exhaustive sequential pass, so the sequential
/// explorer acts as the trusted oracle.
[[nodiscard]] inline std::vector<GridCase> differential_grid() {
  using consensus::AnnounceCasFactory;
  using consensus::FPlusOneFactory;
  using consensus::RetrySilentFactory;
  using consensus::SingleCasFactory;
  using consensus::StagedFactory;
  using consensus::TasFactory;
  using model::FaultKind;
  using model::kUnbounded;

  std::vector<GridCase> grid;
  const auto tag = [](std::uint32_t t) {
    return t == kUnbounded ? std::string("inf") : std::to_string(t);
  };

  // Single-CAS (Figure 1): every per-operation fault kind, bounded and
  // unbounded budgets, two and three processes.
  for (const std::uint32_t n : {2u, 3u}) {
    for (const FaultKind kind :
         {FaultKind::kOverriding, FaultKind::kSilent, FaultKind::kInvisible,
          FaultKind::kArbitrary, FaultKind::kNonresponsive}) {
      for (const std::uint32_t t : {1u, kUnbounded}) {
        grid.push_back({"single-cas/" + std::string(model::to_string(kind)) +
                            "/t" + tag(t) + "/n" + std::to_string(n),
                        std::make_shared<SingleCasFactory>(), kind, t, n});
      }
    }
  }
  // Single-CAS under adversary data corruption (Afek model).
  grid.push_back({"single-cas/data/t1/n2",
                  std::make_shared<SingleCasFactory>(),
                  FaultKind::kDataCorruption, 1, 2, true});

  // TAS (register-augmented, hierarchy level 2).
  for (const std::uint32_t n : {2u, 3u}) {
    for (const FaultKind kind : {FaultKind::kOverriding, FaultKind::kSilent}) {
      grid.push_back({"tas/" + std::string(model::to_string(kind)) + "/t1/n" +
                          std::to_string(n),
                      std::make_shared<TasFactory>(n), kind, 1, n});
    }
  }

  // f+1 ensembles (Figure 2 / Theorem 5) and the f-object candidate.
  for (const std::uint32_t n : {2u, 3u}) {
    for (const std::uint32_t t : {1u, kUnbounded}) {
      grid.push_back({"fp1-k2/overriding/t" + tag(t) + "/n" +
                          std::to_string(n),
                      std::make_shared<FPlusOneFactory>(2),
                      FaultKind::kOverriding, t, n});
    }
  }
  grid.push_back({"fp1-k3/overriding/tinf/n3",
                  std::make_shared<FPlusOneFactory>(3),
                  FaultKind::kOverriding, kUnbounded, 3});

  // Staged (Figure 3) at matching (f, t) budgets.
  for (const auto& [f, t, n] :
       std::vector<std::array<std::uint32_t, 3>>{
           {1, 1, 2}, {1, 1, 3}, {1, 2, 2}, {2, 1, 2}, {2, 2, 2}}) {
    grid.push_back({"staged-f" + std::to_string(f) + "t" + std::to_string(t) +
                        "/overriding/n" + std::to_string(n),
                    std::make_shared<StagedFactory>(f, t),
                    FaultKind::kOverriding, t, n});
  }

  // Retry-silent (§3.4): tolerant at bounded t, livelocks at t = ∞ (the
  // t = ∞ cell is the grid's nontermination case).
  for (const auto& [t, n] : std::vector<std::array<std::uint32_t, 2>>{
           {1, 2}, {1, 3}, {2, 2}, {2, 3}, {kUnbounded, 2}}) {
    grid.push_back({"retry-silent/silent/t" + tag(t) + "/n" +
                        std::to_string(n),
                    std::make_shared<RetrySilentFactory>(),
                    FaultKind::kSilent, t, n});
  }

  // Announce-and-tiebreak (registers beside the CAS object).
  for (const std::uint32_t n : {2u, 3u}) {
    grid.push_back({"announce/overriding/t1/n" + std::to_string(n),
                    std::make_shared<AnnounceCasFactory>(n),
                    FaultKind::kOverriding, 1, n});
  }
  return grid;
}

/// Replays a witness and asserts it actually exhibits the reported
/// violation kind (inconsistency/invalidity/stall at a terminal state; a
/// revisited state with a process step in the repeated suffix for
/// nontermination).
inline void expect_witness_reproduces(const sched::SimWorld& initial,
                                      const sched::Violation& violation,
                                      const std::string& label) {
  if (violation.kind == sched::ViolationKind::kNontermination) {
    sched::SimWorld cur = initial;
    std::vector<std::vector<std::uint64_t>> encodes{cur.encode()};
    for (const sched::Choice& c : violation.schedule) {
      cur.apply(c);
      encodes.push_back(cur.encode());
    }
    ASSERT_GE(encodes.size(), 2u) << label;
    const auto& final_state = encodes.back();
    bool repeats = false;
    for (std::size_t i = 0; i + 1 < encodes.size(); ++i) {
      if (encodes[i] != final_state) continue;
      repeats = true;
      bool process_steps = false;
      for (std::size_t k = i; k < violation.schedule.size(); ++k) {
        if (violation.schedule[k].pid != sched::kAdversaryPid) {
          process_steps = true;
          break;
        }
      }
      EXPECT_TRUE(process_steps)
          << label << ": cycle has no process step";
      break;
    }
    EXPECT_TRUE(repeats)
        << label << ": nontermination witness does not revisit a state";
    return;
  }

  const sched::SimWorld replayed =
      sched::replay(initial, violation.schedule);
  ASSERT_TRUE(replayed.terminal()) << label;
  const auto decisions = replayed.decisions();
  switch (violation.kind) {
    case sched::ViolationKind::kInconsistent: {
      std::set<std::uint64_t> distinct;
      for (const auto& d : decisions) {
        if (d) distinct.insert(*d);
      }
      EXPECT_GE(distinct.size(), 2u) << label;
      break;
    }
    case sched::ViolationKind::kInvalid: {
      const auto& inputs = replayed.inputs();
      const std::set<std::uint64_t> input_set(inputs.begin(), inputs.end());
      bool bad = false;
      for (const auto& d : decisions) {
        if (d && !input_set.contains(*d)) bad = true;
      }
      EXPECT_TRUE(bad) << label;
      break;
    }
    case sched::ViolationKind::kStalled:
      EXPECT_TRUE(replayed.any_killed()) << label;
      break;
    case sched::ViolationKind::kNontermination:
      break;  // handled above
  }
}

/// Full-space differential check: the parallel run must agree with the
/// sequential oracle on every graph-derived quantity, and its witness (if
/// any) must replay to a real violation.
inline void expect_parallel_matches_sequential(
    const GridCase& gc, const sched::ParallelExploreOptions& popts) {
  const sched::SimWorld world = make_world(gc);
  const std::string label =
      gc.name + " threads=" + std::to_string(popts.num_threads);

  const auto seq = sched::explore(world, popts.explore);
  const auto par = sched::parallel_explore(world, popts);

  EXPECT_TRUE(seq.complete) << label;
  EXPECT_TRUE(par.complete) << label;
  EXPECT_EQ(seq.states_visited, par.states_visited) << label;
  EXPECT_EQ(seq.terminal_states, par.terminal_states) << label;
  EXPECT_EQ(seq.agreed_values, par.agreed_values) << label;
  using sched::ViolationKind;
  for (const ViolationKind kind :
       {ViolationKind::kInconsistent, ViolationKind::kInvalid,
        ViolationKind::kStalled}) {
    EXPECT_EQ(seq.violations_of(kind), par.violations_of(kind))
        << label << " kind=" << sched::to_string(kind);
  }
  EXPECT_EQ(seq.violations_of(ViolationKind::kNontermination) > 0,
            par.violations_of(ViolationKind::kNontermination) > 0)
      << label;
  EXPECT_EQ(seq.violation.has_value(), par.violation.has_value()) << label;
  if (par.violation) {
    expect_witness_reproduces(world, *par.violation, label);
  }
}

}  // namespace ff::testutil
