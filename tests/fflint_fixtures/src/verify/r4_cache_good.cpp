// Fixture: R4 negative — the census cache's sanctioned loop shapes:
// the entry-load retry loop is bounded by a fixed attempt count (a
// rename landing mid-read deserves a few re-reads, then the entry is a
// miss) and the eviction sweep charges a BudgetMeter per file.
#include <cstdint>
#include <string>

namespace ff::verify {

struct FakeEntry {
  bool ok = false;
};

struct FakeMeter {
  std::uint64_t left = 1024;
  bool charge() { return left > 0 && left-- > 0; }
};

FakeEntry read_once(const std::string& path, std::uint64_t attempt);

FakeEntry load_entry(const std::string& path) {
  constexpr std::uint64_t kLoadAttempts = 3;
  for (std::uint64_t attempt = 0; attempt < kLoadAttempts; ++attempt) {
    const FakeEntry entry = read_once(path, attempt);
    if (entry.ok) return entry;
  }
  return {};  // bounded retries exhausted: a miss, never a hang
}

std::uint64_t sweep(std::uint64_t cursor, FakeMeter& meter) {
  while (true) {
    if (!meter.charge()) break;  // budget poll: honest truncation
    if ((cursor & 0xFF) == 0) break;
    cursor = cursor * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return cursor;
}

}  // namespace ff::verify
