// Fixture: R4 positive — census-cache loop shapes with the bound
// dropped: an entry-load retry loop (a concurrent rename can land
// mid-read, but retrying FOREVER turns one corrupt file into a hang)
// and an eviction sweep in infinite form.
#include <cstdint>
#include <string>

namespace ff::verify {

struct FakeEntry {
  bool ok = false;
};

FakeEntry read_once(const std::string& path, std::uint64_t attempt);

FakeEntry load_entry(const std::string& path) {
  std::uint64_t attempt = 0;
  while (true) {             // line 18: R4 (retry loop, no bound)
    const FakeEntry entry = read_once(path, attempt++);
    if (entry.ok) return entry;
  }
}

std::uint64_t sweep(std::uint64_t cursor) {
  for (;;) {                 // line 25: R4 (eviction sweep, no bound)
    if ((cursor & 0xFF) == 0) break;
    cursor = cursor * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return cursor;
}

}  // namespace ff::verify
