// Fixture: R2 positive — direct crash-injection primitives in
// model-checked code, one per line so the test can pin line numbers.
// Each kills or teleports control flow behind the model's back: a crash
// the explorer cannot branch on, budget, or replay.
#include <csetjmp>
#include <csignal>
#include <cstdlib>

namespace ff::consensus {

std::jmp_buf recovery_env;

unsigned crashy_decide(unsigned v) {
  if (v == 0) abort();                        // line 14: R2
  if (v == 1) std::_Exit(2);                  // line 15: R2
  if (v == 2) raise(SIGABRT);                 // line 16: R2
  if (setjmp(recovery_env) != 0) return v;    // line 17: R2
  if (v == 3) longjmp(recovery_env, 1);       // line 18: R2
  return v;
}

}  // namespace ff::consensus
