// Fixture: R2 negative — the sanctioned crash idiom: a deterministic
// policy object decides the crash point and the runtime unwinds with an
// exception, so the simulator can enumerate the identical branch and a
// witness replays it.
namespace ff::consensus {

struct CrashError {};

struct PolicyLike {
  unsigned fire_at = 0;
  bool should_crash(unsigned op) const { return op == fire_at; }
};

unsigned guarded_step(const PolicyLike& policy, unsigned op, unsigned v) {
  if (policy.should_crash(op)) throw CrashError{};
  return v + 1;
}

}  // namespace ff::consensus
