// Fixture: R2 negative — the sanctioned determinism idioms: seeded
// hash-based randomness, caller-supplied bounds, immutable statics.
#include <cstdint>

namespace ff::consensus {

inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return x ^ (x >> 29);
}

static constexpr std::uint32_t kMaxRounds = 64;

std::uint64_t decide(std::uint64_t seed, std::uint64_t round) {
  static const std::uint64_t kSalt = 0x9e3779b97f4a7c15ULL;
  return mix64(seed ^ kSalt ^ round) % kMaxRounds;
}

}  // namespace ff::consensus
