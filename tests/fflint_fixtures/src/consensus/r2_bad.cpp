// Fixture: R2 positive — every nondeterminism source the rule bans,
// each on its own line so the test can pin line numbers.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <random>

namespace ff::consensus {

unsigned flaky_decide(unsigned n) {
  unsigned v = static_cast<unsigned>(rand());        // line 11: R2
  std::random_device rd;                             // line 12: R2
  auto t = std::chrono::steady_clock::now();         // line 13: R2
  thread_local unsigned cache = 0;                   // line 14: R2
  static unsigned calls = 0;                         // line 15: R2
  std::hash<int*> by_address;                        // line 16: R2
  ++calls;
  cache += v + static_cast<unsigned>(t.time_since_epoch().count());
  return cache % (n + 1) + static_cast<unsigned>(by_address(nullptr));
}

}  // namespace ff::consensus
