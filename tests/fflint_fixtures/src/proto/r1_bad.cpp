// Fixture: R1 positive — raw shared-state primitives in the protocol-IR
// layer.  IrMachine state must flow through the simulator's object layer,
// never through ambient atomics.  Never compiled; lexed by test_fflint.
#include <atomic>
#include <cstdint>

namespace ff::proto {

class CachedDecision {
 public:
  void publish(std::uint64_t v) { decision_.store(v); }

 private:
  std::atomic<std::uint64_t> decision_{0};  // line 14: R1 (raw std::atomic)
};

}  // namespace ff::proto
