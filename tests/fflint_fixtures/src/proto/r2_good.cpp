// Fixture: R2 negative — the deterministic idioms the protocol-IR layer
// actually uses: immutable static tables (the registry singleton) and
// parameter-folded constants.
#include <cstdint>

namespace ff::proto {

static constexpr std::uint64_t kBottomWord = ~std::uint64_t{0};

std::uint64_t fold_stage(std::uint64_t word) {
  static const std::uint64_t kStageShift = 32;
  return word >> kStageShift;
}

std::uint64_t is_bottom(std::uint64_t word) {
  return word == kBottomWord ? 1 : 0;
}

}  // namespace ff::proto
