// Fixture: R2 positive — nondeterminism in protocol-IR code.  A Program
// must be a pure function of (name, params); a mutable build counter or
// rand()-seeded tie-break would make two builds of the same protocol
// disagree, breaking the encode()-equality contract.
#include <cstdlib>

namespace ff::proto {

unsigned jitter(unsigned bound) {
  static unsigned salt = 0;                      // line 10: R2 (mutable static)
  salt += static_cast<unsigned>(rand());         // line 11: R2 (rand)
  return salt % bound;
}

}  // namespace ff::proto
