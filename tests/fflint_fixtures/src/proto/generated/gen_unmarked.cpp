// Fixture: generated-exemption positive — no ffgen stamp at all, so a
// hand-written file squatting in src/proto/generated/ stays governed.
#include <cstdlib>

namespace ff::proto::gen {

unsigned jitter() { return static_cast<unsigned>(rand()); }  // line 7: R2

}  // namespace ff::proto::gen
