// Fixture: R3 negative — both sanctioned stamping shapes: under the
// lock that covers the linearization point, or fused with an atomic RMW
// so the stamp IS the linearization point.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ff::faults {

struct Event {
  std::uint64_t seq = 0;
};

class SoundSink {
 public:
  void on_event(const Event& event) {
    const std::lock_guard<std::mutex> lock(mu_);
    Event e = event;
    e.seq = next_seq_++;
    events_.push_back(e);
  }

  std::uint64_t stamp_lock_free() {
    return seq_counter_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> events_;
  std::atomic<std::uint64_t> seq_counter_{0};
};

}  // namespace ff::faults
