// Fixture: R3 positive — the exact PR 1 bug class: the sink assigns the
// sequence number and records the event AFTER the lock that covers the
// linearization point has been released, so two concurrent invocations
// can linearize in one order and stamp in the other.
#include <cstdint>
#include <mutex>
#include <vector>

namespace ff::faults {

struct Event {
  std::uint64_t seq = 0;
};

class LeakySink {
 public:
  void on_event(const Event& event) {
    Event e = event;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      // linearization point is inside this scope...
    }
    e.seq = next_seq_++;     // line 23: R3 (stamp after the lock released)
    events_.push_back(e);    // line 24: R3 (record outside the lock)
  }

 private:
  std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> events_;
};

}  // namespace ff::faults
