// Fixture: R1 negative — std::atomic inside the object layer is the
// whole point of src/objects/, so nothing here may be flagged.
#include <atomic>
#include <cstdint>

namespace ff::objects {

class WordCell {
 public:
  std::uint64_t read() const { return word_.load(); }

 private:
  std::atomic<std::uint64_t> word_{0};
};

}  // namespace ff::objects
