// Fixture: R4 negative — the frontier engine's sanctioned loop shapes:
// the worker expand loop charges a BudgetMeter per item and the
// handoff-ring drain loop polls expiry, so exhaustion turns into honest
// truncation instead of an unbounded spin.
#include <cstdint>

namespace ff::sched {

struct FakeMeter {
  std::uint64_t left = 64;
  bool expired() { return left == 0; }
  bool charge() {
    if (left == 0) return false;
    --left;
    return true;
  }
};

struct FakeRing {
  std::uint64_t next = 0;
  bool try_pop(std::uint64_t& out) {
    out = next;
    return (next++ & 7) != 0;
  }
};

std::uint64_t worker_loop(FakeRing& ring, FakeMeter& meter) {
  std::uint64_t sum = 0;
  while (true) {
    if (!meter.charge()) break;
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) break;
    sum += item;
  }
  for (;;) {
    if (meter.expired()) break;
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) break;
    sum ^= item;
  }
  return sum;
}

}  // namespace ff::sched
