// Fixture: R5 negative — a justified suppression: the R1 finding below
// is silenced, the justification is carried into the report, and the
// directive is marked used.
#include <atomic>
#include <cstdint>

namespace ff::sched {

class Probe {
 private:
  // ff-lint: allow(R1): fixture counter standing in for checker-internal state
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace ff::sched
