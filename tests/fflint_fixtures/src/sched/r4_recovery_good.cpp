// Fixture: R4 negative — the sanctioned recovery shape: every restart
// loop is bounded on the per-process crash budget (or a BudgetMeter),
// so a crash-looping process terminates the moment its budget is spent.
#include <cstdint>

namespace ff::sched {

void restart_process(std::uint32_t pid);

std::uint32_t respawn_within_budget(bool& crashed,
                                    std::uint32_t crash_budget) {
  std::uint32_t incarnation = 0;
  while (crashed && incarnation <= crash_budget) {
    ++incarnation;
    crashed = incarnation < 3;
  }
  std::uint32_t budget_left = crash_budget;
  while (budget_left > 0) {
    restart_process(budget_left);
    --budget_left;
  }
  return incarnation;
}

}  // namespace ff::sched
