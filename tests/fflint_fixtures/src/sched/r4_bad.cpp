// Fixture: R4 positive — infinite-form loops in scheduler code that
// never consult a BudgetMeter: an adversarial schedule can spin forever
// instead of reporting truncation.
#include <cstdint>

namespace ff::sched {

std::uint64_t drain(std::uint64_t x) {
  while (true) {             // line 9: R4 (no budget consulted)
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((x & 0xFF) == 0) break;
  }
  for (;;) {                 // line 13: R4 (no budget consulted)
    if (x == 0) break;
    x >>= 1;
  }
  return x;
}

}  // namespace ff::sched
