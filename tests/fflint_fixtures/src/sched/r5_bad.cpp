// Fixture: R5 positive — malformed suppressions.  A bare allow() is
// indistinguishable from a silenced bug, and an unknown rule id is a
// typo that would silently suppress nothing.
#include <cstdint>

namespace ff::sched {

// ff-lint: allow(R1)
std::uint64_t unjustified(std::uint64_t x) {  // line 9: the bare allow
  return x + 1;                               //   above is an R5 finding
}

// ff-lint: allow(R9): rule R9 does not exist, so this is a typo
std::uint64_t unknown_rule(std::uint64_t x) { return x + 2; }

// ff-lint: deny(R1): only allow() exists in the directive grammar
std::uint64_t unknown_verb(std::uint64_t x) { return x + 3; }

}  // namespace ff::sched
