// Fixture: R4 positive — recovery/restart loops that never consult the
// crash budget: a crash-looping process respawns forever instead of
// exhausting its budget and letting the trial terminate.
#include <cstdint>

namespace ff::sched {

void restart_process(std::uint32_t pid);

std::uint32_t respawn_forever(bool& crashed) {
  std::uint32_t incarnation = 0;
  while (crashed) {                    // line 12: R4 (unbudgeted recovery)
    ++incarnation;
    crashed = incarnation < 3;
  }
  std::uint32_t spawned = 0;
  while (spawned < 8) {                // line 17: R4 (unbudgeted restart)
    restart_process(spawned);
    ++spawned;
  }
  return incarnation;
}

}  // namespace ff::sched
