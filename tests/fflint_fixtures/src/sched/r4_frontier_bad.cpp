// Fixture: R4 positive — frontier-engine loop shapes with the budget
// poll dropped: a worker's expand loop and its handoff-ring drain loop
// in infinite form.  An adversarial schedule (or a peer that never
// quiesces) spins them forever instead of reporting truncation.
#include <cstdint>

namespace ff::sched {

struct FakeRing {
  std::uint64_t next = 0;
  bool try_pop(std::uint64_t& out) {
    out = next;
    return (next++ & 7) != 0;
  }
};

std::uint64_t worker_loop(FakeRing& ring) {
  std::uint64_t sum = 0;
  while (true) {             // line 19: R4 (expand loop, no budget)
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) break;
    sum += item;
  }
  for (;;) {                 // line 24: R4 (drain loop, no budget)
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) break;
    sum ^= item;
  }
  return sum;
}

}  // namespace ff::sched
