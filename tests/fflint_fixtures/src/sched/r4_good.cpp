// Fixture: R4 negative — the sanctioned shape: every infinite-form loop
// polls its BudgetMeter, so exhaustion turns into honest truncation.
#include <cstdint>

namespace ff::sched {

struct FakeMeter {
  std::uint64_t left = 16;
  bool expired() { return left == 0; }
  bool charge() {
    if (left == 0) return false;
    --left;
    return true;
  }
};

std::uint64_t drain(std::uint64_t x, FakeMeter& meter) {
  while (true) {
    if (meter.expired()) break;
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  for (;;) {
    if (!meter.charge()) break;
    x >>= 1;
  }
  return x;
}

}  // namespace ff::sched
