// Fixture: R1 positive — raw shared-state primitives in scheduler code.
// Never compiled; lexed by test_fflint.cpp through the fixture tree.
#include <atomic>
#include <cstdint>

namespace ff::sched {

class LeakyCensus {
 public:
  void bump() { hits_.fetch_add(1); }

 private:
  std::atomic<std::uint64_t> hits_{0};  // line 13: R1 (raw std::atomic)
  volatile std::uint64_t mirror_ = 0;   // line 14: R1 (volatile)
};

}  // namespace ff::sched
