// Fixture: R4 positive, nested directory — scope is inherited by path
// prefix, so reduction helpers under src/sched/reduce/ are governed the
// same as src/sched/ itself.  Both canonicalization loops below spin
// without ever consulting a BudgetMeter.
#include <cstdint>

namespace ff::sched::reduce {

std::uint64_t settle(std::uint64_t word) {
  while (true) {             // line 10: R4 (no budget consulted)
    const std::uint64_t next = (word >> 1) ^ (word << 63);
    if (next >= word) break;
    word = next;
  }
  for (;;) {                 // line 15: R4 (no budget consulted)
    if ((word & 1) == 0) break;
    word = word * 0x9e3779b97f4a7c15ULL;
  }
  return word;
}

}  // namespace ff::sched::reduce
