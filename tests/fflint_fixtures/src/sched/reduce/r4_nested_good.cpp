// Fixture: R4 negative, nested directory — the same canonicalization
// loops as r4_nested_bad.cpp, but every infinite-form loop polls its
// BudgetMeter so exhaustion becomes honest truncation.
#include <cstdint>

namespace ff::sched::reduce {

struct FakeMeter {
  std::uint64_t left = 16;
  bool expired() { return left == 0; }
  bool charge() {
    if (left == 0) return false;
    --left;
    return true;
  }
};

std::uint64_t settle(std::uint64_t word, FakeMeter& meter) {
  while (true) {
    if (meter.expired()) break;
    const std::uint64_t next = (word >> 1) ^ (word << 63);
    if (next >= word) break;
    word = next;
  }
  for (;;) {
    if (!meter.charge()) break;
    word = word * 0x9e3779b97f4a7c15ULL;
  }
  return word;
}

}  // namespace ff::sched::reduce
