// Concurrency hardening: the fault-injection substrate under parallel
// hammering — budget invariants, trace integrity, jitter decorator — and
// seed-parameterized property sweeps of the randomized harnesses.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "legacy/f_plus_one.hpp"
#include "legacy/machines.hpp"
#include "legacy/single_cas.hpp"
#include "faults/bank.hpp"
#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "objects/atomic_cas.hpp"
#include "runtime/jitter.hpp"
#include "runtime/stress.hpp"
#include "sched/random_walk.hpp"
#include "util/spin_barrier.hpp"

namespace ff {
namespace {

using model::FaultKind;
using model::Value;

TEST(BudgetConcurrency, NeverExceedsFTimesTUnderHammering) {
  constexpr std::uint32_t kObjects = 8;
  constexpr std::uint32_t kF = 3;
  constexpr std::uint32_t kT = 5;
  constexpr std::uint32_t kThreads = 8;
  constexpr int kOpsPerThread = 2000;

  faults::FaultBudget budget(kObjects, kF, kT);
  util::SpinBarrier barrier(kThreads);
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto obj =
            static_cast<objects::ObjectId>((p + i) % kObjects);
        if (budget.try_consume(obj)) {
          granted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(granted.load(), kF * kT);
  EXPECT_LE(budget.designated_count(), kF);
  EXPECT_EQ(budget.total_faults_used(), granted.load());
  std::uint32_t designated = 0;
  for (objects::ObjectId o = 0; o < kObjects; ++o) {
    if (budget.is_designated(o)) {
      ++designated;
      EXPECT_LE(budget.faults_used(o), kT);
    } else {
      EXPECT_EQ(budget.faults_used(o), 0u);
    }
  }
  EXPECT_LE(designated, kF);
  // With 8 threads hammering, the budget should actually be consumed.
  EXPECT_EQ(granted.load(), kF * kT);
}

TEST(FaultyCasConcurrency, TraceCoherentAndBudgetedUnderHammering) {
  constexpr std::uint32_t kThreads = 6;
  constexpr int kOpsPerThread = 500;
  constexpr std::uint32_t kT = 7;

  faults::AlwaysFault policy;
  faults::FaultBudget budget(1, 1, kT);
  faults::VectorTraceSink sink;
  faults::FaultyCas object(0, FaultKind::kOverriding, &policy, &budget,
                           &sink);

  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        object.cas(Value::of(p * 10000 + i), Value::of(p * 10000 + i + 1),
                   p);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto trace = sink.snapshot();
  EXPECT_EQ(trace.size(), kThreads * kOpsPerThread);
  // Every event individually satisfies the Φ/Φ′ it claims.
  EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value());
  // Manifested faults within budget.
  const auto acc = consensus::account_faults(trace);
  EXPECT_LE(acc.total_manifested, kT);
  // Sequence numbers are dense and unique.
  std::vector<bool> seen(trace.size(), false);
  for (const auto& ev : trace) {
    ASSERT_LT(ev.seq, trace.size());
    EXPECT_FALSE(seen[ev.seq]);
    seen[ev.seq] = true;
  }
}

TEST(FaultyCasConcurrency, RegisterChainIsLinearizable) {
  // The sequence of (before → after) transitions recorded at the
  // linearization points must chain: sorted by seq, each event's before
  // equals the previous event's after (single object, every event is a
  // point mutation or identity).
  constexpr std::uint32_t kThreads = 4;
  constexpr int kOpsPerThread = 400;
  faults::AlwaysFault policy;
  faults::VectorTraceSink sink;
  faults::FaultyCas object(0, FaultKind::kOverriding, &policy, nullptr,
                           &sink);

  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        object.cas(Value::bottom(), Value::of(p * 10000 + i), p);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto trace = sink.snapshot();
  std::sort(trace.begin(), trace.end(),
            [](const auto& a, const auto& b) { return a.seq < b.seq; });
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].obs.before, trace[i - 1].obs.after)
        << "linearization chain broken at seq " << i;
  }
}

TEST(JitterCas, TransparentlyForwards) {
  objects::AtomicCas inner(0);
  runtime::JitterCas jitter(inner, /*seed=*/42, /*max_yields=*/2);
  EXPECT_EQ(jitter.cas(Value::bottom(), Value::of(5), 0), Value::bottom());
  EXPECT_EQ(jitter.debug_read(), Value::of(5));
  EXPECT_EQ(inner.debug_read(), Value::of(5));
  jitter.reset();
  EXPECT_TRUE(inner.debug_read().is_bottom());
  EXPECT_EQ(jitter.id(), inner.id());
}

TEST(JitterCas, ZeroYieldsIsExactPassThrough) {
  objects::AtomicCas inner(/*id=*/0, /*initial=*/Value::of(0));
  runtime::JitterCas jitter(inner, 1, 0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    jitter.cas(Value::of(i), Value::of(i + 1), 0);
  }
  EXPECT_EQ(inner.debug_read(), Value::of(100));
}

TEST(FaultyCasBank, ConstructsAndResets) {
  faults::AlwaysFault policy;
  faults::FaultyCasBank::Options options;
  options.objects = 3;
  options.f = 2;
  options.t = 1;
  options.policy = &policy;
  faults::FaultyCasBank bank(options);
  ASSERT_EQ(bank.raw().size(), 3u);
  bank.object(0).cas(Value::bottom(), Value::of(1), 0);
  EXPECT_EQ(bank.object(0).debug_read(), Value::of(1));
  bank.reset();
  EXPECT_TRUE(bank.object(0).debug_read().is_bottom());
  EXPECT_EQ(bank.budget()->total_faults_used(), 0u);
}

TEST(FaultyCasBank, StaticDesignationRespected) {
  faults::AlwaysFault policy;
  faults::FaultyCasBank::Options options;
  options.objects = 3;
  options.f = 1;
  options.designated = {1};
  options.policy = &policy;
  faults::FaultyCasBank bank(options);
  // Drive object 0 into a would-fault situation: designation forbids it.
  bank.object(0).cas(Value::bottom(), Value::of(7), 0);
  const Value old = bank.object(0).cas(Value::bottom(), Value::of(9), 0);
  EXPECT_EQ(old, Value::of(7));
  EXPECT_EQ(bank.object(0).debug_read(), Value::of(7));  // no override
  // Object 1 is designated: the same pattern overrides.
  bank.object(1).cas(Value::bottom(), Value::of(7), 0);
  bank.object(1).cas(Value::bottom(), Value::of(9), 0);
  EXPECT_EQ(bank.object(1).debug_read(), Value::of(9));
}

TEST(JitterCas, IntegratesWithStressCampaign) {
  // Figure 2 over jitter-wrapped faulty objects: the decorator widens
  // schedule coverage and must not perturb correctness.
  faults::ProbabilisticFault policy(0.5, 5);
  faults::FaultyCasBank::Options options;
  options.objects = 3;
  options.f = 2;
  options.policy = &policy;
  faults::FaultyCasBank bank(options);
  std::vector<std::unique_ptr<runtime::JitterCas>> jittered;
  std::vector<objects::CasObject*> raw;
  for (std::uint32_t i = 0; i < 3; ++i) {
    jittered.push_back(
        std::make_unique<runtime::JitterCas>(bank.object(i), 100 + i, 3));
    raw.push_back(jittered.back().get());
  }
  consensus::FPlusOneConsensus protocol(raw);

  runtime::StressOptions stress;
  stress.processes = 4;
  stress.budget.max_units = 100;
  const auto report = runtime::run_stress(
      protocol, stress, [&](std::uint64_t) { bank.reset(); });
  EXPECT_TRUE(report.all_ok()) << report.violations();
}

TEST(StressHarness, StopAfterViolationsCutsTheCampaignShort) {
  faults::AlwaysFault policy;
  faults::FaultyCas object(0, FaultKind::kOverriding, &policy, nullptr);
  consensus::SingleCasConsensus protocol(object);  // breaks at n=3
  runtime::StressOptions options;
  options.processes = 3;
  options.budget.max_units = 10'000;
  options.stop_after_violations = 1;
  const auto report = runtime::run_stress(protocol, options);
  EXPECT_LT(report.trials, 10'000u);
  EXPECT_GE(report.violations(), 1u);
  ASSERT_TRUE(report.first_violation.has_value());
}

TEST(StressHarness, MakeInputsAreDistinctAndDeterministic) {
  const auto a = runtime::make_inputs(8, 3, 42);
  const auto b = runtime::make_inputs(8, 3, 42);
  EXPECT_EQ(a, b);
  std::set<consensus::InputValue> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 8u);
  for (const auto v : a) {
    EXPECT_NE(v, consensus::kReservedInput);
    EXPECT_LT(v, 0xFFFFFFFEULL);  // staged-protocol safe
  }
  const auto c = runtime::make_inputs(8, 4, 42);
  EXPECT_NE(a, c);
}

// --- seed-parameterized property sweeps --------------------------------------

class WalkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalkProperty, WithinBudgetWalksAlwaysAgree) {
  const std::uint64_t seed = GetParam();
  // Fig 2, f=2 faulty of 3 objects, unbounded faults, 4 processes.
  sched::SimConfig config;
  config.num_objects = 3;
  config.kind = FaultKind::kOverriding;
  config.t = model::kUnbounded;
  config.faulty = {true, true, false};
  const consensus::FPlusOneFactory factory(3);
  sched::SimWorld world(config, factory, {1, 2, 3, 4});

  sched::WalkOptions options;
  options.seed = seed;
  options.fault_bias = 0.8;
  const auto outcome = sched::random_walk(world, options);
  EXPECT_TRUE(outcome.ok()) << "seed=" << seed;
  EXPECT_EQ(outcome.steps, 12u);  // 4 processes × 3 objects, wait-free
}

TEST_P(WalkProperty, StagedWithinBudgetWalksAlwaysAgree) {
  const std::uint64_t seed = GetParam();
  sched::SimConfig config;
  config.num_objects = 2;
  config.kind = FaultKind::kOverriding;
  config.t = 2;
  const consensus::StagedFactory factory(2, 2);
  sched::SimWorld world(config, factory, {1, 2, 3});

  sched::WalkOptions options;
  options.seed = seed;
  options.fault_bias = 0.9;  // fire faults as early as possible
  const auto outcome = sched::random_walk(world, options);
  EXPECT_TRUE(outcome.ok()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ff
