// Tests of the fetch-and-add instantiation: Φ/Φ′ semantics, FaultyFetchAdd
// behaviour per fault kind, and the robust counter constructions.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "counter/robust_counter.hpp"
#include "faults/faulty_faa.hpp"
#include "model/faa_semantics.hpp"
#include "objects/fetch_add.hpp"
#include "util/spin_barrier.hpp"

namespace ff {
namespace {

using model::CounterValue;
using model::FaaCall;
using model::FaaObservation;
using model::FaultKind;

// --- Φ / Φ′ ------------------------------------------------------------------

TEST(FaaSemantics, PhiHoldsForCorrectAdd) {
  EXPECT_TRUE(model::faa_satisfies_phi({10, 13, 10}, {3}));
  EXPECT_TRUE(model::faa_satisfies_phi({-5, -5, -5}, {0}));
}

TEST(FaaSemantics, PhiViolations) {
  EXPECT_FALSE(model::faa_satisfies_phi({10, 14, 10}, {3}));  // off by one
  EXPECT_FALSE(model::faa_satisfies_phi({10, 10, 10}, {3}));  // dropped
  EXPECT_FALSE(model::faa_satisfies_phi({10, 13, 11}, {3}));  // bad output
}

TEST(FaaSemantics, OffByOnePhiPrime) {
  EXPECT_TRUE(model::faa_satisfies_phi_prime(FaultKind::kOverriding,
                                             {10, 14, 10}, {3}));
  EXPECT_TRUE(model::faa_satisfies_phi_prime(FaultKind::kOverriding,
                                             {10, 12, 10}, {3}));
  EXPECT_FALSE(model::faa_satisfies_phi_prime(FaultKind::kOverriding,
                                              {10, 15, 10}, {3}));  // ±2
  EXPECT_FALSE(model::faa_satisfies_phi_prime(FaultKind::kOverriding,
                                              {10, 13, 10}, {3}));  // = Φ
}

TEST(FaaSemantics, Classification) {
  EXPECT_EQ(model::faa_classify({10, 13, 10}, {3}), FaultKind::kNone);
  EXPECT_EQ(model::faa_classify({10, 14, 10}, {3}), FaultKind::kOverriding);
  EXPECT_EQ(model::faa_classify({10, 10, 10}, {3}), FaultKind::kSilent);
  EXPECT_EQ(model::faa_classify({10, 13, 11}, {3}), FaultKind::kInvisible);
  EXPECT_EQ(model::faa_classify({10, 20, 10}, {3}), FaultKind::kArbitrary);
  EXPECT_EQ(model::faa_classify({10, 20, 11}, {3}),
            FaultKind::kDataCorruption);
}

// --- objects ---------------------------------------------------------------

TEST(AtomicFetchAdd, AddsAndReturnsOld) {
  objects::AtomicFetchAdd counter(0);
  EXPECT_EQ(counter.fetch_add(5, 0), 0);
  EXPECT_EQ(counter.fetch_add(-2, 0), 5);
  EXPECT_EQ(counter.debug_read(), 3);
  counter.reset(100);
  EXPECT_EQ(counter.debug_read(), 100);
}

TEST(FaultyFetchAdd, CorrectWithoutPolicy) {
  faults::FaultyFetchAdd counter(0, FaultKind::kOverriding, nullptr,
                                 nullptr);
  EXPECT_EQ(counter.fetch_add(7, 0), 0);
  EXPECT_EQ(counter.debug_read(), 7);
}

TEST(FaultyFetchAdd, OffByOneDriftsByExactlyOne) {
  faults::AlwaysFault policy;
  faults::FaaTraceSink sink;
  faults::FaultyFetchAdd counter(0, FaultKind::kOverriding, &policy,
                                 nullptr, &sink);
  counter.fetch_add(10, 0);
  const CounterValue value = counter.debug_read();
  EXPECT_TRUE(value == 9 || value == 11) << value;
  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_TRUE(trace[0].manifested);
  EXPECT_EQ(model::faa_classify(trace[0].obs, trace[0].call),
            FaultKind::kOverriding);
}

TEST(FaultyFetchAdd, OffByOneRespectsBudget) {
  faults::AlwaysFault policy;
  faults::FaultBudget budget(1, 1, /*t=*/2);
  faults::FaultyFetchAdd counter(0, FaultKind::kOverriding, &policy,
                                 &budget);
  for (int i = 0; i < 10; ++i) counter.fetch_add(10, 0);
  // Exactly 2 manifested faults of ±1: total within [98, 102] but ≠ 100
  // only by at most 2.
  const CounterValue value = counter.debug_read();
  EXPECT_LE(std::abs(value - 100), 2);
  EXPECT_EQ(budget.total_faults_used(), 2u);
}

TEST(FaultyFetchAdd, SilentDropsTheAdd) {
  faults::AlwaysFault policy;
  faults::FaultyFetchAdd counter(0, FaultKind::kSilent, &policy, nullptr);
  EXPECT_EQ(counter.fetch_add(5, 0), 0);
  EXPECT_EQ(counter.debug_read(), 0);
}

TEST(FaultyFetchAdd, SilentAddOfZeroIsNotAFault) {
  faults::AlwaysFault policy;
  faults::FaultBudget budget(1, 1, 5);
  faults::FaultyFetchAdd counter(0, FaultKind::kSilent, &policy, &budget);
  counter.fetch_add(0, 0);
  EXPECT_EQ(budget.total_faults_used(), 0u);
}

TEST(FaultyFetchAdd, InvisibleCorruptsOnlyOutput) {
  faults::AlwaysFault policy;
  faults::FaultyFetchAdd counter(0, FaultKind::kInvisible, &policy,
                                 nullptr);
  const CounterValue old = counter.fetch_add(5, 0);
  EXPECT_NE(old, 0);                     // output corrupted
  EXPECT_EQ(counter.debug_read(), 5);    // register per spec
}

TEST(FaultyFetchAdd, CustomDriftSource) {
  faults::AlwaysFault policy;
  faults::FaultyFetchAdd counter(0, FaultKind::kOverriding, &policy,
                                 nullptr);
  counter.set_drift_source([](std::uint64_t) { return 1; });
  for (int i = 0; i < 4; ++i) counter.fetch_add(0, 0);
  EXPECT_EQ(counter.debug_read(), 4);  // +1 drift per op
}

// --- robust counters --------------------------------------------------------

struct FaaBank {
  FaaBank(std::uint32_t count, std::uint32_t f, std::uint32_t t,
          FaultKind kind = FaultKind::kOverriding)
      : budget(count, f, t) {
    for (std::uint32_t i = 0; i < count; ++i) {
      objects.push_back(std::make_unique<faults::FaultyFetchAdd>(
          i, kind, &policy, &budget));
      raw.push_back(objects.back().get());
    }
  }
  faults::AlwaysFault policy;
  faults::FaultBudget budget;
  std::vector<std::unique_ptr<faults::FaultyFetchAdd>> objects;
  std::vector<objects::FetchAddObject*> raw;
};

TEST(MedianCounter, ExactAtQuiescenceDespiteFaultyMinority) {
  for (std::uint32_t f = 1; f <= 3; ++f) {
    FaaBank bank(2 * f + 1, f, model::kUnbounded);
    counter::MedianCounter robust(bank.raw);
    EXPECT_EQ(robust.tolerated_faulty_objects(), f);
    CounterValue sum = 0;
    for (int i = 1; i <= 50; ++i) {
      robust.add(i, 0);
      sum += i;
    }
    EXPECT_EQ(robust.read(0), sum) << "f=" << f;
  }
}

TEST(MedianCounter, ExactUnderSilentFaultsToo) {
  FaaBank bank(3, 1, model::kUnbounded, FaultKind::kSilent);
  counter::MedianCounter robust(bank.raw);
  for (int i = 0; i < 30; ++i) robust.add(2, 0);
  EXPECT_EQ(robust.read(0), 60);
}

TEST(MedianCounter, ConcurrentAddersSumCorrectly) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kAddsEach = 200;
  FaaBank bank(3, 1, model::kUnbounded);
  counter::MedianCounter robust(bank.raw);
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kAddsEach; ++i) robust.add(1, p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(robust.read(0), kThreads * kAddsEach);
}

TEST(DriftBoundedCounter, ErrorWithinT) {
  for (std::uint32_t t = 1; t <= 5; ++t) {
    faults::AlwaysFault policy;
    faults::FaultBudget budget(1, 1, t);
    faults::FaultyFetchAdd object(0, FaultKind::kOverriding, &policy,
                                  &budget);
    counter::DriftBoundedCounter counter(object, t);
    CounterValue sum = 0;
    for (int i = 0; i < 100; ++i) {
      counter.add(3, 0);
      sum += 3;
    }
    EXPECT_LE(std::abs(counter.read(0) - sum),
              static_cast<CounterValue>(t))
        << "t=" << t;
    EXPECT_EQ(counter.max_error(), static_cast<CounterValue>(t));
  }
}

TEST(MeanCounter, IsPulledOffByASingleDrifter) {
  // The ablation foil: force one replica to drift +1 on every op; the
  // mean moves, the median does not.
  // With f=1 and dynamic designation, the first replica an add touches
  // (replica 0) becomes the single faulty one; its drift source always
  // says +1, so it drifts upward on every operation.
  FaaBank bank(3, 1, model::kUnbounded);
  bank.objects[0]->set_drift_source([](std::uint64_t) { return 1; });

  counter::MeanCounter mean(bank.raw);
  counter::MedianCounter median(bank.raw);
  for (int i = 0; i < 90; ++i) mean.add(1, 0);
  // Dynamic budget designates replica 0..? — with f=1 only ONE replica
  // ever drifts; it drifted +1 × 90 ops (AlwaysFault).
  const CounterValue mean_value = mean.read(0);
  const CounterValue median_value = median.read(0);
  EXPECT_EQ(median_value, 90);
  EXPECT_GT(mean_value, 90);  // pulled up by the drifter
}

}  // namespace
}  // namespace ff
