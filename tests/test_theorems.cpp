// Theorem-by-theorem validation via exhaustive model checking.
//
// Each test here is a machine-checked instance of a paper claim: the
// explorer covers EVERY interleaving and EVERY legal fault placement of
// the configuration, so "complete && no violation" is a proof for that
// parameter cell and "violation found" is a concrete counterexample
// (the witness schedule is replayable).
#include <gtest/gtest.h>

#include <vector>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::RetrySilentFactory;
using consensus::SingleCasFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::ExploreResult;
using sched::SimConfig;
using sched::SimWorld;
using sched::ViolationKind;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i + 1;
  return v;
}

SimConfig cfg(std::uint32_t objects, FaultKind kind, std::uint32_t t,
              std::vector<bool> faulty = {}) {
  SimConfig c;
  c.num_objects = objects;
  c.kind = kind;
  c.t = t;
  c.faulty = std::move(faulty);
  return c;
}

ExploreResult explore_all(const SimConfig& config,
                          const sched::MachineFactory& factory,
                          std::uint32_t n,
                          std::uint64_t max_states = 2'000'000) {
  SimWorld world(config, factory, inputs(n));
  sched::ExploreOptions options;
  options.max_states = max_states;
  return sched::explore(world, options);
}

// --------------------------------------------------------------------------
// Theorem 4: a single CAS object with unboundedly many overriding faults
// implements consensus for two processes ((f,∞,2)-tolerance).
// --------------------------------------------------------------------------

TEST(Theorem4, TwoProcessesUnboundedOverridingFaults) {
  const auto result = explore_all(
      cfg(1, FaultKind::kOverriding, kUnbounded), SingleCasFactory{}, 2);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_GE(result.terminal_states, 2u);
}

TEST(Theorem4, BoundaryIsTight_ThreeProcessesBreak) {
  // One overriding fault already suffices to break the protocol at n=3:
  // this is the consensus-number collapse the paper highlights.
  const auto result =
      explore_all(cfg(1, FaultKind::kOverriding, 1), SingleCasFactory{}, 3);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent);
}

TEST(Theorem4, HerlihyBaselineFaultFreeAnyN) {
  for (std::uint32_t n = 2; n <= 5; ++n) {
    const auto result =
        explore_all(cfg(1, FaultKind::kOverriding, 0), SingleCasFactory{}, n);
    EXPECT_TRUE(result.complete) << "n=" << n;
    EXPECT_FALSE(result.violation.has_value()) << "n=" << n;
  }
}

// --------------------------------------------------------------------------
// Theorem 5: f+1 CAS objects, at most f faulty with unbounded overriding
// faults, implement consensus for any number of processes.  The explorer
// sweeps every designation of which f objects are the faulty ones.
// --------------------------------------------------------------------------

class Theorem5 : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem5, AllDesignationsAllSchedules) {
  const auto f = static_cast<std::uint32_t>(std::get<0>(GetParam()));
  const auto n = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const std::uint32_t k = f + 1;
  const FPlusOneFactory factory(k);
  // Every way to pick f faulty objects out of f+1 = every way to leave
  // one object correct.
  for (std::uint32_t correct = 0; correct < k; ++correct) {
    std::vector<bool> faulty(k, true);
    faulty[correct] = false;
    const auto result = explore_all(
        cfg(k, FaultKind::kOverriding, kUnbounded, faulty), factory, n);
    EXPECT_TRUE(result.complete) << "f=" << f << " n=" << n
                                 << " correct=" << correct;
    EXPECT_FALSE(result.violation.has_value())
        << "f=" << f << " n=" << n << " correct=" << correct << ": "
        << result.violation->detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem5,
                         ::testing::Values(std::tuple{1, 2}, std::tuple{1, 3},
                                           std::tuple{1, 4}, std::tuple{2, 2},
                                           std::tuple{2, 3},
                                           std::tuple{2, 4}));

// --------------------------------------------------------------------------
// Theorem 6: f CAS objects, ALL possibly faulty with at most t overriding
// faults each, implement consensus for up to f+1 processes.
// --------------------------------------------------------------------------

class Theorem6 : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem6, AllFaultyObjectsWithinBounds) {
  const auto f = static_cast<std::uint32_t>(std::get<0>(GetParam()));
  const auto t = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const std::uint32_t n = f + 1;
  const auto result =
      explore_all(cfg(f, FaultKind::kOverriding, t), StagedFactory(f, t), n);
  EXPECT_TRUE(result.complete) << "f=" << f << " t=" << t;
  EXPECT_FALSE(result.violation.has_value())
      << "f=" << f << " t=" << t << ": " << result.violation->detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem6,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{1, 2},
                                           std::tuple{1, 3},
                                           std::tuple{1, 4}));

// f=2,t=1,n=3 is a ~5M-state proof (~15 s); kept as one dedicated test.
TEST(Theorem6Deep, TwoObjectsOneFaultEachThreeProcesses) {
  const auto result = explore_all(cfg(2, FaultKind::kOverriding, 1),
                                  StagedFactory(2, 1), 3, 6'000'000);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
}

// --------------------------------------------------------------------------
// Theorem 18: with unbounded faults per object and n > 2, f faulty CAS
// objects cannot implement consensus.  The explorer finds the violating
// execution for the natural candidates.
// --------------------------------------------------------------------------

TEST(Theorem18, HerlihyOnOneFaultyObjectThreeProcs) {
  const auto result = explore_all(
      cfg(1, FaultKind::kOverriding, kUnbounded), SingleCasFactory{}, 3);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent);
}

TEST(Theorem18, FPlusOneCandidateWithOnlyFObjects) {
  // Run the Figure 2 protocol with f objects instead of f+1 — the
  // configuration the theorem proves impossible.
  for (std::uint32_t f = 1; f <= 3; ++f) {
    const auto result = explore_all(
        cfg(f, FaultKind::kOverriding, kUnbounded), FPlusOneFactory(f), 3);
    ASSERT_TRUE(result.violation.has_value()) << "f=" << f;
    EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent)
        << "f=" << f;
  }
}

TEST(Theorem18, ReducedModelSingleFaultyProcessSuffices) {
  // The proof's reduced model: only p_0's operations fault.  A violation
  // must still exist.
  SimConfig config = cfg(1, FaultKind::kOverriding, kUnbounded);
  config.faulting_processes = {0};
  const auto result = explore_all(config, SingleCasFactory{}, 3);
  ASSERT_TRUE(result.violation.has_value());
  // Every fault in the witness schedule was committed by p0.
  for (const auto& choice : result.violation->schedule) {
    if (choice.fault) {
      EXPECT_EQ(choice.pid, 0u);
    }
  }
}

TEST(Theorem18, StagedCandidateAlsoBreaksWithUnboundedFaults) {
  // The staged protocol is only (f,t,f+1)-tolerant for bounded t; with
  // unbounded faults on its f objects and n=3 > 2 processes it must fail
  // somehow — by disagreement or by livelock.
  const auto result = explore_all(
      cfg(1, FaultKind::kOverriding, kUnbounded), StagedFactory(1, 1), 3);
  ASSERT_TRUE(result.violation.has_value());
}

// --------------------------------------------------------------------------
// Theorem 19: with bounded faults (even t = 1) and n = f+2 processes,
// f CAS objects are not enough.
// --------------------------------------------------------------------------

TEST(Theorem19, StagedProtocolBreaksAtFPlusTwoProcesses) {
  for (std::uint32_t f = 1; f <= 2; ++f) {
    const auto result = explore_all(cfg(f, FaultKind::kOverriding, 1),
                                    StagedFactory(f, 1), f + 2);
    ASSERT_TRUE(result.violation.has_value()) << "f=" << f;
    EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent)
        << "f=" << f;
  }
}

TEST(Theorem19, WitnessScheduleReplays) {
  SimWorld world(cfg(1, FaultKind::kOverriding, 1), StagedFactory(1, 1),
                 inputs(3));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
  const SimWorld replayed = sched::replay(world, result.violation->schedule);
  EXPECT_TRUE(replayed.terminal());
  std::set<std::uint64_t> distinct;
  for (const auto& d : replayed.decisions()) {
    if (d) distinct.insert(*d);
  }
  EXPECT_GE(distinct.size(), 2u);
  // At most one manifested fault on the single object (t = 1 bound).
  EXPECT_LE(replayed.faults_used(0), 1u);
}

// --------------------------------------------------------------------------
// §3.4: the other fault kinds behave as classified.
// --------------------------------------------------------------------------

TEST(OtherFaults, SilentBreaksPlainHerlihyEvenForTwoProcs) {
  // Contrast with Theorem 4: ONE silent fault already defeats Figure 1 at
  // n=2 (a process believes its dropped write succeeded).
  const auto result =
      explore_all(cfg(1, FaultKind::kSilent, 1), SingleCasFactory{}, 2);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kInconsistent);
}

TEST(OtherFaults, RetrySilentToleratesBoundedSilentFaults) {
  for (std::uint32_t t = 1; t <= 3; ++t) {
    for (std::uint32_t n = 2; n <= 3; ++n) {
      const auto result = explore_all(cfg(1, FaultKind::kSilent, t),
                                      RetrySilentFactory{}, n);
      EXPECT_TRUE(result.complete) << "t=" << t << " n=" << n;
      EXPECT_FALSE(result.violation.has_value()) << "t=" << t << " n=" << n;
    }
  }
}

TEST(OtherFaults, UnboundedSilentFaultsPreventTermination) {
  // §3.4: "when the total number of faults is unbounded, one can
  // construct an execution in which no process ever updates the CAS
  // object and the protocol never terminates."
  const auto result = explore_all(cfg(1, FaultKind::kSilent, kUnbounded),
                                  RetrySilentFactory{}, 2);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kNontermination);
}

TEST(OtherFaults, InvisibleFaultBreaksHerlihyAtTwoProcs) {
  const auto result =
      explore_all(cfg(1, FaultKind::kInvisible, 1), SingleCasFactory{}, 2);
  ASSERT_TRUE(result.violation.has_value());
}

TEST(OtherFaults, ArbitraryFaultBreaksHerlihyAtTwoProcs) {
  const auto result =
      explore_all(cfg(1, FaultKind::kArbitrary, 1), SingleCasFactory{}, 2);
  ASSERT_TRUE(result.violation.has_value());
}

TEST(OtherFaults, NonresponsiveFaultStallsAProcess) {
  sched::ExploreOptions options;
  options.killed_is_violation = true;
  SimWorld world(cfg(1, FaultKind::kNonresponsive, 1), SingleCasFactory{},
                 inputs(2));
  const auto result = sched::explore(world, options);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kStalled);
}

// --------------------------------------------------------------------------
// §4 intro: functional faults beat the data-fault lower bound — the staged
// protocol survives bounded OVERRIDING faults on ALL its objects (shown in
// Theorem6 above), while the analogous DATA faults defeat it.
// --------------------------------------------------------------------------

TEST(FunctionalVsData, DataFaultsDefeatTheAllFaultyConfiguration) {
  SimConfig config = cfg(1, FaultKind::kDataCorruption, 1);
  config.allow_corruption_steps = true;
  SimWorld world(config, StagedFactory(1, 1), inputs(2));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
}

TEST(FunctionalVsData, SameBudgetOfOverridingFaultsIsTolerated) {
  // The exact same (f=1, t=1, n=2) budget with overriding functional
  // faults is fully tolerated — the separation in one pair of tests.
  const auto result = explore_all(cfg(1, FaultKind::kOverriding, 1),
                                  StagedFactory(1, 1), 2);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
}

}  // namespace
}  // namespace ff
