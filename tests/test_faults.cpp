// Unit tests for the fault-injection substrate: budgets, policies, and
// the per-kind semantics of FaultyCas (single-threaded, deterministic).
#include <gtest/gtest.h>

#include <set>

#include "faults/budget.hpp"
#include "faults/data_fault.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"
#include "model/cas_semantics.hpp"
#include "objects/atomic_cas.hpp"

namespace ff::faults {
namespace {

using model::FaultKind;
using model::Value;

// --- FaultBudget ----------------------------------------------------------

TEST(FaultBudget, DynamicDesignationCapsDistinctObjects) {
  FaultBudget budget(/*num_objects=*/4, /*f=*/2, /*t=*/model::kUnbounded);
  EXPECT_TRUE(budget.try_consume(0));
  EXPECT_TRUE(budget.try_consume(1));
  EXPECT_FALSE(budget.try_consume(2));  // third distinct object: denied
  EXPECT_TRUE(budget.try_consume(0));   // already designated: fine
  EXPECT_EQ(budget.designated_count(), 2u);
  EXPECT_TRUE(budget.is_designated(0));
  EXPECT_TRUE(budget.is_designated(1));
  EXPECT_FALSE(budget.is_designated(2));
}

TEST(FaultBudget, PerObjectBoundT) {
  FaultBudget budget(2, 2, /*t=*/3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(budget.try_consume(0));
  EXPECT_FALSE(budget.try_consume(0));  // t exhausted on object 0
  EXPECT_TRUE(budget.try_consume(1));   // object 1 has its own budget
  EXPECT_EQ(budget.faults_used(0), 3u);
  EXPECT_EQ(budget.faults_used(1), 1u);
  EXPECT_EQ(budget.total_faults_used(), 4u);
}

TEST(FaultBudget, RefundRestoresHeadroom) {
  FaultBudget budget(1, 1, /*t=*/1);
  EXPECT_TRUE(budget.try_consume(0));
  EXPECT_FALSE(budget.try_consume(0));
  budget.refund(0);
  EXPECT_TRUE(budget.try_consume(0));
}

TEST(FaultBudget, StaticDesignationRejectsOthers) {
  FaultBudget budget(4, std::vector<objects::ObjectId>{1, 3},
                     model::kUnbounded);
  EXPECT_FALSE(budget.try_consume(0));
  EXPECT_TRUE(budget.try_consume(1));
  EXPECT_FALSE(budget.try_consume(2));
  EXPECT_TRUE(budget.try_consume(3));
  EXPECT_EQ(budget.f(), 2u);
}

TEST(FaultBudget, ResetClearsDynamicState) {
  FaultBudget budget(3, 1, 1);
  EXPECT_TRUE(budget.try_consume(2));
  EXPECT_FALSE(budget.try_consume(0));
  budget.reset();
  EXPECT_TRUE(budget.try_consume(0));  // designation freed by reset
  EXPECT_EQ(budget.faults_used(2), 0u);
}

TEST(FaultBudget, ResetKeepsStaticDesignation) {
  FaultBudget budget(2, std::vector<objects::ObjectId>{0}, 1);
  EXPECT_TRUE(budget.try_consume(0));
  budget.reset();
  EXPECT_TRUE(budget.try_consume(0));
  EXPECT_FALSE(budget.try_consume(1));  // still not designated
}

// --- policies ---------------------------------------------------------------

TEST(Policy, NeverAndAlways) {
  NeverFault never;
  AlwaysFault always;
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(never.should_fault(0, 0, i));
    EXPECT_TRUE(always.should_fault(0, 0, i));
  }
}

TEST(Policy, ProbabilisticIsDeterministicAndCalibrated) {
  ProbabilisticFault p(0.25, 999);
  int hits = 0;
  constexpr int kOps = 40000;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const bool a = p.should_fault(3, 0, i);
    const bool b = p.should_fault(3, 1, i);  // caller must not matter
    EXPECT_EQ(a, b);
    if (a) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kOps, 0.25, 0.02);
}

TEST(Policy, ProbabilisticExtremes) {
  ProbabilisticFault zero(0.0, 1);
  ProbabilisticFault one(1.0, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(zero.should_fault(0, 0, i));
    EXPECT_TRUE(one.should_fault(0, 0, i));
  }
}

TEST(Policy, PeriodicFiresOnMultiples) {
  PeriodicFault every3(3);
  EXPECT_TRUE(every3.should_fault(0, 0, 0));
  EXPECT_FALSE(every3.should_fault(0, 0, 1));
  EXPECT_FALSE(every3.should_fault(0, 0, 2));
  EXPECT_TRUE(every3.should_fault(0, 0, 3));
  PeriodicFault offset(3, 1);
  EXPECT_FALSE(offset.should_fault(0, 0, 0));
  EXPECT_TRUE(offset.should_fault(0, 0, 1));
}

TEST(Policy, FirstK) {
  FirstKFault first2(2);
  EXPECT_TRUE(first2.should_fault(0, 0, 0));
  EXPECT_TRUE(first2.should_fault(0, 0, 1));
  EXPECT_FALSE(first2.should_fault(0, 0, 2));
}

TEST(Policy, ProcessScoped) {
  ProcessScopedFault only1({1});
  EXPECT_FALSE(only1.should_fault(0, 0, 0));
  EXPECT_TRUE(only1.should_fault(0, 1, 0));
  EXPECT_FALSE(only1.should_fault(0, 2, 5));
}

TEST(Policy, Scripted) {
  ScriptedFault script({{0, 2}, {1, 0}});
  EXPECT_FALSE(script.should_fault(0, 0, 0));
  EXPECT_TRUE(script.should_fault(0, 0, 2));
  EXPECT_TRUE(script.should_fault(1, 0, 0));
  EXPECT_FALSE(script.should_fault(1, 0, 2));
}

TEST(Policy, EitherCombinesWithOr) {
  FirstKFault a(1);
  PeriodicFault b(4);
  EitherFault either(a, b);
  EXPECT_TRUE(either.should_fault(0, 0, 0));   // both
  EXPECT_FALSE(either.should_fault(0, 0, 1));  // neither
  EXPECT_TRUE(either.should_fault(0, 0, 4));   // b only
}

// --- FaultyCas semantics ---------------------------------------------------

TEST(FaultyCas, BehavesCorrectlyWithoutPolicy) {
  FaultyCas cas(0, FaultKind::kOverriding, nullptr, nullptr);
  EXPECT_EQ(cas.cas(Value::bottom(), Value::of(5), 0), Value::bottom());
  EXPECT_EQ(cas.debug_read(), Value::of(5));
  // Failed CAS: wrong expected value.
  EXPECT_EQ(cas.cas(Value::bottom(), Value::of(9), 0), Value::of(5));
  EXPECT_EQ(cas.debug_read(), Value::of(5));
}

TEST(FaultyCas, OverridingWritesDespiteMismatch) {
  AlwaysFault policy;
  VectorTraceSink sink;
  FaultyCas cas(0, FaultKind::kOverriding, &policy, nullptr, &sink);
  cas.cas(Value::bottom(), Value::of(5), 0);  // correct success (⊥ matched)
  const Value old = cas.cas(Value::bottom(), Value::of(9), 1);
  EXPECT_EQ(old, Value::of(5));           // output is still correct
  EXPECT_EQ(cas.debug_read(), Value::of(9));  // but the write happened

  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_FALSE(trace[0].manifested);  // comparison succeeded: no fault
  EXPECT_TRUE(trace[1].manifested);
  EXPECT_EQ(trace[1].fired, FaultKind::kOverriding);
}

TEST(FaultyCas, OverridingOnSuccessfulCompareIsNotAFault) {
  AlwaysFault policy;
  FaultBudget budget(1, 1, /*t=*/5);
  FaultyCas cas(0, FaultKind::kOverriding, &policy, &budget);
  cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_EQ(budget.total_faults_used(), 0u);  // Φ held — nothing consumed
}

TEST(FaultyCas, OverridingRespectsBudget) {
  AlwaysFault policy;
  FaultBudget budget(1, 1, /*t=*/1);
  FaultyCas cas(0, FaultKind::kOverriding, &policy, &budget);
  cas.cas(Value::bottom(), Value::of(5), 0);
  cas.cas(Value::bottom(), Value::of(9), 0);  // fault #1: overrides
  EXPECT_EQ(cas.debug_read(), Value::of(9));
  const Value old = cas.cas(Value::bottom(), Value::of(11), 0);
  EXPECT_EQ(old, Value::of(9));  // budget gone: correct failed CAS
  EXPECT_EQ(cas.debug_read(), Value::of(9));
}

TEST(FaultyCas, SilentDropsMatchingWrite) {
  AlwaysFault policy;
  VectorTraceSink sink;
  FaultyCas cas(0, FaultKind::kSilent, &policy, nullptr, &sink);
  const Value old = cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_EQ(old, Value::bottom());             // output claims "success"
  EXPECT_EQ(cas.debug_read(), Value::bottom());  // but nothing was written
  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_TRUE(trace[0].manifested);
  EXPECT_EQ(trace[0].fired, FaultKind::kSilent);
}

TEST(FaultyCas, SilentOnMismatchIsNotAFault) {
  AlwaysFault policy;
  FaultBudget budget(1, 1, 5);
  FaultyCas cas(0, FaultKind::kSilent, &policy, &budget);
  cas.reset(Value::of(7));
  const Value old = cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_EQ(old, Value::of(7));  // identical to a correct failed CAS
  EXPECT_EQ(budget.total_faults_used(), 0u);
}

TEST(FaultyCas, InvisibleCorruptsOnlyTheOutput) {
  AlwaysFault policy;
  VectorTraceSink sink;
  FaultyCas cas(0, FaultKind::kInvisible, &policy, nullptr, &sink);
  const Value old = cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_NE(old, Value::bottom());             // output corrupted
  EXPECT_EQ(cas.debug_read(), Value::of(5));   // register per spec
  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].fired, FaultKind::kInvisible);
  EXPECT_TRUE(trace[0].manifested);
}

TEST(FaultyCas, ArbitraryWritesGarbageButReturnsTruth) {
  AlwaysFault policy;
  FaultyCas cas(0, FaultKind::kArbitrary, &policy, nullptr);
  cas.set_arbitrary_source([](std::uint64_t) { return 0xDEADBEEFull; });
  const Value old = cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_EQ(old, Value::bottom());  // correct output
  EXPECT_EQ(cas.debug_read(), Value::of(0xDEADBEEFull));
}

TEST(FaultyCas, ArbitraryThatMatchesSpecIsRefunded) {
  AlwaysFault policy;
  FaultBudget budget(1, 1, 5);
  FaultyCas cas(0, FaultKind::kArbitrary, &policy, &budget);
  // Arbitrary value happens to equal the correct result (desired).
  cas.set_arbitrary_source([](std::uint64_t) { return 5ull; });
  cas.cas(Value::bottom(), Value::of(5), 0);
  EXPECT_EQ(budget.total_faults_used(), 0u);
}

TEST(FaultyCas, NonresponsiveThrows) {
  AlwaysFault policy;
  FaultyCas cas(0, FaultKind::kNonresponsive, &policy, nullptr);
  EXPECT_THROW(cas.cas(Value::bottom(), Value::of(5), 0),
               NonresponsiveError);
}

TEST(FaultyCas, NonresponsiveBudgetExhaustedRespondsCorrectly) {
  AlwaysFault policy;
  FaultBudget budget(1, 1, /*t=*/1);
  FaultyCas cas(0, FaultKind::kNonresponsive, &policy, &budget);
  EXPECT_THROW(cas.cas(Value::bottom(), Value::of(5), 0),
               NonresponsiveError);
  // Budget consumed; next call is a correct execution.
  EXPECT_EQ(cas.cas(Value::bottom(), Value::of(5), 0), Value::bottom());
  EXPECT_EQ(cas.debug_read(), Value::of(5));
}

TEST(FaultyCas, DataCorruptionReplacesContentBeforeTheCas) {
  AlwaysFault policy;
  FaultyCas cas(0, FaultKind::kDataCorruption, &policy, nullptr);
  cas.set_arbitrary_source([](std::uint64_t) { return 1234ull; });
  const Value old = cas.cas(Value::bottom(), Value::of(5), 0);
  // The register was corrupted to 1234 first, so the CAS failed on it.
  EXPECT_EQ(old, Value::of(1234));
  EXPECT_EQ(cas.debug_read(), Value::of(1234));
}

TEST(FaultyCas, CorruptNowBypassesEverything) {
  FaultyCas cas(0, FaultKind::kNone, nullptr, nullptr);
  cas.cas(Value::bottom(), Value::of(5), 0);
  const Value displaced = cas.corrupt_now(Value::of(77));
  EXPECT_EQ(displaced, Value::of(5));
  EXPECT_EQ(cas.debug_read(), Value::of(77));
}

TEST(FaultyCas, ResetRestoresBottomAndOpCount) {
  PeriodicFault policy(2);  // op indices 0, 2, 4... attempt faults
  VectorTraceSink sink;
  FaultyCas cas(0, FaultKind::kOverriding, &policy, nullptr, &sink);
  cas.cas(Value::bottom(), Value::of(5), 0);
  cas.reset();
  EXPECT_EQ(cas.debug_read(), Value::bottom());
  cas.cas(Value::bottom(), Value::of(6), 0);
  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].op_index, 0u);  // counter was reset
}

TEST(FaultyCas, TraceEventsCarryCallAndObservation) {
  AlwaysFault policy;
  VectorTraceSink sink;
  FaultyCas cas(3, FaultKind::kOverriding, &policy, nullptr, &sink);
  cas.reset(Value::of(1));
  cas.cas(Value::of(2), Value::of(9), /*caller=*/7);
  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].object, 3u);
  EXPECT_EQ(trace[0].caller, 7u);
  EXPECT_EQ(trace[0].call.expected, Value::of(2));
  EXPECT_EQ(trace[0].call.desired, Value::of(9));
  EXPECT_EQ(trace[0].obs.before, Value::of(1));
  EXPECT_EQ(trace[0].obs.after, Value::of(9));
  EXPECT_EQ(trace[0].obs.returned, Value::of(1));
  EXPECT_EQ(model::classify(trace[0].obs, trace[0].call),
            FaultKind::kOverriding);
}

TEST(CountingTraceSink, CountsTotalsAndManifested) {
  AlwaysFault policy;
  CountingTraceSink sink;
  FaultyCas cas(0, FaultKind::kOverriding, &policy, nullptr, &sink);
  cas.cas(Value::bottom(), Value::of(5), 0);  // correct (⊥ matches)
  cas.cas(Value::bottom(), Value::of(9), 0);  // manifested fault
  EXPECT_EQ(sink.total(), 2u);
  EXPECT_EQ(sink.manifested(), 1u);
  sink.clear();
  EXPECT_EQ(sink.total(), 0u);
}

TEST(CorruptionGremlin, InjectsExactBudget) {
  FaultyCas a(0, FaultKind::kNone, nullptr, nullptr);
  FaultyCas b(1, FaultKind::kNone, nullptr, nullptr);
  CorruptionGremlin::Options options;
  options.corruptions_per_object = 3;
  options.seed = 7;
  CorruptionGremlin gremlin({&a, &b}, options);
  gremlin.start();
  // The gremlin stops by itself once budgets are exhausted.
  while (gremlin.corruptions() < 6) {
    std::this_thread::yield();
  }
  gremlin.stop();
  EXPECT_EQ(gremlin.corruptions(), 6u);
  EXPECT_FALSE(a.debug_read().is_bottom());
  EXPECT_FALSE(b.debug_read().is_bottom());
}

}  // namespace
}  // namespace ff::faults
