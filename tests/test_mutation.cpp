// Mutation testing of the verification pipeline: deliberately broken
// protocols must be caught by the explorer even WITHOUT any faults.
// (A checker that only ever blesses correct protocols proves nothing;
// these mutants establish its discrimination.)  Also demonstrates the
// public StepMachine API for user-defined protocols.
#include <gtest/gtest.h>

#include <memory>

#include "sched/explorer.hpp"
#include "sched/program.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using model::Value;
using sched::PendingOp;
using sched::StepMachine;

/// Mutant 1: Herlihy with the adoption dropped — every process decides
/// its own input no matter what the CAS returned.
class StubbornMachine final : public StepMachine {
 public:
  explicit StubbornMachine(std::uint64_t input) : input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    if (done_) return PendingOp::none();
    return PendingOp::cas(0, Value::bottom(), Value::of(input_));
  }
  void deliver(Value) override { done_ = true; }  // BUG: ignores old
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t decision() const override { return input_; }
  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(done_ ? 1 : 0);
    out.push_back(input_);
  }
  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<StubbornMachine>(*this);
  }

 private:
  std::uint64_t input_;
  bool done_ = false;
};

/// Mutant 2: adopts the old value but decides old+1 — a validity bug.
class OffByOneMachine final : public StepMachine {
 public:
  explicit OffByOneMachine(std::uint64_t input) : input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    if (done_) return PendingOp::none();
    return PendingOp::cas(0, Value::bottom(), Value::of(input_));
  }
  void deliver(Value returned) override {
    decision_ = returned.is_bottom() ? input_ : returned.raw() + 1;  // BUG
    done_ = true;
  }
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }
  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(done_ ? 1 : 0);
    out.push_back(done_ ? decision_ : input_);
  }
  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<OffByOneMachine>(*this);
  }

 private:
  std::uint64_t input_;
  std::uint64_t decision_ = 0;
  bool done_ = false;
};

/// Mutant 3: never finishes — retries the same failing CAS forever.
class SpinningMachine final : public StepMachine {
 public:
  explicit SpinningMachine(std::uint64_t input) : input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    if (done_) return PendingOp::none();
    return PendingOp::cas(0, Value::bottom(), Value::of(input_));
  }
  void deliver(Value returned) override {
    if (returned.is_bottom()) done_ = true;  // BUG: loser spins forever
  }
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t decision() const override { return input_; }
  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(done_ ? 1 : 0);
    out.push_back(input_);
  }
  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<SpinningMachine>(*this);
  }

 private:
  std::uint64_t input_;
  bool done_ = false;
};

template <typename M>
class MutantFactory final : public sched::MachineFactory {
 public:
  [[nodiscard]] std::unique_ptr<StepMachine> make(
      objects::ProcessId, std::uint64_t input) const override {
    return std::make_unique<M>(input);
  }
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "mutant"; }
};

sched::SimWorld fault_free_world(const sched::MachineFactory& factory,
                                 std::uint32_t n) {
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kNone;
  std::vector<std::uint64_t> inputs(n);
  for (std::uint32_t i = 0; i < n; ++i) inputs[i] = i + 1;
  return sched::SimWorld(config, factory, inputs);
}

TEST(Mutation, StubbornMutantCaughtAsInconsistent) {
  const MutantFactory<StubbornMachine> factory;
  const auto result = sched::explore(fault_free_world(factory, 2));
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kInconsistent);
}

TEST(Mutation, OffByOneMutantCaughtAsInvalid) {
  // Depending on who wins, old+1 may collide with the other input
  // (inconsistent) or be nobody's input (invalid); the full census must
  // contain at least one INVALID terminal.
  const MutantFactory<OffByOneMachine> factory;
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  const auto result =
      sched::explore(fault_free_world(factory, 2), options);
  EXPECT_GT(result.violations_of(sched::ViolationKind::kInvalid), 0u);
}

TEST(Mutation, SpinningMutantCaughtAsNontermination) {
  const MutantFactory<SpinningMachine> factory;
  const auto result = sched::explore(fault_free_world(factory, 2));
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kNontermination);
}

TEST(Mutation, SpinningMutantAlsoFlaggedByLongestExecution) {
  const MutantFactory<SpinningMachine> factory;
  const auto result =
      sched::longest_execution(fault_free_world(factory, 2));
  EXPECT_FALSE(result.bounded);
}

TEST(Mutation, SoloRunsOfMutantsLookFine) {
  // Each mutant is correct in isolation — only interleaving exposes the
  // bugs, which is exactly why exhaustive search is needed.
  for (const auto* factory :
       std::initializer_list<const sched::MachineFactory*>{
           new MutantFactory<StubbornMachine>,
           new MutantFactory<OffByOneMachine>,
           new MutantFactory<SpinningMachine>}) {
    const auto result = sched::explore(fault_free_world(*factory, 1));
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.violation.has_value());
    delete factory;
  }
}

}  // namespace
}  // namespace ff
