// Differential and regression tests for the coverage-guided schedule
// fuzzer (sched/fuzzer.hpp).
//
// The differential grid (tests/explore_diff.hpp) is small enough for the
// sequential explorer to enumerate completely, so its violation census is
// ground truth.  The fuzzer — a sampling tool — must rediscover a witness
// for EVERY violation kind the explorer reports in each cell, within a
// seeded budget, and must fabricate nothing in the cells the explorer
// proves correct.  Every witness (as found and as shrunk) is verified by
// strict replay.
#include "sched/fuzzer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "explore_diff.hpp"
#include "sched/explorer.hpp"

namespace ff::sched {
namespace {

using testutil::differential_grid;
using testutil::expect_witness_reproduces;
using testutil::full_space_options;
using testutil::GridCase;
using testutil::make_world;

TEST(FuzzerDifferential, RediscoversEveryExplorerViolationClass) {
  for (const GridCase& gc : differential_grid()) {
    const SimWorld world = make_world(gc);
    const ExploreOptions eo = full_space_options(gc);
    const ExploreResult truth = explore(world, eo);
    ASSERT_TRUE(truth.complete) << gc.name;

    std::set<ViolationKind> kinds;
    for (const auto& [kind, count] : truth.violations_by_kind) {
      if (count > 0) kinds.insert(kind);
    }

    FuzzOptions fo;
    fo.seed = 0x5eedf00d;
    fo.killed_is_violation = eo.killed_is_violation;
    fo.stop_at_first_violation = false;
    if (kinds.empty()) {
      // Explorer-proven-correct cell: the fuzzer must find nothing.
      fo.budget.max_units = 60'000;
      const FuzzResult run = fuzz(world, fo);
      EXPECT_EQ(run.stats.violations_found, 0u) << gc.name;
      EXPECT_FALSE(run.violation.has_value()) << gc.name;
      EXPECT_FALSE(run.original_violation.has_value()) << gc.name;
      continue;
    }

    // Violating cell: stop once a witness for every explorer-reported
    // kind has been found; the budget is the acceptance bound.
    fo.budget.max_units = 400'000;
    fo.stop_after_kinds = kinds;
    const FuzzResult run = fuzz(world, fo);
    EXPECT_TRUE(run.complete)
        << gc.name << ": fuzzer missed a violation class within budget ("
        << run.stats.total_steps << " steps, " << run.stats.executions
        << " execs)";
    for (const ViolationKind kind : kinds) {
      const auto it = run.first_by_kind.find(kind);
      ASSERT_NE(it, run.first_by_kind.end())
          << gc.name << " kind=" << to_string(kind);
      expect_witness_reproduces(world, it->second,
                                gc.name + "/fuzz/" +
                                    std::string(to_string(kind)));
    }

    // The headline witness: as-found and as-shrunk both replay to the
    // same violation kind, and shrinking never grows the schedule.
    ASSERT_TRUE(run.original_violation.has_value()) << gc.name;
    ASSERT_TRUE(run.violation.has_value()) << gc.name;
    EXPECT_EQ(run.violation->kind, run.original_violation->kind) << gc.name;
    EXPECT_LE(run.violation->schedule.size(),
              run.original_violation->schedule.size())
        << gc.name;
    EXPECT_EQ(classify_schedule(world, run.original_violation->schedule,
                                fo.killed_is_violation),
              run.original_violation->kind)
        << gc.name;
    EXPECT_EQ(classify_schedule(world, run.violation->schedule,
                                fo.killed_is_violation),
              run.violation->kind)
        << gc.name << " (shrunk witness no longer violates)";
    expect_witness_reproduces(world, *run.violation, gc.name + "/shrunk");
  }
}

// ---------------------------------------------------------------------
// Budget truncation: an exhausted budget reports complete = false and
// fabricates no verdict (retry-silent at bounded t is explorer-proven
// correct, so ANY violation here would be fabricated).
// ---------------------------------------------------------------------

GridCase correct_cell() {
  for (const GridCase& gc : differential_grid()) {
    if (gc.name == "retry-silent/silent/t1/n2") return gc;
  }
  ADD_FAILURE() << "grid cell retry-silent/silent/t1/n2 missing";
  return {};
}

TEST(FuzzerBudget, TruncationReportsIncompleteAndFabricatesNothing) {
  const GridCase gc = correct_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 7;
  fo.budget.max_units = 40;  // far too small to finish anything useful
  const FuzzResult run = fuzz(world, fo);

  EXPECT_FALSE(run.complete);
  EXPECT_LE(run.stats.total_steps, 40u);
  EXPECT_EQ(run.stats.violations_found, 0u);
  EXPECT_FALSE(run.violation.has_value());
}

TEST(FuzzerBudget, MaxExecsWithinBudgetReportsComplete) {
  const GridCase gc = correct_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 7;
  fo.budget.max_units = 500'000;
  fo.max_execs = 50;
  const FuzzResult run = fuzz(world, fo);

  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.stats.executions, 50u);
  EXPECT_EQ(run.stats.violations_found, 0u);
}

TEST(FuzzerBudget, DeadlineTruncationReportsIncomplete) {
  const GridCase gc = correct_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 7;
  fo.budget.max_units = 0;  // unlimited steps...
  fo.budget.max_millis = 1;  // ...but essentially no wall-clock time
  const FuzzResult run = fuzz(world, fo);

  EXPECT_FALSE(run.complete);
  EXPECT_EQ(run.stats.violations_found, 0u);
}

// ---------------------------------------------------------------------
// Seed determinism, mirroring the run_stress / random_walk regression
// tests: same seed + same budget ⇒ identical corpus, coverage set,
// first-violation schedule, and final RNG state.
// ---------------------------------------------------------------------

GridCase violating_cell() {
  for (const GridCase& gc : differential_grid()) {
    if (gc.name == "single-cas/overriding/t1/n3") return gc;
  }
  ADD_FAILURE() << "grid cell single-cas/overriding/t1/n3 missing";
  return {};
}

TEST(FuzzerDeterminism, SameSeedSameBudgetIsBitIdentical) {
  const GridCase gc = violating_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 42;
  fo.budget.max_units = 30'000;
  fo.stop_at_first_violation = false;

  const FuzzResult a = fuzz(world, fo);
  const FuzzResult b = fuzz(world, fo);

  EXPECT_EQ(a.stats.executions, b.stats.executions);
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
  EXPECT_EQ(a.stats.unique_states, b.stats.unique_states);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.violations_by_kind, b.violations_by_kind);
  ASSERT_EQ(a.original_violation.has_value(),
            b.original_violation.has_value());
  if (a.original_violation) {
    EXPECT_EQ(a.original_violation->schedule,
              b.original_violation->schedule);
    EXPECT_EQ(a.violation->schedule, b.violation->schedule);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FuzzerDeterminism, FirstViolationScheduleIsSeedStable) {
  const GridCase gc = violating_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 1234;
  fo.budget.max_units = 200'000;
  const FuzzResult a = fuzz(world, fo);
  const FuzzResult b = fuzz(world, fo);

  ASSERT_TRUE(a.original_violation.has_value());
  ASSERT_TRUE(b.original_violation.has_value());
  EXPECT_EQ(a.original_violation->schedule, b.original_violation->schedule);
  EXPECT_EQ(a.stats.first_violation_exec, b.stats.first_violation_exec);
}

// The JSON serialization is syntactically well-formed enough for a naive
// bracket check and contains the headline fields.
TEST(FuzzerJson, SerializesRunState) {
  const GridCase gc = violating_cell();
  const SimWorld world = make_world(gc);

  FuzzOptions fo;
  fo.seed = 5;
  fo.budget.max_units = 50'000;
  const FuzzResult run = fuzz(world, fo);
  const std::string json = run.to_json();

  EXPECT_NE(json.find("\"complete\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"corpus\""), std::string::npos);
  EXPECT_NE(json.find("\"rng_state\""), std::string::npos);
  std::int64_t depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace ff::sched
