// Real-thread tests of the consensus protocols over FaultyCas objects:
// correctness under randomized schedules and fault policies, step-count
// (wait-freedom) bounds, and trace-based invariant checks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "legacy/f_plus_one.hpp"
#include "legacy/retry_silent.hpp"
#include "legacy/single_cas.hpp"
#include "legacy/staged.hpp"
#include "consensus/verify.hpp"
#include "faults/budget.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "faults/trace.hpp"
#include "objects/atomic_cas.hpp"
#include "runtime/stress.hpp"
#include "runtime/thread_runner.hpp"

namespace ff {
namespace {

using consensus::Decision;
using consensus::InputValue;
using model::FaultKind;
using model::Value;

/// Bundles a bank of FaultyCas objects with shared policy/budget/trace.
struct Bank {
  Bank(std::uint32_t count, FaultKind kind,
       std::unique_ptr<faults::FaultPolicy> fault_policy,
       std::unique_ptr<faults::FaultBudget> fault_budget)
      : policy(std::move(fault_policy)), budget(std::move(fault_budget)) {
    for (std::uint32_t i = 0; i < count; ++i) {
      objects.push_back(std::make_unique<faults::FaultyCas>(
          i, kind, policy.get(), budget.get(), &trace));
      raw.push_back(objects.back().get());
    }
  }

  void reset_all() {
    if (budget) budget->reset();
    trace.clear();
  }

  std::unique_ptr<faults::FaultPolicy> policy;
  std::unique_ptr<faults::FaultBudget> budget;
  faults::VectorTraceSink trace;
  std::vector<std::unique_ptr<faults::FaultyCas>> objects;
  std::vector<objects::CasObject*> raw;
};

// --- Figure 1 / Theorem 4 ---------------------------------------------------

TEST(TwoProcess, CorrectUnderAlwaysFaultingObject) {
  Bank bank(1, FaultKind::kOverriding,
            std::make_unique<faults::AlwaysFault>(), nullptr);
  consensus::TwoProcessConsensus protocol(*bank.raw[0]);

  runtime::StressOptions options;
  options.processes = 2;
  options.budget.max_units = 300;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { bank.reset_all(); });
  EXPECT_TRUE(report.all_ok()) << "violations=" << report.violations();
  EXPECT_DOUBLE_EQ(report.steps_per_process.max(), 1.0);  // 1 CAS each
}

TEST(TwoProcess, SoloRunDecidesOwnValue) {
  objects::AtomicCas object(0);
  consensus::SingleCasConsensus protocol(object);
  const Decision d = protocol.decide(123, 0);
  EXPECT_TRUE(d.decided);
  EXPECT_EQ(d.value, 123u);
  EXPECT_EQ(d.cas_steps, 1u);
}

TEST(TwoProcess, SecondCallerAdoptsFirstValue) {
  objects::AtomicCas object(0);
  consensus::SingleCasConsensus protocol(object);
  EXPECT_EQ(protocol.decide(5, 0).value, 5u);
  EXPECT_EQ(protocol.decide(9, 1).value, 5u);
}

TEST(TwoProcess, HerlihyManyThreadsFaultFree) {
  objects::AtomicCas object(0);
  consensus::HerlihyConsensus protocol(object);
  runtime::StressOptions options;
  options.processes = 6;
  options.budget.max_units = 200;
  const auto report = runtime::run_stress(protocol, options);
  EXPECT_TRUE(report.all_ok());
}

// --- Figure 2 / Theorem 5 ---------------------------------------------------

class FPlusOneThreaded
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FPlusOneThreaded, ToleratesFFaultyObjects) {
  const auto f = static_cast<std::uint32_t>(std::get<0>(GetParam()));
  const auto n = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  // Dynamic designation: the adversary may pick any f of the f+1 objects.
  Bank bank(f + 1, FaultKind::kOverriding,
            std::make_unique<faults::ProbabilisticFault>(0.6, 17),
            std::make_unique<faults::FaultBudget>(f + 1, f,
                                                  model::kUnbounded));
  consensus::FPlusOneConsensus protocol(bank.raw);

  runtime::StressOptions options;
  options.processes = n;
  options.budget.max_units = 150;
  options.seed = 0xabc + f * 31 + n;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { bank.reset_all(); });
  EXPECT_TRUE(report.all_ok())
      << "f=" << f << " n=" << n << " violations=" << report.violations();
  // Wait-freedom: exactly f+1 CAS steps per process, always.
  EXPECT_DOUBLE_EQ(report.steps_per_process.min(), f + 1);
  EXPECT_DOUBLE_EQ(report.steps_per_process.max(), f + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FPlusOneThreaded,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 4, 6)));

TEST(FPlusOne, TraceStaysCoherentAndWithinBudget) {
  constexpr std::uint32_t kF = 2;
  Bank bank(kF + 1, FaultKind::kOverriding,
            std::make_unique<faults::AlwaysFault>(),
            std::make_unique<faults::FaultBudget>(kF + 1, kF,
                                                  model::kUnbounded));
  consensus::FPlusOneConsensus protocol(bank.raw);

  runtime::StressOptions options;
  options.processes = 4;
  options.budget.max_units = 50;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { bank.reset_all(); },
      [&](std::uint64_t trial, const runtime::TrialOutcome& outcome) {
        const auto trace = bank.trace.snapshot();
        // Every event satisfies the Φ/Φ′ it claims.
        EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value())
            << "trial " << trial;
        // At most f objects manifested faults.
        const auto acc = consensus::account_faults(trace);
        EXPECT_LE(acc.faulty_objects(), kF) << "trial " << trial;
        // Claim 7 flavour: only input values are ever written.
        EXPECT_TRUE(consensus::writes_only_input_values(
            trace, outcome.inputs, /*staged=*/false))
            << "trial " << trial;
      });
  EXPECT_TRUE(report.all_ok());
}

// --- Figure 3 / Theorem 6 ---------------------------------------------------

class StagedThreaded
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StagedThreaded, AllObjectsFaultyWithinBounds) {
  const auto f = static_cast<std::uint32_t>(std::get<0>(GetParam()));
  const auto t = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const std::uint32_t n = f + 1;
  Bank bank(f, FaultKind::kOverriding,
            std::make_unique<faults::ProbabilisticFault>(0.5, 23),
            std::make_unique<faults::FaultBudget>(f, f, t));
  consensus::StagedConsensus protocol(bank.raw, t);
  protocol.set_step_limit(1'000'000);

  runtime::StressOptions options;
  options.processes = n;
  options.budget.max_units = 100;
  options.seed = 0xdef + f * 131 + t;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { bank.reset_all(); },
      [&](std::uint64_t trial, const runtime::TrialOutcome& outcome) {
        const auto trace = bank.trace.snapshot();
        EXPECT_TRUE(consensus::stages_monotone_per_process(trace))
            << "Claim 8 violated in trial " << trial;
        EXPECT_TRUE(consensus::nonfaulty_writes_increase_stage(trace))
            << "Claim 13 violated in trial " << trial;
        EXPECT_TRUE(consensus::stage_propagation_order(trace, f))
            << "Claim 9 violated in trial " << trial;
        EXPECT_TRUE(consensus::writes_only_input_values(
            trace, outcome.inputs, /*staged=*/true))
            << "Claim 7 violated in trial " << trial;
        const auto acc = consensus::account_faults(trace);
        EXPECT_TRUE(acc.within({f, t, n})) << "budget overrun, trial "
                                           << trial;
      });
  EXPECT_TRUE(report.all_ok())
      << "f=" << f << " t=" << t << " violations=" << report.violations();
}

INSTANTIATE_TEST_SUITE_P(Sweep, StagedThreaded,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{1, 3},
                                           std::tuple{2, 1}, std::tuple{2, 2},
                                           std::tuple{3, 1}, std::tuple{3, 2},
                                           std::tuple{4, 1}));

TEST(Staged, SoloStepCountMatchesStageArithmetic) {
  // A solo fault-free run: every stage costs f successful CASes; stage 1
  // additionally pays one repair CAS on O_0 (the ⊥-filler exp from line
  // 17 never matches), and the final stage is a single successful CAS.
  // Total: f·maxStage + 1 (repair) + 1 (final) = f·maxStage + 2.
  for (const auto& [f, t] : {std::pair{1u, 1u}, {2u, 1u}, {3u, 2u}}) {
    std::vector<std::unique_ptr<objects::AtomicCas>> bank;
    std::vector<objects::CasObject*> raw;
    for (std::uint32_t i = 0; i < f; ++i) {
      bank.push_back(std::make_unique<objects::AtomicCas>(i));
      raw.push_back(bank.back().get());
    }
    consensus::StagedConsensus protocol(raw, t);
    const Decision d = protocol.decide(7, 0);
    EXPECT_TRUE(d.decided);
    EXPECT_EQ(d.value, 7u);
    const std::uint64_t max_stage = protocol.max_stage();
    EXPECT_EQ(d.cas_steps, max_stage * f + 2) << "f=" << f << " t=" << t;
  }
}

TEST(Staged, MaxStageAccessor) {
  std::vector<std::unique_ptr<objects::AtomicCas>> bank;
  std::vector<objects::CasObject*> raw;
  for (std::uint32_t i = 0; i < 2; ++i) {
    bank.push_back(std::make_unique<objects::AtomicCas>(i));
    raw.push_back(bank.back().get());
  }
  consensus::StagedConsensus protocol(raw, 3);
  EXPECT_EQ(protocol.max_stage(), 3u * (4 * 2 + 4));
  EXPECT_EQ(protocol.objects_used(), 2u);
  EXPECT_EQ(protocol.fault_bound(), 3u);
}

TEST(Staged, StepLimitProducesUndecidedNotHang) {
  std::vector<std::unique_ptr<objects::AtomicCas>> bank;
  std::vector<objects::CasObject*> raw;
  bank.push_back(std::make_unique<objects::AtomicCas>(0));
  raw.push_back(bank.back().get());
  consensus::StagedConsensus protocol(raw, 1);
  protocol.set_step_limit(2);  // absurdly small
  const Decision d = protocol.decide(7, 0);
  EXPECT_FALSE(d.decided);
  EXPECT_LE(d.cas_steps, 2u);
}

// --- retry-silent (§3.4) ----------------------------------------------------

TEST(RetrySilent, ToleratesBoundedSilentFaultsThreaded) {
  Bank bank(1, FaultKind::kSilent, std::make_unique<faults::AlwaysFault>(),
            std::make_unique<faults::FaultBudget>(1, 1, /*t=*/4));
  consensus::RetrySilentConsensus protocol(*bank.raw[0]);
  protocol.set_step_limit(10'000);

  runtime::StressOptions options;
  options.processes = 3;
  options.budget.max_units = 200;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { bank.reset_all(); });
  EXPECT_TRUE(report.all_ok()) << "violations=" << report.violations();
}

TEST(RetrySilent, UnboundedSilentFaultsLivelockIsDetected) {
  Bank bank(1, FaultKind::kSilent, std::make_unique<faults::AlwaysFault>(),
            nullptr);  // no budget: unbounded faults
  consensus::RetrySilentConsensus protocol(*bank.raw[0]);
  protocol.set_step_limit(1'000);
  const Decision d = protocol.decide(5, 0);
  EXPECT_FALSE(d.decided);  // every write silently dropped, forever
  EXPECT_GE(d.cas_steps, 1'000u);
}

// --- nonresponsive handling in the thread runner ---------------------------

TEST(ThreadRunner, NonresponsiveFaultYieldsUndecidedOutcome) {
  Bank bank(1, FaultKind::kNonresponsive,
            std::make_unique<faults::FirstKFault>(1),
            std::make_unique<faults::FaultBudget>(1, 1, 1));
  consensus::SingleCasConsensus protocol(*bank.raw[0]);
  const auto outcome = runtime::run_trial(protocol, {10, 20});
  EXPECT_FALSE(outcome.verdict.all_decided);
  // Exactly one process was swallowed; the other decided validly.
  int decided = 0;
  for (const auto& d : outcome.decisions) decided += d.decided ? 1 : 0;
  EXPECT_EQ(decided, 1);
}

// --- verify_consensus unit behaviour ----------------------------------------

TEST(Verify, DetectsInconsistency) {
  const auto v = consensus::verify_consensus(
      {1, 2}, {Decision::of(1, 1), Decision::of(2, 1)});
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.consistent);
  EXPECT_TRUE(v.valid);
}

TEST(Verify, DetectsInvalidity) {
  const auto v = consensus::verify_consensus(
      {1, 2}, {Decision::of(7, 1), Decision::of(7, 1)});
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.consistent);
  EXPECT_FALSE(v.valid);
}

TEST(Verify, DetectsUndecided) {
  const auto v = consensus::verify_consensus(
      {1, 2}, {Decision::of(1, 1), Decision::undecided(5)});
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.all_decided);
}

TEST(Verify, AcceptsAgreement) {
  const auto v = consensus::verify_consensus(
      {1, 2, 3},
      {Decision::of(2, 1), Decision::of(2, 2), Decision::of(2, 3)});
  EXPECT_TRUE(v.ok());
  ASSERT_TRUE(v.agreed.has_value());
  EXPECT_EQ(*v.agreed, 2u);
  EXPECT_FALSE(v.describe().empty());
}

}  // namespace
}  // namespace ff
