// Recoverable consensus (Golab's crash–recovery model) checked three
// ways:
//   1. Model checking over the small-parameter grid: agreement, validity
//      and recoverable wait-freedom under every schedule, crash
//      placement and functional-fault placement within budget — the
//      crash × overriding cross-product included.  recoverable-staged
//      survives the cross-product at its design point; recoverable-cas
//      is crash-correct but inherits single-cas's overriding
//      vulnerability (the documented finding, with its minimal witness
//      exercised in test_crash_recovery.cpp).
//   2. Thread-vs-simulator equality: every decision a real crashed-and-
//      restarted thread execution produces is one the exhaustive
//      simulation admits.
//   3. A seeded stress campaign with REAL worker threads that crash
//      (faults::CrashError unwinds the thread) and restart as fresh
//      std::threads entering the recovery label.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/verify.hpp"
#include "faults/crash_policy.hpp"
#include "objects/atomic_cas.hpp"
#include "proto/registry.hpp"
#include "runtime/crash_runner.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using sched::ViolationKind;

sched::SimWorld make_world(const sched::MachineFactory& factory,
                           model::FaultKind kind, std::uint32_t t,
                           std::uint32_t n, std::uint32_t crash_budget) {
  sched::SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = kind == model::FaultKind::kNone ? 0 : t;
  config.crash_budget = crash_budget;
  std::vector<std::uint64_t> inputs(n);
  for (std::uint32_t i = 0; i < n; ++i) inputs[i] = i + 1;
  return sched::SimWorld(config, factory, inputs);
}

sched::ExploreResult check(const sched::SimWorld& world) {
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  return sched::explore(world, options);
}

// ---------------------------------------------------------------------------
// 1. Model checking over the small-parameter grid.

struct GridCell {
  std::string protocol;
  proto::Params params;
  model::FaultKind kind;
  std::uint32_t t;
  std::uint32_t n;
  std::uint32_t budget;
  bool correct;  ///< expected: no violation of any kind
};

TEST(RecoverableConsensus, GridAgreementValidityAndWaitFreedom) {
  using model::FaultKind;
  std::vector<GridCell> grid;
  // recoverable-cas: crash-correct at every budget and process count…
  for (const std::uint32_t n : {2u, 3u}) {
    for (const std::uint32_t b : {0u, 1u, 2u}) {
      grid.push_back({"recoverable-cas", {}, FaultKind::kNone, 0, n, b, true});
    }
  }
  // …but one overriding fault breaks agreement as soon as a crash can
  // strand a winner between its CAS and its decision (budget ≥ 1).
  grid.push_back(
      {"recoverable-cas", {}, FaultKind::kOverriding, 1, 2, 0, true});
  grid.push_back(
      {"recoverable-cas", {}, FaultKind::kOverriding, 1, 2, 1, false});
  grid.push_back(
      {"recoverable-cas", {}, FaultKind::kOverriding, 1, 2, 2, false});
  // recoverable-staged at its design point (n = 2 = f + 1): correct under
  // crashes alone AND under the crash × overriding cross-product.
  for (const std::uint32_t b : {0u, 1u, 2u}) {
    grid.push_back({"recoverable-staged", proto::Params{{"f", 1}, {"t", 1}},
                    FaultKind::kNone, 0, 2, b, true});
  }
  for (const std::uint32_t b : {0u, 1u}) {
    grid.push_back({"recoverable-staged", proto::Params{{"f", 1}, {"t", 1}},
                    FaultKind::kOverriding, 1, 2, b, true});
  }
  grid.push_back({"recoverable-staged", proto::Params{{"f", 1}, {"t", 2}},
                  FaultKind::kOverriding, 2, 2, 1, true});
  // Beyond the design point the staged protocol already fails crash-free
  // at n = 3 (one overriding fault, three processes); the recoverable
  // variant must inherit exactly that behavior, not mask or worsen it.
  grid.push_back({"staged", proto::Params{{"f", 1}, {"t", 1}},
                  FaultKind::kOverriding, 1, 3, 0, false});
  grid.push_back({"recoverable-staged", proto::Params{{"f", 1}, {"t", 1}},
                  FaultKind::kOverriding, 1, 3, 0, false});
  grid.push_back({"recoverable-staged", proto::Params{{"f", 1}, {"t", 1}},
                  FaultKind::kOverriding, 1, 3, 1, false});

  for (const GridCell& cell : grid) {
    const std::string label = cell.protocol + "/" +
                              std::string(model::to_string(cell.kind)) +
                              "/t" + std::to_string(cell.t) + "/n" +
                              std::to_string(cell.n) + "/b" +
                              std::to_string(cell.budget);
    const auto factory = proto::machine_factory(cell.protocol, cell.params);
    const auto world =
        make_world(*factory, cell.kind, cell.t, cell.n, cell.budget);
    const auto result = check(world);

    ASSERT_TRUE(result.complete) << label;
    if (cell.correct) {
      EXPECT_EQ(result.violations_found, 0u) << label;
      // Recoverable validity: every agreed value is a proposed input.
      for (const std::uint64_t v : result.agreed_values) {
        EXPECT_GE(v, 1u) << label;
        EXPECT_LE(v, cell.n) << label;
      }
    } else {
      EXPECT_GT(result.violations_of(ViolationKind::kInconsistent), 0u)
          << label;
    }
    // Recoverable wait-freedom: within a finite crash budget every
    // process decides — no reachable cycle, no stalled terminal.
    EXPECT_EQ(result.violations_of(ViolationKind::kNontermination), 0u)
        << label;
    EXPECT_EQ(result.violations_of(ViolationKind::kStalled), 0u) << label;
  }
}

// ---------------------------------------------------------------------------
// 2. Thread-vs-simulator decision equality.

TEST(RecoverableConsensus, ThreadDecisionsAreSimulatorAdmissible) {
  for (const char* name : {"recoverable-cas", "recoverable-staged"}) {
    const proto::Params params =
        std::string(name) == "recoverable-staged"
            ? proto::Params{{"f", 1}, {"t", 1}}
            : proto::Params{};
    // Exhaustive crash-aware simulation fixes the admissible agreed set.
    const auto factory = proto::machine_factory(name, params);
    const auto oracle =
        check(make_world(*factory, model::FaultKind::kNone, 0, 2, 2));
    ASSERT_TRUE(oracle.complete) << name;
    ASSERT_FALSE(oracle.agreed_values.empty()) << name;

    objects::AtomicCas object(0);
    const auto protocol = proto::protocol(name, params, {&object});
    auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);

    std::uint64_t crashed_trials = 0;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      ir.reset();
      faults::IndependentCrash policy(0.5, seed);
      const auto outcome =
          runtime::run_crash_trial(ir, {1, 2}, policy, /*crash_budget=*/2,
                                   /*stagger_seed=*/seed);
      const std::string label =
          std::string(name) + " seed=" + std::to_string(seed);
      EXPECT_TRUE(outcome.verdict.ok()) << label << ": "
                                        << outcome.verdict.describe();
      ASSERT_TRUE(outcome.verdict.agreed.has_value()) << label;
      EXPECT_TRUE(oracle.agreed_values.contains(*outcome.verdict.agreed))
          << label << ": threads agreed on " << *outcome.verdict.agreed
          << ", which no simulated schedule admits";
      for (const std::uint32_t c : outcome.crashes) EXPECT_LE(c, 2u) << label;
      if (outcome.crashes[0] + outcome.crashes[1] > 0) ++crashed_trials;
    }
    // p = 0.5 per shared op across 24 seeded trials: crashes certainly
    // manifested — otherwise the campaign never tested recovery.
    EXPECT_GT(crashed_trials, 0u) << name;
  }
}

TEST(RecoverableConsensus, SoloCrashedProcessDecidesItsOwnInput) {
  // n = 1 removes schedule nondeterminism entirely: with a forced crash
  // on every first operation, the decision must still be the sole
  // process's own (persistent) proposal — exact equality with the
  // simulator's unique outcome.
  objects::AtomicCas object(0);
  const auto protocol = proto::protocol("recoverable-cas", {}, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);

  faults::RunLengthCrash policy(1);
  const auto outcome =
      runtime::run_crash_trial(ir, {7}, policy, /*crash_budget=*/2);
  EXPECT_TRUE(outcome.verdict.ok()) << outcome.verdict.describe();
  ASSERT_TRUE(outcome.decisions[0].decided);
  EXPECT_EQ(outcome.decisions[0].value, 7u);
  // The policy fires on the first op of EVERY incarnation, so the
  // process crashed exactly budget times before it was allowed through.
  EXPECT_EQ(outcome.crashes[0], 2u);
}

// ---------------------------------------------------------------------------
// 3. Seeded stress campaign with real crashed-and-restarted threads.

TEST(RecoverableConsensus, StressCampaignWithRealThreadCrashes) {
  objects::AtomicCas object(0);
  const proto::Params params{{"f", 1}, {"t", 1}};
  const auto protocol = proto::protocol("recoverable-staged", params, {&object});
  auto& ir = dynamic_cast<proto::IrProtocol&>(*protocol);

  std::uint64_t total_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ir.reset();
    faults::IndependentCrash policy(0.25, 0xFEEDu + seed);
    const auto outcome =
        runtime::run_crash_trial(ir, {1, 2}, policy, /*crash_budget=*/2,
                                 /*stagger_seed=*/seed);
    ASSERT_TRUE(outcome.verdict.ok())
        << "seed=" << seed << ": " << outcome.verdict.describe();
    total_crashes += outcome.crashes[0] + outcome.crashes[1];
  }
  EXPECT_GT(total_crashes, 0u);

  // Deterministic restart coverage: every process forced through the
  // full crash budget before completing.
  ir.reset();
  faults::RunLengthCrash every_first_op(1);
  const auto forced =
      runtime::run_crash_trial(ir, {1, 2}, every_first_op, /*crash_budget=*/2);
  EXPECT_TRUE(forced.verdict.ok()) << forced.verdict.describe();
  EXPECT_EQ(forced.crashes[0], 2u);
  EXPECT_EQ(forced.crashes[1], 2u);

  // UniformOverRun picks one crash point within the first run_length
  // ops per incarnation; the trial must still converge within budget.
  ir.reset();
  faults::UniformOverRunCrash windowed(4, 0xABCDu);
  const auto uniform =
      runtime::run_crash_trial(ir, {1, 2}, windowed, /*crash_budget=*/1);
  EXPECT_TRUE(uniform.verdict.ok()) << uniform.verdict.describe();
}

}  // namespace
}  // namespace ff
