// Seed-stability regression tests: identical options (and in particular
// identical seeds) must make the randomized harnesses reproduce their
// reports exactly — the guarantee documented in runtime/stress.hpp and
// sched/random_walk.hpp.  Protocols used here have schedule-independent
// outcomes (every process performs a fixed number of CAS steps), so the
// full report — including the step statistics — is a pure function of
// the options.
#include <gtest/gtest.h>

#include "legacy/single_cas.hpp"
#include "objects/atomic_cas.hpp"
#include "runtime/stress.hpp"
#include "sched/random_walk.hpp"
#include "explore_diff.hpp"

namespace ff {
namespace {

void expect_identical(const runtime::StressReport& a,
                      const runtime::StressReport& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.inconsistent, b.inconsistent);
  EXPECT_EQ(a.invalid, b.invalid);
  EXPECT_EQ(a.undecided, b.undecided);
  EXPECT_EQ(a.first_violation, b.first_violation);
  EXPECT_EQ(a.steps_per_process.count(), b.steps_per_process.count());
  EXPECT_DOUBLE_EQ(a.steps_per_process.mean(), b.steps_per_process.mean());
  EXPECT_DOUBLE_EQ(a.steps_per_process.min(), b.steps_per_process.min());
  EXPECT_DOUBLE_EQ(a.steps_per_process.max(), b.steps_per_process.max());
}

runtime::StressReport run_campaign(std::uint64_t seed) {
  objects::AtomicCas object(0);
  consensus::HerlihyConsensus protocol(object);
  runtime::StressOptions options;
  options.processes = 3;
  options.budget.max_units = 200;
  options.seed = seed;
  return runtime::run_stress(protocol, options);
}

TEST(Determinism, StressCampaignIsSeedStable) {
  const auto first = run_campaign(0xc0ffee);
  const auto second = run_campaign(0xc0ffee);
  expect_identical(first, second);
  EXPECT_TRUE(first.all_ok());
}

TEST(Determinism, StressCampaignSeedChangesInputs) {
  // Different seeds draw different inputs — the campaign is seeded, not
  // frozen.  Verdict counters still agree because the protocol is
  // correct; the reports as a whole need not be distinguishable, so this
  // only checks the seeded runs do not crash and stay all-ok.
  const auto other = run_campaign(0xdecaf);
  EXPECT_TRUE(other.all_ok());
  EXPECT_EQ(other.trials, 200u);
}

TEST(Determinism, RandomWalkIsSeedStable) {
  // random_walk documents full determinism in its seed; cross-check on a
  // violating configuration where the outcome is non-trivial.
  const consensus::SingleCasFactory factory;
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 1;
  const sched::SimWorld world(config, factory, testutil::iota_inputs(3));
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sched::WalkOptions options;
    options.seed = seed;
    const auto a = sched::random_walk(world, options);
    const auto b = sched::random_walk(world, options);
    EXPECT_EQ(a.terminal, b.terminal) << seed;
    EXPECT_EQ(a.consistent, b.consistent) << seed;
    EXPECT_EQ(a.valid, b.valid) << seed;
    EXPECT_EQ(a.steps, b.steps) << seed;
    EXPECT_EQ(a.agreed, b.agreed) << seed;
  }
}

}  // namespace
}  // namespace ff
