// Minimal counterexamples: BFS witness search, cross-checked against the
// DFS explorer and hand-derived shortest violating executions.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"
#include "sched/random_walk.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::SingleCasFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

SimConfig cfg(std::uint32_t objects, FaultKind kind, std::uint32_t t) {
  SimConfig c;
  c.num_objects = objects;
  c.kind = kind;
  c.t = t;
  return c;
}

TEST(ShortestWitness, HerlihyThreeProcsNeedsExactlyThreeSteps) {
  // The minimal violating execution of Figure 1 at n=3 is the one from
  // the analysis: p_a decides, p_b overrides and adopts, p_c reads the
  // overridden value — 3 steps, no shorter one exists.
  const SingleCasFactory factory;
  const SimWorld world(cfg(1, FaultKind::kOverriding, 1), factory,
                       inputs(3));
  const auto result = sched::find_shortest_violation(world);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->schedule.size(), 3u);
  // Exactly one step is faulty.
  int faults = 0;
  for (const auto& c : result.violation->schedule) faults += c.fault;
  EXPECT_EQ(faults, 1);
}

TEST(ShortestWitness, NeverLongerThanDfsWitness) {
  const FPlusOneFactory factory(2);
  const SimWorld world(cfg(2, FaultKind::kOverriding, kUnbounded), factory,
                       inputs(3));
  const auto dfs = sched::explore(world);
  const auto bfs = sched::find_shortest_violation(world);
  ASSERT_TRUE(dfs.violation.has_value());
  ASSERT_TRUE(bfs.violation.has_value());
  EXPECT_LE(bfs.violation->schedule.size(), dfs.violation->schedule.size());
}

TEST(ShortestWitness, WitnessReplaysToViolation) {
  const StagedFactory factory(1, 1);
  const SimWorld world(cfg(1, FaultKind::kOverriding, 1), factory,
                       inputs(3));
  const auto result = sched::find_shortest_violation(world);
  ASSERT_TRUE(result.violation.has_value());
  const SimWorld replayed = sched::replay(world, result.violation->schedule);
  EXPECT_TRUE(replayed.terminal());
  std::set<std::uint64_t> distinct;
  for (const auto& d : replayed.decisions()) {
    if (d) distinct.insert(*d);
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(ShortestWitness, CompletesAsProofOnCorrectConfigs) {
  const SingleCasFactory factory;
  const SimWorld world(cfg(1, FaultKind::kOverriding, kUnbounded), factory,
                       inputs(2));
  const auto result = sched::find_shortest_violation(world);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_TRUE(result.complete);
  // Same reachable-state count as the DFS explorer.
  const auto dfs = sched::explore(world);
  EXPECT_EQ(result.states_visited, dfs.states_visited);
}

TEST(ShortestWitness, MinimalAgainstHundredSeededRandomWalks) {
  // BFS minimality, checked empirically: on the known-violating
  // overriding-CAS configuration (Figure 1 at n = 3, t = 1), no violating
  // execution found by 100 seeded random walks may be shorter than the
  // BFS witness.  Walk step counts equal schedule lengths (one choice per
  // applied step), so the quantities are directly comparable.
  const SingleCasFactory factory;
  const SimWorld world(cfg(1, FaultKind::kOverriding, 1), factory,
                       inputs(3));
  const auto bfs = sched::find_shortest_violation(world);
  ASSERT_TRUE(bfs.violation.has_value());
  const std::uint64_t minimal = bfs.violation->schedule.size();

  std::uint64_t violating_walks = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sched::WalkOptions options;
    options.seed = seed;
    const auto walk = sched::random_walk(world, options);
    if (!walk.terminal || walk.ok()) continue;
    ++violating_walks;
    EXPECT_GE(walk.steps, minimal) << "seed=" << seed;
  }
  // The campaign must actually exercise the comparison.
  EXPECT_GT(violating_walks, 0u);
}

TEST(ShortestWitness, RespectsStateCap) {
  const StagedFactory factory(2, 2);
  const SimWorld world(cfg(2, FaultKind::kOverriding, 2), factory,
                       inputs(3));
  sched::ExploreOptions options;
  options.max_states = 50;
  const auto result = sched::find_shortest_violation(world, options);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_LE(result.states_visited, 52u);
}

}  // namespace
}  // namespace ff
