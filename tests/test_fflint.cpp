// ff-lint rule-engine tests: per-rule positive/negative fixtures (the
// fixture tree under tests/fflint_fixtures/ mirrors the src/ layout so
// production scoping applies), suppression-justification behavior, the
// JSON report shape, and the self-lint gate asserting the shipped tree
// reports zero unsuppressed findings.
#include "tools/fflint/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/fflint/lexer.hpp"

namespace {

using ff::fflint::analyze_source;
using ff::fflint::analyze_tree;
using ff::fflint::FileReport;
using ff::fflint::Finding;
using ff::fflint::Rule;
using ff::fflint::TreeReport;

/// One shared scan of the fixture tree (the fixtures are static data).
const TreeReport& fixture_report() {
  static const TreeReport kReport = analyze_tree(FF_FIXTURE_ROOT);
  return kReport;
}

const FileReport* fixture_file(const std::string& name) {
  for (const FileReport& f : fixture_report().files) {
    if (f.file == name) return &f;
  }
  return nullptr;
}

std::vector<int> lines_of(const std::vector<Finding>& findings, Rule rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

/// Asserts every finding in `f` belongs to `rule` (fixtures are written
/// to violate exactly one rule so cross-talk is a bug).
void expect_only_rule(const FileReport& f, Rule rule) {
  for (const Finding& finding : f.findings) {
    EXPECT_EQ(finding.rule, rule)
        << f.file << ":" << finding.line << " unexpected "
        << ff::fflint::rule_id(finding.rule) << ": " << finding.message;
  }
}

// ---------------------------------------------------------------- rules

TEST(FflintR1, FlagsRawSharedStateInSchedulerCode) {
  const FileReport* f = fixture_file("src/sched/r1_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR1);
  EXPECT_EQ(lines_of(f->findings, Rule::kR1), (std::vector<int>{13, 14}));
}

TEST(FflintR1, ObjectLayerIsTheAllowedZone) {
  // The fixture never even enters the report: no findings, no directives.
  EXPECT_EQ(fixture_file("src/objects/r1_good.cpp"), nullptr);
}

TEST(FflintR2, FlagsEveryNondeterminismSource) {
  const FileReport* f = fixture_file("src/consensus/r2_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR2);
  // rand, random_device, steady_clock, thread_local, mutable static
  // local, hash-of-pointer — one per line.
  EXPECT_EQ(lines_of(f->findings, Rule::kR2),
            (std::vector<int>{11, 12, 13, 14, 15, 16}));
}

TEST(FflintR2, SeededDeterminismIdiomsPass) {
  EXPECT_EQ(fixture_file("src/consensus/r2_good.cpp"), nullptr);
}

TEST(FflintR2, FlagsDirectCrashInjectionPrimitives) {
  // Crash nondeterminism may only enter through a faults::CrashPolicy
  // decision point: abort/_Exit/raise/setjmp/longjmp kill or teleport
  // control flow behind the model's back.
  const FileReport* f = fixture_file("src/consensus/r2_crash_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR2);
  EXPECT_EQ(lines_of(f->findings, Rule::kR2),
            (std::vector<int>{14, 15, 16, 17, 18}));
}

TEST(FflintR2, PolicyMediatedCrashIdiomPasses) {
  // should_crash() + throw is the sanctioned shape: the simulator can
  // enumerate the identical branch and a witness replays it.
  EXPECT_EQ(fixture_file("src/consensus/r2_crash_good.cpp"), nullptr);
}

TEST(FflintR1, ProtocolIrLayerIsGoverned) {
  // src/proto/ joined the governed tree with the single-source IR: the
  // IR layer feeds the simulator, so ambient atomics are as unsound
  // there as in src/sched/.
  const FileReport* f = fixture_file("src/proto/r1_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR1);
  EXPECT_EQ(lines_of(f->findings, Rule::kR1), (std::vector<int>{14}));
}

TEST(FflintR2, ProtocolIrLayerIsGoverned) {
  // Programs must be pure functions of (name, params) — a mutable build
  // counter or rand() tie-break breaks the encode()-equality contract.
  const FileReport* f = fixture_file("src/proto/r2_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR2);
  EXPECT_EQ(lines_of(f->findings, Rule::kR2), (std::vector<int>{10, 11}));
}

TEST(FflintR2, DeterministicIrIdiomsPass) {
  // Immutable static tables (the registry singleton idiom) stay legal.
  EXPECT_EQ(fixture_file("src/proto/r2_good.cpp"), nullptr);
}

TEST(FflintR3, FlagsStampAndRecordOutsideTheLock) {
  const FileReport* f = fixture_file("src/objects/r3_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR3);
  EXPECT_EQ(lines_of(f->findings, Rule::kR3), (std::vector<int>{23, 24}));
}

TEST(FflintR3, LockScopeAndAtomicRmwStampsPass) {
  EXPECT_EQ(fixture_file("src/objects/r3_good.cpp"), nullptr);
}

TEST(FflintR4, FlagsUnbudgetedInfiniteLoops) {
  const FileReport* f = fixture_file("src/sched/r4_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR4);
  EXPECT_EQ(lines_of(f->findings, Rule::kR4), (std::vector<int>{9, 13}));
}

TEST(FflintR4, BudgetMeterConsultationPasses) {
  EXPECT_EQ(fixture_file("src/sched/r4_good.cpp"), nullptr);
}

TEST(FflintR4, FlagsUnbudgetedRecoveryLoops) {
  // The crash model's unbounded shape: a restart loop that never
  // consults the crash budget respawns a crash-looping process forever.
  const FileReport* f = fixture_file("src/sched/r4_recovery_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR4);
  EXPECT_EQ(lines_of(f->findings, Rule::kR4), (std::vector<int>{12, 17}));
}

TEST(FflintR4, BudgetBoundedRecoveryLoopsPass) {
  EXPECT_EQ(fixture_file("src/sched/r4_recovery_good.cpp"), nullptr);
}

TEST(FflintR4, ScopeCoversNestedSchedulerDirectories) {
  // src/sched/reduce/ inherits R4 scope by path prefix — the rule set
  // must not be fooled by subdirectory nesting under a governed root.
  const FileReport* f = fixture_file("src/sched/reduce/r4_nested_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR4);
  EXPECT_EQ(lines_of(f->findings, Rule::kR4), (std::vector<int>{10, 15}));
}

TEST(FflintR4, NestedBudgetMeterConsultationPasses) {
  EXPECT_EQ(fixture_file("src/sched/reduce/r4_nested_good.cpp"), nullptr);
}

TEST(FflintR4, FlagsUnbudgetedFrontierWorkerAndDrainLoops) {
  // The frontier engine's loop shapes: an expand loop and a
  // handoff-ring drain loop in infinite form with no budget poll — a
  // peer that never quiesces would spin them forever.
  const FileReport* f = fixture_file("src/sched/r4_frontier_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR4);
  EXPECT_EQ(lines_of(f->findings, Rule::kR4), (std::vector<int>{19, 24}));
}

TEST(FflintR4, BudgetBoundedFrontierLoopsPass) {
  EXPECT_EQ(fixture_file("src/sched/r4_frontier_good.cpp"), nullptr);
}

TEST(FflintR4, FlagsUnboundedCacheRetryAndSweepLoops) {
  // The census cache's loop shapes (src/verify/ joined R4 scope with
  // the job layer): an entry-load retry loop and an eviction sweep in
  // infinite form — one corrupt entry file must become a miss, not a
  // hang.
  const FileReport* f = fixture_file("src/verify/r4_cache_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR4);
  EXPECT_EQ(lines_of(f->findings, Rule::kR4), (std::vector<int>{18, 25}));
}

TEST(FflintR4, BoundedCacheRetryLoopsPass) {
  EXPECT_EQ(fixture_file("src/verify/r4_cache_good.cpp"), nullptr);
}

TEST(FflintR5, MalformedSuppressionsAreFindings) {
  const FileReport* f = fixture_file("src/sched/r5_bad.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR5);
  // Bare allow(), unknown rule id, unknown verb.
  EXPECT_EQ(lines_of(f->findings, Rule::kR5), (std::vector<int>{8, 13, 16}));
  EXPECT_TRUE(f->suppressions.empty());  // none of them count as valid
}

TEST(FflintR5, JustifiedSuppressionSilencesAndIsReported) {
  const FileReport* f = fixture_file("src/sched/r5_good.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->findings.empty());
  ASSERT_EQ(f->suppressed.size(), 1u);
  EXPECT_EQ(f->suppressed[0].rule, Rule::kR1);
  ASSERT_EQ(f->suppressions.size(), 1u);
  EXPECT_TRUE(f->suppressions[0].used);
  EXPECT_EQ(f->suppressions[0].justification,
            "fixture counter standing in for checker-internal state");
}

// ------------------------------------------- generated-code exemption

TEST(FflintGenerated, VerifiedStampLiftsR1AndR2) {
  // gen_ok.cpp contains a raw std::atomic and rand() — both would fire
  // under src/proto/ scoping — but its ffgen stamp (marker line 1,
  // matching FNV-1a 64 checksum line 2) verifies, so it never enters
  // the report at all.
  EXPECT_EQ(fixture_file("src/proto/generated/gen_ok.cpp"), nullptr);
}

TEST(FflintGenerated, StaleChecksumForfeitsTheExemption) {
  // Same directory, marker present, checksum does not match the content:
  // a hand-edited "generated" file is fully governed again.
  const FileReport* f = fixture_file("src/proto/generated/gen_stale.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(lines_of(f->findings, Rule::kR1), (std::vector<int>{11}));
  EXPECT_EQ(lines_of(f->findings, Rule::kR2), (std::vector<int>{13}));
}

TEST(FflintGenerated, UnmarkedFileInGeneratedTreeStaysGoverned) {
  // No stamp at all: hand-written code cannot hide by squatting in
  // src/proto/generated/.
  const FileReport* f = fixture_file("src/proto/generated/gen_unmarked.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR2);
  EXPECT_EQ(lines_of(f->findings, Rule::kR2), (std::vector<int>{7}));
}

TEST(FflintGenerated, ValidStampOutsideGeneratedTreeEarnsNothing) {
  // The exemption is directory-scoped AND content-bound: a correct stamp
  // pasted onto a file elsewhere in src/proto/ changes nothing.
  const FileReport* f = fixture_file("src/proto/gen_escape.cpp");
  ASSERT_NE(f, nullptr);
  expect_only_rule(*f, Rule::kR2);
  EXPECT_EQ(lines_of(f->findings, Rule::kR2), (std::vector<int>{10}));
}

TEST(FflintGenerated, ExemptionIsRecomputedFromContentNotTrusted) {
  // One byte of drift from the stamped content re-arms the linter: the
  // checksum is recomputed at analysis time, never taken on faith.
  const std::string stamped_body =
      "#include <cstdlib>\n"
      "int salt() { return rand(); }\n";
  // FNV-1a 64 of stamped_body, precomputed offline.
  const std::string header =
      "// @generated by ffgen -- DO NOT EDIT; regenerate with tools/ffgen.\n"
      "// checksum: 694caf5633837438\n";
  const FileReport clean = analyze_source(
      "src/proto/generated/gen_inline.cpp", header + stamped_body);
  EXPECT_TRUE(clean.findings.empty());
  const FileReport edited = analyze_source(
      "src/proto/generated/gen_inline.cpp",
      header + "#include <cstdlib>\n"
               "int salt() { return rand(); }  // edited\n");
  ASSERT_EQ(edited.findings.size(), 1u);
  EXPECT_EQ(edited.findings[0].rule, Rule::kR2);
}

// ----------------------------------------------- suppression mechanics

TEST(FflintSuppression, TrailingSameLineDirectiveWorks) {
  const FileReport r = analyze_source(
      "src/sched/inline.cpp",
      "#include <atomic>\n"
      "std::atomic<int> x;  // ff-lint: allow(R1): trailing-form directive\n");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].line, 2);
}

TEST(FflintSuppression, DirectiveDoesNotReachPastTheNextLine) {
  const FileReport r = analyze_source(
      "src/sched/faraway.cpp",
      "// ff-lint: allow(R1): too far away to cover the declaration\n"
      "\n"
      "std::atomic<int> x;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, Rule::kR1);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_FALSE(r.suppressions[0].used);
}

TEST(FflintSuppression, WrongRuleDoesNotSilence) {
  const FileReport r = analyze_source(
      "src/sched/wrong_rule.cpp",
      "// ff-lint: allow(R2): justified but aimed at the wrong rule\n"
      "std::atomic<int> x;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, Rule::kR1);
}

// ------------------------------------------------------- lexer corners

TEST(FflintLexer, CommentsStringsAndPreprocessorAreNotCode) {
  // std::atomic in a comment, a string, and an #include must not count.
  const FileReport r = analyze_source(
      "src/sched/quoted.cpp",
      "#include <atomic>\n"
      "// std::atomic<int> in a comment\n"
      "/* volatile std::atomic<int> in a block comment */\n"
      "const char* s = \"std::atomic<int> volatile\";\n"
      "const char* raw = R\"(std::atomic<long> volatile)\";\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(FflintLexer, MultiLineRawStringKeepsLineNumbersRight) {
  const FileReport r = analyze_source(
      "src/sched/rawline.cpp",
      "const char* s = R\"(\n"
      "line two\n"
      "line three)\";\n"
      "std::atomic<int> x;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 4);
}

// ------------------------------------------------------- report shape

TEST(FflintReport, JsonCarriesFindingsCountsAndSuppressions) {
  const std::string json = ff::fflint::render_json(fixture_report());
  EXPECT_NE(json.find("\"tool\":\"ff-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"R3\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\":{\"R1\":4,\"R2\":16,\"R3\":2,\"R4\":10,"
                      "\"R5\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"justification\":\"fixture counter standing in for "
                      "checker-internal state\""),
            std::string::npos);
  EXPECT_NE(json.find("\"used\":true"), std::string::npos);
}

TEST(FflintReport, FixtureTreeTotalsAreExact) {
  EXPECT_EQ(fixture_report().unsuppressed_total(), 35u);
  EXPECT_EQ(fixture_report().files_scanned, 27);
}

// -------------------------------------------------------- SARIF shape

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FflintSarif, DocumentCarriesTheRequiredEnvelope) {
  const std::string sarif = ff::fflint::render_sarif(fixture_report());
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(
      sarif.find(
          "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""),
      std::string::npos);
  EXPECT_NE(sarif.find("\"runs\":["), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\":{\"name\":\"ff-lint\""),
            std::string::npos);
}

TEST(FflintSarif, DriverListsAllFiveRules) {
  const std::string sarif = ff::fflint::render_sarif(fixture_report());
  for (const char* id : {"R1", "R2", "R3", "R4", "R5"}) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(id) + "\""),
              std::string::npos)
        << id;
  }
  EXPECT_EQ(count_occurrences(sarif, "\"shortDescription\""), 5u);
}

TEST(FflintSarif, OneResultPerUnsuppressedFindingWithLocation) {
  const std::string sarif = ff::fflint::render_sarif(fixture_report());
  // The fixture tree has exactly 31 unsuppressed findings — one SARIF
  // result each, every one carrying the code-scanning-required fields.
  EXPECT_EQ(count_occurrences(sarif, "\"ruleId\":"),
            fixture_report().unsuppressed_total());
  EXPECT_EQ(count_occurrences(sarif, "\"level\":\"error\""),
            fixture_report().unsuppressed_total());
  EXPECT_EQ(count_occurrences(sarif, "\"physicalLocation\""),
            fixture_report().unsuppressed_total());
  // A concrete known finding: R1 at src/sched/r1_bad.cpp:13.
  EXPECT_NE(sarif.find("\"uri\":\"src/sched/r1_bad.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":13"), std::string::npos);
  // message.text embeds the fix-it so scanners show the remediation.
  EXPECT_NE(sarif.find(" (fix-it: "), std::string::npos);
}

TEST(FflintSarif, SuppressedFindingsAreOmitted) {
  // r5_good.cpp's only finding is silenced by a justified allow(): it
  // must not surface as a SARIF result (no artifact references it).
  const std::string sarif = ff::fflint::render_sarif(fixture_report());
  EXPECT_EQ(sarif.find("r5_good.cpp"), std::string::npos);
}

TEST(FflintSarif, InlineSourceRoundTrip) {
  TreeReport tree;
  tree.files.push_back(analyze_source(
      "src/sched/one.cpp",
      "#include <atomic>\nstd::atomic<int> x;\n"));
  tree.files_scanned = 1;
  const std::string sarif = ff::fflint::render_sarif(tree);
  EXPECT_EQ(count_occurrences(sarif, "\"ruleId\":\"R1\""), 1u);
  EXPECT_NE(sarif.find("\"uri\":\"src/sched/one.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":2"), std::string::npos);
}

// ---------------------------------------------------------- self-lint

TEST(FflintSelfLint, ShippedTreeHasZeroUnsuppressedFindings) {
  const TreeReport report = analyze_tree(FF_SOURCE_ROOT);
  ASSERT_GT(report.files_scanned, 50) << "src/ tree not found?";
  for (const FileReport& f : report.files) {
    for (const Finding& finding : f.findings) {
      ADD_FAILURE() << f.file << ":" << finding.line << " ["
                    << ff::fflint::rule_id(finding.rule) << "] "
                    << finding.message;
    }
  }
  EXPECT_EQ(report.unsuppressed_total(), 0u);
}

TEST(FflintSelfLint, EverySuppressionInTheTreeIsUsedAndJustified) {
  const TreeReport report = analyze_tree(FF_SOURCE_ROOT);
  for (const FileReport& f : report.files) {
    for (const auto& s : f.suppressions) {
      EXPECT_TRUE(s.used) << f.file << ":" << s.line
                          << " stale allow() — remove it";
      EXPECT_GE(s.justification.size(), ff::fflint::kMinJustification);
    }
  }
}

}  // namespace
