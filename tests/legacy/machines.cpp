#include "legacy/machines.hpp"

#include "legacy/staged.hpp"
#include "model/tolerance.hpp"
#include "model/value.hpp"

namespace ff::consensus {

namespace {

using model::StagedValue;
using model::Value;
using sched::PendingOp;
using sched::StepMachine;

// ---------------------------------------------------------------------------
// Figure 1 / Herlihy
// ---------------------------------------------------------------------------

class SingleCasMachine final : public StepMachine {
 public:
  explicit SingleCasMachine(std::uint64_t input) : input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    if (done_) return PendingOp::none();
    return PendingOp::cas(0, Value::bottom(), Value::of(input_));
  }

  void deliver(Value returned) override {
    decision_ = returned.is_bottom() ? input_ : returned.raw();
    done_ = true;
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(done_ ? 1 : 0);
    out.push_back(done_ ? decision_ : input_);
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<SingleCasMachine>(*this);
  }

 private:
  std::uint64_t input_;
  std::uint64_t decision_ = 0;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

class FPlusOneMachine final : public StepMachine {
 public:
  FPlusOneMachine(std::uint64_t input, std::uint32_t k)
      : output_(Value::of(input)), k_(k) {}

  [[nodiscard]] PendingOp next_op() const override {
    if (i_ >= k_) return PendingOp::none();
    return PendingOp::cas(i_, Value::bottom(), output_);
  }

  void deliver(Value returned) override {
    if (!returned.is_bottom()) output_ = returned;  // line 5
    ++i_;
  }

  [[nodiscard]] bool done() const override { return i_ >= k_; }
  [[nodiscard]] std::uint64_t decision() const override {
    return output_.raw();
  }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(i_);
    out.push_back(output_.raw());
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<FPlusOneMachine>(*this);
  }

 private:
  Value output_;
  std::uint32_t k_;
  std::uint32_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Figure 3 — staged protocol
// ---------------------------------------------------------------------------

class StagedMachine final : public StepMachine {
 public:
  StagedMachine(std::uint64_t input, std::uint32_t f, std::uint32_t max_stage)
      : output_(static_cast<std::uint32_t>(input)),
        f_(f),
        max_stage_(max_stage),
        // maxStage = 0 cannot happen for f,t ≥ 1; guard anyway.
        phase_(max_stage == 0 ? Phase::kFinal : Phase::kMain) {}

  [[nodiscard]] PendingOp next_op() const override {
    switch (phase_) {
      case Phase::kMain:  // line 6
        return PendingOp::cas(i_, exp_, StagedValue(output_, s_).pack());
      case Phase::kFinal:  // line 20
        return PendingOp::cas(0, exp_,
                              StagedValue(output_, max_stage_).pack());
      case Phase::kDone:
        return PendingOp::none();
    }
    return PendingOp::none();
  }

  void deliver(Value old) override {
    if (phase_ == Phase::kMain) {
      if (old != exp_) {  // line 7
        if (!old.is_bottom() &&
            StagedValue::unpack(old).stage() >= s_) {  // line 8
          const StagedValue adopted = StagedValue::unpack(old);
          output_ = adopted.value();  // line 9
          s_ = adopted.stage();       // line 10
          if (s_ == max_stage_) {     // lines 11-12
            phase_ = Phase::kDone;
            return;
          }
          // line 13 (stage-0 wrap yields a never-matching pair)
          exp_ = StagedValue(adopted.value(), adopted.stage() - 1).pack();
          advance_object();  // line 14
        } else {
          exp_ = old;  // line 15: retry the same object
        }
      } else {
        advance_object();  // line 16: successful CAS
      }
      return;
    }
    if (phase_ == Phase::kFinal) {
      const bool below_max =
          old.is_bottom() || StagedValue::unpack(old).stage() < max_stage_;
      if (old != exp_ && below_max) {
        exp_ = old;  // line 22
      } else {
        phase_ = Phase::kDone;  // line 23 → 24
      }
      return;
    }
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }
  [[nodiscard]] std::uint64_t decision() const override { return output_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(static_cast<std::uint64_t>(phase_));
    out.push_back(i_);
    out.push_back(s_);
    out.push_back(exp_.raw());
    out.push_back(output_);
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<StagedMachine>(*this);
  }

 private:
  enum class Phase : std::uint8_t { kMain, kFinal, kDone };

  void advance_object() {
    if (++i_ < f_) return;
    // Lines 17-18: exp.stage ← s ; s ← s+1.  A ⊥ exp becomes the
    // never-matching filler pair, repaired by line 15 on first use.
    const std::uint32_t exp_value =
        exp_.is_bottom() ? StagedConsensus::kNeverValue
                         : StagedValue::unpack(exp_).value();
    exp_ = StagedValue(exp_value, s_).pack();
    ++s_;
    i_ = 0;
    if (s_ >= max_stage_) phase_ = Phase::kFinal;  // line 3 exit
  }

  std::uint32_t output_;
  std::uint32_t f_;
  std::uint32_t max_stage_;
  Phase phase_;
  Value exp_ = Value::bottom();
  std::uint32_t s_ = 0;
  std::uint32_t i_ = 0;
};

// ---------------------------------------------------------------------------
// announce-and-tiebreak (register-augmented Theorem 18 candidate)
// ---------------------------------------------------------------------------

class AnnounceCasMachine final : public StepMachine {
 public:
  AnnounceCasMachine(objects::ProcessId pid, std::uint64_t input)
      : pid_(pid), input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    switch (pc_) {
      case 0:  // announce: A[pid] ← input
        return PendingOp::reg_write(pid_, Value::of(input_));
      case 1:  // tiebreak: CAS(O_0, ⊥, pid)
        return PendingOp::cas(0, Value::bottom(), Value::of(pid_));
      case 2:  // read the winner's announcement
        return PendingOp::reg_read(winner_);
      default:
        return PendingOp::none();
    }
  }

  void deliver(Value returned) override {
    switch (pc_) {
      case 0:
        pc_ = 1;
        break;
      case 1:
        winner_ = returned.is_bottom()
                      ? pid_
                      : static_cast<objects::ProcessId>(returned.raw());
        pc_ = 2;
        break;
      case 2:
        decision_ = returned.raw();
        pc_ = 3;
        break;
      default:
        break;
    }
  }

  [[nodiscard]] bool done() const override { return pc_ == 3; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(pc_);
    out.push_back(winner_);
    out.push_back(pc_ == 3 ? decision_ : input_);
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<AnnounceCasMachine>(*this);
  }

 private:
  objects::ProcessId pid_;
  std::uint64_t input_;
  std::uint64_t decision_ = 0;
  objects::ProcessId winner_ = 0;
  std::uint32_t pc_ = 0;
};

// ---------------------------------------------------------------------------
// test&set (announce, TAS ≡ CAS(⊥→1), winner keeps / loser reads)
// ---------------------------------------------------------------------------

class TasMachine final : public StepMachine {
 public:
  TasMachine(objects::ProcessId pid, std::uint64_t input)
      : pid_(pid), input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    switch (pc_) {
      case 0:  // announce A[pid] ← input
        return PendingOp::reg_write(pid_, Value::of(input_));
      case 1:  // TAS the bit
        return PendingOp::cas(0, Value::bottom(), Value::of(1));
      case 2:  // lost: read the other announcement (pid≥2: naive A[0])
        return PendingOp::reg_read(pid_ < 2 ? 1 - pid_ : 0);
      default:
        return PendingOp::none();
    }
  }

  void deliver(Value returned) override {
    switch (pc_) {
      case 0:
        pc_ = 1;
        break;
      case 1:
        if (returned.is_bottom()) {
          decision_ = input_;  // won the bit
          pc_ = 3;
        } else {
          pc_ = 2;
        }
        break;
      case 2:
        decision_ = returned.raw();
        pc_ = 3;
        break;
      default:
        break;
    }
  }

  [[nodiscard]] bool done() const override { return pc_ == 3; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(pc_);
    out.push_back(pc_ == 3 ? decision_ : input_);
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<TasMachine>(*this);
  }

 private:
  objects::ProcessId pid_;
  std::uint64_t input_;
  std::uint64_t decision_ = 0;
  std::uint32_t pc_ = 0;
};

// ---------------------------------------------------------------------------
// §3.4 retry-silent
// ---------------------------------------------------------------------------

class RetrySilentMachine final : public StepMachine {
 public:
  explicit RetrySilentMachine(std::uint64_t input) : input_(input) {}

  [[nodiscard]] PendingOp next_op() const override {
    switch (pc_) {
      case 0:  // old ← CAS(O, ⊥, val)
        return PendingOp::cas(0, Value::bottom(), Value::of(input_));
      case 1:  // conf ← CAS(O, val, val)
        return PendingOp::cas(0, Value::of(input_), Value::of(input_));
      default:
        return PendingOp::none();
    }
  }

  void deliver(Value returned) override {
    if (pc_ == 0) {
      if (!returned.is_bottom()) {
        decision_ = returned.raw();
        pc_ = 2;
      } else {
        pc_ = 1;
      }
      return;
    }
    if (pc_ == 1) {
      if (returned == Value::of(input_)) {
        decision_ = input_;
        pc_ = 2;
      } else if (!returned.is_bottom()) {
        decision_ = returned.raw();
        pc_ = 2;
      } else {
        pc_ = 0;  // our write was silently dropped — retry
      }
    }
  }

  [[nodiscard]] bool done() const override { return pc_ == 2; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    out.push_back(pc_);
    out.push_back(pc_ == 2 ? decision_ : input_);
  }

  [[nodiscard]] std::unique_ptr<StepMachine> clone() const override {
    return std::make_unique<RetrySilentMachine>(*this);
  }

 private:
  std::uint64_t input_;
  std::uint64_t decision_ = 0;
  std::uint32_t pc_ = 0;
};

}  // namespace

std::unique_ptr<sched::StepMachine> SingleCasFactory::make(
    objects::ProcessId, std::uint64_t input) const {
  return std::make_unique<SingleCasMachine>(input);
}

std::unique_ptr<sched::StepMachine> FPlusOneFactory::make(
    objects::ProcessId, std::uint64_t input) const {
  return std::make_unique<FPlusOneMachine>(input, k_);
}

std::unique_ptr<sched::StepMachine> StagedFactory::make(
    objects::ProcessId, std::uint64_t input) const {
  return std::make_unique<StagedMachine>(input, f_, max_stage());
}

std::uint32_t StagedFactory::max_stage() const noexcept {
  return max_stage_override_ != 0
             ? max_stage_override_
             : static_cast<std::uint32_t>(model::staged_max_stage(f_, t_));
}

std::unique_ptr<sched::StepMachine> AnnounceCasFactory::make(
    objects::ProcessId pid, std::uint64_t input) const {
  return std::make_unique<AnnounceCasMachine>(pid, input);
}

std::unique_ptr<sched::StepMachine> TasFactory::make(
    objects::ProcessId pid, std::uint64_t input) const {
  return std::make_unique<TasMachine>(pid, input);
}

std::unique_ptr<sched::StepMachine> RetrySilentFactory::make(
    objects::ProcessId, std::uint64_t input) const {
  return std::make_unique<RetrySilentMachine>(input);
}

}  // namespace ff::consensus
