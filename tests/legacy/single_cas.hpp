// Single-CAS consensus (Figure 1 / Herlihy [26]).
//
//   1: decide(val)
//   2:   old ← CAS(O, ⊥, val)
//   3:   if (old ≠ ⊥) then return old
//   4:   else return val
//
// The same three lines serve two distinct results:
//   * Herlihy's classic protocol — over a CORRECT CAS object it solves
//     consensus for ANY number of processes (consensus number ∞).
//   * Theorem 4 — over a CAS object with arbitrarily many OVERRIDING
//     faults it remains a correct consensus protocol for TWO processes:
//     a fault can only make p_i's CAS overwrite p_{1-i}'s value, but the
//     returned old value is always correct, so whoever sees a non-⊥ old
//     adopts the other's input and whoever sees ⊥ keeps its own; with two
//     processes exactly one of each happens (the first writer sees ⊥).
//
// With three or more processes and a faulty object the protocol is NOT
// correct — that gap is exactly what experiments E4/E6 demonstrate.
#pragma once

#include "consensus/consensus.hpp"

namespace ff::consensus {

class SingleCasConsensus final : public Protocol {
 public:
  explicit SingleCasConsensus(objects::CasObject& object)
      : object_(object) {}

  Decision decide(InputValue input, objects::ProcessId pid) override {
    assert(input != kReservedInput);
    const model::Value old =
        object_.cas(model::Value::bottom(), model::Value::of(input), pid);
    if (!old.is_bottom()) return Decision::of(old.raw(), 1);
    return Decision::of(input, 1);
  }

  void reset() override { object_.reset(); }

  [[nodiscard]] std::string name() const override { return "single-cas"; }
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }

 private:
  objects::CasObject& object_;
};

/// Name aliases matching the paper's presentation.
using HerlihyConsensus = SingleCasConsensus;   // correct CAS, any n
using TwoProcessConsensus = SingleCasConsensus;  // Figure 1, (f,∞,2)-tolerant

}  // namespace ff::consensus
