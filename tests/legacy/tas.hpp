// Two-process consensus from one test&set bit plus announcement
// registers — the classic consensus-number-2 construction.
//
// Test&set is expressed through the CAS object interface: TAS() ≡
// CAS(O, 0, 1) (set the bit, learn the old value).  The silent CAS fault
// restricted to this usage IS the natural TAS fault — the bit fails to
// latch — so the whole fault machinery applies unchanged.
//
// Why this lives here: the paper places FAULTY ensembles of the
// infinitely-strong CAS object on every Herlihy level; TAS is the
// textbook CORRECT object of level 2.  Comparing the two (bench_e6 /
// test_tas.cpp) makes the "fault levels recreate the hierarchy" point
// concrete: one overriding fault per object drags CAS from level ∞ to
// level 2 — the same level a fault-free TAS occupies, and both break at
// n = 3 in the same way.
//
//   decide_i(v):   A[i] ← v;  old ← TAS(B);
//                  if old = 0: return v            (I won the bit)
//                  else:       return A[1-i]       (the winner announced)
#pragma once

#include "consensus/consensus.hpp"
#include "objects/register.hpp"

namespace ff::consensus {

class TasConsensus final : public Protocol {
 public:
  /// `bit` is the shared test&set bit (a CAS object used with fixed
  /// arguments 0 → 1); `announcements` are the two per-process registers.
  TasConsensus(objects::CasObject& bit,
               objects::AtomicRegister& announce0,
               objects::AtomicRegister& announce1)
      : bit_(bit), announce_{&announce0, &announce1} {}

  Decision decide(InputValue input, objects::ProcessId pid) override {
    assert(pid < 2);
    assert(input != kReservedInput);
    announce_[pid]->write(model::Value::of(input));
    // TAS ≡ CAS(⊥ → 1): the unset bit is the register's initial ⊥.
    const model::Value old =
        bit_.cas(model::Value::bottom(), model::Value::of(1), pid);
    if (old.is_bottom()) {
      return Decision::of(input, 1);  // won the bit
    }
    // Lost: the winner announced before setting the bit.
    return Decision::of(announce_[1 - pid]->read().raw(), 1);
  }

  void reset() override {
    bit_.reset();
    announce_[0]->reset();
    announce_[1]->reset();
  }

  [[nodiscard]] std::string name() const override { return "tas"; }
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }

 private:
  objects::CasObject& bit_;
  objects::AtomicRegister* announce_[2];
};

}  // namespace ff::consensus
