// (f, t, f+1)-tolerant consensus from f CAS objects, all possibly faulty
// (Figure 3 / Theorem 6).
//
// The execution is divided into maxStage+1 stages, maxStage = t·(4f+f²).
// In each of the first maxStage stages a process tries to write its
// current decision estimate together with the stage number, ⟨output,s⟩,
// to every object O_0..O_{f-1}; in the final stage it writes
// ⟨output,maxStage⟩ to O_0.  Because the only way to read a CAS object is
// to CAS it, the process tracks its best guess of each object's content in
// `exp` and repairs the guess from the returned old value when it is
// wrong.  Faults are absorbed by the stage mechanism: Theorem 6 shows
// that with at most t overriding faults per object and at most f+1
// processes, a run of 4f+f² consecutive non-faulty writes is guaranteed
// (Observation 10) and forces convergence.
//
// Line-numbered pseudocode from the paper is cited inline.  Two encoding
// notes:
//   * exp may be ⊥ (unpacked); "exp.stage ← s" on a ⊥ exp produces the
//     never-matching pair ⟨kNeverValue, s⟩, whose first CAS fails and is
//     repaired by line 15 — the paper's retry loop makes the protocol
//     self-correcting against a stale exp, so this costs at most one
//     extra CAS and preserves every claim.
//   * "old.stage − 1" at stage 0 wraps; the wrapped pair also never
//     matches and is repaired the same way.
#pragma once

#include <vector>

#include "consensus/consensus.hpp"
#include "model/tolerance.hpp"

namespace ff::consensus {

class StagedConsensus final : public Protocol {
 public:
  /// Value that no process may propose; used for the ⊥-with-stage filler.
  static constexpr std::uint32_t kNeverValue = 0xFFFFFFFEu;

  /// `objects` are O_0 ... O_{f-1}; `t` is the per-object fault bound the
  /// protocol is configured to tolerate (it fixes maxStage).
  /// `max_stage_override`, when non-zero, replaces the proven
  /// maxStage = t·(4f+f²) — ONLY for ablation experiments probing how
  /// much slack the bound has; overridden instances carry no correctness
  /// guarantee.
  StagedConsensus(std::vector<objects::CasObject*> objs, std::uint32_t t,
                  std::uint32_t max_stage_override = 0)
      : objects_(std::move(objs)),
        f_(static_cast<std::uint32_t>(objects_.size())),
        t_(t),
        max_stage_(max_stage_override != 0
                       ? max_stage_override
                       : static_cast<std::uint32_t>(model::staged_max_stage(
                             static_cast<std::uint32_t>(objects_.size()),
                             t))) {
    assert(!objects_.empty());
    assert(max_stage_ < kNeverValue);
  }

  Decision decide(InputValue input, objects::ProcessId pid) override {
    assert(input < kNeverValue);
    // Line 2: output ← val ; exp ← ⊥ ; s ← 0 ; maxStage ← t·(4f+f²)
    auto output = static_cast<std::uint32_t>(input);
    model::Value exp = model::Value::bottom();
    std::uint32_t s = 0;
    std::uint64_t steps = 0;

    // Lines 3-18: the first maxStage stages.
    while (s < max_stage_) {
      for (std::uint32_t i = 0; i < f_; ++i) {  // handling O_0..O_{f-1}
        for (;;) {                              // line 5: while(true)
          if (exhausted(steps)) return Decision::undecided(steps);
          // Line 6: old ← CAS(O_i, exp, ⟨output, s⟩)
          const model::Value old = objects_[i]->cas(
              exp, model::StagedValue(output, s).pack(), pid);
          ++steps;
          if (old != exp) {  // line 7
            // Line 8: if (old.stage ≥ s) — ⊥ counts as "before stage 0".
            if (!old.is_bottom() &&
                model::StagedValue::unpack(old).stage() >= s) {
              const auto adopted = model::StagedValue::unpack(old);
              output = adopted.value();  // line 9
              s = adopted.stage();       // line 10
              if (s == max_stage_) {     // lines 11-12
                return Decision::of(output, steps);
              }
              // Line 13: exp ← ⟨old.val, old.stage − 1⟩ (wrap at stage 0
              // yields a never-matching pair; repaired by line 15).
              exp = model::StagedValue(adopted.value(), adopted.stage() - 1)
                        .pack();
              break;  // line 14: no need to update O_i
            }
            exp = old;  // line 15: still needs to update O_i
          } else {
            break;  // line 16: a successful CAS execution
          }
        }
      }
      // Line 17: exp.stage ← s  (⊥ becomes the never-matching filler).
      const std::uint32_t exp_value =
          exp.is_bottom() ? kNeverValue
                          : model::StagedValue::unpack(exp).value();
      exp = model::StagedValue(exp_value, s).pack();
      ++s;  // line 18
    }

    // Lines 19-23: the final stage — write ⟨output, maxStage⟩ to O_0.
    for (;;) {
      if (exhausted(steps)) return Decision::undecided(steps);
      const model::Value old = objects_[0]->cas(
          exp, model::StagedValue(output, max_stage_).pack(), pid);
      ++steps;
      const bool old_below_max =
          old.is_bottom() ||
          model::StagedValue::unpack(old).stage() < max_stage_;
      if (old != exp && old_below_max) {
        exp = old;  // line 22
      } else {
        break;  // line 23
      }
    }
    return Decision::of(output, steps);  // line 24
  }

  void reset() override {
    for (objects::CasObject* object : objects_) object->reset();
  }

  [[nodiscard]] std::string name() const override { return "staged"; }
  [[nodiscard]] std::uint32_t objects_used() const override { return f_; }
  [[nodiscard]] std::uint32_t max_stage() const noexcept { return max_stage_; }
  [[nodiscard]] std::uint32_t fault_bound() const noexcept { return t_; }

 private:
  std::vector<objects::CasObject*> objects_;
  const std::uint32_t f_;
  const std::uint32_t t_;
  const std::uint32_t max_stage_;
};

}  // namespace ff::consensus
