// Consensus over a single CAS object with BOUNDED silent faults (§3.4).
//
// The paper notes that when the total number of silent faults is bounded,
// processes "can execute the original protocol [Herlihy] until one process
// succeeds".  The subtlety is that a CAS object offers no read: after
// old ← CAS(O, ⊥, val) returns ⊥ a process cannot tell whether its write
// landed or was silently dropped.  We confirm with a no-op CAS:
//
//   loop:
//     old ← CAS(O, ⊥, val)
//     if old ≠ ⊥          : return old     // some write landed; adopt it
//     conf ← CAS(O, val, val)              // no-op probe
//     if conf = val       : return val     // content is val — decided
//     if conf ≠ ⊥         : return conf    // someone else's value landed
//     // conf = ⊥ ⇒ the register still held ⊥ at the probe's
//     // linearization ⇒ our write was silently dropped; retry.
//
// Both the probe's correct and silent executions return the true content
// (silent faults never corrupt the output), so every branch above is
// sound.  Each retry consumes at least one manifested silent fault, hence
// with at most t faults the loop runs at most t+1 times: the protocol is
// (1, t, ∞)-tolerant for the silent fault.  With t = ∞ it livelocks —
// matching the paper's observation that unbounded silent faults make
// consensus unachievable — which the harness detects via the step limit.
#pragma once

#include "consensus/consensus.hpp"

namespace ff::consensus {

class RetrySilentConsensus final : public Protocol {
 public:
  explicit RetrySilentConsensus(objects::CasObject& object)
      : object_(object) {}

  Decision decide(InputValue input, objects::ProcessId pid) override {
    assert(input != kReservedInput);
    const model::Value mine = model::Value::of(input);
    std::uint64_t steps = 0;
    for (;;) {
      if (exhausted(steps)) return Decision::undecided(steps);
      const model::Value old =
          object_.cas(model::Value::bottom(), mine, pid);
      ++steps;
      if (!old.is_bottom()) return Decision::of(old.raw(), steps);

      const model::Value conf = object_.cas(mine, mine, pid);
      ++steps;
      if (conf == mine) return Decision::of(input, steps);
      if (!conf.is_bottom()) return Decision::of(conf.raw(), steps);
      // conf is ⊥: our write was dropped — retry.
    }
  }

  void reset() override { object_.reset(); }

  [[nodiscard]] std::string name() const override { return "retry-silent"; }
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }

 private:
  objects::CasObject& object_;
};

}  // namespace ff::consensus
