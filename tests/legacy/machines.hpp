// StepMachine encodings of the consensus protocols for the deterministic
// simulator.
//
// Each machine is a line-for-line transcription of the corresponding
// Protocol class (single_cas.hpp, f_plus_one.hpp, staged.hpp,
// retry_silent.hpp) with the control state reified as an explicit program
// counter, so the explorer can clone, advance and fingerprint it.  The
// tests cross-validate machine and thread implementations against each
// other on identical schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sched/program.hpp"

namespace ff::consensus {

/// Figure 1 / Herlihy: one CAS on O_0, adopt the old value if non-⊥.
class SingleCasFactory final : public sched::MachineFactory {
 public:
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }
  [[nodiscard]] bool pid_oblivious() const override { return true; }
  [[nodiscard]] std::string name() const override { return "single-cas"; }
};

/// Figure 2: one pass over O_0..O_{k-1}, adopting every non-⊥ old value.
/// `k` is the number of objects: k = f+1 instantiates Theorem 5's
/// construction; k = f instantiates the candidate Theorem 18 refutes.
class FPlusOneFactory final : public sched::MachineFactory {
 public:
  explicit FPlusOneFactory(std::uint32_t k) : k_(k) {}
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return k_; }
  [[nodiscard]] bool pid_oblivious() const override { return true; }
  [[nodiscard]] std::string name() const override { return "f-plus-one"; }

 private:
  std::uint32_t k_;
};

/// Figure 3: staged protocol over f objects with per-object fault bound t
/// (fixes maxStage = t·(4f+f²)).  `max_stage_override` (non-zero)
/// substitutes a custom stage budget for ablation experiments; such
/// instances carry no correctness guarantee.
class StagedFactory final : public sched::MachineFactory {
 public:
  StagedFactory(std::uint32_t f, std::uint32_t t,
                std::uint32_t max_stage_override = 0)
      : f_(f), t_(t), max_stage_override_(max_stage_override) {}
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return f_; }
  [[nodiscard]] bool pid_oblivious() const override { return true; }
  [[nodiscard]] std::string name() const override { return "staged"; }
  [[nodiscard]] std::uint32_t max_stage() const noexcept;

 private:
  std::uint32_t f_;
  std::uint32_t t_;
  std::uint32_t max_stage_override_;
};

/// Announce-and-tiebreak: a register-augmented candidate for the
/// Theorem 18 setting (the theorem allows unboundedly many read/write
/// registers next to the f CAS objects).  Each process (1) writes its
/// input to its announcement register A[pid], (2) CASes its pid into the
/// single CAS object as tiebreaker, (3) reads the winner's announcement
/// and decides it.  Correct with a fault-free object for any n, and
/// (like Figure 1) tolerant of overriding faults for n = 2 — but the
/// registers buy nothing at n ≥ 3: consensus number of a register is 1.
class AnnounceCasFactory final : public sched::MachineFactory {
 public:
  explicit AnnounceCasFactory(std::uint32_t n) : n_(n) {}
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }
  [[nodiscard]] std::uint32_t registers_used() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "announce-cas"; }

 private:
  std::uint32_t n_;
};

/// Test&set consensus (announce, TAS the bit, winner keeps its value,
/// loser reads the other announcement).  TAS is expressed as CAS(⊥ → 1)
/// on object O_0 — the unset bit is the initial ⊥.  Correct for n = 2
/// over a fault-free bit; the pid ≥ 2 generalization (losers read A[0])
/// is deliberately naive and breaks at n = 3, illustrating that TAS sits
/// at hierarchy level 2 — the SAME level a bounded-overriding-faulty CAS
/// ensemble of one object occupies.
class TasFactory final : public sched::MachineFactory {
 public:
  explicit TasFactory(std::uint32_t n) : n_(n) {}
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }
  [[nodiscard]] std::uint32_t registers_used() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "tas"; }

 private:
  std::uint32_t n_;
};

/// §3.4 silent-fault protocol: Herlihy attempt + no-op confirmation probe.
class RetrySilentFactory final : public sched::MachineFactory {
 public:
  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override;
  [[nodiscard]] std::uint32_t objects_used() const override { return 1; }
  [[nodiscard]] bool pid_oblivious() const override { return true; }
  [[nodiscard]] std::string name() const override { return "retry-silent"; }
};

}  // namespace ff::consensus
