// f-tolerant consensus from f+1 CAS objects (Figure 2 / Theorem 5).
//
//   1: decide(val)
//   2:   output ← val
//   3:   for i = 0 to f do
//   4:     old ← CAS(O_i, ⊥, output)
//   5:     if (old ≠ ⊥) then output ← old
//   6:   return output
//
// Tolerates up to f objects with UNBOUNDED overriding faults: at least one
// object O_j is correct, the first value written to it sticks, and every
// process passing O_j adopts that value and carries it through the
// remaining objects (faulty or not), so all outputs converge.
//
// Running this protocol with only f objects (all possibly faulty) is the
// candidate that Theorem 18 proves impossible; the impossibility
// experiments instantiate exactly that configuration and exhibit the
// disagreement.
#pragma once

#include <span>
#include <vector>

#include "consensus/consensus.hpp"

namespace ff::consensus {

class FPlusOneConsensus final : public Protocol {
 public:
  /// `objects` are O_0 ... O_f in protocol order (size must be ≥ 1).
  explicit FPlusOneConsensus(std::vector<objects::CasObject*> objs)
      : objects_(std::move(objs)) {
    assert(!objects_.empty());
  }

  Decision decide(InputValue input, objects::ProcessId pid) override {
    assert(input != kReservedInput);
    model::Value output = model::Value::of(input);
    std::uint64_t steps = 0;
    for (objects::CasObject* object : objects_) {
      const model::Value old =
          object->cas(model::Value::bottom(), output, pid);
      ++steps;
      if (!old.is_bottom()) output = old;
    }
    return Decision::of(output.raw(), steps);
  }

  void reset() override {
    for (objects::CasObject* object : objects_) object->reset();
  }

  [[nodiscard]] std::string name() const override { return "f-plus-one"; }
  [[nodiscard]] std::uint32_t objects_used() const override {
    return static_cast<std::uint32_t>(objects_.size());
  }

 private:
  std::vector<objects::CasObject*> objects_;
};

}  // namespace ff::consensus
