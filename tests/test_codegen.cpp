// Differential golden suite for the ffgen-generated native machines.
//
// The IrMachine interpreter is the oracle (itself differentially pinned
// against the retired hand-written machines by test_proto_ir), and the
// bar is again bit-for-bit:
//   * proto::machine_factory() must actually select a generated machine
//     for every simulable registry protocol at its default parameters —
//     a silent fallback to the interpreter would turn every census
//     "match" below into a tautology;
//   * for every registry protocol × fault budget × crash budget grid
//     point, the full census (states, violations, witnesses, agreed
//     values) from the generated machine equals the interpreter's, under
//     the sequential AND the parallel explorer, reductions on and off;
//   * a step-level lockstep property test replays 10k+ seeded random
//     schedules simultaneously on a generated StatePool and on an
//     IrMachine oracle vector, asserting equal encoded states after
//     every single step (divergence surfaces steps, not censuses, late);
//   * shrunk violation witnesses found on the interpreter strict-replay
//     on the generated path with per-step encoding equality;
//   * the stale-pre-size regression: ExploreResult::table_grows pins the
//     fingerprint-table rehash count — stale expected_states hints cost
//     exactly the doublings the sizing rule predicts, and an exact hint
//     costs zero.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "model/tolerance.hpp"
#include "proto/fingerprint.hpp"
#include "proto/genapi.hpp"
#include "proto/machine.hpp"
#include "proto/pool.hpp"
#include "proto/registry.hpp"
#include "sched/explore_common.hpp"
#include "sched/explorer.hpp"
#include "sched/parallel_explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/rng.hpp"

namespace ff {
namespace {

using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

// ---------------------------------------------------------------------------
// The generated-vs-interpreted grid: every simulable registry protocol,
// fault budgets t ∈ {1, ∞}, crash budgets {0} (+ {1, 2} where the
// protocol has a recovery entry).
// ---------------------------------------------------------------------------

struct CodegenCase {
  std::string label;
  std::string protocol;
  proto::Params params;
  FaultKind kind = FaultKind::kOverriding;
  std::uint32_t t = 1;
  std::uint32_t n = 2;
  std::uint32_t crash_budget = 0;
};

std::vector<std::uint64_t> iota_inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i + 1;
  return v;
}

std::vector<CodegenCase> codegen_grid() {
  std::vector<CodegenCase> grid;
  const auto tag = [](std::uint32_t t) {
    return t == kUnbounded ? std::string("inf") : std::to_string(t);
  };
  for (const proto::ProtocolInfo& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    const auto program = proto::build_program(info.name);
    const std::vector<std::uint32_t> crash_budgets =
        program->has_recovery() ? std::vector<std::uint32_t>{0, 1, 2}
                                : std::vector<std::uint32_t>{0};
    for (const std::uint32_t t : {1u, kUnbounded}) {
      for (const std::uint32_t cb : crash_budgets) {
        grid.push_back({info.name + "/overriding/t" + tag(t) + "/n2/cb" +
                            std::to_string(cb),
                        info.name, proto::Params{}, FaultKind::kOverriding, t,
                        2, cb});
      }
    }
    grid.push_back({info.name + "/silent/t1/n2", info.name, proto::Params{},
                    FaultKind::kSilent, 1, 2, 0});
  }
  // Non-default parameterizations from the generation grid.
  grid.push_back({"staged-f1t2/overriding/t2/n2", "staged",
                  proto::Params{{"f", 1}, {"t", 2}}, FaultKind::kOverriding, 2,
                  2, 0});
  grid.push_back({"staged-f2t1/overriding/t1/n3", "staged",
                  proto::Params{{"f", 2}, {"t", 1}}, FaultKind::kOverriding, 1,
                  3, 0});
  grid.push_back({"fp1-k3/overriding/tinf/n2", "f-plus-one",
                  proto::Params{{"k", 3}}, FaultKind::kOverriding, kUnbounded,
                  2, 0});
  grid.push_back({"tas-n3/overriding/t1/n3", "tas", proto::Params{{"n", 3}},
                  FaultKind::kOverriding, 1, 3, 0});
  grid.push_back({"announce-n3/overriding/t1/n3", "announce-cas",
                  proto::Params{{"n", 3}}, FaultKind::kOverriding, 1, 3, 0});
  grid.push_back({"rstaged-f1t2/overriding/t2/n2/cb1", "recoverable-staged",
                  proto::Params{{"f", 1}, {"t", 2}}, FaultKind::kOverriding, 2,
                  2, 1});
  return grid;
}

SimWorld make_world(const sched::MachineFactory& factory,
                    const CodegenCase& cc) {
  SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = cc.kind;
  config.t = cc.t;
  config.crash_budget = cc.crash_budget;
  return SimWorld(config, factory, iota_inputs(cc.n));
}

void expect_census_equal(const sched::ExploreResult& oracle,
                         const sched::ExploreResult& generated,
                         const std::string& label) {
  EXPECT_EQ(oracle.states_visited, generated.states_visited) << label;
  EXPECT_EQ(oracle.terminal_states, generated.terminal_states) << label;
  EXPECT_EQ(oracle.violations_found, generated.violations_found) << label;
  EXPECT_EQ(oracle.violations_by_kind, generated.violations_by_kind) << label;
  EXPECT_EQ(oracle.max_depth, generated.max_depth) << label;
  EXPECT_EQ(oracle.complete, generated.complete) << label;
  EXPECT_EQ(oracle.agreed_values, generated.agreed_values) << label;
}

// ---------------------------------------------------------------------------
// 0. Selection: the generated machines are actually in play.
// ---------------------------------------------------------------------------

TEST(Codegen, GeneratedFactorySelectedForEveryRegistryProtocol) {
  std::uint32_t simulable = 0;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    ++simulable;
    const auto factory = proto::machine_factory(info.name);
    const auto* generated =
        dynamic_cast<const proto::gen::GenMachineFactory*>(factory.get());
    ASSERT_NE(generated, nullptr)
        << info.name << ": default parameters must hit the generated table";
    EXPECT_EQ(generated->entry().fingerprint,
              proto::program_fingerprint(*generated->program()))
        << info.name;
    // The oracle accessor must stay on the interpreter.
    const auto oracle = proto::machine_factory_interpreted(info.name);
    EXPECT_NE(dynamic_cast<const proto::IrMachineFactory*>(oracle.get()),
              nullptr)
        << info.name;
    // Factory metadata must agree between the two paths.
    EXPECT_EQ(factory->name(), oracle->name()) << info.name;
    EXPECT_EQ(factory->objects_used(), oracle->objects_used()) << info.name;
    EXPECT_EQ(factory->registers_used(), oracle->registers_used())
        << info.name;
    EXPECT_EQ(factory->pid_oblivious(), oracle->pid_oblivious()) << info.name;
  }
  EXPECT_GE(simulable, 8u);
}

TEST(Codegen, OffGridParameterizationFallsBackToInterpreter) {
  // k = 7 is outside the generation grid: selection must fall back to
  // the interpreter, never mis-bind a different parameterization.
  const auto factory =
      proto::machine_factory("f-plus-one", proto::Params{{"k", 7}});
  EXPECT_EQ(dynamic_cast<const proto::gen::GenMachineFactory*>(factory.get()),
            nullptr);
  EXPECT_NE(dynamic_cast<const proto::IrMachineFactory*>(factory.get()),
            nullptr);
  const auto program = proto::build_program("f-plus-one", {{"k", 7}});
  EXPECT_EQ(proto::gen::find_generated(proto::program_fingerprint(*program)),
            nullptr);
}

// ---------------------------------------------------------------------------
// 1. Full-census equality, sequential explorer, reductions on and off.
// ---------------------------------------------------------------------------

TEST(Codegen, FullCensusMatchesOracleSequential) {
  for (const CodegenCase& cc : codegen_grid()) {
    SCOPED_TRACE(cc.label);
    const auto generated = proto::machine_factory(cc.protocol, cc.params);
    const auto oracle =
        proto::machine_factory_interpreted(cc.protocol, cc.params);
    ASSERT_NE(
        dynamic_cast<const proto::gen::GenMachineFactory*>(generated.get()),
        nullptr)
        << cc.label << ": grid case must exercise a generated machine";
    const SimWorld gen_world = make_world(*generated, cc);
    const SimWorld oracle_world = make_world(*oracle, cc);
    for (const bool reduce : {true, false}) {
      sched::ExploreOptions options;
      options.stop_at_first_violation = false;
      options.symmetry_reduction = reduce;
      options.sleep_sets = reduce;
      const auto oracle_result = sched::explore(oracle_world, options);
      const auto gen_result = sched::explore(gen_world, options);
      expect_census_equal(oracle_result, gen_result,
                          cc.label + (reduce ? "/reduced" : "/unreduced"));
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Full-census equality under the parallel explorer.
// ---------------------------------------------------------------------------

TEST(Codegen, FullCensusMatchesOracleParallel) {
  for (const CodegenCase& cc : codegen_grid()) {
    if (cc.crash_budget > 1) continue;  // keep the parallel pass lean
    SCOPED_TRACE(cc.label);
    const auto generated = proto::machine_factory(cc.protocol, cc.params);
    const auto oracle =
        proto::machine_factory_interpreted(cc.protocol, cc.params);
    const SimWorld gen_world = make_world(*generated, cc);
    const SimWorld oracle_world = make_world(*oracle, cc);
    for (const bool reduce : {true, false}) {
      sched::ParallelExploreOptions options;
      options.explore.stop_at_first_violation = false;
      options.explore.symmetry_reduction = reduce;
      options.explore.sleep_sets = reduce;
      options.num_threads = 4;
      const auto oracle_result = sched::parallel_explore(oracle_world, options);
      const auto gen_result = sched::parallel_explore(gen_world, options);
      const std::string label =
          cc.label + (reduce ? "/par-reduced" : "/par-unreduced");
      EXPECT_EQ(oracle_result.states_visited, gen_result.states_visited)
          << label;
      EXPECT_EQ(oracle_result.terminal_states, gen_result.terminal_states)
          << label;
      EXPECT_EQ(oracle_result.violations_by_kind, gen_result.violations_by_kind)
          << label;
      EXPECT_EQ(oracle_result.complete, gen_result.complete) << label;
      EXPECT_EQ(oracle_result.agreed_values, gen_result.agreed_values)
          << label;
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Step-level lockstep: 10k+ seeded random schedules on the batched
//    StatePool vs. an IrMachine oracle vector, equal encodes every step.
// ---------------------------------------------------------------------------

struct OpKey {
  sched::OpType type = sched::OpType::kNone;
  objects::ObjectId object = 0;
  std::uint64_t expected = 0;
  std::uint64_t desired = 0;
  friend bool operator==(const OpKey&, const OpKey&) noexcept = default;
};

OpKey key_of(const sched::PendingOp& op) {
  return OpKey{op.type, op.object, op.expected.raw(), op.desired.raw()};
}

/// Plausible delivered values: ⊥, small plain values, staged packs.
std::uint64_t domain_value(std::uint64_t r) {
  static const std::uint64_t kDomain[] = {
      0xFFFFFFFFFFFFFFFFull,         // ⊥
      0,          1,           2,
      3,          (1ull << 32) | 1,  // stage 1, value 1
      (1ull << 32) | 2,              // stage 1, value 2
      (2ull << 32) | 1,              // stage 2, value 1
      (3ull << 32) | 2,              // stage 3, value 2
  };
  return kDomain[r % (sizeof(kDomain) / sizeof(kDomain[0]))];
}

TEST(Codegen, PoolLockstepTenThousandSeededSchedules) {
  constexpr std::size_t kLanes = 64;
  constexpr std::size_t kRounds = 20;
  constexpr std::size_t kMaxSteps = 64;
  std::size_t schedules = 0;

  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    SCOPED_TRACE(info.name);
    const auto program = proto::build_program(info.name);

    for (std::size_t round = 0; round < kRounds; ++round) {
      proto::StatePool pool(program, kLanes);
      ASSERT_TRUE(pool.generated()) << info.name;
      std::vector<proto::IrMachine> oracle;
      oracle.reserve(kLanes);
      const std::uint64_t seed =
          util::mix64(0x5eedull ^ (round << 8) ^
                      proto::program_fingerprint(*program));
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const auto pid = static_cast<objects::ProcessId>(lane % 4);
        const std::uint64_t input = 1 + (util::mix64(seed ^ lane) % 3);
        ASSERT_EQ(pool.add(pid, input), lane);
        oracle.emplace_back(program, pid, input);
        ++schedules;
      }

      std::vector<std::uint64_t> returned(kLanes, 0);
      for (std::size_t step = 0; step < kMaxSteps; ++step) {
        // Per-step equality for every lane: done, decision, pending op
        // and the full encoded state.
        bool all_done = true;
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          ASSERT_EQ(pool.done(lane), oracle[lane].done())
              << "round " << round << " step " << step << " lane " << lane;
          if (oracle[lane].done()) {
            ASSERT_EQ(pool.decision(lane), oracle[lane].decision())
                << "round " << round << " step " << step << " lane " << lane;
          } else {
            all_done = false;
            ASSERT_EQ(key_of(pool.pending(lane)),
                      key_of(oracle[lane].next_op()))
                << "round " << round << " step " << step << " lane " << lane;
          }
          std::vector<std::uint64_t> pool_enc;
          std::vector<std::uint64_t> oracle_enc;
          pool.encode(lane, pool_enc);
          oracle[lane].encode(oracle_enc);
          ASSERT_EQ(pool_enc, oracle_enc)
              << "round " << round << " step " << step << " lane " << lane;
        }
        if (all_done) break;

        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          returned[lane] =
              domain_value(util::mix64(seed ^ (step << 20) ^ (lane << 8)));
        }
        pool.deliver_all(returned.data());
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          if (!oracle[lane].done()) {
            oracle[lane].deliver(model::Value::of(returned[lane]));
          }
        }
      }
    }
  }
  EXPECT_GE(schedules, 10'000u);
}

/// The oracle fallback pool (off-grid parameterization) must behave
/// identically to scalar interpreters too — same harness, fewer rounds.
TEST(Codegen, PoolInterpreterFallbackLockstep) {
  const auto program = proto::build_program("f-plus-one", {{"k", 7}});
  proto::StatePool pool(program, 8);
  ASSERT_FALSE(pool.generated());
  std::vector<proto::IrMachine> oracle;
  for (std::size_t lane = 0; lane < 8; ++lane) {
    pool.add(static_cast<objects::ProcessId>(lane), 1 + lane % 2);
    oracle.emplace_back(program, static_cast<objects::ProcessId>(lane),
                        1 + lane % 2);
  }
  std::vector<std::uint64_t> returned(8, 0);
  for (std::size_t step = 0; step < 32; ++step) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      returned[lane] = domain_value(util::mix64(step ^ (lane << 8)));
      ASSERT_EQ(pool.done(lane), oracle[lane].done());
      std::vector<std::uint64_t> a;
      std::vector<std::uint64_t> b;
      pool.encode(lane, a);
      oracle[lane].encode(b);
      ASSERT_EQ(a, b) << "step " << step << " lane " << lane;
    }
    pool.deliver_all(returned.data());
    for (std::size_t lane = 0; lane < 8; ++lane) {
      if (!oracle[lane].done()) {
        oracle[lane].deliver(model::Value::of(returned[lane]));
      }
    }
  }
}

/// Scalar crash lockstep: generated machines must reproduce the
/// interpreter's crash semantics (volatile wipe, persistent survival,
/// recovery re-entry) step for step.
TEST(Codegen, CrashLockstepOnRecoverableProtocols) {
  for (const std::string name : {"recoverable-cas", "recoverable-staged"}) {
    SCOPED_TRACE(name);
    const auto generated = proto::machine_factory(name);
    const auto program = proto::build_program(name);
    ASSERT_NE(
        dynamic_cast<const proto::gen::GenMachineFactory*>(generated.get()),
        nullptr);
    for (std::uint64_t run = 0; run < 500; ++run) {
      const std::uint64_t seed = util::mix64(0xc4a5ull ^ run);
      const auto pid = static_cast<objects::ProcessId>(run % 3);
      const std::uint64_t input = 1 + run % 3;
      auto gen_machine = generated->make(pid, input);
      proto::IrMachine oracle(program, pid, input);
      for (std::size_t step = 0; step < 48; ++step) {
        ASSERT_EQ(gen_machine->done(), oracle.done())
            << "run " << run << " step " << step;
        std::vector<std::uint64_t> a;
        std::vector<std::uint64_t> b;
        gen_machine->encode(a);
        oracle.encode(b);
        ASSERT_EQ(a, b) << "run " << run << " step " << step;
        ASSERT_EQ(gen_machine->can_crash(), oracle.can_crash())
            << "run " << run << " step " << step;
        if (oracle.done()) {
          ASSERT_EQ(gen_machine->decision(), oracle.decision());
          break;
        }
        const std::uint64_t r = util::mix64(seed ^ (step << 8));
        if (r % 4 == 0 && oracle.can_crash()) {
          gen_machine->crash();
          oracle.crash();
        } else {
          ASSERT_EQ(key_of(gen_machine->next_op()), key_of(oracle.next_op()));
          const std::uint64_t v = domain_value(r >> 8);
          gen_machine->deliver(model::Value::of(v));
          oracle.deliver(model::Value::of(v));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 4. Witness strict replay: shrunk witnesses found on the interpreter
//    replay on the generated path with per-step world-encoding equality.
// ---------------------------------------------------------------------------

TEST(Codegen, ShrunkWitnessesStrictReplayOnGeneratedPath) {
  // Configurations where the fault budget exceeds the protocol's
  // tolerance, so a violation witness exists.
  std::vector<CodegenCase> violating = {
      // Figure 1 at n = 3: one overriding fault defeats single-CAS.
      {"single-cas/overriding/t1/n3", "single-cas", proto::Params{},
       FaultKind::kOverriding, 1, 3, 0},
      {"staged-f1t1/overriding/t1/n3", "staged",
       proto::Params{{"f", 1}, {"t", 1}}, FaultKind::kOverriding, 1, 3, 0},
      {"fp1-k2/overriding/tinf/n3", "f-plus-one", proto::Params{{"k", 2}},
       FaultKind::kOverriding, kUnbounded, 3, 0},
  };
  std::size_t replayed = 0;
  for (const CodegenCase& cc : violating) {
    SCOPED_TRACE(cc.label);
    const auto generated = proto::machine_factory(cc.protocol, cc.params);
    const auto oracle =
        proto::machine_factory_interpreted(cc.protocol, cc.params);
    const SimWorld oracle_world = make_world(*oracle, cc);
    const SimWorld gen_world = make_world(*generated, cc);

    const auto shortest = sched::find_shortest_violation(oracle_world);
    if (!shortest.violation) continue;  // tolerant after all: nothing to do
    ++replayed;

    // Strict replay: identical world encodings after EVERY step of the
    // shrunk witness, not just an equal final verdict.
    SimWorld oracle_replay = oracle_world;
    SimWorld gen_replay = gen_world;
    ASSERT_EQ(oracle_replay.encode(), gen_replay.encode()) << cc.label;
    for (std::size_t i = 0; i < shortest.violation->schedule.size(); ++i) {
      oracle_replay.apply(shortest.violation->schedule[i]);
      gen_replay.apply(shortest.violation->schedule[i]);
      ASSERT_EQ(oracle_replay.encode(), gen_replay.encode())
          << cc.label << ": diverged at witness step " << i;
    }
    EXPECT_TRUE(gen_replay.terminal()) << cc.label;
    // Same decisions at the violating terminal.
    const auto oracle_decisions = oracle_replay.decisions();
    const auto gen_decisions = gen_replay.decisions();
    ASSERT_EQ(oracle_decisions.size(), gen_decisions.size()) << cc.label;
    for (std::size_t p = 0; p < oracle_decisions.size(); ++p) {
      EXPECT_EQ(oracle_decisions[p], gen_decisions[p]) << cc.label;
    }
  }
  EXPECT_GE(replayed, 2u) << "the violating grid lost its violations";
}

// ---------------------------------------------------------------------------
// 5. Pre-sizing regression: table_grows pins the rehash count.
// ---------------------------------------------------------------------------

/// Replays FlatFpMap's sizing rule: initial capacity from the hint
/// (power of two, < 70% load), then one doubling per grow() while the
/// census exceeds the load limit.
std::uint64_t expected_grows(std::uint64_t hint, std::uint64_t states) {
  std::uint64_t cap = 16;
  while (cap * 7 < hint * 10) cap <<= 1;
  std::uint64_t grows = 0;
  while ((states + 1) * 10 > cap * 7) {
    cap <<= 1;
    ++grows;
  }
  return grows;
}

TEST(Codegen, TableHintTrustsExactLargeHints) {
  sched::ExploreOptions options;
  options.expected_states = std::uint64_t{1} << 25;
  // The old cap (2^24) silently halved exact large hints, forcing a
  // mid-census rehash right after a run had measured the true size.
  EXPECT_EQ(sched::detail::table_hint(options),
            std::size_t{1} << 25);
  options.expected_states = std::uint64_t{1} << 27;
  EXPECT_EQ(sched::detail::table_hint(options), std::size_t{1} << 26);
  options.expected_states = 0;
  options.max_states = 1 << 20;
  EXPECT_EQ(sched::detail::table_hint(options), std::size_t{1} << 16);
}

TEST(Codegen, StalePreSizeRehashesExactlyAsPredictedAndExactHintDoesNot) {
  const auto factory = proto::machine_factory("staged", {{"f", 1}, {"t", 1}});
  SimConfig config;
  config.num_objects = factory->objects_used();
  config.num_registers = factory->registers_used();
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  const SimWorld world(config, *factory, iota_inputs(3));

  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  options.symmetry_reduction = false;
  options.sleep_sets = false;

  // Stale hint: a prior (smaller) run's census size.
  options.expected_states = 1024;
  const auto stale = sched::explore(world, options);
  ASSERT_TRUE(stale.complete);
  EXPECT_EQ(stale.table_grows,
            expected_grows(1024, stale.states_visited));
  EXPECT_GT(stale.table_grows, 0u)
      << "census too small to force a rehash — grow the instance";

  // Exact hint: the batched-census path (pools size columns the same
  // way) must not rehash at all.
  options.expected_states = stale.states_visited;
  const auto exact = sched::explore(world, options);
  ASSERT_TRUE(exact.complete);
  EXPECT_EQ(exact.states_visited, stale.states_visited);
  EXPECT_EQ(exact.table_grows, 0u);
}

}  // namespace
}  // namespace ff
