// Tests of the Theorem 19 covering adversary and the hierarchy prober.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "hierarchy/consensus_number.hpp"
#include "sched/adversary.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::StagedFactory;
using sched::run_covering_adversary;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

// --- covering adversary (Theorem 19 proof execution) -----------------------

TEST(CoveringAdversary, DefeatsStagedProtocol) {
  for (std::uint32_t f = 1; f <= 4; ++f) {
    const StagedFactory factory(f, 1);
    const auto result = run_covering_adversary(factory, f, inputs(f + 2));
    EXPECT_TRUE(result.claim20_held) << "f=" << f;
    EXPECT_TRUE(result.both_decided) << "f=" << f;
    EXPECT_TRUE(result.disagreement) << "f=" << f;
    // p0 ran solo first, so it decided its own input (validity +
    // wait-freedom force this).
    EXPECT_EQ(result.p0_decision, 1u) << "f=" << f;
    EXPECT_NE(result.last_decision, 1u) << "f=" << f;
  }
}

TEST(CoveringAdversary, UsesAtMostOneFaultPerObject) {
  for (std::uint32_t f = 1; f <= 4; ++f) {
    const StagedFactory factory(f, 1);
    const auto result = run_covering_adversary(factory, f, inputs(f + 2));
    ASSERT_EQ(result.faults_per_object.size(), f);
    std::uint32_t faulted = 0;
    for (const auto count : result.faults_per_object) {
      EXPECT_LE(count, 1u) << "f=" << f;
      faulted += count;
    }
    // At most f faults total — the t=1 lower-bound budget.
    EXPECT_LE(faulted, f) << "f=" << f;
  }
}

TEST(CoveringAdversary, TouchesFDistinctObjects) {
  const StagedFactory factory(3, 1);
  const auto result = run_covering_adversary(factory, 3, inputs(5));
  // Claim 20: p1..p3 each reached a distinct fresh object.
  std::set<objects::ObjectId> distinct(result.faulted_objects.begin(),
                                       result.faulted_objects.end());
  EXPECT_EQ(result.faulted_objects.size(), 3u);
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(CoveringAdversary, DefeatsFPlusOneRunWithOnlyFObjects) {
  // The candidate of Theorem 18 (Figure 2 with f objects) also falls to
  // the bounded-fault covering schedule.
  for (std::uint32_t f = 1; f <= 3; ++f) {
    const FPlusOneFactory factory(f);
    const auto result = run_covering_adversary(factory, f, inputs(f + 2));
    EXPECT_TRUE(result.claim20_held) << "f=" << f;
    EXPECT_TRUE(result.disagreement) << "f=" << f;
  }
}

TEST(CoveringAdversary, ProducesAuditableLog) {
  const StagedFactory factory(2, 1);
  const auto result = run_covering_adversary(factory, 2, inputs(4));
  EXPECT_GE(result.log.size(), 4u);  // p0 decided, 2 faults, p3 decided
  EXPECT_GT(result.total_steps, 0u);
}

// --- hierarchy prober (E6) ---------------------------------------------------

TEST(Hierarchy, StagedCellOkAtFPlusOne) {
  hierarchy::ProbeOptions options;
  options.explorer_max_states = 200'000;
  const auto cell = hierarchy::probe_staged_cell(1, 1, 2, options);
  EXPECT_TRUE(cell.ok());
  EXPECT_EQ(cell.evidence, hierarchy::Evidence::kProvenOk);
  EXPECT_EQ(cell.method, "explorer");
}

TEST(Hierarchy, StagedCellViolationAtFPlusTwo) {
  hierarchy::ProbeOptions options;
  options.explorer_max_states = 200'000;
  const auto cell = hierarchy::probe_staged_cell(1, 1, 3, options);
  EXPECT_FALSE(cell.ok());
  EXPECT_EQ(cell.evidence, hierarchy::Evidence::kViolation);
}

TEST(Hierarchy, ConsensusNumberIsFPlusOne) {
  hierarchy::ProbeOptions options;
  options.explorer_max_states = 500'000;
  options.walks = 100;
  for (std::uint32_t f = 1; f <= 3; ++f) {
    const auto estimate =
        hierarchy::estimate_staged_consensus_number(f, 1, f + 3, options);
    EXPECT_EQ(estimate.consensus_number, f + 1) << "f=" << f;
    // Cells up to f+1 are ok, beyond are violations.
    for (const auto& cell : estimate.cells) {
      if (cell.n <= f + 1) {
        EXPECT_TRUE(cell.ok()) << "f=" << f << " n=" << cell.n << " ("
                               << cell.method << ": " << cell.detail << ")";
      } else {
        EXPECT_FALSE(cell.ok()) << "f=" << f << " n=" << cell.n;
      }
    }
  }
}

TEST(Hierarchy, EvidenceNamesRender) {
  EXPECT_EQ(to_string(hierarchy::Evidence::kProvenOk), "proven-ok");
  EXPECT_EQ(to_string(hierarchy::Evidence::kViolation), "violation");
  EXPECT_EQ(to_string(hierarchy::Evidence::kStressOk), "stress-ok");
  EXPECT_EQ(to_string(hierarchy::Evidence::kInconclusive), "inconclusive");
}

}  // namespace
}  // namespace ff
