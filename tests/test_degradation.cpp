// Graceful degradation (cf. Jayanti et al.'s notion, discussed in §6):
// when the fault budget exceeds what a construction tolerates, WHICH
// property breaks?
//
// For the overriding fault the answer is machine-checkable here: the
// deviating postcondition Φ′ only ever writes the operation's own desired
// value, so no execution can launder a non-input value into a decision —
// validity survives every budget overrun; only consistency (or, for
// retry protocols, termination) is lost.  Arbitrary faults, by contrast,
// can break validity outright.  This mirrors the fault-severity
// discussion of §3.4.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "sched/explorer.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::SingleCasFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;
using sched::ViolationKind;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

sched::ExploreResult explore_full(const SimConfig& config,
                                  const sched::MachineFactory& factory,
                                  std::uint32_t n) {
  SimWorld world(config, factory, inputs(n));
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;  // census over ALL violations
  options.max_states = 2'000'000;
  return sched::explore(world, options);
}

SimConfig cfg(std::uint32_t objects, FaultKind kind, std::uint32_t t) {
  SimConfig c;
  c.num_objects = objects;
  c.kind = kind;
  c.t = t;
  return c;
}

TEST(GracefulDegradation, OverridingNeverBreaksValidity) {
  // Configurations KNOWN to break consistency — validity must still hold
  // in every terminal state.
  struct Case {
    const sched::MachineFactory& factory;
    std::uint32_t objects;
    std::uint32_t t;
    std::uint32_t n;
  };
  const SingleCasFactory herlihy;
  const FPlusOneFactory fp1_1(1);
  const FPlusOneFactory fp1_2(2);
  const StagedFactory staged11(1, 1);
  const Case cases[] = {
      {herlihy, 1, kUnbounded, 3},
      {herlihy, 1, kUnbounded, 4},
      {fp1_1, 1, kUnbounded, 3},
      {fp1_2, 2, kUnbounded, 3},
      {staged11, 1, 1, 3},  // n = f+2: Theorem 19 regime
  };
  for (const auto& c : cases) {
    const auto result =
        explore_full(cfg(c.objects, FaultKind::kOverriding, c.t),
                     c.factory, c.n);
    EXPECT_TRUE(result.complete);
    EXPECT_GT(result.violations_of(ViolationKind::kInconsistent), 0u)
        << c.factory.name() << " n=" << c.n;
    EXPECT_EQ(result.violations_of(ViolationKind::kInvalid), 0u)
        << c.factory.name() << " n=" << c.n;
  }
}

TEST(GracefulDegradation, SilentNeverBreaksValidityEither) {
  const SingleCasFactory herlihy;
  const auto result =
      explore_full(cfg(1, FaultKind::kSilent, kUnbounded), herlihy, 2);
  EXPECT_GT(result.violations_of(ViolationKind::kInconsistent), 0u);
  EXPECT_EQ(result.violations_of(ViolationKind::kInvalid), 0u);
}

TEST(GracefulDegradation, ArbitraryFaultsDoBreakValidity) {
  // Give the arbitrary fault a candidate value that is nobody's input:
  // the Herlihy protocol adopts whatever it reads, so the garbage value
  // can become a decision — an INVALID outcome, unreachable under the
  // structured overriding fault.
  SimConfig config = cfg(1, FaultKind::kArbitrary, 1);
  config.arbitrary_candidates = {model::Value::of(777)};  // not an input
  const SingleCasFactory herlihy;
  const auto result = explore_full(config, herlihy, 2);
  EXPECT_GT(result.violations_of(ViolationKind::kInvalid), 0u);
}

TEST(GracefulDegradation, InvisibleFaultsCanAlsoBreakValidity) {
  // The corrupted RETURN value (before+1) is adopted by Figure 1, so a
  // non-input value can be decided.
  const SingleCasFactory herlihy;
  const auto result =
      explore_full(cfg(1, FaultKind::kInvisible, 1), herlihy, 2);
  EXPECT_GT(result.violations_of(ViolationKind::kInvalid), 0u);
}

TEST(GracefulDegradation, ViolationCensusAddsUp) {
  const SingleCasFactory herlihy;
  const auto result =
      explore_full(cfg(1, FaultKind::kOverriding, kUnbounded), herlihy, 3);
  std::uint64_t sum = 0;
  for (const auto& [kind, count] : result.violations_by_kind) sum += count;
  EXPECT_EQ(sum, result.violations_found);
  EXPECT_GT(result.terminal_states, 0u);
}

}  // namespace
}  // namespace ff
