// Edge-of-API tests: paths the mainline suites don't reach.
#include <gtest/gtest.h>

#include <memory>

#include "legacy/machines.hpp"
#include "legacy/single_cas.hpp"
#include "hierarchy/consensus_number.hpp"
#include "objects/atomic_cas.hpp"
#include "objects/register.hpp"
#include "sched/explorer.hpp"
#include "universal/log.hpp"
#include "util/cli.hpp"

namespace ff {
namespace {

TEST(ApiEdges, RegisterReadWriteAndReset) {
  objects::AtomicRegister reg(3);
  EXPECT_TRUE(reg.read().is_bottom());
  reg.write(model::Value::of(77));
  EXPECT_EQ(reg.read(), model::Value::of(77));
  reg.reset();
  EXPECT_TRUE(reg.read().is_bottom());
  EXPECT_EQ(reg.id(), 3u);
  EXPECT_EQ(reg.name(), "register");
}

TEST(ApiEdges, CliRejectsMalformedBool) {
  const char* argv[] = {"prog", "--x=wat"};
  const util::Cli cli(2, argv);
  EXPECT_THROW(static_cast<void>(cli.get_bool("x", false)),
               std::invalid_argument);
}

TEST(ApiEdges, LearnBeforeAnyAppendDrivesTheSlot) {
  // learn() on an undecided slot participates in consensus with a probe
  // proposal; with no competition the probe itself gets decided — the
  // caller still obtains a decided operation, maintaining wait-freedom.
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  universal::ConsensusLog log(2, [&](std::uint64_t) {
    storage.push_back(std::make_unique<objects::AtomicCas>(0));
    return std::make_unique<consensus::SingleCasConsensus>(*storage.back());
  });
  const auto op = log.learn(0, /*pid=*/1);
  EXPECT_EQ(op.pid, 1u);
  EXPECT_TRUE(log.decided_value(0).has_value());
  EXPECT_EQ(log.known_prefix(), 1u);
}

TEST(ApiEdges, LogCursorSkipsDecidedSlots) {
  std::vector<std::unique_ptr<objects::AtomicCas>> storage;
  universal::ConsensusLog log(3, [&](std::uint64_t) {
    storage.push_back(std::make_unique<objects::AtomicCas>(0));
    return std::make_unique<consensus::SingleCasConsensus>(*storage.back());
  });
  std::uint64_t alice = 0;
  log.append({0, 0, 11}, alice);  // slot 0
  std::uint64_t bob = 0;
  const auto result = log.append({1, 0, 22}, bob);
  EXPECT_EQ(result.index, 1u);   // lost slot 0, won slot 1
  EXPECT_EQ(result.losses, 1u);
  EXPECT_EQ(bob, 2u);            // cursor advanced past the win
}

TEST(ApiEdges, HierarchyEstimateWithTGreaterThanOne) {
  hierarchy::ProbeOptions options;
  options.explorer_max_states = 300'000;
  options.walks = 50;
  const auto estimate =
      hierarchy::estimate_staged_consensus_number(1, 2, 4, options);
  EXPECT_EQ(estimate.consensus_number, 2u);  // f+1, independent of t
  EXPECT_EQ(estimate.cells.size(), 3u);      // n = 2, 3, 4
}

TEST(ApiEdges, ChoiceToStringFormats) {
  EXPECT_EQ((sched::Choice{2, false, 0}).to_string(), "p2");
  EXPECT_EQ((sched::Choice{0, true, 0}).to_string(), "p0!");
  EXPECT_EQ((sched::Choice{1, true, 3}).to_string(), "p1!3");
}

TEST(ApiEdges, ViolationKindNames) {
  EXPECT_EQ(sched::to_string(sched::ViolationKind::kInconsistent),
            "inconsistent");
  EXPECT_EQ(sched::to_string(sched::ViolationKind::kInvalid), "invalid");
  EXPECT_EQ(sched::to_string(sched::ViolationKind::kStalled), "stalled");
  EXPECT_EQ(sched::to_string(sched::ViolationKind::kNontermination),
            "nontermination");
}

TEST(ApiEdges, FaultKindNamesRoundTrip) {
  using model::FaultKind;
  for (const auto kind :
       {FaultKind::kNone, FaultKind::kOverriding, FaultKind::kSilent,
        FaultKind::kInvisible, FaultKind::kArbitrary,
        FaultKind::kNonresponsive, FaultKind::kDataCorruption}) {
    EXPECT_FALSE(model::to_string(kind).empty());
    EXPECT_NE(model::to_string(kind), "unknown");
  }
}

TEST(ApiEdges, ExploreAgreedValuesCoverAllSoloWinners) {
  // With n processes and a fault-free object, each process can win under
  // some schedule — the explorer's agreed-value set must contain all n
  // inputs (a completeness check on the search itself).
  const consensus::SingleCasFactory factory;
  sched::SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kNone;
  sched::SimWorld world(config, factory, {5, 6, 7});
  const auto result = sched::explore(world);
  EXPECT_EQ(result.agreed_values, (std::set<std::uint64_t>{5, 6, 7}));
}

}  // namespace
}  // namespace ff
