// Negative tests for the verification layer: every checker must REJECT
// synthetic traces that violate its property — a verifier that cannot
// fail proves nothing.
#include <gtest/gtest.h>

#include "consensus/verify.hpp"
#include "faults/trace.hpp"
#include "model/value.hpp"

namespace ff {
namespace {

using consensus::InputValue;
using faults::CasEvent;
using model::FaultKind;
using model::StagedValue;
using model::Value;

CasEvent event(objects::ObjectId object, objects::ProcessId caller,
               Value expected, Value desired, Value before, Value after,
               Value returned, FaultKind fired = FaultKind::kNone,
               bool manifested = false) {
  CasEvent ev;
  ev.object = object;
  ev.caller = caller;
  ev.call = {expected, desired};
  ev.obs = {before, after, returned};
  ev.fired = fired;
  ev.manifested = manifested;
  return ev;
}

// --- find_incoherent_event ---------------------------------------------------

TEST(Verifiers, IncoherentEventClaimedCorrectButPhiViolated) {
  // after ≠ desired although before == expected.
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), Value::of(5), Value::bottom(),
            Value::of(9), Value::bottom())};
  const auto bad = consensus::find_incoherent_event(trace);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 0u);
}

TEST(Verifiers, IncoherentEventClaimedFaultButPhiHeld) {
  // Claims a manifested overriding fault, but the observation is a plain
  // successful CAS.
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), Value::of(5), Value::bottom(),
            Value::of(5), Value::bottom(), FaultKind::kOverriding, true)};
  EXPECT_TRUE(consensus::find_incoherent_event(trace).has_value());
}

TEST(Verifiers, IncoherentEventWrongPhiPrime) {
  // Claims a silent fault but the observation matches overriding.
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), Value::of(5), Value::of(3), Value::of(5),
            Value::of(3), FaultKind::kSilent, true)};
  EXPECT_TRUE(consensus::find_incoherent_event(trace).has_value());
}

TEST(Verifiers, CoherentTraceAccepted) {
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), Value::of(5), Value::bottom(),
            Value::of(5), Value::bottom()),
      event(0, 1, Value::bottom(), Value::of(7), Value::of(5), Value::of(7),
            Value::of(5), FaultKind::kOverriding, true)};
  EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value());
}

// --- stage checkers ----------------------------------------------------------

TEST(Verifiers, StageMonotonicityCatchesRegression) {
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), StagedValue(1, 3).pack(), Value::bottom(),
            StagedValue(1, 3).pack(), Value::bottom()),
      event(0, 0, Value::bottom(), StagedValue(1, 2).pack(),  // went back!
            StagedValue(1, 3).pack(), StagedValue(1, 3).pack(),
            StagedValue(1, 3).pack())};
  EXPECT_FALSE(consensus::stages_monotone_per_process(trace));
}

TEST(Verifiers, StageMonotonicityPerProcessNotGlobal) {
  // Different processes may be at different stages; only per-process
  // regressions count.
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), StagedValue(1, 3).pack(), Value::bottom(),
            StagedValue(1, 3).pack(), Value::bottom()),
      event(0, 1, Value::bottom(), StagedValue(2, 1).pack(),
            StagedValue(1, 3).pack(), StagedValue(1, 3).pack(),
            StagedValue(1, 3).pack())};
  EXPECT_TRUE(consensus::stages_monotone_per_process(trace));
}

TEST(Verifiers, Claim13CatchesNonIncreasingNonFaultyWrite) {
  // A non-faulty successful write whose stored stage does not increase.
  const std::vector<CasEvent> trace = {
      event(0, 0, StagedValue(1, 3).pack(), StagedValue(2, 2).pack(),
            StagedValue(1, 3).pack(), StagedValue(2, 2).pack(),
            StagedValue(1, 3).pack())};
  EXPECT_FALSE(consensus::nonfaulty_writes_increase_stage(trace));
}

TEST(Verifiers, Claim13IgnoresFaultyAndFailedWrites) {
  const std::vector<CasEvent> trace = {
      // Faulty write going down in stage: allowed by the claim.
      event(0, 0, Value::bottom(), StagedValue(2, 1).pack(),
            StagedValue(1, 3).pack(), StagedValue(2, 1).pack(),
            StagedValue(1, 3).pack(), FaultKind::kOverriding, true),
      // Failed CAS: no write.
      event(0, 1, Value::bottom(), StagedValue(5, 9).pack(),
            StagedValue(2, 1).pack(), StagedValue(2, 1).pack(),
            StagedValue(2, 1).pack())};
  EXPECT_TRUE(consensus::nonfaulty_writes_increase_stage(trace));
}

TEST(Verifiers, Claim9CatchesSkippedObject) {
  // ⟨x,0⟩ lands on O_1 without ever landing on O_0.
  const std::vector<CasEvent> trace = {
      event(1, 0, Value::bottom(), StagedValue(1, 0).pack(), Value::bottom(),
            StagedValue(1, 0).pack(), Value::bottom())};
  EXPECT_FALSE(consensus::stage_propagation_order(trace, 2));
}

TEST(Verifiers, Claim9CatchesSkippedStage) {
  // ⟨x,1⟩ lands on O_0 although ⟨x,0⟩ never landed anywhere.
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), StagedValue(1, 1).pack(), Value::bottom(),
            StagedValue(1, 1).pack(), Value::bottom())};
  EXPECT_FALSE(consensus::stage_propagation_order(trace, 1));
}

TEST(Verifiers, Claim9AcceptsProperPropagation) {
  const auto w = [](objects::ObjectId obj, std::uint32_t val,
                    std::uint32_t stage, Value before) {
    return event(obj, 0, before, StagedValue(val, stage).pack(), before,
                 StagedValue(val, stage).pack(), before);
  };
  const std::vector<CasEvent> trace = {
      w(0, 1, 0, Value::bottom()),
      w(1, 1, 0, Value::bottom()),
      w(0, 1, 1, StagedValue(1, 0).pack()),
      w(1, 1, 1, StagedValue(1, 0).pack()),
  };
  EXPECT_TRUE(consensus::stage_propagation_order(trace, 2));
}

// --- fault accounting --------------------------------------------------------

TEST(Verifiers, AccountingCountsOnlyManifested) {
  const std::vector<CasEvent> trace = {
      event(0, 0, Value::bottom(), Value::of(1), Value::bottom(),
            Value::of(1), Value::bottom(), FaultKind::kOverriding, false),
      event(1, 0, Value::bottom(), Value::of(2), Value::of(9), Value::of(2),
            Value::of(9), FaultKind::kOverriding, true),
      event(1, 0, Value::bottom(), Value::of(3), Value::of(2), Value::of(3),
            Value::of(2), FaultKind::kOverriding, true)};
  const auto acc = consensus::account_faults(trace);
  EXPECT_EQ(acc.total_manifested, 2u);
  EXPECT_EQ(acc.faulty_objects(), 1u);
  EXPECT_TRUE(acc.within({1, 2, 10}));
  EXPECT_FALSE(acc.within({1, 1, 10}));  // t exceeded
  EXPECT_FALSE(acc.within({0, 2, 10}));  // f exceeded
}

TEST(Verifiers, WritesOnlyInputValuesFlagsForeignWrites) {
  const std::vector<InputValue> inputs = {10, 20};
  const std::vector<CasEvent> good = {
      event(0, 0, Value::bottom(), Value::of(10), Value::bottom(),
            Value::of(10), Value::bottom())};
  const std::vector<CasEvent> bad = {
      event(0, 0, Value::bottom(), Value::of(99), Value::bottom(),
            Value::of(99), Value::bottom())};
  EXPECT_TRUE(consensus::writes_only_input_values(good, inputs, false));
  EXPECT_FALSE(consensus::writes_only_input_values(bad, inputs, false));
}

TEST(Verifiers, WritesOnlyInputValuesStagedUnpacksFirst) {
  const std::vector<InputValue> inputs = {10};
  const std::vector<CasEvent> staged_write = {
      event(0, 0, Value::bottom(), StagedValue(10, 4).pack(),
            Value::bottom(), StagedValue(10, 4).pack(), Value::bottom())};
  EXPECT_TRUE(
      consensus::writes_only_input_values(staged_write, inputs, true));
  EXPECT_FALSE(
      consensus::writes_only_input_values(staged_write, inputs, false));
}

}  // namespace
}  // namespace ff
