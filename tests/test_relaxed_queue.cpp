// The relaxed queue as a functional-fault instance (§6): k-relaxed
// dequeues satisfy Φ′_k, the generic Hoare checker classifies them, and
// budgets bound how many relaxations occur.
#include <gtest/gtest.h>

#include <thread>

#include "faults/relaxed_queue.hpp"
#include "model/hoare.hpp"
#include "model/queue_semantics.hpp"
#include "util/spin_barrier.hpp"

namespace ff {
namespace {

using faults::RelaxedQueue;
using model::DequeueCall;
using model::DequeueObservation;

TEST(QueueSemantics, PhiIsStrictFifo) {
  EXPECT_TRUE(model::dequeue_satisfies_phi({{1, 2, 3}, 1}));
  EXPECT_FALSE(model::dequeue_satisfies_phi({{1, 2, 3}, 2}));
  EXPECT_TRUE(model::dequeue_satisfies_phi({{}, std::nullopt}));
  EXPECT_FALSE(model::dequeue_satisfies_phi({{1}, std::nullopt}));
}

TEST(QueueSemantics, PhiPrimeAllowsWindowK) {
  const DequeueObservation second{{1, 2, 3}, 2};
  EXPECT_FALSE(model::dequeue_satisfies_phi_prime(second, 0));
  EXPECT_TRUE(model::dequeue_satisfies_phi_prime(second, 1));
  EXPECT_TRUE(model::dequeue_satisfies_phi_prime(second, 2));
  const DequeueObservation third{{1, 2, 3}, 3};
  EXPECT_FALSE(model::dequeue_satisfies_phi_prime(third, 1));
  EXPECT_TRUE(model::dequeue_satisfies_phi_prime(third, 2));
}

TEST(QueueSemantics, RelaxationDistance) {
  EXPECT_EQ(model::relaxation_distance({{1, 2, 3}, 1}), 0u);
  EXPECT_EQ(model::relaxation_distance({{1, 2, 3}, 3}), 2u);
  EXPECT_EQ(model::relaxation_distance({{1, 2, 3}, 9}), std::nullopt);
  EXPECT_EQ(model::relaxation_distance({{}, std::nullopt}), 0u);
}

TEST(QueueSemantics, GenericTripleCheckerClassifiesRelaxations) {
  // The hoare.hpp framework on a second object type: Ψ = nonempty,
  // Φ = FIFO, Φ′_1 and Φ′_2 registered most-specific-first.
  using Checker = model::TripleChecker<DequeueCall, DequeueObservation>;
  Checker checker({"dequeue",
                   [](const DequeueCall&, const DequeueObservation& obs) {
                     return !obs.prefix_before.empty();
                   },
                   [](const DequeueCall&, const DequeueObservation& obs) {
                     return model::dequeue_satisfies_phi(obs);
                   }});
  const auto relax1 = checker.add_fault(
      {"1-relaxed", [](const DequeueCall&, const DequeueObservation& obs) {
         return model::dequeue_satisfies_phi_prime(obs, 1);
       }});
  const auto relax2 = checker.add_fault(
      {"2-relaxed", [](const DequeueCall&, const DequeueObservation& obs) {
         return model::dequeue_satisfies_phi_prime(obs, 2);
       }});

  auto r = checker.classify({}, {{1, 2, 3}, 1});
  EXPECT_EQ(r.verdict, model::StepVerdict::kCorrect);
  r = checker.classify({}, {{1, 2, 3}, 2});
  ASSERT_EQ(r.verdict, model::StepVerdict::kCharacterized);
  EXPECT_EQ(*r.characterization, relax1);
  r = checker.classify({}, {{1, 2, 3}, 3});
  ASSERT_EQ(r.verdict, model::StepVerdict::kCharacterized);
  EXPECT_EQ(*r.characterization, relax2);
  r = checker.classify({}, {{1, 2, 3}, 42});
  EXPECT_EQ(r.verdict, model::StepVerdict::kUnstructured);
  r = checker.classify({}, {{}, std::nullopt});
  EXPECT_EQ(r.verdict, model::StepVerdict::kPreconditionUnmet);
}

TEST(RelaxedQueue, StrictFifoWithoutPolicy) {
  RelaxedQueue queue(0, /*k=*/3, nullptr, nullptr);
  for (std::uint64_t i = 1; i <= 5; ++i) queue.enqueue(i);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(queue.dequeue(0), i);
  }
  EXPECT_EQ(queue.dequeue(0), std::nullopt);
}

TEST(RelaxedQueue, EveryDequeueWithinPhiPrimeK) {
  faults::AlwaysFault policy;
  RelaxedQueue queue(0, /*k=*/2, &policy, nullptr);
  for (std::uint64_t i = 1; i <= 50; ++i) queue.enqueue(i);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue.dequeue(0).has_value());
  }
  for (const auto& ev : queue.trace()) {
    EXPECT_TRUE(model::dequeue_satisfies_phi_prime(ev.obs, 2));
    const auto distance = model::relaxation_distance(ev.obs);
    ASSERT_TRUE(distance.has_value());
    EXPECT_LE(*distance, 2u);
    EXPECT_EQ(*distance >= 1, ev.manifested);
  }
}

TEST(RelaxedQueue, BudgetBoundsManifestedRelaxations) {
  faults::AlwaysFault policy;
  faults::FaultBudget budget(1, 1, /*t=*/3);
  RelaxedQueue queue(0, /*k=*/4, &policy, &budget);
  for (std::uint64_t i = 1; i <= 40; ++i) queue.enqueue(i);
  for (int i = 0; i < 40; ++i) queue.dequeue(0);
  std::uint32_t manifested = 0;
  for (const auto& ev : queue.trace()) manifested += ev.manifested ? 1 : 0;
  EXPECT_EQ(manifested, 3u);
  // Once the budget is spent, strict FIFO resumes.
  const auto trace = queue.trace();
  bool past_budget = false;
  std::uint32_t seen = 0;
  for (const auto& ev : trace) {
    if (ev.manifested) ++seen;
    if (seen == 3) past_budget = true;
    if (past_budget && !ev.manifested) {
      EXPECT_TRUE(model::dequeue_satisfies_phi(ev.obs));
    }
  }
}

TEST(RelaxedQueue, NoElementLostOrDuplicated) {
  faults::AlwaysFault policy;
  RelaxedQueue queue(0, /*k=*/3, &policy, nullptr);
  constexpr std::uint64_t kItems = 200;
  for (std::uint64_t i = 1; i <= kItems; ++i) queue.enqueue(i);
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    const auto v = queue.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(out.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_EQ(out.size(), kItems);
  EXPECT_EQ(*out.begin(), 1u);
  EXPECT_EQ(*out.rbegin(), kItems);
}

TEST(RelaxedQueue, ConcurrentProducersConsumers) {
  faults::AlwaysFault policy;
  RelaxedQueue queue(0, /*k=*/2, &policy, nullptr);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 250;
  util::SpinBarrier barrier(kThreads * 2);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> consumed{0};
  for (std::uint32_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {  // producer
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        queue.enqueue(p * kPerThread + i + 1);
      }
    });
    threads.emplace_back([&] {  // consumer
      barrier.arrive_and_wait();
      std::uint64_t got = 0;
      while (got < kPerThread) {
        if (queue.dequeue(0).has_value()) {
          ++got;
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kThreads * kPerThread);
  EXPECT_EQ(queue.size(), 0u);
  // Every recorded dequeue stayed within Φ′_2.
  for (const auto& ev : queue.trace()) {
    if (ev.obs.returned) {
      EXPECT_TRUE(model::dequeue_satisfies_phi_prime(ev.obs, 2));
    }
  }
}

}  // namespace
}  // namespace ff
