// Test&set instantiation: the level-2 primitive next to the paper's
// faulty-CAS level-2 ensemble, plus a machine-checked usage-pattern
// observation — uniform-desired CAS usage is IMMUNE to the overriding
// fault (Φ′ writes the desired value; if every caller desires the same
// value, no overriding write can ever violate Φ).
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "legacy/tas.hpp"
#include "objects/atomic_cas.hpp"
#include "objects/register.hpp"
#include "faults/faulty_cas.hpp"
#include "faults/policy.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"

namespace ff {
namespace {

using consensus::TasFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::SimConfig;
using sched::SimWorld;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 10);
  return v;
}

SimConfig cfg(std::uint32_t n, FaultKind kind, std::uint32_t t) {
  SimConfig c;
  c.num_objects = 1;
  c.num_registers = n;
  c.kind = kind;
  c.t = t;
  return c;
}

// --- threaded protocol -------------------------------------------------------

TEST(Tas, TwoProcessConsensusCorrectBit) {
  objects::AtomicCas bit(0);
  objects::AtomicRegister a0(1);
  objects::AtomicRegister a1(2);
  consensus::TasConsensus protocol(bit, a0, a1);

  runtime::StressOptions options;
  options.processes = 2;
  options.budget.max_units = 300;
  const auto report = runtime::run_stress(protocol, options);
  EXPECT_TRUE(report.all_ok()) << report.violations();
  EXPECT_DOUBLE_EQ(report.steps_per_process.max(), 1.0);
}

TEST(Tas, SoloWinnerKeepsOwnValue) {
  objects::AtomicCas bit(0);
  objects::AtomicRegister a0(1);
  objects::AtomicRegister a1(2);
  consensus::TasConsensus protocol(bit, a0, a1);
  EXPECT_EQ(protocol.decide(42, 0).value, 42u);
  EXPECT_EQ(protocol.decide(99, 1).value, 42u);  // loser adopts
}

TEST(Tas, ThreadedOverridingFaultsAreHarmless) {
  // Uniform-desired usage: every TAS writes 1, so an overriding fault's
  // outcome always coincides with Φ — it never manifests, and agreement
  // holds even with an always-fault policy and unbounded budget.
  faults::AlwaysFault policy;
  faults::VectorTraceSink sink;
  faults::FaultyCas bit(0, FaultKind::kOverriding, &policy, nullptr, &sink);
  objects::AtomicRegister a0(1);
  objects::AtomicRegister a1(2);
  consensus::TasConsensus protocol(bit, a0, a1);

  runtime::StressOptions options;
  options.processes = 2;
  options.budget.max_units = 200;
  const auto report = runtime::run_stress(
      protocol, options, [&](std::uint64_t) { sink.clear(); },
      [&](std::uint64_t trial, const runtime::TrialOutcome&) {
        for (const auto& ev : sink.snapshot()) {
          EXPECT_FALSE(ev.manifested) << "trial " << trial;
        }
      });
  EXPECT_TRUE(report.all_ok());
}

// --- simulator ---------------------------------------------------------------

TEST(TasMachine, FaultFreeTwoProcsProven) {
  const TasFactory factory(2);
  SimWorld world(cfg(2, FaultKind::kOverriding, 0), factory, inputs(2));
  const auto result = sched::explore(world);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.agreed_values.size(), 2u);
}

TEST(TasMachine, NaiveGeneralizationBreaksAtThree) {
  // TAS sits at hierarchy level 2: the natural 3-process extension of
  // the protocol admits disagreement even with a CORRECT bit.
  const TasFactory factory(3);
  SimWorld world(cfg(3, FaultKind::kOverriding, 0), factory, inputs(3));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kInconsistent);
}

TEST(TasMachine, OverridingFaultNeverEvenEnables) {
  // Machine-checked immunity: across the ENTIRE state space with an
  // unbounded overriding budget, no fault branch is ever offered, so the
  // state count equals the fault-free one.
  const TasFactory factory(2);
  SimWorld faulty(cfg(2, FaultKind::kOverriding, kUnbounded), factory,
                  inputs(2));
  SimWorld clean(cfg(2, FaultKind::kOverriding, 0), factory, inputs(2));
  const auto faulty_result = sched::explore(faulty);
  const auto clean_result = sched::explore(clean);
  EXPECT_TRUE(faulty_result.complete);
  EXPECT_FALSE(faulty_result.violation.has_value());
  EXPECT_EQ(faulty_result.states_visited, clean_result.states_visited);
}

TEST(TasMachine, OneSilentFaultBreaksTwoProcessConsensus) {
  // The natural TAS fault — the bit fails to latch — is fatal even at
  // n = 2: both processes can believe they won.
  const TasFactory factory(2);
  SimWorld world(cfg(2, FaultKind::kSilent, 1), factory, inputs(2));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kInconsistent);
}

TEST(TasMachine, ContrastWithFaultyCasAtLevelTwo) {
  // The paper's point in one test: one bounded-overriding-faulty CAS
  // object (staged protocol, f=1, t=1) and a correct TAS bit both solve
  // exactly 2-process consensus — same hierarchy level, different
  // reasons.
  const consensus::StagedFactory staged(1, 1);
  SimConfig staged_cfg;
  staged_cfg.num_objects = 1;
  staged_cfg.kind = FaultKind::kOverriding;
  staged_cfg.t = 1;

  SimWorld staged2(staged_cfg, staged, inputs(2));
  SimWorld staged3(staged_cfg, staged, inputs(3));
  const TasFactory tas2(2);
  const TasFactory tas3(3);
  SimWorld tasw2(cfg(2, FaultKind::kNone, 0), tas2, inputs(2));
  SimWorld tasw3(cfg(3, FaultKind::kNone, 0), tas3, inputs(3));

  EXPECT_FALSE(sched::explore(staged2).violation.has_value());
  EXPECT_TRUE(sched::explore(staged3).violation.has_value());
  EXPECT_FALSE(sched::explore(tasw2).violation.has_value());
  EXPECT_TRUE(sched::explore(tasw3).violation.has_value());
}

}  // namespace
}  // namespace ff
