// Differential-testing harness for the batched owner-computes frontier
// explorer (sched/frontier_explorer.hpp): the frontier census must be
// BIT-EQUAL to the sequential oracle's on every cell of two grids — the
// legacy-machine differential grid (the scalar StepMachine arena path)
// and the simulable-registry × fault-kind × crash-budget grid (the
// IR/generated batch path) — with symmetry reduction on and off, under
// forced spilling, and at any shard count.  Witnesses must strictly
// replay, including witnesses reconstructed out of spilled runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "explore_diff.hpp"
#include "legacy/machines.hpp"
#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "sched/frontier_explorer.hpp"
#include "verify/run.hpp"

namespace ff {
namespace {

using model::FaultKind;
using model::kUnbounded;
using sched::ExploreOptions;
using sched::ExploreResult;
using sched::FrontierExploreOptions;
using sched::FrontierExploreResult;
using sched::ViolationKind;
using testutil::differential_grid;
using testutil::expect_witness_reproduces;
using testutil::full_space_options;
using testutil::GridCase;
using testutil::iota_inputs;

/// One cell of the registry grid: a registered protocol under a fault
/// kind and a crash budget, described as the canonical verify::JobSpec
/// the front ends would submit.  verify::instantiate() resolves the
/// config/factory/inputs the engines actually see — the test exercises
/// the same resolution path instead of re-deriving SimConfig by hand.
struct RegistryCase {
  std::string label;
  verify::JobSpec spec;
};

std::vector<RegistryCase> registry_grid() {
  std::vector<RegistryCase> grid;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    for (const FaultKind kind :
         {FaultKind::kNone, FaultKind::kOverriding, FaultKind::kSilent,
          FaultKind::kInvisible, FaultKind::kArbitrary,
          FaultKind::kNonresponsive}) {
      for (const std::uint32_t crash_budget : {0u, 1u}) {
        RegistryCase rc;
        rc.label = info.name + "/" + std::string(model::to_string(kind)) +
                   "/crash" + std::to_string(crash_budget);
        rc.spec.protocol = info.name;
        rc.spec.kind = kind;
        rc.spec.t = kind == FaultKind::kNone ? 0 : 1;
        rc.spec.crash_budget = crash_budget;
        rc.spec.processes = 2;
        rc.spec.engine = verify::Engine::kFrontier;
        rc.spec.sleep_sets = false;  // the frontier engine rejects POR
        rc.spec.killed_is_violation = kind == FaultKind::kNonresponsive;
        rc.spec.stop_at_first_violation = false;
        grid.push_back(std::move(rc));
      }
    }
  }
  return grid;
}

FrontierExploreOptions fopts(const ExploreOptions& explore,
                             std::uint32_t threads, std::uint32_t shards = 0) {
  FrontierExploreOptions options;
  options.explore = explore;
  // Sleep sets are a DFS-path notion; frontier_explore throws on true.
  // The sequential oracle keeps whatever the caller chose — the census
  // is unchanged either way (sleep sets prune transitions, not states).
  options.explore.sleep_sets = false;
  options.num_threads = threads;
  options.shard_count = shards;
  return options;
}

/// Graph-derived quantities must match the oracle exactly;
/// kNontermination counts are traversal-defined (DFS back-edges vs
/// SCC-internal process edges), so only presence is compared.
void expect_census_matches(const ExploreResult& seq, const ExploreResult& fr,
                           const std::string& label) {
  EXPECT_TRUE(seq.complete) << label;
  EXPECT_TRUE(fr.complete) << label;
  EXPECT_EQ(seq.states_visited, fr.states_visited) << label;
  EXPECT_EQ(seq.terminal_states, fr.terminal_states) << label;
  EXPECT_EQ(seq.agreed_values, fr.agreed_values) << label;
  for (const ViolationKind kind :
       {ViolationKind::kInconsistent, ViolationKind::kInvalid,
        ViolationKind::kStalled}) {
    EXPECT_EQ(seq.violations_of(kind), fr.violations_of(kind))
        << label << " kind=" << sched::to_string(kind);
  }
  EXPECT_EQ(seq.violations_of(ViolationKind::kNontermination) > 0,
            fr.violations_of(ViolationKind::kNontermination) > 0)
      << label;
  EXPECT_EQ(seq.violation.has_value(), fr.violation.has_value()) << label;
  EXPECT_EQ(seq.immunity_checks, fr.immunity_checks) << label;
  EXPECT_EQ(seq.immunity_skips, fr.immunity_skips) << label;
}

void expect_frontier_matches_sequential(const sched::SimConfig& config,
                                        const sched::MachineFactory& factory,
                                        const std::vector<std::uint64_t>& inputs,
                                        const FrontierExploreOptions& options,
                                        const std::string& label) {
  const sched::SimWorld world(config, factory, inputs);
  const ExploreResult seq = sched::explore(world, options.explore);
  const FrontierExploreResult fr =
      frontier_explore(config, factory, inputs, options);
  expect_census_matches(seq, fr.explore, label);
  if (fr.explore.violation) {
    expect_witness_reproduces(world, *fr.explore.violation, label);
  }
}

// ---------------------------------------------------------------------------
// Legacy-machine grid: the scalar StepMachine arena path.
// ---------------------------------------------------------------------------

TEST(FrontierDifferential, LegacyGridTwoThreads) {
  for (const GridCase& gc : differential_grid()) {
    sched::SimConfig config;
    config.num_objects = gc.factory->objects_used();
    config.num_registers = gc.factory->registers_used();
    config.kind = gc.kind;
    config.t = gc.t;
    config.allow_corruption_steps = gc.corruption_steps;
    expect_frontier_matches_sequential(config, *gc.factory,
                                       iota_inputs(gc.n),
                                       fopts(full_space_options(gc), 2),
                                       gc.name + " threads=2");
  }
}

TEST(FrontierDifferential, LegacyGridSymmetryOff) {
  std::size_t i = 0;
  for (const GridCase& gc : differential_grid()) {
    if (i++ % 3 != 0) continue;  // every third cell keeps runtime bounded
    ExploreOptions opts = full_space_options(gc);
    opts.symmetry_reduction = false;
    sched::SimConfig config;
    config.num_objects = gc.factory->objects_used();
    config.num_registers = gc.factory->registers_used();
    config.kind = gc.kind;
    config.t = gc.t;
    config.allow_corruption_steps = gc.corruption_steps;
    expect_frontier_matches_sequential(config, *gc.factory,
                                       iota_inputs(gc.n), fopts(opts, 4),
                                       gc.name + " sym=off");
  }
}

// ---------------------------------------------------------------------------
// Registry grid: every simulable protocol under every per-operation
// fault kind and crash budget 0/1 — the IR/generated batch path.
// ---------------------------------------------------------------------------

TEST(FrontierDifferential, RegistryGridWithCrashBudgets) {
  std::size_t compared = 0;
  for (const RegistryCase& rc : registry_grid()) {
    const verify::Instance instance = verify::instantiate(rc.spec);
    ExploreOptions opts;
    opts.stop_at_first_violation = rc.spec.stop_at_first_violation;
    opts.killed_is_violation = rc.spec.killed_is_violation;
    // A corrupted delivered value can drive an indexed protocol to an
    // out-of-range register (announce-cas under invisible/arbitrary
    // faults): the sequential oracle throws out_of_range there, so the
    // cell has no oracle verdict to compare against — skip it.
    try {
      (void)sched::explore(instance.world(), opts);
    } catch (const std::out_of_range&) {
      continue;
    }
    expect_frontier_matches_sequential(instance.config, *instance.factory,
                                       instance.inputs, fopts(opts, 4),
                                       rc.label);
    ++compared;
  }
  EXPECT_GE(compared, 80u);  // 8 protocols × 6 kinds × 2 budgets, few skips
}

// ---------------------------------------------------------------------------
// Shard invariance: the census is a property of the graph, not of the
// partitioning.
// ---------------------------------------------------------------------------

TEST(FrontierDifferential, ShardCountInvariance) {
  const auto factory = proto::machine_factory("staged");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.num_registers = factory->registers_used();
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  const auto inputs = iota_inputs(3);
  for (const std::uint32_t shards : {1u, 2u, 8u}) {
    expect_frontier_matches_sequential(
        config, *factory, inputs, fopts(opts, 4, shards),
        "staged shards=" + std::to_string(shards));
  }
}

// ---------------------------------------------------------------------------
// Forced spill: a byte-sized watermark spills every wave; the census and
// the reconstructed witnesses must not change.
// ---------------------------------------------------------------------------

FrontierExploreOptions spill_opts(FrontierExploreOptions options,
                                  const std::string& subdir) {
  options.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / subdir).string();
  options.mem_limit_bytes = 1;  // below any table: spill after every wave
  return options;
}

TEST(FrontierSpill, ForcedSpillCensusParity) {
  std::size_t i = 0;
  for (const GridCase& gc : differential_grid()) {
    if (i++ % 4 != 0) continue;
    sched::SimConfig config;
    config.num_objects = gc.factory->objects_used();
    config.num_registers = gc.factory->registers_used();
    config.kind = gc.kind;
    config.t = gc.t;
    config.allow_corruption_steps = gc.corruption_steps;
    const FrontierExploreOptions options = spill_opts(
        fopts(full_space_options(gc), 2), "ff_spill_" + std::to_string(i));
    const FrontierExploreResult spilled =
        frontier_explore(config, *gc.factory, iota_inputs(gc.n), options);
    EXPECT_GT(spilled.stats.spill_runs, 0u) << gc.name;
    EXPECT_GT(spilled.stats.spilled_records, 0u) << gc.name;
    const sched::SimWorld world(config, *gc.factory, iota_inputs(gc.n));
    const ExploreResult seq = sched::explore(world, options.explore);
    expect_census_matches(seq, spilled.explore, gc.name + " spilled");
    if (spilled.explore.violation) {
      expect_witness_reproduces(world, *spilled.explore.violation,
                                gc.name + " spilled witness");
    }
  }
}

TEST(FrontierSpill, SpilledWitnessStrictReplay) {
  // Single-CAS under one silent fault violates agreement (the winning
  // CAS is lost); with a byte watermark the witness chain must be
  // walked back through the spilled runs by binary search and still
  // strictly replay.
  const auto factory = proto::machine_factory("single-cas");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.kind = FaultKind::kSilent;
  config.t = 1;
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  const FrontierExploreOptions options =
      spill_opts(fopts(opts, 2), "ff_spill_witness");
  const FrontierExploreResult fr =
      frontier_explore(config, *factory, iota_inputs(2), options);
  EXPECT_GT(fr.stats.spill_runs, 0u);
  ASSERT_TRUE(fr.explore.violation.has_value());
  const sched::SimWorld world(config, *factory, iota_inputs(2));
  expect_witness_reproduces(world, *fr.explore.violation, "spilled witness");
}

// ---------------------------------------------------------------------------
// Nontermination, engine stats, and edge cases.
// ---------------------------------------------------------------------------

TEST(FrontierExplorer, NonterminationWitnessRevisitsState) {
  // §3.4: retry-silent under unboundedly many silent faults livelocks;
  // the SCC post-pass must find the cycle and produce a replayable lap.
  const auto factory = proto::machine_factory("retry-silent");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.kind = FaultKind::kSilent;
  config.t = kUnbounded;
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  const FrontierExploreResult fr =
      frontier_explore(config, *factory, iota_inputs(2), fopts(opts, 2));
  ASSERT_TRUE(fr.explore.violation.has_value());
  EXPECT_EQ(fr.explore.violation->kind, ViolationKind::kNontermination);
  const sched::SimWorld world(config, *factory, iota_inputs(2));
  expect_witness_reproduces(world, *fr.explore.violation, "retry-silent");
}

TEST(FrontierExplorer, StatsReflectBatchedStepping) {
  // The generated path must actually batch: at least one batch_deliver
  // sweep, lanes hash-consed, memoization hits on revisited transitions,
  // and a nonzero peak-memory census.
  const auto factory = proto::machine_factory("staged");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.num_registers = factory->registers_used();
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  const FrontierExploreResult fr =
      frontier_explore(config, *factory, iota_inputs(3), fopts(opts, 4));
  EXPECT_TRUE(fr.explore.complete);
  EXPECT_GT(fr.stats.waves, 0u);
  EXPECT_GT(fr.stats.batch_sweeps, 0u);
  EXPECT_GT(fr.stats.batched_lanes, 0u);
  EXPECT_GT(fr.stats.memo_hits, 0u);
  EXPECT_GT(fr.stats.arena_lanes, 0u);
  EXPECT_GT(fr.explore.peak_bytes, 0u);
  EXPECT_EQ(fr.stats.spill_runs, 0u);  // no spill_dir configured
}

TEST(FrontierExplorer, MaxStatesTruncationIsIncompleteNotWrong) {
  // A capped run must flag incompleteness and must not fabricate a
  // violation on a correct configuration.
  const auto factory = proto::machine_factory("staged");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  config.num_registers = factory->registers_used();
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  ExploreOptions opts;
  opts.stop_at_first_violation = false;
  opts.max_states = 10;
  const FrontierExploreResult fr =
      frontier_explore(config, *factory, iota_inputs(3), fopts(opts, 2));
  EXPECT_FALSE(fr.explore.complete);
  EXPECT_FALSE(fr.explore.violation.has_value());
}

TEST(FrontierExplorer, TerminalInitialState) {
  // A zero-process world is terminal at the root; the first dedup pass
  // interns it and wave 0 expands nothing.
  const auto factory = proto::machine_factory("single-cas");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  const FrontierExploreResult fr =
      frontier_explore(config, *factory, {}, fopts(ExploreOptions{}, 2));
  const sched::SimWorld world(config, *factory, {});
  const ExploreResult seq = sched::explore(world);
  EXPECT_EQ(seq.states_visited, fr.explore.states_visited);
  EXPECT_EQ(seq.terminal_states, fr.explore.terminal_states);
  EXPECT_EQ(seq.complete, fr.explore.complete);
  EXPECT_EQ(fr.stats.waves, 0u);
}

TEST(FrontierExplorer, SleepSetsRejected) {
  // Sleep-set POR is a DFS-path notion a BFS wavefront cannot carry
  // soundly; the engine rejects the flag loudly instead of silently
  // ignoring it (the silent-ignore era made cache keys ambiguous).
  const auto factory = proto::machine_factory("single-cas");
  sched::SimConfig config;
  config.num_objects = factory->objects_used();
  FrontierExploreOptions options;  // explore.sleep_sets defaults to true
  EXPECT_THROW(frontier_explore(config, *factory, iota_inputs(2), options),
               std::invalid_argument);
  // The same rule holds one layer up, at job validation time.
  verify::JobSpec spec;
  spec.protocol = "single-cas";
  spec.engine = verify::Engine::kFrontier;  // sleep_sets defaults to true
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace ff
