// Simulated-execution traces: the SimWorld recorder feeds the same
// verifiers as the real-thread runtime, so the proof invariants
// (Claims 8, 9, 13) are checked on model-checker witnesses and random
// walks too — and the two substrates are cross-validated through one
// verification vocabulary.
#include <gtest/gtest.h>

#include <numeric>

#include "legacy/machines.hpp"
#include "consensus/verify.hpp"
#include "sched/explorer.hpp"
#include "sched/random_walk.hpp"

namespace ff {
namespace {

using consensus::StagedFactory;
using model::FaultKind;
using sched::SimConfig;
using sched::SimWorld;

std::vector<std::uint64_t> inputs(std::uint32_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

TEST(SimTrace, SoloRunRecordsCoherentEvents) {
  faults::VectorTraceSink sink;
  SimConfig config;
  config.num_objects = 2;
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  config.sink = &sink;
  const StagedFactory factory(2, 1);
  SimWorld world(config, factory, inputs(1));
  while (!world.terminal()) world.apply({0, false, 0});

  const auto trace = sink.snapshot();
  EXPECT_EQ(trace.size(), world.total_steps());
  EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value());
  EXPECT_TRUE(consensus::stages_monotone_per_process(trace));
  EXPECT_TRUE(consensus::nonfaulty_writes_increase_stage(trace));
  EXPECT_TRUE(consensus::stage_propagation_order(trace, 2));
}

TEST(SimTrace, WitnessReplayYieldsCheckableTrace) {
  // Find the Theorem 19 counterexample, then replay it with a recorder:
  // every event in the violating execution is still Φ/Φ′-coherent and
  // within the (f, t) budget — the protocol fails by SCHEDULING, not by
  // the objects stepping outside their declared fault structure.
  const StagedFactory factory(1, 1);
  SimConfig config;
  config.num_objects = 1;
  config.kind = FaultKind::kOverriding;
  config.t = 1;
  const SimWorld world(config, factory, inputs(3));
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());

  faults::VectorTraceSink sink;
  SimConfig recording = config;
  recording.sink = &sink;
  SimWorld replay_world(recording, factory, inputs(3));
  for (const auto& choice : result.violation->schedule) {
    replay_world.apply(choice);
  }

  const auto trace = sink.snapshot();
  EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value());
  const auto acc = consensus::account_faults(trace);
  EXPECT_LE(acc.faulty_objects(), 1u);
  EXPECT_TRUE(acc.within({1, 1, 3}));
  EXPECT_TRUE(consensus::stages_monotone_per_process(trace));
  EXPECT_TRUE(consensus::stage_propagation_order(trace, 1));
}

TEST(SimTrace, RandomWalksKeepProofInvariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    faults::VectorTraceSink sink;
    SimConfig config;
    config.num_objects = 2;
    config.kind = FaultKind::kOverriding;
    config.t = 2;
    config.sink = &sink;
    const StagedFactory factory(2, 2);
    SimWorld world(config, factory, inputs(3));
    const auto outcome =
        sched::random_walk(world, {.seed = seed, .fault_bias = 0.9});
    EXPECT_TRUE(outcome.ok()) << "seed=" << seed;

    const auto trace = sink.snapshot();
    EXPECT_FALSE(consensus::find_incoherent_event(trace).has_value())
        << "seed=" << seed;
    EXPECT_TRUE(consensus::stages_monotone_per_process(trace))
        << "seed=" << seed;
    EXPECT_TRUE(consensus::nonfaulty_writes_increase_stage(trace))
        << "seed=" << seed;
    EXPECT_TRUE(consensus::stage_propagation_order(trace, 2))
        << "seed=" << seed;
    const auto acc = consensus::account_faults(trace);
    EXPECT_TRUE(acc.within({2, 2, 3})) << "seed=" << seed;
  }
}

TEST(SimTrace, ManifestedFlagsMatchClassification) {
  // In the simulator every fault branch manifests by construction;
  // cross-check against the model layer's classifier.
  faults::VectorTraceSink sink;
  SimConfig config;
  config.num_objects = 1;
  config.kind = FaultKind::kOverriding;
  config.t = model::kUnbounded;
  config.sink = &sink;
  const consensus::SingleCasFactory factory;
  SimWorld world(config, factory, inputs(3));
  world.apply({0, false, 0});
  world.apply({1, true, 0});  // overriding fault
  world.apply({2, false, 0});

  const auto trace = sink.snapshot();
  ASSERT_EQ(trace.size(), 3u);
  for (const auto& ev : trace) {
    const auto classified = model::classify(ev.obs, ev.call);
    EXPECT_EQ(classified != FaultKind::kNone, ev.manifested);
    if (ev.manifested) {
      EXPECT_EQ(classified, ev.fired);
    }
  }
}

}  // namespace
}  // namespace ff
