// Differential-testing harness for the parallel explorer: for every seed
// protocol × fault kind × (f, t) budget in the grid, the parallel
// explorer's verdict, state count and agreed-value set must exactly match
// the sequential oracle, and every parallel witness must replay to a real
// violation.  Also covers ExploreOptions::max_states truncation for both
// explorers (a capped run must be incomplete and must not fabricate a
// violation on a correct configuration).
#include <gtest/gtest.h>

#include "legacy/machines.hpp"
#include "explore_diff.hpp"
#include "sched/explorer.hpp"
#include "sched/parallel_explorer.hpp"

namespace ff {
namespace {

using consensus::RetrySilentFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::kUnbounded;
using sched::ParallelExploreOptions;
using sched::ViolationKind;
using testutil::differential_grid;
using testutil::expect_parallel_matches_sequential;
using testutil::expect_witness_reproduces;
using testutil::full_space_options;
using testutil::GridCase;
using testutil::make_world;

ParallelExploreOptions popts(const GridCase& gc, std::uint32_t threads,
                             std::uint32_t shards, std::uint32_t chunk) {
  ParallelExploreOptions options;
  options.explore = full_space_options(gc);
  options.num_threads = threads;
  options.shard_count = shards;
  options.chunk_size = chunk;
  return options;
}

TEST(ParallelDifferential, FullGridTwoThreads) {
  for (const GridCase& gc : differential_grid()) {
    expect_parallel_matches_sequential(gc, popts(gc, 2, 16, 4));
  }
}

TEST(ParallelDifferential, FullGridFourThreads) {
  for (const GridCase& gc : differential_grid()) {
    expect_parallel_matches_sequential(gc, popts(gc, 4, 64, 2));
  }
}

TEST(ParallelDifferential, SingleThreadSingleShardDegenerate) {
  // One worker over one table stripe and chunk 1: the degenerate
  // configuration exercises the same code paths with maximal contention
  // on a single lock and must still match the oracle.
  std::size_t i = 0;
  for (const GridCase& gc : differential_grid()) {
    if (i++ % 3 != 0) continue;  // every third cell keeps runtime bounded
    expect_parallel_matches_sequential(gc, popts(gc, 1, 1, 1));
  }
}

TEST(ParallelDifferential, DefaultOptionsStopAtFirstAgreesOnVerdict) {
  // stop_at_first_violation = true (the default): which violation is
  // reported first is traversal-dependent, but whether ANY violation
  // exists is a property of the graph and must agree.
  std::size_t i = 0;
  for (const GridCase& gc : differential_grid()) {
    if (i++ % 2 != 0) continue;
    const sched::SimWorld world = make_world(gc);
    sched::ExploreOptions opts;  // defaults: stop at first violation
    opts.killed_is_violation = gc.kind == FaultKind::kNonresponsive;

    const auto seq = sched::explore(world, opts);
    ParallelExploreOptions par_opts;
    par_opts.explore = opts;
    par_opts.num_threads = 2;
    const auto par = sched::parallel_explore(world, par_opts);

    EXPECT_EQ(seq.violation.has_value(), par.violation.has_value())
        << gc.name;
    EXPECT_EQ(seq.complete, par.complete) << gc.name;
    if (par.violation) {
      expect_witness_reproduces(world, *par.violation, gc.name);
    }
  }
}

TEST(ParallelDifferential, NonterminationWitnessRevisitsState) {
  // §3.4: retry-silent under unboundedly many silent faults livelocks.
  // The parallel explorer must find the cycle via its SCC post-pass and
  // produce a witness whose replay revisits a state with a process step
  // in the repeated suffix.
  const GridCase gc{"retry-silent/silent/tinf/n2",
                    std::make_shared<RetrySilentFactory>(),
                    FaultKind::kSilent, kUnbounded, 2};
  const sched::SimWorld world = make_world(gc);
  ParallelExploreOptions options = popts(gc, 2, 8, 2);
  const auto result = sched::parallel_explore(world, options);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, ViolationKind::kNontermination);
  EXPECT_GT(result.violations_of(ViolationKind::kNontermination), 0u);
  expect_witness_reproduces(world, *result.violation, gc.name);
}

TEST(ParallelDifferential, TerminalInitialState) {
  // A zero-process world is terminal at the root; both explorers handle
  // it without spawning work.
  const consensus::SingleCasFactory factory;
  sched::SimConfig config;
  config.num_objects = 1;
  const sched::SimWorld world(config, factory, {});
  const auto seq = sched::explore(world);
  const auto par = sched::parallel_explore(world);
  EXPECT_EQ(seq.states_visited, par.states_visited);
  EXPECT_EQ(seq.terminal_states, par.terminal_states);
  EXPECT_EQ(seq.complete, par.complete);
  EXPECT_EQ(seq.violation.has_value(), par.violation.has_value());
}

// --- ExploreOptions::max_states truncation ---------------------------------

// staged f=2, t=2, n=3 is a known-correct configuration whose state space
// far exceeds the caps used here: a truncated run must come back
// incomplete and must NOT fabricate a violation.
sched::SimWorld big_correct_world() {
  static const StagedFactory factory(2, 2);
  sched::SimConfig config;
  config.num_objects = 2;
  config.kind = FaultKind::kOverriding;
  config.t = 2;
  return sched::SimWorld(config, factory, testutil::iota_inputs(3));
}

TEST(MaxStatesTruncation, SequentialCapIsIncompleteAndFabricatesNothing) {
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  options.max_states = 500;
  const auto result = sched::explore(big_correct_world(), options);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.violations_found, 0u);
  EXPECT_LE(result.states_visited, options.max_states + 1);
}

TEST(MaxStatesTruncation, ParallelCapIsIncompleteAndFabricatesNothing) {
  for (const std::uint32_t threads : {1u, 4u}) {
    ParallelExploreOptions options;
    options.explore.stop_at_first_violation = false;
    options.explore.max_states = 500;
    options.num_threads = threads;
    const auto result =
        sched::parallel_explore(big_correct_world(), options);
    EXPECT_FALSE(result.complete) << threads;
    EXPECT_FALSE(result.violation.has_value()) << threads;
    EXPECT_EQ(result.violations_found, 0u) << threads;
    // Workers race past the cap by at most one in-flight insertion each.
    EXPECT_LE(result.states_visited, options.explore.max_states + threads)
        << threads;
  }
}

TEST(MaxStatesTruncation, UncappedMediumWorldIsCompleteAndAgrees) {
  // staged f=2, t=2 at n=2: the same protocol family as the capped runs
  // above, but small enough (~380k states) to explore exhaustively.
  static const StagedFactory factory(2, 2);
  sched::SimConfig config;
  config.num_objects = 2;
  config.kind = FaultKind::kOverriding;
  config.t = 2;
  const sched::SimWorld world(config, factory, testutil::iota_inputs(2));
  sched::ExploreOptions options;
  options.stop_at_first_violation = false;
  const auto seq = sched::explore(world, options);
  ParallelExploreOptions par_options;
  par_options.explore = options;
  par_options.num_threads = 2;
  const auto par = sched::parallel_explore(world, par_options);
  ASSERT_TRUE(seq.complete);
  ASSERT_TRUE(par.complete);
  EXPECT_EQ(seq.states_visited, par.states_visited);
  EXPECT_EQ(seq.terminal_states, par.terminal_states);
  EXPECT_EQ(seq.violations_found, 0u);
  EXPECT_EQ(par.violations_found, 0u);
  EXPECT_EQ(seq.agreed_values, par.agreed_values);
}

}  // namespace
}  // namespace ff
