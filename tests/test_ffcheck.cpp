// ffcheck analyzer suite (ctest label `analysis`).
//
// Three layers:
//   * certificate tests — positive AND negative fixtures per analysis
//     A1–A5.  Negative fixtures are built with Validate::kSyntaxOnly
//     (finalize(kFull) would refuse to construct them), which is exactly
//     the point: ffcheck must be demonstrably able to REJECT a program
//     violating each obligation, with the certificate naming the precise
//     op — including the encode()-layout perturbation regression below;
//   * the A2 pruning differential — for every simulable registry
//     protocol × fault kind × crash budget, the census with
//     proved-immune overriding branches skipped must be bit-identical
//     to the brute-force census, under the sequential AND the parallel
//     explorer.  A proved immunity must also actually FIRE (tas);
//   * report shape — the --json rendering is deterministic and carries
//     the per-analysis verdicts and certificates tools consume.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/fault_kind.hpp"
#include "proto/analysis/analysis.hpp"
#include "proto/ir.hpp"
#include "proto/machine.hpp"
#include "proto/registry.hpp"
#include "sched/explorer.hpp"
#include "sched/facts.hpp"
#include "sched/parallel_explorer.hpp"
#include "sched/sim_world.hpp"
#include "util/json.hpp"

namespace ff {
namespace {

using proto::Program;
using proto::ProgramBuilder;
using proto::Validate;
using proto::analysis::AnalysisReport;
using proto::analysis::LoopCertificate;
using proto::analysis::Verdict;
using proto::analysis::analyze;
using sched::SimConfig;
using sched::SimWorld;

// ---------------------------------------------------------------------------
// Registry-wide obligations
// ---------------------------------------------------------------------------

TEST(FfcheckRegistry, AllObligationsHold) {
  std::size_t immune = 0;
  std::size_t non_immune = 0;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    const auto program = info.build(proto::Params{});
    const AnalysisReport report = analyze(*program);
    EXPECT_TRUE(report.ok()) << info.name;
    EXPECT_EQ(report.program, info.name);
    EXPECT_EQ(report.simulable, info.simulable) << info.name;
    for (const auto& o : report.objects) {
      (o.immune ? immune : non_immune) += 1;
    }
  }
  // The acceptance bar: the analyzer proves immunity for at least one
  // registry object (tas) AND flags at least one as not immune — an
  // analyzer that answers uniformly in either direction is vacuous.
  EXPECT_GE(immune, 1u);
  EXPECT_GE(non_immune, 1u);
}

TEST(FfcheckRegistry, TasImmunityCertificate) {
  const auto program = proto::build_program("tas");
  const AnalysisReport report = analyze(*program);
  ASSERT_EQ(report.objects.size(), 1u);
  EXPECT_TRUE(report.objects[0].immune);
  EXPECT_FALSE(report.objects[0].values_top);
  // V(O_0) under overriding closure is {⊥, 1}: every reachable CAS is
  // CAS(O_0, ⊥, 1), which pins expected to ⊥ and desired to 1.
  ASSERT_EQ(report.objects[0].values.size(), 2u);
  EXPECT_EQ(report.objects[0].values[0], std::uint64_t{1});
  EXPECT_EQ(report.objects[0].values[1], proto::kBottomWord);
  EXPECT_EQ(report.immune_objects, std::uint64_t{1});  // bit 0

  const auto facts = proto::analysis::make_facts(report);
  ASSERT_NE(facts, nullptr);
  EXPECT_TRUE(facts->object_immune(0));
  EXPECT_FALSE(facts->object_immune(1));
  EXPECT_EQ(facts->footprints.size(), program->ops().size());
}

TEST(FfcheckRegistry, FPlusOneCountedLoop) {
  // The f+1-object loop is the registry's counted-bound showcase: with
  // branch-guard narrowing the counter's value set at the loop head is
  // {0..k}, so the certificate bounds the loop by k+1 — a bound that is
  // a function of the instance parameters, not of the fault budget.
  const auto program =
      proto::build_program("f-plus-one", proto::Params{{"k", 2}});
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a3, Verdict::kProved);
  ASSERT_EQ(report.loops.size(), 1u);
  EXPECT_EQ(report.loops[0].kind, LoopCertificate::Kind::kCounted);
  EXPECT_EQ(report.loops[0].local, "i");
  EXPECT_EQ(report.loops[0].bound, std::uint64_t{3});
}

TEST(FfcheckRegistry, FactoriesExposeFacts) {
  // Both machine paths (interpreter and ffgen-generated) must hand the
  // SAME analysis facts to the scheduler; generated machines also report
  // their pending IR site so the static footprints line up.
  const auto generated = proto::machine_factory("tas");
  const auto interpreted = proto::machine_factory_interpreted("tas");
  const auto gf = generated->facts();
  const auto pf = interpreted->facts();
  ASSERT_NE(gf, nullptr);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(gf->immune_objects, pf->immune_objects);
  ASSERT_EQ(gf->footprints.size(), pf->footprints.size());
  const auto machine = generated->make(0, 7);
  EXPECT_NE(machine->pending_site(), sched::kNoSite);
  EXPECT_LT(machine->pending_site(), gf->footprints.size());
}

// ---------------------------------------------------------------------------
// A1 — static footprints
// ---------------------------------------------------------------------------

TEST(FfcheckA1, SingletonIndexIsExact) {
  ProgramBuilder b("a1-exact");
  const auto out = b.local("out", b.input());
  const auto r = b.scratch("r");
  b.emit(out);
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.halt(b.ref(out));
  const AnalysisReport report = analyze(*b.finalize());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.shared_sites, 1u);
  EXPECT_EQ(report.exact_sites, 1u);
  const auto& fp = report.footprints[0];
  EXPECT_EQ(fp.space, sched::StaticFootprint::Space::kObject);
  EXPECT_TRUE(fp.exact);
  EXPECT_TRUE(fp.writes);
  EXPECT_EQ(fp.lo, 0u);
  EXPECT_EQ(fp.hi, 1u);
}

TEST(FfcheckA1, UnknownIndexWidensToBound) {
  ProgramBuilder b("a1-top");
  const auto slot = b.local("slot", b.input());  // runtime-chosen register
  const auto v = b.scratch("v");
  b.emit(slot);
  b.emit(v);
  b.reg_read(v, b.ref(slot), 4);
  b.halt(b.ref(v));
  const AnalysisReport report = analyze(*b.finalize());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.exact_sites, 0u);
  const auto& fp = report.footprints[0];
  EXPECT_EQ(fp.space, sched::StaticFootprint::Space::kRegister);
  EXPECT_FALSE(fp.exact);
  EXPECT_FALSE(fp.writes);
  EXPECT_EQ(fp.lo, 0u);
  EXPECT_EQ(fp.hi, 4u);
}

// ---------------------------------------------------------------------------
// A2 — overriding immunity
// ---------------------------------------------------------------------------

TEST(FfcheckA2, UniformDesiredProvesImmunity) {
  // tas-shaped: the only CAS is CAS(O_0, ⊥, 1).  An overriding fault
  // needs before ∉ {expected, desired}; contents are {⊥, 1} forever.
  ProgramBuilder b("a2-immune");
  const auto r = b.scratch("r");
  b.cas(r, b.cst(0), 1, b.bottom(), b.cst(1));
  b.halt(b.cst(1));
  const AnalysisReport report = analyze(*b.finalize());
  ASSERT_EQ(report.objects.size(), 1u);
  EXPECT_TRUE(report.objects[0].immune);
  EXPECT_EQ(report.immune_objects, std::uint64_t{1});
}

TEST(FfcheckA2, InputDesiredIsNotImmune) {
  // single-cas-shaped: desired is the (unknown) input, so the content
  // set is ⊤ and a fault can always pick a third value.
  ProgramBuilder b("a2-open");
  const auto out = b.local("out", b.input());
  const auto r = b.scratch("r");
  b.emit(out);
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.halt(b.ref(out));
  const AnalysisReport report = analyze(*b.finalize());
  ASSERT_EQ(report.objects.size(), 1u);
  EXPECT_FALSE(report.objects[0].immune);
  EXPECT_TRUE(report.objects[0].values_top);
  EXPECT_EQ(report.immune_objects, std::uint64_t{0});
}

TEST(FfcheckA2, TwoDesiredValuesOnOneObjectAreNotImmune) {
  // Two CASes write different constants to the same object: content ⊥
  // can meet CAS(O_0, 1, 2) with before=⊥ ∉ {1, 2} — a fault manifests.
  ProgramBuilder b("a2-mixed");
  const auto r = b.scratch("r");
  b.cas(r, b.cst(0), 1, b.bottom(), b.cst(1));
  b.cas(r, b.cst(0), 1, b.cst(1), b.cst(2));
  b.halt(b.cst(0));
  const AnalysisReport report = analyze(*b.finalize());
  ASSERT_EQ(report.objects.size(), 1u);
  EXPECT_FALSE(report.objects[0].immune);
  EXPECT_FALSE(report.objects[0].values_top);  // {⊥, 1, 2} — finite
  EXPECT_NE(report.objects[0].reason.find("pc"), std::string::npos);
}

// ---------------------------------------------------------------------------
// A3 — budget-boundedness
// ---------------------------------------------------------------------------

TEST(FfcheckA3, CountedLoopCertificate) {
  ProgramBuilder b("a3-counted");
  const auto i = b.local("i", b.cst(0));
  b.emit(i);
  const auto loop = b.label();
  const auto done = b.label();
  b.bind(loop);
  b.branch(b.ge(b.ref(i), b.cst(3)), done);
  b.reg_write(b.cst(0), 1, b.ref(i));
  b.set(i, b.add(b.ref(i), b.cst(1)));
  b.jump(loop);
  b.bind(done);
  b.halt(b.cst(0));
  const AnalysisReport report = analyze(*b.finalize());
  EXPECT_EQ(report.a3, Verdict::kProved);
  ASSERT_EQ(report.loops.size(), 1u);
  EXPECT_EQ(report.loops[0].kind, LoopCertificate::Kind::kCounted);
  EXPECT_EQ(report.loops[0].local, "i");
  // Head values {0,1,2,3}: three iterations run, the fourth visit exits.
  EXPECT_EQ(report.loops[0].bound, std::uint64_t{4});
}

TEST(FfcheckA3, CasRetryLoopIsFlaggedNotViolated) {
  const auto program = proto::build_program("staged");
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a3, Verdict::kFlagged);
  EXPECT_TRUE(report.ok());  // flags are not violations
  ASSERT_FALSE(report.loops.empty());
  for (const auto& loop : report.loops) {
    EXPECT_EQ(loop.kind, LoopCertificate::Kind::kCasRetry);
  }
}

TEST(FfcheckA3, PauseFreeCycleIsViolated) {
  // finalize(kFull) refuses this program; kSyntaxOnly lets the analyzer
  // demonstrate it REJECTS what the builder would have.
  ProgramBuilder b("a3-spin");
  const auto i = b.local("i", b.cst(0));
  b.emit(i);
  const auto loop = b.label();
  b.bind(loop);
  b.set(i, b.add(b.ref(i), b.cst(1)));
  b.jump(loop);
  b.halt(b.cst(0));
  const auto program = b.finalize(Validate::kSyntaxOnly);
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a3, Verdict::kViolated);
  EXPECT_FALSE(report.ok());
  bool paused_cycle = false;
  for (const auto& cert : report.loops) {
    paused_cycle =
        paused_cycle || cert.kind == LoopCertificate::Kind::kPausedCycle;
  }
  EXPECT_TRUE(paused_cycle);
}

// ---------------------------------------------------------------------------
// A4 — recovery soundness
// ---------------------------------------------------------------------------

TEST(FfcheckA4, RecoverableRegistryProtocolsProve) {
  for (const char* name : {"recoverable-cas", "recoverable-staged"}) {
    const auto program = proto::build_program(name);
    const AnalysisReport report = analyze(*program);
    EXPECT_EQ(report.a4, Verdict::kProved) << name;
    EXPECT_TRUE(report.recovery_witnesses.empty()) << name;
  }
}

TEST(FfcheckA4, VolatileReadAtRecoveryIsViolatedWithWitness) {
  // The recovery entry reads volatile `v` before any re-definition —
  // after a crash wipes it to 0, the decision silently changes.
  // finalize(kFull) rejects this; kSyntaxOnly admits it for analysis.
  ProgramBuilder b("a4-unsound");
  const auto v = b.local("v", b.input());
  const auto p = b.persistent("p", b.cst(0));
  const auto r = b.scratch("r");
  b.emit(v);
  b.emit(p);
  const auto recover = b.label();
  b.bind(recover);
  b.recover_at(recover);
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(v));  // pc 0: reads v
  b.set(p, b.cst(1));
  b.halt(b.ref(v));
  const auto program = b.finalize(Validate::kSyntaxOnly);
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a4, Verdict::kViolated);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.recovery_witnesses.empty());
  EXPECT_EQ(report.recovery_witnesses[0].local, "v");
  EXPECT_EQ(report.recovery_witnesses[0].read_pc, 0u);
  ASSERT_FALSE(report.recovery_witnesses[0].path.empty());
  EXPECT_EQ(report.recovery_witnesses[0].path.front(),
            program->recovery_pc());
}

// ---------------------------------------------------------------------------
// A5 — dead code and encode() coverage
// ---------------------------------------------------------------------------

TEST(FfcheckA5, UnreachableOpIsViolated) {
  ProgramBuilder b("a5-dead");
  const auto out = b.local("out", b.input());
  b.emit(out);
  const auto end = b.label();
  b.jump(end);
  b.set(out, b.cst(42));  // pc 1: jumped over, dead
  b.bind(end);
  b.halt(b.ref(out));
  const auto program = b.finalize(Validate::kSyntaxOnly);
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a5, Verdict::kViolated);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.unreachable_pcs.size(), 1u);
  EXPECT_EQ(report.unreachable_pcs[0], 1u);
}

// The satellite regression: perturb a protocol's encode() layout in a
// test-local copy of the single-cas builder (drop `out` from emit())
// and assert the analyzer rejects it with a certificate naming the
// EXACT op whose pause the un-encoded live local corrupts.
TEST(FfcheckA5, LayoutPerturbationNamesTheExactOp) {
  ProgramBuilder b("single-cas-perturbed");
  const auto dn = b.local("dn", b.cst(0));
  const auto out = b.local("out", b.input());
  const auto r = b.scratch("r");
  b.emit(dn);
  // PERTURBATION: b.emit(out) is omitted — `out` is live across the CAS
  // pause at pc 0 (its value feeds the decision), so two states that
  // differ only in `out` would encode identically and the memoized
  // census would merge them.
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.set(out, b.select(b.is_bottom(b.ref(r)), b.ref(out), b.ref(r)));
  b.set(dn, b.cst(1));
  b.halt(b.ref(out));
  const auto program = b.finalize(Validate::kSyntaxOnly);
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a5, Verdict::kViolated);
  EXPECT_FALSE(report.ok());
  // Every pause where `out` is live is flagged (the halt/encode site
  // too); the FIRST certificate names the CAS whose memoization the
  // perturbation would corrupt, with the exact op and local.
  ASSERT_FALSE(report.coverage_violations.empty());
  EXPECT_EQ(report.coverage_violations[0].pc, 0u);   // the CAS pause
  EXPECT_EQ(report.coverage_violations[0].op, "cas");
  EXPECT_EQ(report.coverage_violations[0].local, "out");
  for (const auto& cv : report.coverage_violations) {
    EXPECT_EQ(cv.local, "out");  // only the dropped local is implicated
  }
}

TEST(FfcheckA5, UnusedLayoutLocalIsInformationalOnly) {
  const auto program = proto::build_program("single-cas");
  const AnalysisReport report = analyze(*program);
  EXPECT_EQ(report.a5, Verdict::kProved);
  ASSERT_EQ(report.unused_layout_locals.size(), 1u);
  EXPECT_EQ(report.unused_layout_locals[0], "dn");
}

// ---------------------------------------------------------------------------
// A2 pruning differential — census equality, both explorers
// ---------------------------------------------------------------------------

struct Census {
  std::uint64_t states = 0;
  std::uint64_t terminals = 0;
  std::uint64_t violations = 0;
  std::set<std::uint64_t> agreed;
  std::uint64_t skips = 0;

  [[nodiscard]] bool operator==(const Census& o) const {
    return states == o.states && terminals == o.terminals &&
           violations == o.violations && agreed == o.agreed;
  }
};

Census run_census(const sched::MachineFactory& factory,
                  model::FaultKind kind, std::uint32_t crash_budget,
                  bool pruning, bool parallel) {
  SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = kind;
  config.t = 1;
  config.crash_budget = crash_budget;
  config.use_immunity_pruning = pruning;
  const SimWorld world(config, factory, {1, 2});
  // Census comparison needs the FULL state space — several grid points
  // do violate (that is the paper's point), so never stop at the first.
  sched::ExploreOptions opts;
  opts.stop_at_first_violation = false;
  sched::ExploreResult result;
  if (parallel) {
    sched::ParallelExploreOptions options;
    options.explore = opts;
    options.num_threads = 2;
    result = sched::parallel_explore(world, options);
  } else {
    result = sched::explore(world, opts);
  }
  EXPECT_TRUE(result.complete);
  return Census{result.states_visited, result.terminal_states,
                result.violations_found, result.agreed_values,
                result.immunity_skips};
}

TEST(FfcheckPruning, CensusIsIdenticalWithAndWithoutPruning) {
  std::uint64_t total_skips = 0;
  for (const auto& info : proto::ProtocolRegistry::instance().all()) {
    if (!info.simulable) continue;
    const auto factory = proto::machine_factory(info.name);
    const bool recoverable = proto::build_program(info.name)->has_recovery();
    for (const model::FaultKind kind :
         {model::FaultKind::kNone, model::FaultKind::kOverriding,
          model::FaultKind::kSilent}) {
      for (const std::uint32_t crash_budget :
           recoverable ? std::vector<std::uint32_t>{0, 1}
                       : std::vector<std::uint32_t>{0}) {
        for (const bool parallel : {false, true}) {
          const Census pruned =
              run_census(*factory, kind, crash_budget, true, parallel);
          const Census brute =
              run_census(*factory, kind, crash_budget, false, parallel);
          EXPECT_TRUE(pruned == brute)
              << info.name << " kind=" << static_cast<int>(kind)
              << " crash=" << crash_budget << " parallel=" << parallel;
          // Brute force never consults the immune mask.
          EXPECT_EQ(brute.skips, 0u) << info.name;
          // Pruning is only ever consulted under kOverriding.
          if (kind != model::FaultKind::kOverriding) {
            EXPECT_EQ(pruned.skips, 0u) << info.name;
          }
          total_skips += pruned.skips;
        }
      }
    }
  }
  // The proof must fire somewhere (tas is immune): a differential where
  // the pruned side never skips only proves the flag plumbing, not the
  // analyzer.
  EXPECT_GT(total_skips, 0u);
}

TEST(FfcheckPruning, TasSkipsOverridingBranches) {
  const auto factory = proto::machine_factory("tas");
  const Census pruned = run_census(*factory, model::FaultKind::kOverriding,
                                   0, true, false);
  const Census brute = run_census(*factory, model::FaultKind::kOverriding,
                                  0, false, false);
  EXPECT_TRUE(pruned == brute);
  EXPECT_GT(pruned.skips, 0u);
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(FfcheckReport, JsonIsDeterministicAndShaped) {
  const auto program = proto::build_program("tas");
  const auto render = [&] {
    util::JsonWriter w;
    proto::analysis::render_json(analyze(*program), w);
    return std::string(w.str());
  };
  const std::string first = render();
  EXPECT_EQ(first, render());  // seed/iteration-order independent
  for (const char* needle :
       {"\"program\":\"tas\"", "\"ok\":true", "\"a1\":", "\"a2\":",
        "\"a3\":", "\"a4\":", "\"a5\":", "\"immune_mask\":1",
        "\"verdict\":\"proved\"", "\"footprints\":"}) {
    EXPECT_NE(first.find(needle), std::string::npos) << needle;
  }
}

TEST(FfcheckReport, HumanReportCarriesCertificates) {
  const auto tas = proto::analysis::render_human(
      analyze(*proto::build_program("tas")));
  EXPECT_NE(tas.find("overriding-immune"), std::string::npos);
  EXPECT_NE(tas.find("object 0: immune"), std::string::npos);
  const auto fp1 = proto::analysis::render_human(
      analyze(*proto::build_program("f-plus-one")));
  EXPECT_NE(fp1.find("counted"), std::string::npos);
  EXPECT_NE(fp1.find("`i`"), std::string::npos);
}

}  // namespace
}  // namespace ff
