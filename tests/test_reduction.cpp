// Soundness tests for the PR-4 state-space reductions (sched/reduce.hpp):
// symmetry reduction and sleep-set POR, across both explorers.
//
// The contracts under test (DESIGN.md §3d):
//   * Sleep sets prune TRANSITIONS, never states: a por-only pass visits
//     exactly the unreduced census — states, terminals, per-kind terminal
//     violations, agreed values.
//   * Symmetry reduction visits one representative per orbit: the census
//     shrinks (never grows), but every orbit-INVARIANT quantity — agreed
//     values, presence of each violation class, nontermination verdict,
//     completeness — is preserved exactly.
//   * Every witness a reduced run reports is a REAL schedule of the
//     unreduced world: it strict-replays from the initial state.
//   * The canonical representative is unique per orbit: permuting which
//     process holds which role never changes canonical_words.
//   * normalize_trace canonicalizes commuting adjacent steps without
//     changing the final state, and is idempotent.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "legacy/machines.hpp"
#include "explore_diff.hpp"
#include "faults/bank.hpp"
#include "sched/explore_common.hpp"
#include "sched/explorer.hpp"
#include "sched/fuzzer.hpp"
#include "sched/parallel_explorer.hpp"
#include "sched/reduce.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {
namespace {

using testutil::differential_grid;
using testutil::expect_witness_reproduces;
using testutil::full_space_options;
using testutil::GridCase;
using testutil::make_world;

ExploreOptions with_reductions(const ExploreOptions& base, bool sym,
                               bool por) {
  ExploreOptions options = base;
  options.symmetry_reduction = sym;
  options.sleep_sets = por;
  return options;
}

// --- Full-grid differential census: sequential explorer -------------------

TEST(ReductionSoundness, SleepSetsPreserveExactCensus) {
  for (const GridCase& gc : differential_grid()) {
    const SimWorld world = make_world(gc);
    const ExploreOptions base = full_space_options(gc);
    const auto oracle = explore(world, with_reductions(base, false, false));
    const auto por = explore(world, with_reductions(base, false, true));

    EXPECT_EQ(oracle.complete, por.complete) << gc.name;
    EXPECT_EQ(oracle.states_visited, por.states_visited) << gc.name;
    EXPECT_EQ(oracle.terminal_states, por.terminal_states) << gc.name;
    EXPECT_EQ(oracle.agreed_values, por.agreed_values) << gc.name;
    for (const ViolationKind kind :
         {ViolationKind::kInconsistent, ViolationKind::kInvalid,
          ViolationKind::kStalled}) {
      EXPECT_EQ(oracle.violations_of(kind), por.violations_of(kind))
          << gc.name << " kind=" << to_string(kind);
    }
    EXPECT_EQ(oracle.violations_of(ViolationKind::kNontermination) > 0,
              por.violations_of(ViolationKind::kNontermination) > 0)
        << gc.name;
    if (por.violation) {
      expect_witness_reproduces(world, *por.violation, gc.name + "/por");
    }
  }
}

TEST(ReductionSoundness, SymmetryPreservesOrbitInvariants) {
  for (const GridCase& gc : differential_grid()) {
    const SimWorld world = make_world(gc);
    const ExploreOptions base = full_space_options(gc);
    const auto oracle = explore(world, with_reductions(base, false, false));
    for (const bool por : {false, true}) {
      const auto reduced = explore(world, with_reductions(base, true, por));
      const std::string label =
          gc.name + (por ? "/sym+por" : "/sym");

      EXPECT_EQ(oracle.complete, reduced.complete) << label;
      EXPECT_LE(reduced.states_visited, oracle.states_visited) << label;
      EXPECT_LE(reduced.terminal_states, oracle.terminal_states) << label;
      EXPECT_EQ(oracle.agreed_values, reduced.agreed_values) << label;
      for (const ViolationKind kind :
           {ViolationKind::kInconsistent, ViolationKind::kInvalid,
            ViolationKind::kStalled, ViolationKind::kNontermination}) {
        EXPECT_EQ(oracle.violations_of(kind) > 0,
                  reduced.violations_of(kind) > 0)
            << label << " kind=" << to_string(kind);
      }
      if (reduced.violation) {
        expect_witness_reproduces(world, *reduced.violation, label);
      }
    }
  }
}

// --- Full-grid differential census: parallel explorer ---------------------

TEST(ReductionSoundness, ParallelReducedMatchesSequentialReduced) {
  for (const GridCase& gc : differential_grid()) {
    const SimWorld world = make_world(gc);
    const ExploreOptions base = full_space_options(gc);
    const auto seq = explore(world, with_reductions(base, true, true));

    ParallelExploreOptions popts;
    popts.explore = with_reductions(base, true, true);
    popts.num_threads = 2;
    const auto par = parallel_explore(world, popts);
    const std::string label = gc.name + "/parallel-reduced";

    EXPECT_EQ(seq.complete, par.complete) << label;
    EXPECT_EQ(seq.states_visited, par.states_visited) << label;
    EXPECT_EQ(seq.terminal_states, par.terminal_states) << label;
    EXPECT_EQ(seq.agreed_values, par.agreed_values) << label;
    for (const ViolationKind kind :
         {ViolationKind::kInconsistent, ViolationKind::kInvalid,
          ViolationKind::kStalled}) {
      EXPECT_EQ(seq.violations_of(kind), par.violations_of(kind))
          << label << " kind=" << to_string(kind);
    }
    EXPECT_EQ(seq.violations_of(ViolationKind::kNontermination) > 0,
              par.violations_of(ViolationKind::kNontermination) > 0)
        << label;
    if (par.violation) {
      expect_witness_reproduces(world, *par.violation, label);
    }
  }
}

// --- Orbit-representative uniqueness ---------------------------------------

SimWorld staged_world(std::vector<std::uint64_t> inputs) {
  const consensus::StagedFactory factory(1, 1);
  SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 1;
  return SimWorld(config, factory, std::move(inputs));
}

std::vector<std::uint64_t> canonical_of(const SimWorld& world) {
  StateEncoder encoder;
  EncodedState e;
  encoder.encode(world, e);
  return canonical_words(e);
}

TEST(OrbitCanonicalization, RepresentativeUniquePerOrbit) {
  // Every permutation of the same input multiset is the same orbit and
  // must canonicalize to the same representative words.
  std::vector<std::uint64_t> inputs{1, 2, 3};
  std::sort(inputs.begin(), inputs.end());
  const auto reference = canonical_of(staged_world(inputs));
  std::set<std::vector<std::uint64_t>> raw_encodes;
  do {
    const SimWorld world = staged_world(inputs);
    EXPECT_EQ(canonical_of(world), reference);
    raw_encodes.insert(world.encode());
  } while (std::next_permutation(inputs.begin(), inputs.end()));
  // ...while the raw encodings really were distinct (the collapse is the
  // canonicalization's doing, not a degenerate encoding).
  EXPECT_GT(raw_encodes.size(), 1u);
}

TEST(OrbitCanonicalization, EquivariantUnderPermutedSchedules) {
  // π·(w after s) == (π·w) after π(s): running the permuted schedule on
  // the permuted world lands in the same orbit at every prefix.
  const SimWorld w_id = staged_world({5, 7});
  const SimWorld w_sw = staged_world({7, 5});
  const std::vector<std::uint32_t> pi{1, 0};

  SimWorld a = w_id;
  SimWorld b = w_sw;
  const std::vector<Choice> schedule{{0, false, 0}, {1, false, 0},
                                     {0, true, 0}, {1, false, 0}};
  const std::vector<Choice> permuted = permute_pids(schedule, pi);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    a.apply(schedule[i]);
    b.apply(permuted[i]);
    StateEncoder encoder;
    EncodedState ea;
    EncodedState eb;
    encoder.encode(a, ea);
    encoder.encode(b, eb);
    EXPECT_EQ(canonical_words(ea), canonical_words(eb)) << "prefix " << i;
    EXPECT_EQ(fingerprint_state(ea, true), fingerprint_state(eb, true))
        << "prefix " << i;
  }
}

// --- Commutation / trace normalization -------------------------------------

SimWorld announce_world(std::uint32_t n) {
  const consensus::AnnounceCasFactory factory(n);
  SimConfig config;
  config.num_objects = factory.objects_used();
  config.num_registers = factory.registers_used();
  config.kind = model::FaultKind::kOverriding;
  config.t = 1;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 1);
  return SimWorld(config, factory, inputs);
}

TEST(NormalizeTrace, CommutingOrdersNormalizeIdentically) {
  // The announce phase writes per-process registers: p0's and p1's first
  // steps touch different registers and commute.  Both interleavings must
  // normalize to the same trace with the same final state.
  const SimWorld world = announce_world(2);
  const std::vector<Choice> ab{{0, false, 0}, {1, false, 0}};
  const std::vector<Choice> ba{{1, false, 0}, {0, false, 0}};

  const auto norm_ab = normalize_trace(world, ab);
  const auto norm_ba = normalize_trace(world, ba);
  EXPECT_EQ(norm_ab, norm_ba);
  EXPECT_EQ(replay(world, ab).encode(), replay(world, norm_ab).encode());
  EXPECT_EQ(replay(world, ba).encode(), replay(world, norm_ba).encode());
}

TEST(NormalizeTrace, PreservesFinalStateAndIsIdempotent) {
  // Deterministic pseudo-random walks: normalization must never change
  // where a schedule lands, and a normalized schedule is a fixed point.
  const SimWorld initial = announce_world(3);
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    SimWorld world = initial;
    std::vector<Choice> schedule;
    std::uint64_t x = 0x9E3779B97F4A7C15ULL * (salt + 1);
    while (!world.terminal()) {
      const auto choices = world.enabled();
      x = util::mix64(x);
      const Choice c = choices[x % choices.size()];
      schedule.push_back(c);
      world.apply(c);
    }
    const auto normalized = normalize_trace(initial, schedule);
    EXPECT_EQ(replay(initial, schedule).encode(),
              replay(initial, normalized).encode())
        << "salt " << salt;
    EXPECT_EQ(normalize_trace(initial, normalized), normalized)
        << "salt " << salt;
  }
}

// --- Fuzzer symmetry toggle -------------------------------------------------

TEST(FuzzerSymmetry, FindsViolationWithAndWithoutCanonicalNovelty) {
  // staged f=1 t=1 at n=3 is faulty; the canonical-coverage novelty
  // signal must not change whether the fuzzer can surface a witness.
  const consensus::StagedFactory factory(1, 1);
  SimConfig config;
  config.num_objects = 1;
  config.kind = model::FaultKind::kOverriding;
  config.t = 1;
  const SimWorld world(config, factory, {1, 2, 3});
  ASSERT_TRUE(world.processes_symmetric());

  for (const bool sym : {false, true}) {
    FuzzOptions options;
    options.seed = 7;
    options.budget.max_units = 2'000'000;
    options.symmetry_reduction = sym;
    const auto result = fuzz(world, options);
    ASSERT_TRUE(result.violation.has_value()) << "sym=" << sym;
    expect_witness_reproduces(world, *result.violation,
                              sym ? "fuzz/sym" : "fuzz/exact");
  }
}

// --- Fault-bank usage profiles ----------------------------------------------

TEST(FaultBankProfile, DynamicDesignationIsSlotAnonymous) {
  // With dynamic designation, which object joins the faulty set is an
  // arrival-order artifact: permuted consumption histories must yield
  // equal sorted profiles.
  faults::FaultyCasBank::Options options;
  options.objects = 3;
  options.f = 2;
  options.t = 3;

  faults::FaultyCasBank a(options);
  ASSERT_TRUE(a.budget()->try_consume(0));
  ASSERT_TRUE(a.budget()->try_consume(0));
  ASSERT_TRUE(a.budget()->try_consume(2));

  faults::FaultyCasBank b(options);
  ASSERT_TRUE(b.budget()->try_consume(1));
  ASSERT_TRUE(b.budget()->try_consume(1));
  ASSERT_TRUE(b.budget()->try_consume(0));

  EXPECT_EQ(a.usage_profile(), b.usage_profile());

  // A genuinely different usage multiset must be distinguishable.
  faults::FaultyCasBank c(options);
  ASSERT_TRUE(c.budget()->try_consume(1));
  EXPECT_NE(a.usage_profile(), c.usage_profile());
}

TEST(FaultBankProfile, ClampsAtBudgetAndSurvivesReset) {
  faults::FaultyCasBank::Options options;
  options.objects = 2;
  options.f = 1;
  options.t = 1;
  faults::FaultyCasBank bank(options);
  ASSERT_TRUE(bank.budget()->try_consume(0));
  EXPECT_FALSE(bank.budget()->try_consume(0));  // t exhausted
  const auto used = bank.usage_profile();
  EXPECT_EQ(used.back(), (std::uint64_t{1} << 32) | 1u);
  bank.reset();
  const auto fresh = bank.usage_profile();
  EXPECT_EQ(fresh, std::vector<std::uint64_t>(2, 0));
}

}  // namespace
}  // namespace ff::sched
