// Simulator-layer tests: SimWorld mechanics, machine encodings, solo-run
// equivalence between the machine and thread implementations, and explorer
// basics on tiny configurations.
#include <gtest/gtest.h>

#include <memory>

#include "legacy/f_plus_one.hpp"
#include "legacy/machines.hpp"
#include "legacy/retry_silent.hpp"
#include "legacy/single_cas.hpp"
#include "legacy/staged.hpp"
#include "faults/faulty_cas.hpp"
#include "objects/atomic_cas.hpp"
#include "sched/explorer.hpp"
#include "sched/random_walk.hpp"
#include "sched/sim_world.hpp"

namespace ff {
namespace {

using consensus::FPlusOneFactory;
using consensus::RetrySilentFactory;
using consensus::SingleCasFactory;
using consensus::StagedFactory;
using model::FaultKind;
using model::Value;
using sched::Choice;
using sched::SimConfig;
using sched::SimWorld;

SimConfig overriding_config(std::uint32_t objects, std::uint32_t t) {
  SimConfig config;
  config.num_objects = objects;
  config.kind = FaultKind::kOverriding;
  config.t = t;
  return config;
}

// --- SimWorld mechanics -----------------------------------------------------

TEST(SimWorld, SoloHerlihyRunDecidesOwnInput) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 0), factory, {41});
  ASSERT_FALSE(world.terminal());
  const auto choices = world.enabled();
  ASSERT_EQ(choices.size(), 1u);  // t=0: no fault branch
  world.apply(choices[0]);
  EXPECT_TRUE(world.terminal());
  EXPECT_EQ(world.decisions()[0], 41u);
  EXPECT_EQ(world.object_value(0), Value::of(41));
}

TEST(SimWorld, FaultBranchOnlyWhenItWouldManifest) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, model::kUnbounded), factory, {1, 2});
  // Initially both processes CAS(⊥, v): comparison succeeds, so an
  // overriding fault would not manifest — no fault branches.
  for (const Choice& c : world.enabled()) EXPECT_FALSE(c.fault);
  world.apply({0, false, 0});  // p0 writes 1
  // Now p1's CAS(⊥,2) would fail: the overriding fault manifests.
  const auto choices = world.enabled();
  ASSERT_EQ(choices.size(), 2u);
  EXPECT_FALSE(choices[0].fault);
  EXPECT_TRUE(choices[1].fault);
}

TEST(SimWorld, OverridingFaultWritesAndReturnsTruth) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 1), factory, {1, 2});
  world.apply({0, false, 0});
  world.apply({1, true, 0});  // p1's CAS overrides
  EXPECT_EQ(world.object_value(0), Value::of(2));
  EXPECT_EQ(world.faults_used(0), 1u);
  // p1 saw old=1 ≠ ⊥ and adopted it.
  EXPECT_EQ(world.decisions()[1], 1u);
}

TEST(SimWorld, BudgetStopsFaultBranches) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 1), factory, {1, 2, 3});
  world.apply({0, false, 0});
  world.apply({1, true, 0});  // consumes the only fault
  const auto choices = world.enabled();
  for (const Choice& c : choices) EXPECT_FALSE(c.fault);
}

TEST(SimWorld, FaultingProcessRestriction) {
  SimConfig config = overriding_config(1, model::kUnbounded);
  config.faulting_processes = {1};
  SingleCasFactory factory;
  SimWorld world(config, factory, {1, 2, 3});
  world.apply({0, false, 0});
  // Only p1's steps may fault.
  for (const Choice& c : world.enabled()) {
    if (c.fault) {
      EXPECT_EQ(c.pid, 1u);
    }
  }
}

TEST(SimWorld, FaultyMaskRestrictsObjects) {
  SimConfig config = overriding_config(2, model::kUnbounded);
  config.faulty = {false, true};
  FPlusOneFactory factory(2);
  SimWorld world(config, factory, {1, 2});
  world.apply({0, false, 0});  // p0 writes O_0 = 1
  // p1 now CASes O_0 (not faulty): no fault branch despite mismatch.
  for (const Choice& c : world.enabled()) EXPECT_FALSE(c.fault);
}

TEST(SimWorld, CopyIsIndependent) {
  SingleCasFactory factory;
  SimWorld a(overriding_config(1, 1), factory, {1, 2});
  SimWorld b = a;
  a.apply({0, false, 0});
  EXPECT_TRUE(a.object_value(0) == Value::of(1));
  EXPECT_TRUE(b.object_value(0).is_bottom());
  EXPECT_FALSE(b.terminal());
}

TEST(SimWorld, EncodeDistinguishesStates) {
  SingleCasFactory factory;
  SimWorld a(overriding_config(1, 1), factory, {1, 2});
  SimWorld b = a;
  EXPECT_EQ(a.encode(), b.encode());
  a.apply({0, false, 0});
  EXPECT_NE(a.encode(), b.encode());
  b.apply({0, false, 0});
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(SimWorld, NonresponsiveKillsProcess) {
  SimConfig config = overriding_config(1, 1);
  config.kind = FaultKind::kNonresponsive;
  SingleCasFactory factory;
  SimWorld world(config, factory, {1, 2});
  world.apply({0, true, 0});  // p0's CAS never returns
  EXPECT_TRUE(world.killed(0));
  EXPECT_FALSE(world.terminal());
  world.apply({1, false, 0});
  EXPECT_TRUE(world.terminal());
  EXPECT_TRUE(world.any_killed());
  EXPECT_FALSE(world.decisions()[0].has_value());
  EXPECT_EQ(world.decisions()[1], 2u);
}

TEST(SimWorld, SilentFaultBranchesOnlyOnMatch) {
  SimConfig config = overriding_config(1, model::kUnbounded);
  config.kind = FaultKind::kSilent;
  SingleCasFactory factory;
  SimWorld world(config, factory, {1, 2});
  // Content ⊥ matches expected ⊥: silent fault manifests.
  bool has_fault = false;
  for (const Choice& c : world.enabled()) has_fault |= c.fault;
  EXPECT_TRUE(has_fault);
  world.apply({0, true, 0});  // silent: p0 believes it wrote
  EXPECT_TRUE(world.object_value(0).is_bottom());
  EXPECT_EQ(world.decisions()[0], 1u);  // p0 decided its own value
}

// --- solo-run equivalence: machine vs thread implementation ---------------

TEST(Equivalence, SingleCasSolo) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 0), factory, {9});
  while (!world.terminal()) world.apply({0, false, 0});

  objects::AtomicCas object(0);
  consensus::SingleCasConsensus protocol(object);
  const auto decision = protocol.decide(9, 0);
  EXPECT_EQ(world.decisions()[0], decision.value);
  EXPECT_EQ(world.total_steps(), decision.cas_steps);
}

TEST(Equivalence, FPlusOneSolo) {
  constexpr std::uint32_t kObjects = 4;
  FPlusOneFactory factory(kObjects);
  SimWorld world(overriding_config(kObjects, 0), factory, {9});
  while (!world.terminal()) world.apply({0, false, 0});

  std::vector<std::unique_ptr<objects::AtomicCas>> bank;
  std::vector<objects::CasObject*> raw;
  for (std::uint32_t i = 0; i < kObjects; ++i) {
    bank.push_back(std::make_unique<objects::AtomicCas>(i));
    raw.push_back(bank.back().get());
  }
  consensus::FPlusOneConsensus protocol(raw);
  const auto decision = protocol.decide(9, 0);
  EXPECT_EQ(world.decisions()[0], decision.value);
  EXPECT_EQ(world.total_steps(), decision.cas_steps);
}

TEST(Equivalence, StagedSoloStepForStep) {
  for (const auto& [f, t] : {std::pair{1u, 1u}, {2u, 1u}, {2u, 2u}, {3u, 1u}}) {
    StagedFactory factory(f, t);
    SimWorld world(overriding_config(f, 0), factory, {5});
    std::uint64_t guard = 0;
    while (!world.terminal()) {
      world.apply({0, false, 0});
      ASSERT_LT(++guard, 1000000u);
    }

    std::vector<std::unique_ptr<objects::AtomicCas>> bank;
    std::vector<objects::CasObject*> raw;
    for (std::uint32_t i = 0; i < f; ++i) {
      bank.push_back(std::make_unique<objects::AtomicCas>(i));
      raw.push_back(bank.back().get());
    }
    consensus::StagedConsensus protocol(raw, t);
    const auto decision = protocol.decide(5, 0);
    EXPECT_TRUE(decision.decided);
    EXPECT_EQ(world.decisions()[0], decision.value) << "f=" << f << " t=" << t;
    EXPECT_EQ(world.total_steps(), decision.cas_steps)
        << "f=" << f << " t=" << t;
  }
}

TEST(Equivalence, RetrySilentSolo) {
  RetrySilentFactory factory;
  SimConfig config = overriding_config(1, 0);
  config.kind = FaultKind::kSilent;
  SimWorld world(config, factory, {3});
  while (!world.terminal()) world.apply({0, false, 0});

  objects::AtomicCas object(0);
  consensus::RetrySilentConsensus protocol(object);
  const auto decision = protocol.decide(3, 0);
  EXPECT_EQ(world.decisions()[0], decision.value);
  EXPECT_EQ(world.total_steps(), decision.cas_steps);
}

// --- explorer basics --------------------------------------------------------

TEST(Explorer, FaultFreeHerlihyTwoProcs) {
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 0), factory, {1, 2});
  const auto result = sched::explore(world);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  // Two schedules, two winners.
  EXPECT_EQ(result.agreed_values.size(), 2u);
}

TEST(Explorer, FaultFreeHerlihyManyProcs) {
  SingleCasFactory factory;
  for (std::uint32_t n = 2; n <= 5; ++n) {
    std::vector<std::uint64_t> inputs;
    for (std::uint32_t i = 0; i < n; ++i) inputs.push_back(i + 1);
    SimWorld world(overriding_config(1, 0), factory, inputs);
    const auto result = sched::explore(world);
    EXPECT_TRUE(result.complete) << "n=" << n;
    EXPECT_FALSE(result.violation.has_value()) << "n=" << n;
    EXPECT_EQ(result.agreed_values.size(), n) << "n=" << n;
  }
}

TEST(Explorer, ReplayReproducesViolation) {
  // Herlihy with one overriding fault and three processes disagrees; the
  // witness schedule must replay to an inconsistent terminal state.
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 1), factory, {1, 2, 3});
  const auto result = sched::explore(world);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, sched::ViolationKind::kInconsistent);

  const SimWorld replayed = sched::replay(world, result.violation->schedule);
  EXPECT_TRUE(replayed.terminal());
  const auto decisions = replayed.decisions();
  std::set<std::uint64_t> distinct;
  for (const auto& d : decisions) {
    ASSERT_TRUE(d.has_value());
    distinct.insert(*d);
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Explorer, CountsTerminalStatesOnToyConfig) {
  // n=1: a solo run has exactly one schedule and one terminal state.
  SingleCasFactory factory;
  SimWorld world(overriding_config(1, 0), factory, {7});
  const auto result = sched::explore(world);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.terminal_states, 1u);
  EXPECT_EQ(result.states_visited, 2u);  // initial + decided
}

TEST(Explorer, StateCapAborts) {
  StagedFactory factory(2, 2);
  SimWorld world(overriding_config(2, 2), factory, {1, 2, 3});
  sched::ExploreOptions options;
  options.max_states = 100;
  const auto result = sched::explore(world, options);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.states_visited, 102u);
}

TEST(RandomWalk, TerminatesAndAgreesOnFaultFreeRun) {
  FPlusOneFactory factory(3);
  SimWorld world(overriding_config(3, 0), factory, {1, 2, 3});
  const auto outcome = sched::random_walk(world, {.seed = 1});
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.agreed.has_value());
  EXPECT_EQ(outcome.steps, 9u);  // 3 processes × 3 objects
}

TEST(RandomWalk, DeterministicInSeed) {
  FPlusOneFactory factory(2);
  SimWorld world(overriding_config(2, model::kUnbounded), factory, {1, 2, 3});
  const auto a = sched::random_walk(world, {.seed = 99, .fault_bias = 0.7});
  const auto b = sched::random_walk(world, {.seed = 99, .fault_bias = 0.7});
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.agreed, b.agreed);
  EXPECT_EQ(a.consistent, b.consistent);
}

TEST(RandomWalkCampaign, AggregatesOutcomes) {
  FPlusOneFactory factory(2);  // f+1 = 2 objects, 1 faulty: always correct
  SimConfig config = overriding_config(2, model::kUnbounded);
  config.faulty = {true, false};
  SimWorld world(config, factory, {1, 2, 3});
  const auto report = sched::run_walk_campaign(world, 50, {.seed = 5});
  EXPECT_EQ(report.walks, 50u);
  EXPECT_TRUE(report.all_ok());
}

}  // namespace
}  // namespace ff
