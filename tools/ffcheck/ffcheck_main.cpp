// ffcheck — abstract-interpretation analyzer over the protocol IR.
//
// Usage:
//   ffcheck [--json] [--quiet] [protocol...]
//
// With no protocol arguments, analyzes EVERY ProtocolRegistry entry at
// default parameters — that is what `ctest -L analysis` and check.sh's
// analysis stage run, so a protocol cannot land in the registry without
// discharging its obligations.  Named protocols (canonical names or
// aliases) restrict the run.
//
// Exit status: 0 when every analyzed program's obligations hold (A2's
// unproved immunity and A3's retry loops are flags, not violations),
// 1 when any obligation is violated, 2 on usage errors or unknown
// protocol names.  `--json` emits one machine-readable report envelope
// on stdout (consumed by scripts/ffcheck_summary.py); the human
// certificates go to stdout otherwise.
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "proto/analysis/analysis.hpp"
#include "proto/ir.hpp"
#include "proto/registry.hpp"
#include "util/json.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--json] [--quiet] [protocol...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quiet = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      names.emplace_back(argv[i]);
    }
  }

  const auto& registry = ff::proto::ProtocolRegistry::instance();
  if (names.empty()) {
    for (const auto& info : registry.all()) names.push_back(info.name);
  }

  std::vector<ff::proto::analysis::AnalysisReport> reports;
  reports.reserve(names.size());
  for (const std::string& name : names) {
    const ff::proto::ProtocolInfo* info = registry.find(name);
    if (info == nullptr) {
      std::cerr << "ffcheck: unknown protocol `" << name << "`\n";
      return 2;
    }
    const std::shared_ptr<const ff::proto::Program> program =
        info->build(ff::proto::Params{});
    reports.push_back(ff::proto::analysis::analyze(*program));
  }

  bool all_ok = true;
  std::size_t immune_objects = 0;
  for (const auto& r : reports) {
    all_ok = all_ok && r.ok();
    for (const auto& o : r.objects) immune_objects += o.immune ? 1 : 0;
  }

  if (json) {
    ff::util::JsonWriter w;
    w.begin_object();
    w.key("tool").value("ffcheck");
    w.key("programs").begin_array();
    for (const auto& r : reports) ff::proto::analysis::render_json(r, w);
    w.end_array();
    w.key("ok").value(all_ok);
    w.end_object();
    std::cout << w.str() << '\n';
  } else if (!quiet) {
    for (const auto& r : reports) {
      std::cout << ff::proto::analysis::render_human(r) << '\n';
    }
    std::cout << "ffcheck: " << reports.size() << " program"
              << (reports.size() == 1 ? "" : "s") << " analyzed, "
              << immune_objects << " object"
              << (immune_objects == 1 ? "" : "s")
              << " proved overriding-immune — "
              << (all_ok ? "all obligations hold" : "OBLIGATIONS VIOLATED")
              << '\n';
  }
  return all_ok ? 0 : 1;
}
