#include "tools/fflint/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "tools/fflint/lexer.hpp"
#include "util/json.hpp"

namespace ff::fflint {
namespace {

using std::string_view;

// ---------------------------------------------------------------- scoping

[[nodiscard]] std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  // Match on the src/ suffix so fixture trees mirroring src/ scope the
  // same way as the production tree.
  const std::size_t at = p.rfind("src/");
  return at == std::string::npos ? p : p.substr(at);
}

[[nodiscard]] bool in_dir(string_view path, string_view dir) {
  return path.substr(0, dir.size()) == dir;
}

struct Scope {
  bool r1 = false, r2 = false, r3 = false, r4 = false;
};

[[nodiscard]] Scope scope_for(string_view path) {
  Scope s;
  if (!in_dir(path, "src/")) return s;  // only src/ is governed
  const bool object_layer =
      in_dir(path, "src/objects/") || in_dir(path, "src/faults/");
  s.r1 = !object_layer;
  s.r2 = in_dir(path, "src/consensus/") || in_dir(path, "src/universal/") ||
         in_dir(path, "src/counter/") || in_dir(path, "src/hierarchy/") ||
         in_dir(path, "src/proto/");
  s.r3 = object_layer;
  s.r4 = in_dir(path, "src/sched/") || in_dir(path, "src/runtime/");
  return s;
}

// ------------------------------------------------------------- utilities

[[nodiscard]] std::string lower(string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

[[nodiscard]] string_view trim(string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

struct Ctx {
  const std::vector<Token>& t;
  const Scope& scope;
  std::vector<Finding>& out;
  const std::string& file;

  void report(Rule rule, int line, std::string message, std::string fixit) {
    out.push_back(
        Finding{rule, file, line, std::move(message), std::move(fixit)});
  }
};

// ------------------------------------------------------ directive parsing

struct ParsedDirectives {
  std::vector<Suppression> valid;
  std::vector<Finding> malformed;  ///< R5 findings
};

[[nodiscard]] std::optional<Rule> rule_from_id(string_view id) {
  if (id.size() == 2 && (id[0] == 'R' || id[0] == 'r') && id[1] >= '1' &&
      id[1] <= static_cast<char>('0' + kNumRules)) {
    return static_cast<Rule>(id[1] - '1');
  }
  return std::nullopt;
}

ParsedDirectives parse_directives(const std::vector<Comment>& comments,
                                  const std::string& file) {
  ParsedDirectives out;
  for (const Comment& c : comments) {
    const std::size_t tag = c.text.find("ff-lint:");
    if (tag == std::string::npos) continue;
    string_view rest = string_view(c.text).substr(tag + 8);
    rest = trim(rest);
    const auto fail = [&](std::string why) {
      out.malformed.push_back(Finding{
          Rule::kR5, file, c.line, std::move(why),
          "write `// ff-lint: allow(Rk): <justification of at least " +
              std::to_string(kMinJustification) + " characters>`"});
    };
    if (rest.substr(0, 6) != "allow(") {
      fail("unrecognized ff-lint directive (only `allow(Rk)` exists)");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == string_view::npos) {
      fail("malformed ff-lint directive: missing `)`");
      continue;
    }
    const std::optional<Rule> rule = rule_from_id(trim(rest.substr(6, close - 6)));
    if (!rule) {
      fail("ff-lint allow() names an unknown rule (R1..R5)");
      continue;
    }
    string_view just = trim(rest.substr(close + 1));
    if (!just.empty() && just.front() == ':') just = trim(just.substr(1));
    if (just.size() < kMinJustification) {
      fail(std::string("suppression of ") + rule_id(*rule) +
           " lacks a justification — an unexplained allow() is "
           "indistinguishable from a silenced bug");
      continue;
    }
    out.valid.push_back(
        Suppression{*rule, file, c.line, std::string(just), false});
  }
  return out;
}

// ------------------------------------------------- pass A: R1 + R2 tokens

constexpr string_view kFixR1 =
    "route this state through the traced object layer (objects::/faults::) "
    "or justify with `// ff-lint: allow(R1): ...`";
constexpr string_view kFixR2 =
    "model-checked code must be a pure function of its inputs: derive "
    "randomness from a seeded util::Xoshiro256/mix64 and take time/limits "
    "from caller options";
constexpr string_view kFixR2Crash =
    "crash nondeterminism must flow through a faults::CrashPolicy decision "
    "point (threads: throw faults::CrashError; simulator: the crash "
    "branch), so the explorer can schedule and replay the crash";

const std::unordered_set<string_view>& banned_nondeterminism() {
  static const std::unordered_set<string_view> kSet = {
      "rand",          "srand",        "rand_r",
      "drand48",       "random_device", "mt19937",
      "mt19937_64",    "minstd_rand",  "minstd_rand0",
      "default_random_engine",         "knuth_b",
      "steady_clock",  "system_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "thread_local",
      "getenv",
  };
  return kSet;
}

/// Direct crash-injection primitives: process death the model checker
/// cannot branch on.  The crash–recovery fault model makes a crash an
/// enumerable choice (SimConfig::crash_budget / faults::CrashPolicy);
/// anything that kills or teleports control flow behind the model's back
/// forfeits both replay and the budget accounting.
const std::unordered_set<string_view>& banned_crash_primitives() {
  static const std::unordered_set<string_view> kSet = {
      "abort",      "_exit",          "_Exit",
      "quick_exit", "raise",          "setjmp",
      "sigsetjmp",  "longjmp",        "siglongjmp",
      "terminate",  "pthread_kill",   "pthread_cancel",
  };
  return kSet;
}

void token_pass(Ctx& ctx) {
  const std::vector<Token>& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) continue;
    const bool std_qualified =
        i >= 2 && t[i - 1].is("::") && t[i - 2].is_ident("std");

    if (ctx.scope.r1) {
      if (std_qualified && tok.text.rfind("atomic", 0) == 0) {
        ctx.report(Rule::kR1, tok.line,
                   "raw std::" + tok.text +
                       " outside the object layer — shared state the "
                       "checker cannot trace or schedule",
                   std::string(kFixR1));
      } else if (tok.is("volatile")) {
        ctx.report(Rule::kR1, tok.line,
                   "`volatile` shared state outside the object layer",
                   std::string(kFixR1));
      } else if (tok.is("asm") || tok.is("__asm") || tok.is("__asm__")) {
        ctx.report(Rule::kR1, tok.line,
                   "inline assembly outside the object layer",
                   std::string(kFixR1));
      }
    }

    if (ctx.scope.r2) {
      if (banned_nondeterminism().count(tok.text) != 0) {
        ctx.report(Rule::kR2, tok.line,
                   "nondeterminism source `" + tok.text +
                       "` in model-checked code — the explorer's verdict "
                       "would not replay",
                   std::string(kFixR2));
      } else if (banned_crash_primitives().count(tok.text) != 0) {
        ctx.report(Rule::kR2, tok.line,
                   "direct crash injection `" + tok.text +
                       "` in model-checked code — a crash the explorer "
                       "cannot branch on, budget, or replay",
                   std::string(kFixR2Crash));
      } else if (tok.is("hash") && i + 1 < t.size() && t[i + 1].is("<")) {
        // std::hash<T*> — iteration order / values depend on addresses.
        int depth = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[j].is("<")) ++depth;
          if (t[j].is(">")) {
            if (--depth == 0) break;
          }
          if (t[j].is("*") && depth >= 1) {
            ctx.report(Rule::kR2, tok.line,
                       "address-dependent hashing (hash of a pointer) in "
                       "model-checked code",
                       std::string(kFixR2));
            break;
          }
          if (t[j].is(";") || t[j].is("{")) break;  // not a template arg
        }
      }
    }
  }
}

// ----------------------------------- pass B: block structure, R2/R3 stmts

enum class BlockKind { kNamespace, kType, kStmt, kInit };

struct Block {
  BlockKind kind = BlockKind::kStmt;
  bool lock_from_here = false;
};

/// Classifies the block opened by the `{` at index `i`.
[[nodiscard]] BlockKind classify_block(const std::vector<Token>& t,
                                       std::size_t i,
                                       const std::vector<Block>& stack) {
  if (i == 0) return BlockKind::kStmt;
  const Token& prev = t[i - 1];
  const bool in_stmt =
      !stack.empty() && (stack.back().kind == BlockKind::kStmt ||
                         stack.back().kind == BlockKind::kInit);

  if (prev.is(")")) {
    // Function body, lambda body, or control statement — find the token
    // before the matching `(` to tell control blocks apart (both count
    // as statement context, but the distinction documents intent).
    int depth = 0;
    for (std::size_t j = i - 1; j > 0; --j) {
      if (t[j].is(")")) ++depth;
      if (t[j].is("(") && --depth == 0) {
        return BlockKind::kStmt;
      }
    }
    return BlockKind::kStmt;
  }
  if (prev.is_ident("else") || prev.is_ident("do") || prev.is_ident("try")) {
    return BlockKind::kStmt;
  }
  if (prev.is("}")) return BlockKind::kStmt;  // body after braced init list

  if (in_stmt) {
    // Inside a function: `{` after `=`, `(`, `,`, `return`, an identifier
    // or `>` is a braced initializer; anything else is a nested block.
    if (prev.is("=") || prev.is("(") || prev.is(",") || prev.is("return") ||
        prev.is(">") || prev.kind == TokKind::kIdent) {
      return prev.is_ident("else") ? BlockKind::kStmt : BlockKind::kInit;
    }
    return BlockKind::kStmt;
  }

  // Namespace/type/global scope: scan the declaration head backwards for
  // the introducing keyword.
  if (prev.kind == TokKind::kIdent &&
      (prev.is("const") || prev.is("noexcept") || prev.is("override") ||
       prev.is("final") || prev.is("mutable"))) {
    return BlockKind::kStmt;  // function body after trailing specifiers
  }
  for (std::size_t j = i; j > 0; --j) {
    const Token& back = t[j - 1];
    if (back.is(";") || back.is("{") || back.is("}") || back.is(")")) break;
    if (back.is_ident("namespace")) return BlockKind::kNamespace;
    if (back.is_ident("class") || back.is_ident("struct") ||
        back.is_ident("union") || back.is_ident("enum")) {
      return BlockKind::kType;
    }
  }
  if (prev.kind == TokKind::kString) return BlockKind::kNamespace;  // extern "C"
  if (prev.kind == TokKind::kIdent || prev.is("=") || prev.is(">")) {
    return BlockKind::kInit;  // member/global braced initializer
  }
  return BlockKind::kType;
}

[[nodiscard]] bool is_lock_acquisition(const std::vector<Token>& t,
                                       std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].is("lock_guard") || t[i].is("scoped_lock") ||
        t[i].is("unique_lock") || t[i].is("shared_lock")) {
      return true;
    }
    if (t[i].is("lock") && i > begin &&
        (t[i - 1].is(".") || t[i - 1].is("->")) && i + 1 < end &&
        t[i + 1].is("(")) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool is_lock_release(const std::vector<Token>& t,
                                   std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].is_ident("unlock") && i > begin &&
        (t[i - 1].is(".") || t[i - 1].is("->"))) {
      return true;
    }
  }
  return false;
}

/// Atomic read-modify-write in the same statement: the stamp itself is
/// the linearization point, no lock needed.
[[nodiscard]] bool has_atomic_rmw(const std::vector<Token>& t,
                                  std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].is("fetch_add") || t[i].is("fetch_sub") || t[i].is("exchange") ||
        t[i].is("compare_exchange_strong") ||
        t[i].is("compare_exchange_weak") || t[i].is("store")) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool ident_mentions(const Token& tok, string_view needle) {
  return tok.kind == TokKind::kIdent &&
         lower(tok.text).find(needle) != std::string::npos;
}

/// Index of a seq-stamp or history-record mutation in [begin, end), or
/// npos.  Mutations: `<seq-ish> =`, `<seq-ish>++/--`, `++/--<seq-ish>`,
/// and `<history-ish>.push_back/emplace_back(...)`.
[[nodiscard]] std::size_t find_stamp(const std::vector<Token>& t,
                                     std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) continue;
    if (ident_mentions(tok, "seq")) {
      const bool written =
          (i + 1 < end && (t[i + 1].is("=") || t[i + 1].is("++") ||
                           t[i + 1].is("--") || t[i + 1].is("+="))) ||
          (i > begin && (t[i - 1].is("++") || t[i - 1].is("--")));
      if (written) return i;
    }
    if ((tok.is("push_back") || tok.is("emplace_back")) && i >= begin + 2 &&
        (t[i - 1].is(".") || t[i - 1].is("->"))) {
      const Token& obj = t[i - 2];
      if (ident_mentions(obj, "event") || ident_mentions(obj, "history") ||
          ident_mentions(obj, "trace") || ident_mentions(obj, "log")) {
        return i;
      }
    }
  }
  return std::string::npos;
}

void structured_pass(Ctx& ctx) {
  const std::vector<Token>& t = ctx.t;
  std::vector<Block> stack;
  std::size_t stmt_start = 0;
  int paren = 0;

  const auto lock_active = [&stack]() {
    return std::any_of(stack.begin(), stack.end(),
                       [](const Block& b) { return b.lock_from_here; });
  };

  const auto handle_statement = [&](std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    if (stack.empty() || stack.back().kind != BlockKind::kStmt) return;

    if (is_lock_acquisition(t, begin, end)) {
      stack.back().lock_from_here = true;
    }
    if (is_lock_release(t, begin, end)) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->lock_from_here) {
          it->lock_from_here = false;
          break;
        }
      }
    }

    if (ctx.scope.r2) {
      // Mutable function-local static: survives across invocations, so a
      // step function stops being a pure function of its inputs.
      bool has_static = false, immutable = false;
      for (std::size_t i = begin; i < end; ++i) {
        if (t[i].is_ident("static")) has_static = true;
        if (t[i].is_ident("constexpr") || t[i].is_ident("const") ||
            t[i].is_ident("assert")) {
          immutable = true;
        }
      }
      if (has_static && !immutable) {
        ctx.report(Rule::kR2, t[begin].line,
                   "mutable function-local static in model-checked code — "
                   "hidden state across invocations breaks determinism",
                   std::string(kFixR2));
      }
    }

    if (ctx.scope.r3) {
      const std::size_t stamp = find_stamp(t, begin, end);
      if (stamp != std::string::npos && !lock_active() &&
          !has_atomic_rmw(t, begin, end)) {
        ctx.report(
            Rule::kR3, t[stamp].line,
            "sequence stamp / history record outside the lock or CAS "
            "region — the recorded order can contradict the real "
            "linearization order (the PR 1 traced-CAS bug class)",
            "move this statement inside the lock_guard scope (or combine "
            "it with the atomic RMW) that forms the linearization point");
      }
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.is("(")) ++paren;
    if (tok.is(")") && paren > 0) --paren;
    if (paren > 0) continue;
    if (tok.is("{")) {
      stack.push_back(Block{classify_block(t, i, stack), false});
      stmt_start = i + 1;
    } else if (tok.is("}")) {
      handle_statement(stmt_start, i);  // last statement may lack `;`
      if (!stack.empty()) stack.pop_back();
      stmt_start = i + 1;
    } else if (tok.is(";")) {
      handle_statement(stmt_start, i);
      stmt_start = i + 1;
    }
  }
}

// ----------------------------------------------------- pass C: R4 loops

/// True if the loop header starting at `i` (ident `while` / `for`) is an
/// infinite form: while(true), while(1), for(;;).
[[nodiscard]] bool infinite_header(const std::vector<Token>& t, std::size_t i,
                                   std::size_t& body_begin) {
  if (i + 1 >= t.size() || !t[i + 1].is("(")) return false;
  if (t[i].is_ident("while")) {
    if (i + 3 < t.size() &&
        (t[i + 2].is_ident("true") || t[i + 2].is("1")) && t[i + 3].is(")")) {
      body_begin = i + 4;
      return true;
    }
    return false;
  }
  if (t[i].is_ident("for")) {
    if (i + 4 < t.size() && t[i + 2].is(";") && t[i + 3].is(";") &&
        t[i + 4].is(")")) {
      body_begin = i + 5;
      return true;
    }
  }
  return false;
}

void loop_pass(Ctx& ctx) {
  if (!ctx.scope.r4) return;
  const std::vector<Token>& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        (!t[i].is("while") && !t[i].is("for"))) {
      continue;
    }
    if (i + 1 >= t.size() || !t[i + 1].is("(")) continue;
    std::size_t infinite_body = 0;
    const bool infinite = infinite_header(t, i, infinite_body);

    // Header span: the parenthesized condition after the keyword.
    std::size_t header_end = i + 1;
    int depth = 0;
    for (; header_end < t.size(); ++header_end) {
      if (t[header_end].is("(")) ++depth;
      if (t[header_end].is(")") && --depth == 0) break;
    }
    if (header_end >= t.size()) continue;
    const std::size_t body = infinite ? infinite_body : header_end + 1;

    // Body span: matching braces, or a single statement up to `;`.
    std::size_t end = body;
    if (body < t.size() && t[body].is("{")) {
      depth = 0;
      for (end = body; end < t.size(); ++end) {
        if (t[end].is("{")) ++depth;
        if (t[end].is("}") && --depth == 0) break;
      }
    } else {
      while (end < t.size() && !t[end].is(";")) ++end;
    }

    bool consults_budget = false;
    bool recovery_loop = false;
    for (std::size_t j = i + 1; j < end && j < t.size(); ++j) {
      if (ident_mentions(t[j], "budget") || ident_mentions(t[j], "meter") ||
          t[j].is_ident("expired") || t[j].is_ident("charge")) {
        consults_budget = true;
      }
      if (ident_mentions(t[j], "recover") || ident_mentions(t[j], "restart") ||
          ident_mentions(t[j], "incarnation")) {
        recovery_loop = true;
      }
    }
    if (consults_budget) continue;

    if (infinite) {
      ctx.report(
          Rule::kR4, t[i].line,
          "infinite-form loop never consults a BudgetMeter — an adversarial "
          "schedule or fault placement can hang the campaign instead of "
          "reporting truncation",
          "poll `meter.expired()` / `meter.charge()` each iteration, or "
          "rewrite with an explicit structural bound");
    } else if (recovery_loop) {
      // Crash–recovery loops are the unbounded shape the crash model
      // introduces: without a budget bound in the loop condition or
      // body, a crash-looping process restarts forever instead of
      // exhausting its crash budget and terminating the trial.
      ctx.report(
          Rule::kR4, t[i].line,
          "recovery/restart loop never consults the crash budget — a "
          "crash-looping process would respawn forever instead of "
          "exhausting its budget and letting the trial terminate",
          "bound the loop on the per-process crash budget (e.g. `while "
          "(crashes <= crash_budget)`) or poll a BudgetMeter");
    }
  }
}

// ------------------------------------------------- suppression machinery

void apply_suppressions(FileReport& report, std::vector<Finding> raw) {
  for (Finding& f : raw) {
    bool silenced = false;
    for (Suppression& s : report.suppressions) {
      if (s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line)) {
        s.used = true;
        silenced = true;
        break;
      }
    }
    if (silenced) {
      report.suppressed.push_back(std::move(f));
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  const auto by_line = [](const Finding& a, const Finding& b) {
    return a.line < b.line;
  };
  std::sort(report.findings.begin(), report.findings.end(), by_line);
  std::sort(report.suppressed.begin(), report.suppressed.end(), by_line);
}

}  // namespace

// ---------------------------------------------------------------- public

const char* rule_id(Rule r) {
  static constexpr const char* kIds[kNumRules] = {"R1", "R2", "R3", "R4",
                                                  "R5"};
  return kIds[static_cast<std::size_t>(r)];
}

const char* rule_title(Rule r) {
  static constexpr const char* kTitles[kNumRules] = {
      "raw shared state outside the object layer",
      "nondeterminism in model-checked code",
      "stamp/record outside the linearization point",
      "unbudgeted infinite loop in scheduler/runtime code",
      "suppression without justification",
  };
  return kTitles[static_cast<std::size_t>(r)];
}

std::size_t TreeReport::unsuppressed_total() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.findings.size();
  return n;
}

std::array<std::size_t, kNumRules> TreeReport::counts() const {
  std::array<std::size_t, kNumRules> c{};
  for (const FileReport& f : files) {
    for (const Finding& finding : f.findings) {
      ++c[static_cast<std::size_t>(finding.rule)];
    }
  }
  return c;
}

std::size_t TreeReport::suppression_total() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.suppressions.size();
  return n;
}

FileReport analyze_source(const std::string& virtual_path,
                          const std::string& content) {
  FileReport report;
  report.file = normalize_path(virtual_path);
  const Scope scope = scope_for(report.file);
  const LexResult lexed = lex(content);

  ParsedDirectives directives = parse_directives(lexed.comments, report.file);
  report.suppressions = std::move(directives.valid);

  std::vector<Finding> raw = std::move(directives.malformed);
  Ctx ctx{lexed.tokens, scope, raw, report.file};
  token_pass(ctx);
  structured_pass(ctx);
  loop_pass(ctx);

  apply_suppressions(report, std::move(raw));
  return report;
}

TreeReport analyze_tree(const std::string& root) {
  namespace fs = std::filesystem;
  TreeReport report;
  report.root = root;
  const fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) return report;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    FileReport file =
        analyze_source(fs::relative(p, fs::path(root)).generic_string(),
                       buf.str());
    ++report.files_scanned;
    if (!file.findings.empty() || !file.suppressed.empty() ||
        !file.suppressions.empty()) {
      report.files.push_back(std::move(file));
    }
  }
  return report;
}

std::string render_human(const TreeReport& report) {
  std::ostringstream out;
  for (const FileReport& f : report.files) {
    for (const Finding& finding : f.findings) {
      out << f.file << ':' << finding.line << ": [" << rule_id(finding.rule)
          << "] " << finding.message << '\n'
          << "    fix-it: " << finding.fixit << '\n';
    }
  }
  const auto counts = report.counts();
  out << "ff-lint: scanned " << report.files_scanned << " files — "
      << report.unsuppressed_total() << " unsuppressed finding(s)";
  for (std::size_t r = 0; r < kNumRules; ++r) {
    if (counts[r] != 0) {
      out << "  " << rule_id(static_cast<Rule>(r)) << "=" << counts[r];
    }
  }
  out << '\n';
  if (report.suppression_total() != 0) {
    out << "suppressions in effect (" << report.suppression_total() << "):\n";
    for (const FileReport& f : report.files) {
      for (const Suppression& s : f.suppressions) {
        out << "  " << f.file << ':' << s.line << " allow(" << rule_id(s.rule)
            << ")" << (s.used ? "" : " [unused]") << ": " << s.justification
            << '\n';
      }
    }
  }
  return out.str();
}

std::string render_json(const TreeReport& report) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("tool", "ff-lint");
  w.kv("root", report.root);
  w.kv("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
  w.kv("unsuppressed_total",
       static_cast<std::uint64_t>(report.unsuppressed_total()));
  const auto counts = report.counts();
  w.key("counts").begin_object();
  for (std::size_t r = 0; r < kNumRules; ++r) {
    w.kv(rule_id(static_cast<Rule>(r)),
         static_cast<std::uint64_t>(counts[r]));
  }
  w.end_object();
  w.key("findings").begin_array();
  for (const FileReport& f : report.files) {
    for (const Finding& finding : f.findings) {
      w.begin_object();
      w.kv("file", f.file);
      w.kv("line", static_cast<std::uint64_t>(finding.line));
      w.kv("rule", rule_id(finding.rule));
      w.kv("title", rule_title(finding.rule));
      w.kv("message", finding.message);
      w.kv("fixit", finding.fixit);
      w.end_object();
    }
  }
  w.end_array();
  w.key("suppressions").begin_array();
  for (const FileReport& f : report.files) {
    for (const Suppression& s : f.suppressions) {
      w.begin_object();
      w.kv("file", f.file);
      w.kv("line", static_cast<std::uint64_t>(s.line));
      w.kv("rule", rule_id(s.rule));
      w.kv("justification", s.justification);
      w.kv("used", s.used);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ff::fflint
