// fflint — model-soundness static analyzer for this repository.
//
// Usage:
//   fflint [--root DIR] [--json | --sarif] [--quiet]
//
// Walks <root>/src and enforces rules R1–R5 (see analysis.hpp and
// DESIGN.md §3c).  Exit status: 0 when the tree has zero unsuppressed
// findings, 1 otherwise, 2 on usage errors.  `--json` emits the
// machine-readable report on stdout (consumed by scripts/check.sh's
// summary printer); `--sarif` emits SARIF 2.1.0 for code-scanning UIs;
// the human report goes to stdout otherwise.
#include <cstring>
#include <iostream>
#include <string>

#include "tools/fflint/analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json | --sarif] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  bool sarif = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      sarif = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (json && sarif) return usage(argv[0]);

  const ff::fflint::TreeReport report = ff::fflint::analyze_tree(root);
  if (report.files_scanned == 0) {
    std::cerr << "fflint: no sources found under " << root << "/src\n";
    return 2;
  }
  if (json) {
    std::cout << ff::fflint::render_json(report) << '\n';
  } else if (sarif) {
    std::cout << ff::fflint::render_sarif(report) << '\n';
  } else if (!quiet) {
    std::cout << ff::fflint::render_human(report);
  }
  return report.unsuppressed_total() == 0 ? 0 : 1;
}
