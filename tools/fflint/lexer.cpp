#include "tools/fflint/lexer.hpp"

#include <array>
#include <cctype>

namespace ff::fflint {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Longest-match operator table (order matters only for shared prefixes;
/// scanning tries 3-char, then 2-char, then falls back to 1 char).
constexpr std::array<std::string_view, 10> kOps3 = {
    "<<=", ">>=", "<=>", "...", "->*", "", "", "", "", ""};
constexpr std::array<std::string_view, 19> kOps2 = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|="};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier_or_prefixed_literal();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
      } else if (c == '"') {
        string_literal(/*raw=*/false);
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start_line = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        Comment{start_line, std::string(src_.substr(begin, pos_ - begin))});
  }

  void block_comment() {
    const int start_line = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    out_.comments.push_back(
        Comment{start_line, std::string(src_.substr(begin, pos_ - begin))});
    pos_ += pos_ < src_.size() ? 2 : 0;
  }

  /// Consumes a whole preprocessor directive including `\` continuations.
  /// Nothing is emitted: `#include <atomic>` must not look like code, and
  /// the soundness rules deliberately ignore macro bodies (macro tricks
  /// that smuggle banned constructs past this lexer are caught by the
  /// self-lint of the expanded use site or by clang-tidy, not here).
  void preprocessor_line() {
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline handled by main loop
      // Comments inside directives still count as comments (a directive
      // may carry an ff-lint annotation).
      if (src_[pos_] == '/' && peek(1) == '/') {
        line_comment();
        return;
      }
      ++pos_;
    }
  }

  void identifier_or_prefixed_literal() {
    const int start_line = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    // Encoding prefixes glue onto string/char literals: u8"..", LR"(..)".
    if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
      const bool raw = !text.empty() && text.back() == 'R';
      const bool prefix = text == "u8" || text == "u" || text == "U" ||
                          text == "L" || text == "R" || text == "u8R" ||
                          text == "uR" || text == "UR" || text == "LR";
      if (prefix) {
        if (src_[pos_] == '"') {
          string_literal(raw);
        } else {
          char_literal();
        }
        return;
      }
    }
    emit(TokKind::kIdent, std::move(text), start_line);
  }

  void number() {
    const int start_line = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         start_line);
  }

  void string_literal(bool raw) {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string body;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
      ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src_.find(closer, pos_);
      const std::size_t stop = end == std::string_view::npos ? src_.size() : end;
      for (std::size_t i = pos_; i < stop; ++i) {
        if (src_[i] == '\n') ++line_;
      }
      body = std::string(src_.substr(pos_, stop - pos_));
      pos_ = stop == src_.size() ? stop : stop + closer.size();
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          body += src_[pos_];
          body += src_[pos_ + 1];
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') ++line_;  // unterminated; keep going
        body += src_[pos_++];
      }
      if (pos_ < src_.size()) ++pos_;  // closing quote
    }
    emit(TokKind::kString, std::move(body), start_line);
  }

  void char_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        body += src_[pos_];
        body += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // not a char literal after all
      body += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokKind::kChar, std::move(body), start_line);
  }

  void punct() {
    const std::string_view rest = src_.substr(pos_);
    for (const std::string_view op : kOps3) {
      if (!op.empty() && rest.substr(0, 3) == op) {
        emit(TokKind::kPunct, std::string(op), line_);
        pos_ += 3;
        return;
      }
    }
    for (const std::string_view op : kOps2) {
      if (rest.substr(0, 2) == op) {
        emit(TokKind::kPunct, std::string(op), line_);
        pos_ += 2;
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace ff::fflint
