// Lightweight C++ tokenizer for ff-lint.
//
// This is not a compiler front end: it produces a flat token stream with
// comments and preprocessor lines stripped out (comments are captured
// separately so the rule engine can parse `// ff-lint:` directives).
// That is exactly enough for the lexical soundness rules in analysis.hpp
// and keeps the tool free of a libclang dependency.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ff::fflint {

enum class TokKind {
  kIdent,    ///< identifiers and keywords (no keyword table needed)
  kNumber,   ///< numeric literals, including digit separators
  kString,   ///< string literals (escaped and raw), text excludes quotes
  kChar,     ///< character literals
  kPunct,    ///< operators and punctuation, longest-match
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;

  [[nodiscard]] bool is(std::string_view s) const { return text == s; }
  [[nodiscard]] bool is_ident(std::string_view s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// A comment with its starting line; text excludes the `//` / `/* */`
/// markers.  Block comments spanning lines are one entry.
struct Comment {
  int line = 0;
  std::string text;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`.  Never fails: unrecognized bytes become
/// single-character punct tokens, so the rule passes degrade gracefully
/// on code this lexer was not designed for.
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace ff::fflint
