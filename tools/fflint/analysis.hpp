// ff-lint rule engine — model-soundness checks for protocol and
// scheduler code (see DESIGN.md §3c for each rule's soundness argument).
//
//   R1  raw shared-state primitives (std::atomic / volatile / inline asm)
//       outside the object layer (src/objects/ + src/faults/)
//   R2  nondeterminism in model-checked code (src/consensus/,
//       src/universal/, src/counter/, src/hierarchy/, src/proto/)
//   R3  linearization-point discipline in the object layer: sequence
//       stamping / history recording outside the lock or CAS region
//   R4  infinite-form loops in src/sched/, src/runtime/ and src/verify/
//       that never consult a runtime::BudgetMeter
//   R5  `// ff-lint: allow(Rk)` suppressions must carry a justification;
//       every suppression is surfaced in the report
//
// Suppression grammar, recognized anywhere inside a comment:
//   // ff-lint: allow(R1): <justification, at least 10 characters>
// A directive silences findings of that rule on its own line and on the
// next line (so both trailing and line-above placement work).
//
// Generated-code exemption: a file under src/proto/generated/ whose
// ffgen stamp verifies (marker on line 1, matching FNV-1a 64 content
// checksum on line 2) is exempt from R1/R2 — the generator's
// differential suite owns its soundness.  Files in that directory whose
// stamp is missing, malformed, or stale get the full governed scope, so
// hand-written or hand-edited code cannot hide under the exemption.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace ff::fflint {

inline constexpr std::size_t kNumRules = 5;
/// Minimum justification length (non-whitespace-trimmed) for allow().
inline constexpr std::size_t kMinJustification = 10;

enum class Rule { kR1 = 0, kR2, kR3, kR4, kR5 };

[[nodiscard]] const char* rule_id(Rule r);
[[nodiscard]] const char* rule_title(Rule r);

struct Finding {
  Rule rule = Rule::kR1;
  std::string file;  ///< normalized path, forward slashes, src/-relative
  int line = 0;
  std::string message;
  std::string fixit;
};

struct Suppression {
  Rule rule = Rule::kR1;
  std::string file;
  int line = 0;
  std::string justification;
  bool used = false;  ///< silenced at least one finding
};

struct FileReport {
  std::string file;
  std::vector<Finding> findings;      ///< surviving (unsuppressed)
  std::vector<Finding> suppressed;    ///< silenced by a valid allow()
  std::vector<Suppression> suppressions;  ///< every valid directive
};

struct TreeReport {
  std::string root;
  int files_scanned = 0;
  std::vector<FileReport> files;

  [[nodiscard]] std::size_t unsuppressed_total() const;
  [[nodiscard]] std::array<std::size_t, kNumRules> counts() const;
  [[nodiscard]] std::size_t suppression_total() const;
};

/// Analyzes one translation unit.  `virtual_path` controls which rules
/// apply (paths are matched on their `src/...` suffix, so fixture trees
/// that mirror the src/ layout get the production scoping).
[[nodiscard]] FileReport analyze_source(const std::string& virtual_path,
                                        const std::string& content);

/// Walks `<root>/src` recursively (extensions .hpp/.h/.cpp/.cc, sorted
/// for deterministic output) and analyzes every file.
[[nodiscard]] TreeReport analyze_tree(const std::string& root);

[[nodiscard]] std::string render_human(const TreeReport& report);
[[nodiscard]] std::string render_json(const TreeReport& report);
/// SARIF 2.1.0 (one run, one result per unsuppressed finding) for code
/// scanning UIs; suppressed findings are omitted.
[[nodiscard]] std::string render_sarif(const TreeReport& report);

}  // namespace ff::fflint
