// Fetch-and-add object: the second primitive instantiated in the
// functional-fault framework (see model/faa_semantics.hpp).
//
// Like the CAS object, the F&A object exposes ONLY its native operation:
// reading is done with fetch_add(0).
#pragma once

#include <atomic>

#include "model/faa_semantics.hpp"
#include "objects/shared_object.hpp"
#include "util/cacheline.hpp"

namespace ff::objects {

class FetchAddObject : public SharedObject {
 public:
  using SharedObject::SharedObject;

  /// old ← FAA(O, delta): atomically adds delta, returns the old value.
  virtual model::CounterValue fetch_add(model::CounterValue delta,
                                        ProcessId caller) = 0;

  /// Verification-only peek (never used by constructions).
  [[nodiscard]] virtual model::CounterValue debug_read() const = 0;

  virtual void reset(model::CounterValue initial = 0) = 0;
};

/// Correct fetch-and-add over std::atomic.
class AtomicFetchAdd final : public FetchAddObject {
 public:
  explicit AtomicFetchAdd(ObjectId id, model::CounterValue initial = 0)
      : FetchAddObject(id, "atomic-faa"),
        word_(static_cast<std::uint64_t>(initial)) {}

  model::CounterValue fetch_add(model::CounterValue delta,
                                ProcessId /*caller*/) override {
    const std::uint64_t old = word_.fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_acq_rel);
    return static_cast<model::CounterValue>(old);
  }

  [[nodiscard]] model::CounterValue debug_read() const override {
    return static_cast<model::CounterValue>(
        word_.load(std::memory_order_acquire));
  }

  void reset(model::CounterValue initial = 0) override {
    word_.store(static_cast<std::uint64_t>(initial),
                std::memory_order_release);
  }

 private:
  // Unsigned storage: signed overflow is UB, unsigned wraps — the
  // CounterValue view is two's-complement either way.
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> word_;
};

}  // namespace ff::objects
