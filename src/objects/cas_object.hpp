// The CAS object type (Section 3.3): a shared object whose ONLY operation
// is compare-and-swap.  In particular there is no read operation — the
// paper's protocols learn an object's content exclusively through the old
// value a CAS returns, and our interface enforces that.
#pragma once

#include "model/value.hpp"
#include "objects/shared_object.hpp"

namespace ff::objects {

class CasObject : public SharedObject {
 public:
  using SharedObject::SharedObject;

  /// old ← CAS(O, expected, desired).  Returns the register content on
  /// entry regardless of success (the operation is wait-free).  `caller`
  /// identifies the invoking process for tracing/fault attribution.
  virtual model::Value cas(model::Value expected, model::Value desired,
                           ProcessId caller) = 0;

  /// Verification-only peek at the register content.  NOT part of the
  /// object type (protocols must never call it); checkers use it between
  /// runs, after all protocol threads have quiesced.
  [[nodiscard]] virtual model::Value debug_read() const = 0;

  /// Resets to the initial value ⊥ between experiment trials.
  virtual void reset(model::Value initial = model::Value::bottom()) = 0;
};

}  // namespace ff::objects
