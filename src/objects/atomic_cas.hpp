// Correct (fault-free) CAS object backed by std::atomic.
//
// This is the baseline object with consensus number ∞: the Herlihy
// protocol over a single AtomicCas solves consensus for any n.
#pragma once

#include <atomic>

#include "model/value.hpp"
#include "objects/cas_object.hpp"
#include "util/cacheline.hpp"

namespace ff::objects {

class AtomicCas final : public CasObject {
 public:
  explicit AtomicCas(ObjectId id,
                     model::Value initial = model::Value::bottom())
      : CasObject(id, "atomic-cas"), word_(initial.raw()) {}

  model::Value cas(model::Value expected, model::Value desired,
                   ProcessId /*caller*/) override {
    model::Word observed = expected.raw();
    // compare_exchange_strong returns the old content in `observed` on
    // failure; on success the old content equals `expected`.  Either way
    // `observed` ends up holding R′, which is exactly the CAS output.
    word_.compare_exchange_strong(observed, desired.raw(),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
    return model::Value::of(observed);
  }

  [[nodiscard]] model::Value debug_read() const override {
    const model::Word w = word_.load(std::memory_order_acquire);
    return model::Value::of(w);
  }

  void reset(model::Value initial = model::Value::bottom()) override {
    word_.store(initial.raw(), std::memory_order_release);
  }

 private:
  // Own cache line: consensus benchmarks hammer a single word from all
  // threads and neighbouring objects must not share its line.
  alignas(util::kCacheLineSize) std::atomic<model::Word> word_;
};

}  // namespace ff::objects
