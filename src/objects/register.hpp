// Atomic read/write register.
//
// Registers appear in the paper's lower-bound statement (Theorem 18 allows
// an unbounded number of read/write registers alongside the f CAS objects)
// and in the examples' application plumbing.  Consensus number of a
// register is 1 — it cannot substitute for CAS.
#pragma once

#include <atomic>

#include "model/value.hpp"
#include "objects/shared_object.hpp"
#include "util/cacheline.hpp"

namespace ff::objects {

class AtomicRegister final : public SharedObject {
 public:
  explicit AtomicRegister(ObjectId id,
                          model::Value initial = model::Value::bottom())
      : SharedObject(id, "register"), word_(initial.raw()) {}

  [[nodiscard]] model::Value read() const noexcept {
    return model::Value::of(word_.load(std::memory_order_acquire));
  }

  void write(model::Value v) noexcept {
    word_.store(v.raw(), std::memory_order_release);
  }

  void reset(model::Value initial = model::Value::bottom()) noexcept {
    write(initial);
  }

 private:
  alignas(util::kCacheLineSize) std::atomic<model::Word> word_;
};

}  // namespace ff::objects
