// Base definitions for shared objects (Section 2 model: a fixed collection
// of typed objects accessed by operations, each invocation/response an
// atomic step).
#pragma once

#include <cstdint>
#include <string>

namespace ff::objects {

/// Dense identifier of a shared object within one system instance.
/// Protocol code addresses objects O_0 ... O_{f} by these ids.
using ObjectId = std::uint32_t;

/// Dense identifier of a process p_0 ... p_{n-1}.
using ProcessId = std::uint32_t;

/// Common base: identity and diagnostics.  Shared objects are neither
/// copyable nor movable — processes hold references for the whole run.
class SharedObject {
 public:
  explicit SharedObject(ObjectId id, std::string name = {})
      : id_(id), name_(std::move(name)) {}
  virtual ~SharedObject() = default;

  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  ObjectId id_;
  std::string name_;
};

}  // namespace ff::objects
