#include "hierarchy/consensus_number.hpp"

#include <numeric>

#include "proto/registry.hpp"
#include "sched/adversary.hpp"
#include "sched/random_walk.hpp"

namespace ff::hierarchy {

namespace {

std::vector<std::uint64_t> distinct_inputs(std::uint32_t n) {
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 1);
  return inputs;
}

sched::SimWorld make_world(std::uint32_t f, std::uint32_t t,
                           std::uint32_t n,
                           const sched::MachineFactory& factory) {
  sched::SimConfig config;
  config.num_objects = f;
  config.kind = model::FaultKind::kOverriding;
  config.t = t;
  return sched::SimWorld(config, factory, distinct_inputs(n));
}

}  // namespace

HierarchyCell probe_staged_cell(std::uint32_t f, std::uint32_t t,
                                std::uint32_t n,
                                const ProbeOptions& options) {
  HierarchyCell cell;
  cell.f = f;
  cell.t = t;
  cell.n = n;

  const auto factory_ptr =
      proto::machine_factory("staged", proto::Params{{"f", f}, {"t", t}});
  const sched::MachineFactory& factory = *factory_ptr;
  const sched::SimWorld initial = make_world(f, t, n, factory);

  // 1. Exhaustive exploration within the state cap.
  sched::ExploreOptions explore_options;
  explore_options.max_states = options.explorer_max_states;
  const sched::ExploreResult explored =
      sched::explore(initial, explore_options);
  if (explored.violation) {
    cell.evidence = Evidence::kViolation;
    cell.method = "explorer";
    cell.effort = explored.states_visited;
    cell.detail = std::string(sched::to_string(explored.violation->kind)) +
                  ": " + explored.violation->detail;
    return cell;
  }
  if (explored.complete) {
    cell.evidence = Evidence::kProvenOk;
    cell.method = "explorer";
    cell.effort = explored.states_visited;
    return cell;
  }

  // 2. For n ≥ f+2 the Theorem 19 covering adversary constructs the
  //    violation directly (it needs only f+2 of the n processes).
  if (n >= f + 2) {
    const auto adv = sched::run_covering_adversary(
        factory, f, distinct_inputs(f + 2), options.walk_max_steps);
    if (adv.disagreement) {
      cell.evidence = Evidence::kViolation;
      cell.method = "covering-adversary";
      cell.effort = adv.total_steps;
      cell.detail = "p0 decided " + std::to_string(*adv.p0_decision) +
                    ", p_{f+1} decided " +
                    std::to_string(*adv.last_decision);
      return cell;
    }
  }

  // 3. Randomized stress evidence.
  sched::WalkOptions walk_options;
  walk_options.seed = options.seed ^ (std::uint64_t{f} << 32) ^
                      (std::uint64_t{t} << 16) ^ n;
  walk_options.budget.max_units = options.walk_max_steps;
  const auto report =
      sched::run_walk_campaign(initial, options.walks, walk_options);
  cell.effort = report.walks;
  if (!report.all_ok()) {
    cell.evidence = Evidence::kViolation;
    cell.method = "walks";
    cell.detail = "violating walk seed " +
                  std::to_string(report.first_bad_seed.value_or(0));
    return cell;
  }
  cell.evidence = Evidence::kStressOk;
  cell.method = "walks";
  return cell;
}

Estimate estimate_staged_consensus_number(std::uint32_t f, std::uint32_t t,
                                          std::uint32_t max_n,
                                          const ProbeOptions& options) {
  Estimate estimate;
  std::uint32_t best_ok = 1;  // consensus for n=1 is trivial
  bool violated = false;
  for (std::uint32_t n = 2; n <= max_n; ++n) {
    HierarchyCell cell = probe_staged_cell(f, t, n, options);
    if (cell.ok() && !violated) best_ok = n;
    if (!cell.ok()) violated = true;
    estimate.cells.push_back(std::move(cell));
  }
  estimate.consensus_number = best_ok;
  return estimate;
}

}  // namespace ff::hierarchy
