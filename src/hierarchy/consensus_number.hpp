// Empirical consensus-number estimation for ensembles of faulty CAS
// objects (Section 5.2 closing remark: f CAS objects with a bounded
// number of overriding faults each have consensus number exactly f+1,
// populating every level of the Herlihy hierarchy).
//
// For a given (f, t) we probe increasing process counts n:
//   * exhaustive exploration proves correctness or finds a violation for
//     small state spaces;
//   * when the explorer hits its state cap, the Theorem 19 covering
//     adversary is consulted for n ≥ f+2 (it constructs the violating
//     execution directly), and randomized walks provide stress evidence
//     for n ≤ f+1.
// The estimated consensus number is the largest n with no violation
// before the first violating n.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/explorer.hpp"

namespace ff::hierarchy {

enum class Evidence : std::uint8_t {
  kProvenOk,     ///< exhaustive exploration, no violation
  kStressOk,     ///< randomized walks only, no violation found
  kViolation,    ///< a violating execution was exhibited
  kInconclusive  ///< caps hit, no violation found, no stress pass either
};

[[nodiscard]] constexpr std::string_view to_string(Evidence e) noexcept {
  switch (e) {
    case Evidence::kProvenOk: return "proven-ok";
    case Evidence::kStressOk: return "stress-ok";
    case Evidence::kViolation: return "violation";
    case Evidence::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

struct ProbeOptions {
  std::uint64_t explorer_max_states = 2'000'000;
  std::uint64_t walks = 400;
  std::uint64_t walk_max_steps = 200'000;
  std::uint64_t seed = 0x41e5;
};

struct HierarchyCell {
  std::uint32_t f = 0;
  std::uint32_t t = 0;
  std::uint32_t n = 0;
  Evidence evidence = Evidence::kInconclusive;
  /// Method that produced the evidence ("explorer", "covering-adversary",
  /// "walks").
  std::string method;
  /// States visited / walks run / adversary steps — the probe's effort.
  std::uint64_t effort = 0;
  std::string detail;

  [[nodiscard]] bool ok() const noexcept {
    return evidence == Evidence::kProvenOk || evidence == Evidence::kStressOk;
  }
};

/// Probes one (f, t, n) cell of the staged protocol over f overriding-
/// faulty objects.
[[nodiscard]] HierarchyCell probe_staged_cell(std::uint32_t f,
                                              std::uint32_t t,
                                              std::uint32_t n,
                                              const ProbeOptions& options);

struct Estimate {
  std::uint32_t consensus_number = 0;
  std::vector<HierarchyCell> cells;
};

/// Probes n = 2 .. max_n and reports the estimated consensus number of
/// the f-object, t-bounded overriding-faulty CAS ensemble.
[[nodiscard]] Estimate estimate_staged_consensus_number(
    std::uint32_t f, std::uint32_t t, std::uint32_t max_n,
    const ProbeOptions& options);

}  // namespace ff::hierarchy
