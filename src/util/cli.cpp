#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ff::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" form, unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // bare boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  return flags_.contains(name);
}

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

std::uint64_t Cli::get_uint(const std::string& name,
                            std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtoull(v->c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("invalid boolean flag --" + name + "=" + *v);
}

}  // namespace ff::util
