// Streaming and batch summary statistics used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ff::util {

/// Welford-style streaming accumulator: O(1) memory, numerically stable
/// mean/variance, exact min/max/count/sum.
class StreamingStats {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  void merge(const StreamingStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch sample container with percentile queries (sorts lazily).
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double mean() const noexcept {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  [[nodiscard]] double stddev() const noexcept {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  /// Percentile by linear interpolation between closest ranks; q in [0,100].
  [[nodiscard]] double percentile(double q) {
    if (values_.empty()) return 0.0;
    ensure_sorted();
    const double rank =
        (q / 100.0) * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] + frac * (values_[hi] - values_[lo]);
  }

  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double min() { return percentile(0.0); }
  [[nodiscard]] double max() { return percentile(100.0); }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  std::vector<double> values_;
  bool sorted_ = false;
};

/// Fixed-bucket integer histogram (for step counts, stage counts, ...).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 64) : counts_(buckets, 0) {}

  void add(std::uint64_t value) noexcept {
    const std::size_t idx =
        std::min<std::size_t>(value, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }

  /// Index of the highest non-empty bucket, or 0 when empty.
  [[nodiscard]] std::size_t max_bucket() const noexcept {
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] != 0) return i;
    }
    return 0;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ff::util
