// Tiny command-line flag parser for the bench/example binaries.
//
// Supports --name=value, --name value, and bare --flag booleans.  Unknown
// flags are collected so callers can decide whether to reject them
// (google-benchmark binaries pass their own flags through).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ff::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ff::util
