// Minimal aligned ASCII table printer.
//
// Every experiment harness in bench/ reports its results through this
// printer so the regenerated "tables" have a uniform, diff-friendly shape.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ff::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with a header rule and column alignment.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  static std::string to_cell(double v);
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace ff::util
