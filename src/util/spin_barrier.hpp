// Sense-reversing spin barrier for synchronized thread start in the
// real-thread runtime and the contention benchmarks.
//
// std::barrier exists, but a spin barrier gives tighter start alignment
// (no futex wake latency), which matters when measuring short critical
// sections such as a single CAS.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace ff::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties have arrived.  Reusable.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: reset and flip the sense to release the others.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // On oversubscribed machines pure spinning can starve the last
        // arriver; yield periodically.
        if (++spins % 1024 == 0) std::this_thread::yield();
      }
    }
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  // ff-lint: allow(R1): harness start-line synchronization; the barrier
  std::atomic<std::size_t> remaining_;
  // ff-lint: allow(R1): runs before/after checked executions, its state
  std::atomic<bool> sense_{false};
  // is never part of any protocol history.
};

}  // namespace ff::util
