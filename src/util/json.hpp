// Minimal streaming JSON writer for serializing harness reports (fuzzer
// corpora, coverage stats, bench trajectories) without external
// dependencies.
//
// The writer is a thin state machine over an output string: containers
// are opened/closed explicitly, commas are inserted automatically, and
// strings are escaped per RFC 8259.  Misuse (a value without a pending
// key inside an object, unbalanced close) is a programming error caught
// by assert in debug builds; the writer never throws.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ff::util {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(']'); }

  /// Emits the member name; the next call must produce its value.
  JsonWriter& key(std::string_view name) {
    assert(!frames_.empty() && frames_.back().is_object && !pending_key_);
    comma();
    append_escaped(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    pre_value();
    append_escaped(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    pre_value();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v) {
    pre_value();
    // JSON has no NaN/Inf; map them to null rather than emit garbage.
    if (std::isfinite(v)) {
      out_ += std::to_string(v);
    } else {
      out_ += "null";
    }
    return *this;
  }
  JsonWriter& null() {
    pre_value();
    out_ += "null";
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    return key(name).value(v);
  }

  [[nodiscard]] const std::string& str() const {
    assert(frames_.empty());
    return out_;
  }

 private:
  struct Frame {
    bool is_object = false;
    bool has_items = false;
  };

  JsonWriter& open(char o, char c) {
    pre_value();
    out_ += o;
    frames_.push_back({c == '}', false});
    return *this;
  }

  JsonWriter& close(char c) {
    assert(!frames_.empty() && !pending_key_);
    assert(frames_.back().is_object == (c == '}'));
    frames_.pop_back();
    out_ += c;
    return *this;
  }

  /// Comma/key bookkeeping shared by every value-producing call.
  void pre_value() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    assert(frames_.empty() || !frames_.back().is_object);
    comma();
  }

  void comma() {
    if (!frames_.empty()) {
      if (frames_.back().has_items) out_ += ',';
      frames_.back().has_items = true;
    }
  }

  void append_escaped(std::string_view s) {
    out_ += '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            constexpr char hex[] = "0123456789abcdef";
            out_ += "\\u00";
            out_ += hex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
            out_ += hex[static_cast<unsigned char>(ch) & 0xF];
          } else {
            out_ += ch;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> frames_;
  bool pending_key_ = false;
};

}  // namespace ff::util
