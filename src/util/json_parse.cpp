#include "util/json_parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace ff::util {

namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  throw JsonParseError(std::string("expected ") + wanted +
                           ", got value of type " +
                           std::to_string(static_cast<int>(got)),
                       0);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::uint64_t JsonValue::as_u64() const {
  if (type_ == Type::kUint) return uint_;
  type_error("unsigned integer", type_);
}

std::int64_t JsonValue::as_i64() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kUint) {
    if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
      type_error("signed integer", type_);
    }
    return static_cast<std::int64_t>(uint_);
  }
  type_error("signed integer", type_);
}

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kInt: return static_cast<double>(int_);
    case Type::kDouble: return double_;
    default: type_error("number", type_);
  }
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw JsonParseError("missing member \"" + std::string(key) + '"', 0);
  }
  return *v;
}

/// Single-pass parser over the input view.  Bounded by construction:
/// every production consumes at least one byte and nesting is capped.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return v;
      if (sep != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return v;
      if (sep != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return cp;
  }

  /// UTF-8-encodes a BMP codepoint.  Surrogate halves are kept as their
  /// raw 3-byte encodings (the writer never emits them; a reparse of
  /// foreign input stays lossless enough to fail checksums, not crash).
  static void append_codepoint(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (peek() < '0' || peek() > '9') fail("bad number");
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    if (integral) {
      errno = 0;
      if (negative) {
        const long long parsed = std::strtoll(token.c_str(), nullptr, 10);
        if (errno != 0) fail("integer out of range");
        v.type_ = JsonValue::Type::kInt;
        v.int_ = parsed;
      } else {
        const unsigned long long parsed =
            std::strtoull(token.c_str(), nullptr, 10);
        if (errno != 0) fail("integer out of range");
        v.type_ = JsonValue::Type::kUint;
        v.uint_ = parsed;
      }
    } else {
      v.type_ = JsonValue::Type::kDouble;
      v.double_ = std::strtod(token.c_str(), nullptr);
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace ff::util
