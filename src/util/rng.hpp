// Deterministic, seedable pseudo-random number generation.
//
// All randomized components of the library (fault policies, random
// schedulers, stress harnesses) draw from these generators so that every
// experiment is reproducible from a single 64-bit seed.  We implement
// SplitMix64 (for seeding / cheap one-shot mixing) and xoshiro256**
// (general-purpose stream), both public-domain algorithms by Blackman &
// Vigna, rewritten here from the reference descriptions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ff::util {

/// One-step SplitMix64 mix function.  Useful for hashing as well as seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (for hash combining).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64, per the authors' guidance.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
    // A state of all zeros is the one invalid state; the SplitMix64
    // expansion cannot produce it for any seed, but guard regardless.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path branch-free in the common case.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Derives an independent generator (for per-thread / per-object streams).
  [[nodiscard]] constexpr Xoshiro256 split() noexcept {
    return Xoshiro256((*this)());
  }

  /// The raw 256-bit state, for serializing a generator mid-stream
  /// (e.g. into a fuzzer's JSON report) and restoring it exactly.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Rebuilds a generator from a previously captured state().  An
  /// all-zero state is invalid and is nudged to the canonical non-zero
  /// state, mirroring the seeding guard.
  [[nodiscard]] static constexpr Xoshiro256 from_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    Xoshiro256 rng;
    rng.state_ = state;
    if ((state[0] | state[1] | state[2] | state[3]) == 0) rng.state_[0] = 1;
    return rng;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ff::util
