// Bounded single-producer/single-consumer handoff ring for fixed-size
// word records, and the MPSC mesh the owner-computes frontier explorer
// builds out of them.
//
// The frontier engine hash-partitions the fingerprint space into shards,
// each owned by exactly one worker; a successor that lands in another
// worker's shard is FORWARDED to its owner instead of being inserted
// under a lock (sched/frontier_explorer.hpp, DESIGN.md §3i).  Per
// (producer, consumer) pair there is exactly one SpscWordRing, so every
// ring has a single writer and a single reader and the whole mesh needs
// no mutex: a release store of the head publishes the record words to
// the consumer's acquire load, the same discipline as util::SpinBarrier.
//
// Records are fixed-size word blocks (the frontier's candidate-state
// stride); capacity is rounded up to a power of two so the index math is
// a mask, and one slot is sacrificed to distinguish full from empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/cacheline.hpp"

namespace ff::util {

class SpscWordRing {
 public:
  /// `record_words` words per record, space for at least `min_records`.
  SpscWordRing(std::size_t record_words, std::size_t min_records)
      : words_(record_words == 0 ? 1 : record_words) {
    std::size_t cap = 2;
    while (cap < min_records + 1) cap <<= 1;
    mask_ = cap - 1;
    buf_ = std::make_unique<std::uint64_t[]>(cap * words_);
  }

  SpscWordRing(const SpscWordRing&) = delete;
  SpscWordRing& operator=(const SpscWordRing&) = delete;

  /// Producer side.  Copies one record in; false when the ring is full
  /// (the caller drains its own inbox and retries — never blocks, so two
  /// workers forwarding into each other's full rings cannot deadlock).
  [[nodiscard]] bool try_push(const std::uint64_t* record) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (((head + 1) & mask_) == (tail & mask_)) return false;
    std::memcpy(buf_.get() + (head & mask_) * words_, record,
                words_ * sizeof(std::uint64_t));
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Copies one record out; false when empty.
  [[nodiscard]] bool try_pop(std::uint64_t* record) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if ((tail & mask_) == (head & mask_)) return false;
    std::memcpy(record, buf_.get() + (tail & mask_) * words_,
                words_ * sizeof(std::uint64_t));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a producer
  /// may be about to publish, which the wave termination protocol covers
  /// by re-checking after the producers quiesce).
  [[nodiscard]] bool empty() const {
    return (tail_.load(std::memory_order_relaxed) & mask_) ==
           (head_.load(std::memory_order_acquire) & mask_);
  }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return (mask_ + 1) * words_ * sizeof(std::uint64_t);
  }

 private:
  std::size_t words_;
  std::size_t mask_ = 0;
  std::unique_ptr<std::uint64_t[]> buf_;
  // ff-lint: allow(R1): handoff-queue indices of the checker's own worker
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  // ff-lint: allow(R1): mesh, never part of any checked protocol history
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

/// The full workers×workers mesh: ring(p, c) carries records from
/// producer p to consumer c.  MPSC per consumer, built from SPSC parts.
class HandoffMesh {
 public:
  HandoffMesh(std::size_t workers, std::size_t record_words,
              std::size_t min_records)
      : workers_(workers) {
    rings_.reserve(workers_ * workers_);
    for (std::size_t i = 0; i < workers_ * workers_; ++i) {
      rings_.push_back(
          std::make_unique<SpscWordRing>(record_words, min_records));
    }
  }

  [[nodiscard]] SpscWordRing& ring(std::size_t producer,
                                   std::size_t consumer) {
    return *rings_[producer * workers_ + consumer];
  }

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& r : rings_) total += r->capacity_bytes();
    return total;
  }

 private:
  std::size_t workers_;
  std::vector<std::unique_ptr<SpscWordRing>> rings_;
};

}  // namespace ff::util
