// Cache-line geometry helpers for contended shared-memory data.
#pragma once

#include <cstddef>
#include <new>

namespace ff::util {

// Fixed at 64 bytes (x86-64 / most AArch64).  We deliberately avoid
// std::hardware_destructive_interference_size: its value depends on
// -mtune and would make the struct layouts below ABI-unstable.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T on its own cache line to prevent false sharing between
/// adjacent per-thread or per-object slots.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace ff::util
