#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ff::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  // Use fixed notation with enough precision for rates, trims zeros for
  // integral values.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

}  // namespace ff::util
