// Minimal recursive-descent JSON parser — the reading twin of
// util/json.hpp's streaming writer, still without external dependencies.
//
// The verify layer needs to READ what the repo already writes: cached
// verify::Report entries and canonical verify::JobSpec documents must
// round-trip losslessly.  Two requirements drive the design:
//
//   * EXACT 64-BIT INTEGERS.  Fingerprints and state counts do not fit a
//     double, so integral tokens are kept as uint64/int64 and only
//     fraction/exponent forms decay to double.  as_u64() on a value that
//     was written by JsonWriter::value(std::uint64_t) is exact.
//   * HOSTILE INPUT IS A PARSE ERROR, NEVER UB.  Cache entries can be
//     truncated, corrupted or adversarial; every malformed byte throws
//     JsonParseError (with offset), nesting is depth-capped so a
//     "[[[[..." bomb cannot blow the stack, and accessors type-check.
//
// Object members preserve insertion order (serializers here emit fixed
// key orders) and are looked up linearly — documents are small reports,
// not bulk data.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ff::util {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kUint,    ///< non-negative integral token, exact
    kInt,     ///< negative integral token, exact
    kDouble,  ///< fraction/exponent token
    kString,
    kArray,
    kObject,
  };

  /// Parses one complete JSON document (trailing garbage is an error).
  /// Throws JsonParseError on any malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kUint || type_ == Type::kInt ||
           type_ == Type::kDouble;
  }

  /// Typed accessors: a type mismatch throws JsonParseError (offset 0) so
  /// schema violations in cache entries surface as load failures, not UB.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object lookup; find() returns nullptr when absent, at() throws.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace ff::util
