// Consensus protocol interface (Section 2).
//
// A consensus object provides a single operation `decide` that receives the
// process's input value and returns the agreed-upon value, subject to
// Validity, Consistency and Wait-freedom.  Implementations here are built
// from (possibly faulty) CAS objects; each records how many CAS steps the
// call took so the harnesses can check wait-freedom bounds empirically.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "model/value.hpp"
#include "objects/cas_object.hpp"

namespace ff::consensus {

/// Input values are 64-bit words; the all-ones word is reserved for ⊥ and
/// must not be proposed.  Protocols that pack ⟨value,stage⟩ pairs
/// additionally require inputs below 2^32-1 (asserted).
using InputValue = std::uint64_t;

inline constexpr InputValue kReservedInput = ~InputValue{0};

/// Outcome of one decide() call.
struct Decision {
  /// False when the call gave up: step budget exhausted (suspected
  /// non-termination) or a nonresponsive fault swallowed the operation.
  bool decided = false;
  /// The decided value; meaningful only when `decided`.
  InputValue value = 0;
  /// CAS operations this process executed during the call.
  std::uint64_t cas_steps = 0;

  static Decision of(InputValue v, std::uint64_t steps) {
    return Decision{true, v, steps};
  }
  static Decision undecided(std::uint64_t steps) {
    return Decision{false, 0, steps};
  }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Runs the consensus protocol for process `pid` with input `input`.
  /// Thread-safe: concurrent calls by distinct processes are the intended
  /// use.  A process must call decide() at most once per reset().
  virtual Decision decide(InputValue input, objects::ProcessId pid) = 0;

  /// Resets the underlying objects to ⊥ for the next trial.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of CAS base objects the protocol uses.
  [[nodiscard]] virtual std::uint32_t objects_used() const = 0;

  /// Caps the number of CAS steps one decide() may take before giving up
  /// (0 = unlimited).  Protocols whose loops are structurally bounded may
  /// ignore this; retry-loop protocols honour it so that impossibility
  /// experiments can distinguish livelock from disagreement.
  virtual void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }
  [[nodiscard]] std::uint64_t step_limit() const noexcept {
    return step_limit_;
  }

 protected:
  [[nodiscard]] bool exhausted(std::uint64_t steps) const noexcept {
    return step_limit_ != 0 && steps >= step_limit_;
  }

 private:
  std::uint64_t step_limit_ = 0;
};

}  // namespace ff::consensus
