// Verification of consensus outcomes and of the paper's proof invariants
// over recorded traces.
//
// Decision-level checks implement the three consensus requirements
// (Section 2): Validity, Consistency, Wait-freedom (operationalized as
// "every process decided within its step budget").  Trace-level checks
// implement the claims inside the Theorem 6 proof (Claims 7, 8, 13) and
// the fault-accounting side conditions of Definition 3, so a green run
// certifies not just the outcome but the mechanism.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/consensus.hpp"
#include "faults/trace.hpp"
#include "model/cas_semantics.hpp"
#include "model/tolerance.hpp"

namespace ff::consensus {

/// Result of checking one consensus trial.
struct Verdict {
  bool all_decided = false;
  bool consistent = false;
  bool valid = false;
  std::optional<InputValue> agreed;  ///< set when consistent and decided

  [[nodiscard]] bool ok() const noexcept {
    return all_decided && consistent && valid;
  }

  [[nodiscard]] std::string describe() const {
    std::ostringstream oss;
    oss << (all_decided ? "decided" : "UNDECIDED") << ' '
        << (consistent ? "consistent" : "INCONSISTENT") << ' '
        << (valid ? "valid" : "INVALID");
    if (agreed) oss << " value=" << *agreed;
    return oss.str();
  }
};

/// Checks validity + consistency + termination of one trial.
[[nodiscard]] inline Verdict verify_consensus(
    const std::vector<InputValue>& inputs,
    const std::vector<Decision>& decisions) {
  Verdict v;
  v.all_decided =
      std::all_of(decisions.begin(), decisions.end(),
                  [](const Decision& d) { return d.decided; });

  const std::set<InputValue> input_set(inputs.begin(), inputs.end());
  v.valid = true;
  v.consistent = true;
  std::optional<InputValue> first;
  for (const Decision& d : decisions) {
    if (!d.decided) continue;
    if (!input_set.contains(d.value)) v.valid = false;
    if (!first) {
      first = d.value;
    } else if (*first != d.value) {
      v.consistent = false;
    }
  }
  if (v.all_decided && v.consistent) v.agreed = first;
  return v;
}

/// Per-trace fault accounting (Definition 3): at most f objects with a
/// manifested fault, at most t manifested faults per object.
struct FaultAccounting {
  std::map<objects::ObjectId, std::uint64_t> manifested_per_object;
  std::uint64_t total_manifested = 0;

  [[nodiscard]] std::uint32_t faulty_objects() const noexcept {
    return static_cast<std::uint32_t>(manifested_per_object.size());
  }
  [[nodiscard]] bool within(const model::ToleranceSpec& spec) const {
    if (faulty_objects() > spec.f) return false;
    if (spec.t == model::kUnbounded) return true;
    return std::all_of(
        manifested_per_object.begin(), manifested_per_object.end(),
        [&](const auto& kv) { return kv.second <= spec.t; });
  }
};

[[nodiscard]] inline FaultAccounting account_faults(
    const std::vector<faults::CasEvent>& trace) {
  FaultAccounting acc;
  for (const auto& ev : trace) {
    if (!ev.manifested) continue;
    ++acc.manifested_per_object[ev.object];
    ++acc.total_manifested;
  }
  return acc;
}

/// Checks that every recorded observation matches the Φ/Φ′ it claims:
/// non-fault events satisfy Φ, manifested events violate Φ and satisfy
/// the Φ′ of their fired fault kind.  Returns the first offending event
/// index, or nullopt when the trace is coherent.
[[nodiscard]] inline std::optional<std::size_t> find_incoherent_event(
    const std::vector<faults::CasEvent>& trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& ev = trace[i];
    const bool phi = model::satisfies_phi(ev.obs, ev.call);
    if (ev.manifested) {
      if (phi) return i;  // claimed a fault but Φ held
      if (!model::satisfies_phi_prime(ev.fired, ev.obs, ev.call)) return i;
    } else {
      if (!phi) return i;  // claimed correct but Φ violated
    }
  }
  return std::nullopt;
}

/// Claim 8 (staged protocol): the stage a process writes never decreases
/// over its own operation sequence.  Events must come from a staged-
/// protocol run (desired values are packed ⟨value,stage⟩ pairs).
[[nodiscard]] inline bool stages_monotone_per_process(
    const std::vector<faults::CasEvent>& trace) {
  std::map<objects::ProcessId, std::uint32_t> last_stage;
  for (const auto& ev : trace) {
    const auto desired = model::StagedValue::unpack(ev.call.desired);
    const auto it = last_stage.find(ev.caller);
    if (it != last_stage.end() && desired.stage() < it->second) return false;
    last_stage[ev.caller] = desired.stage();
  }
  return true;
}

/// Claim 13: a successful NON-faulty CAS strictly increases the stage
/// stored in the object (⊥ counts as "before every stage").
[[nodiscard]] inline bool nonfaulty_writes_increase_stage(
    const std::vector<faults::CasEvent>& trace) {
  for (const auto& ev : trace) {
    if (ev.manifested) continue;                 // only non-faulty steps
    if (ev.obs.after == ev.obs.before) continue;  // only successful writes
    if (ev.obs.before.is_bottom()) continue;      // vacuous per the claim
    const auto before = model::StagedValue::unpack(ev.obs.before);
    const auto after = model::StagedValue::unpack(ev.obs.after);
    if (after.stage() <= before.stage()) return false;
  }
  return true;
}

/// Claim 9: if ⟨x, n⟩ is written to O_i then (1) for every n0 < n and
/// every object O_k, ⟨x, n0⟩ was written to O_k earlier, and (2) for
/// every k < i, ⟨x, n⟩ was written to O_k earlier.  Checked over the
/// recorded linearization order; "written" = any event that changed the
/// register content (correct or faulty).  `num_objects` is f.
[[nodiscard]] inline bool stage_propagation_order(
    const std::vector<faults::CasEvent>& trace, std::uint32_t num_objects) {
  // written[k] holds the (value, stage) pairs landed on O_k so far.
  std::vector<std::set<std::pair<std::uint64_t, std::uint32_t>>> written(
      num_objects);
  for (const auto& ev : trace) {
    if (ev.obs.after == ev.obs.before) continue;  // no write landed
    if (ev.obs.after.is_bottom()) continue;
    const auto sv = model::StagedValue::unpack(ev.obs.after);
    const std::uint64_t x = sv.value();
    const std::uint32_t n = sv.stage();
    // (2) same stage already on every earlier object.
    for (std::uint32_t k = 0; k < ev.object; ++k) {
      if (!written[k].contains({x, n})) return false;
    }
    // (1) every earlier stage already on every object.
    for (std::uint32_t k = 0; k < num_objects; ++k) {
      for (std::uint32_t n0 = 0; n0 < n; ++n0) {
        if (!written[k].contains({x, n0})) return false;
      }
    }
    written[ev.object].insert({x, n});
  }
  return true;
}

/// Claim 7 flavour: every value ever written to an object is either an
/// input value or ⊥-derived filler — i.e. the protocol never launders a
/// non-input value into the system.  `inputs` are the trial's inputs;
/// `staged` selects ⟨value,stage⟩ unpacking.
[[nodiscard]] inline bool writes_only_input_values(
    const std::vector<faults::CasEvent>& trace,
    const std::vector<InputValue>& inputs, bool staged) {
  const std::set<InputValue> input_set(inputs.begin(), inputs.end());
  for (const auto& ev : trace) {
    const InputValue written =
        staged ? model::StagedValue::unpack(ev.call.desired).value()
               : ev.call.desired.raw();
    if (!input_set.contains(written)) return false;
  }
  return true;
}

}  // namespace ff::consensus
