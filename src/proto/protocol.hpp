// IrProtocol — runs the SAME proto::Program synchronously against real
// objects::CasObject / objects::AtomicRegister instances, so real-thread
// stress campaigns (runtime/stress.hpp) execute the identical definition
// the simulator model-checks.
//
// Semantics mirror the retired hand-written Protocol classes exactly:
//   * only CAS operations count toward Decision::cas_steps (the TAS and
//     announce protocols report register traffic as zero steps, as their
//     legacy twins did);
//   * the step limit is consulted before every CAS, so retry-loop
//     protocols return Decision::undecided on suspected livelock instead
//     of spinning (single-pass protocols are structurally bounded and
//     never hit it in practice);
//   * a NonresponsiveError thrown by a faulty object propagates to the
//     caller — runtime::run_trial() catches it, as before.
//
// Crash instrumentation (enable_crashes): for programs with a recovery
// label, a faults::CrashPolicy is consulted at a crash point immediately
// BEFORE every shared op — the pull-the-plug style of instrumented crash
// testing.  When the policy fires (and the per-process crash budget is
// not exhausted) the persistent locals are snapshotted and CrashError is
// thrown, killing the worker thread mid-protocol.  The next decide()
// call by the same pid is a recovery incarnation: volatile locals are 0,
// persistent locals are restored from the snapshot, and execution
// re-enters at recovery_pc() — exactly IrMachine::crash()'s semantics.
// The crashed thread and its replacement must be ordered by join (the
// runtime's crash runner does this), which is the happens-before edge
// the per-process snapshot relies on.
#pragma once

#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consensus/consensus.hpp"
#include "faults/crash_policy.hpp"
#include "objects/cas_object.hpp"
#include "objects/register.hpp"
#include "proto/ir.hpp"

namespace ff::proto {

class IrProtocol final : public consensus::Protocol {
 public:
  IrProtocol(std::shared_ptr<const Program> program,
             std::vector<objects::CasObject*> objects,
             std::vector<objects::AtomicRegister*> registers = {})
      : program_(std::move(program)),
        objects_(std::move(objects)),
        registers_(std::move(registers)) {
    assert(program_ != nullptr);
    assert(!program_->uses_queue());
    assert(objects_.size() >= program_->num_objects());
    assert(registers_.size() >= program_->num_registers());
  }

  consensus::Decision decide(consensus::InputValue input,
                             objects::ProcessId pid) override {
    assert(input != consensus::kReservedInput);
    Word locals[kMaxLocals] = {};
    const auto& specs = program_->locals();
    const bool crashable =
        crash_policy_ != nullptr && program_->has_recovery();
    std::uint32_t pc = 0;
    if (crashable && crash_state_.at(pid).incarnation > 0) {
      // Recovery re-entry: volatile locals stay 0, persistent locals are
      // restored from the crash-time snapshot, control enters `recover:`.
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].persistent) locals[i] = crash_state_[pid].persistent[i];
      }
      pc = program_->recovery_pc();
    } else {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        locals[i] = program_->eval(specs[i].init, locals, pid, input);
      }
    }

    const auto& ops = program_->ops();
    const auto eval = [&](ExprId id) {
      return program_->eval(id, locals, pid, /*input=*/0);
    };
    const auto crash_point = [&] {
      if (!crashable) return;
      CrashState& cs = crash_state_[pid];
      if (cs.incarnation >= crash_budget_) return;  // budget has final say
      if (!crash_policy_->should_crash(pid, cs.incarnation, ++cs.op_index)) {
        return;
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].persistent) cs.persistent[i] = locals[i];
      }
      ++cs.incarnation;
      cs.op_index = 0;
      throw faults::CrashError();
    };

    std::uint64_t steps = 0;
    for (;;) {
      const Op& op = ops[pc];
      switch (op.kind) {
        case OpKind::kSet:
          locals[op.dst] = eval(op.value);
          ++pc;
          break;
        case OpKind::kBranch:
          pc = eval(op.value) != 0 ? op.target : pc + 1;
          break;
        case OpKind::kGoto:
          pc = op.target;
          break;
        case OpKind::kHalt:
          return consensus::Decision::of(eval(op.value), steps);
        case OpKind::kCas: {
          if (exhausted(steps)) return consensus::Decision::undecided(steps);
          crash_point();
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          const model::Value old = objects_[index]->cas(
              model::Value::of(eval(op.expected)),
              model::Value::of(eval(op.value)), pid);
          ++steps;
          locals[op.dst] = old.raw();
          ++pc;
          break;
        }
        case OpKind::kRegRead: {
          crash_point();
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          locals[op.dst] = registers_[index]->read().raw();
          ++pc;
          break;
        }
        case OpKind::kRegWrite: {
          crash_point();
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          registers_[index]->write(model::Value::of(eval(op.value)));
          locals[op.dst] = kBottomWord;
          ++pc;
          break;
        }
        case OpKind::kEnqueue:
        case OpKind::kDequeue:
          assert(false && "queue ops cannot run against CAS objects");
          return consensus::Decision::undecided(steps);
      }
    }
  }

  void reset() override {
    for (objects::CasObject* object : objects_) object->reset();
    for (objects::AtomicRegister* reg : registers_) reg->reset();
    for (CrashState& cs : crash_state_) cs = CrashState{};
    if (crash_policy_ != nullptr) crash_policy_->reset();
  }

  /// Arms the crash instrumentation for up to `processes` worker pids.
  /// `policy` (borrowed) decides when a crash point fires; `budget` caps
  /// crashes per process, so every trial terminates.  Only meaningful for
  /// programs with a recovery label; a null policy disarms.
  void enable_crashes(faults::CrashPolicy* policy, std::uint32_t budget,
                      std::uint32_t processes) {
    assert(policy == nullptr || program_->has_recovery());
    crash_policy_ = policy;
    crash_budget_ = budget;
    crash_state_.assign(processes, CrashState{});
  }

  /// Crashes suffered by `pid` so far in this trial.
  [[nodiscard]] std::uint32_t crashes(objects::ProcessId pid) const {
    return crash_state_.at(pid).incarnation;
  }

  [[nodiscard]] std::string name() const override { return program_->name(); }
  [[nodiscard]] std::uint32_t objects_used() const override {
    return program_->num_objects();
  }

  [[nodiscard]] const std::shared_ptr<const Program>& program()
      const noexcept {
    return program_;
  }

 private:
  /// Per-process crash bookkeeping.  Distinct pids touch distinct slots;
  /// a crashed incarnation and its replacement thread are ordered by the
  /// runner's join, so no slot is ever accessed concurrently.
  struct CrashState {
    std::uint32_t incarnation = 0;  ///< crashes suffered so far
    std::uint64_t op_index = 0;     ///< shared ops this incarnation
    std::array<Word, kMaxLocals> persistent = {};
  };

  std::shared_ptr<const Program> program_;
  std::vector<objects::CasObject*> objects_;
  std::vector<objects::AtomicRegister*> registers_;
  faults::CrashPolicy* crash_policy_ = nullptr;
  std::uint32_t crash_budget_ = 0;
  std::vector<CrashState> crash_state_;
};

}  // namespace ff::proto
