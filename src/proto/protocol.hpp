// IrProtocol — runs the SAME proto::Program synchronously against real
// objects::CasObject / objects::AtomicRegister instances, so real-thread
// stress campaigns (runtime/stress.hpp) execute the identical definition
// the simulator model-checks.
//
// Semantics mirror the retired hand-written Protocol classes exactly:
//   * only CAS operations count toward Decision::cas_steps (the TAS and
//     announce protocols report register traffic as zero steps, as their
//     legacy twins did);
//   * the step limit is consulted before every CAS, so retry-loop
//     protocols return Decision::undecided on suspected livelock instead
//     of spinning (single-pass protocols are structurally bounded and
//     never hit it in practice);
//   * a NonresponsiveError thrown by a faulty object propagates to the
//     caller — runtime::run_trial() catches it, as before.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consensus/consensus.hpp"
#include "objects/cas_object.hpp"
#include "objects/register.hpp"
#include "proto/ir.hpp"

namespace ff::proto {

class IrProtocol final : public consensus::Protocol {
 public:
  IrProtocol(std::shared_ptr<const Program> program,
             std::vector<objects::CasObject*> objects,
             std::vector<objects::AtomicRegister*> registers = {})
      : program_(std::move(program)),
        objects_(std::move(objects)),
        registers_(std::move(registers)) {
    assert(program_ != nullptr);
    assert(!program_->uses_queue());
    assert(objects_.size() >= program_->num_objects());
    assert(registers_.size() >= program_->num_registers());
  }

  consensus::Decision decide(consensus::InputValue input,
                             objects::ProcessId pid) override {
    assert(input != consensus::kReservedInput);
    Word locals[kMaxLocals] = {};
    const auto& specs = program_->locals();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      locals[i] = program_->eval(specs[i].init, locals, pid, input);
    }

    const auto& ops = program_->ops();
    const auto eval = [&](ExprId id) {
      return program_->eval(id, locals, pid, /*input=*/0);
    };

    std::uint64_t steps = 0;
    std::uint32_t pc = 0;
    for (;;) {
      const Op& op = ops[pc];
      switch (op.kind) {
        case OpKind::kSet:
          locals[op.dst] = eval(op.value);
          ++pc;
          break;
        case OpKind::kBranch:
          pc = eval(op.value) != 0 ? op.target : pc + 1;
          break;
        case OpKind::kGoto:
          pc = op.target;
          break;
        case OpKind::kHalt:
          return consensus::Decision::of(eval(op.value), steps);
        case OpKind::kCas: {
          if (exhausted(steps)) return consensus::Decision::undecided(steps);
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          const model::Value old = objects_[index]->cas(
              model::Value::of(eval(op.expected)),
              model::Value::of(eval(op.value)), pid);
          ++steps;
          locals[op.dst] = old.raw();
          ++pc;
          break;
        }
        case OpKind::kRegRead: {
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          locals[op.dst] = registers_[index]->read().raw();
          ++pc;
          break;
        }
        case OpKind::kRegWrite: {
          const Word index = eval(op.index);
          assert(index < op.index_bound);
          registers_[index]->write(model::Value::of(eval(op.value)));
          locals[op.dst] = kBottomWord;
          ++pc;
          break;
        }
        case OpKind::kEnqueue:
        case OpKind::kDequeue:
          assert(false && "queue ops cannot run against CAS objects");
          return consensus::Decision::undecided(steps);
      }
    }
  }

  void reset() override {
    for (objects::CasObject* object : objects_) object->reset();
    for (objects::AtomicRegister* reg : registers_) reg->reset();
  }

  [[nodiscard]] std::string name() const override { return program_->name(); }
  [[nodiscard]] std::uint32_t objects_used() const override {
    return program_->num_objects();
  }

  [[nodiscard]] const std::shared_ptr<const Program>& program()
      const noexcept {
    return program_;
  }

 private:
  std::shared_ptr<const Program> program_;
  std::vector<objects::CasObject*> objects_;
  std::vector<objects::AtomicRegister*> registers_;
};

}  // namespace ff::proto
