// run_queue_client — executes a queue-client Program against a real
// faults::RelaxedQueue.
//
// Queue clients are the third driver of the protocol IR: the §6 bridge
// experiments (E10) exercise the k-relaxation functional fault through
// the SAME single-source definition machinery as the consensus
// protocols, even though the relaxed queue lives outside the CAS
// simulator.  The classification pipeline then reads the queue's own
// DequeueEvent trace, exactly as before.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "faults/relaxed_queue.hpp"
#include "proto/ir.hpp"

namespace ff::proto {

struct QueueRunResult {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  /// Dequeue results in program order (nullopt = empty queue).
  std::vector<std::optional<model::QueueElement>> dequeued;
};

[[nodiscard]] inline QueueRunResult run_queue_client(
    const Program& program, faults::RelaxedQueue& queue,
    objects::ProcessId pid = 0, Word input = 0) {
  assert(program.uses_queue());
  Word locals[kMaxLocals] = {};
  const auto& specs = program.locals();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    locals[i] = program.eval(specs[i].init, locals, pid, input);
  }

  const auto& ops = program.ops();
  const auto eval = [&](ExprId id) {
    return program.eval(id, locals, pid, /*input=*/0);
  };

  QueueRunResult result;
  std::uint32_t pc = 0;
  for (;;) {
    const Op& op = ops[pc];
    switch (op.kind) {
      case OpKind::kSet:
        locals[op.dst] = eval(op.value);
        ++pc;
        break;
      case OpKind::kBranch:
        pc = eval(op.value) != 0 ? op.target : pc + 1;
        break;
      case OpKind::kGoto:
        pc = op.target;
        break;
      case OpKind::kHalt:
        return result;
      case OpKind::kEnqueue:
        queue.enqueue(eval(op.value));
        locals[op.dst] = kBottomWord;
        ++result.enqueues;
        ++pc;
        break;
      case OpKind::kDequeue: {
        const std::optional<model::QueueElement> element = queue.dequeue(pid);
        locals[op.dst] = element ? *element : kBottomWord;
        result.dequeued.push_back(element);
        ++result.dequeues;
        ++pc;
        break;
      }
      case OpKind::kCas:
      case OpKind::kRegRead:
      case OpKind::kRegWrite:
        assert(false && "CAS/register ops cannot run against a queue");
        return result;
    }
  }
}

}  // namespace ff::proto
