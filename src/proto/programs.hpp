// The paper's protocols as single IR definitions.
//
// Each builder returns the ONE authoritative definition of a protocol,
// already specialized to its parameters; IrMachine explores it and
// IrProtocol runs it on threads.  tests/test_proto_ir.cpp proves every
// program bit-for-bit equivalent (full census + per-state encode() words)
// to the retired hand-written twins kept under tests/legacy/.
//
// The encode() layouts intentionally reproduce the legacy machines'
// encodings word for word, so state graphs, fingerprints and witnesses
// computed before the migration remain valid.
#pragma once

#include <cstdint>
#include <memory>

#include "proto/ir.hpp"

namespace ff::proto {

/// Filler value for the staged protocol's "⊥ with a stage" pair — no
/// process may propose it (mirrors the retired StagedConsensus constant).
inline constexpr std::uint32_t kStagedNeverValue = 0xFFFFFFFEu;

/// Figure 1 / Herlihy: one CAS on O_0, adopt a non-⊥ old value.
[[nodiscard]] std::shared_ptr<const Program> single_cas_program();

/// Figure 2: one pass over O_0..O_{k-1}, adopting every non-⊥ old value.
/// k = f+1 instantiates Theorem 5; k = f the candidate Theorem 18 refutes.
[[nodiscard]] std::shared_ptr<const Program> f_plus_one_program(
    std::uint32_t k);

/// Figure 3: staged protocol over f objects, maxStage = t·(4f+f²) unless
/// overridden (non-zero override = ablation instance, no guarantee).
[[nodiscard]] std::shared_ptr<const Program> staged_program(
    std::uint32_t f, std::uint32_t t, std::uint32_t max_stage_override = 0);

/// Announce-and-tiebreak over registers A[0..n-1] plus one CAS object.
[[nodiscard]] std::shared_ptr<const Program> announce_cas_program(
    std::uint32_t n);

/// Test&set consensus (TAS ≡ CAS(⊥→1)); the pid ≥ 2 generalization is
/// deliberately naive (losers read A[0]) and breaks at n = 3.
[[nodiscard]] std::shared_ptr<const Program> tas_program(std::uint32_t n);

/// §3.4 silent-fault protocol: Herlihy attempt + no-op confirmation probe.
[[nodiscard]] std::shared_ptr<const Program> retry_silent_program();

/// Relaxed-queue client (§6 experiments): enqueue 1..ops, then dequeue
/// `ops` times.  Runs under proto::run_queue_client, never the simulator.
[[nodiscard]] std::shared_ptr<const Program> queue_client_program(
    std::uint64_t ops);

/// Recoverable single-CAS consensus (Golab's recoverable-consensus model):
/// the proposal lives in a PERSISTENT local, and the recovery entry simply
/// retries the CAS — a crash-after loses only the response, which the
/// retry re-reads from the object itself (our value is in O_0 iff we won).
/// Crash-correct, but inherits single-cas's vulnerability to overriding
/// functional faults.
[[nodiscard]] std::shared_ptr<const Program> recoverable_cas_program();

/// Figure 3 staged protocol with all five state locals persistent and a
/// recovery entry at the phase dispatch: after a crash the process
/// resumes the stage walk from its persisted {phase, i, s, exp, out}.
/// The retry ladder (line 15) already self-repairs a stale `exp`, so a
/// lost CAS response is re-observed from the object — this is the
/// protocol the crash x overriding-fault cross-product is checked on.
[[nodiscard]] std::shared_ptr<const Program> recoverable_staged_program(
    std::uint32_t f, std::uint32_t t, std::uint32_t max_stage_override = 0);

}  // namespace ff::proto
