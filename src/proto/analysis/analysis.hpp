// ffcheck — abstract interpretation over the protocol IR.
//
// PR 3's ff-lint analyzes C++ source *text*; this module analyzes the
// thing the whole verification stack now derives from: proto::Program.
// It builds a CFG from the structured op list, runs small-constant-set
// abstract interpretation to a fixpoint, and discharges five analyses:
//
//   A1  static footprints — a per-pc may-touch interval over the shared
//       object/register namespaces, exported to sched/facts.hpp so
//       sleep-set POR can consult the STATIC independence relation
//       (exact singleton sites) ahead of stepping, with the dynamic
//       pending-op footprint kept as a debug cross-check;
//   A2  overriding-immunity — a per-object proof that no reachable CAS
//       can ever satisfy the overriding-fault manifest condition
//       (before ≠ expected ∧ before ≠ desired), so the fault branch may
//       be skipped without changing the census (the paper's uniform-
//       desired observation, machine-checked; DESIGN.md §3h);
//   A3  budget-boundedness — an explicit per-loop certificate (counted
//       bound, or classified retry loop) replacing blind trust in
//       finalize()'s cycle-contains-shared-op check;
//   A4  recovery-soundness — a forward must-defined proof that no
//       volatile local is read before re-definition on any path from
//       the recovery entry, with a witness path on failure;
//   A5  dead code / encode-coverage — unreachable ops are errors, and
//       the recomputed backward liveness must be covered by the
//       encode() layout (layout drift corrupts memoization).
//
// A1/A3/A4/A5 run over a delivery-agnostic fixpoint (every shared-op
// delivery is ⊤), so their facts hold under EVERY fault kind.  A2 runs
// a second, overriding-closed fixpoint whose conclusions are only valid
// — and only consulted — under model::FaultKind::kOverriding.
//
// analyze() never throws on a well-formed Program (including ones
// finalized with Validate::kSyntaxOnly); violations are reported, not
// thrown, so tools can print certificates and exit nonzero.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proto/ir.hpp"
#include "sched/facts.hpp"
#include "util/json.hpp"

namespace ff::proto::analysis {

/// Per-analysis outcome.  Only kViolated fails an obligation (nonzero
/// ffcheck exit, ffgen refusal); kFlagged marks facts the analyzer could
/// not prove but that no obligation requires (e.g. an uncounted retry
/// loop, which the fault budget bounds dynamically).
enum class Verdict : std::uint8_t { kProved, kFlagged, kViolated };

[[nodiscard]] const char* verdict_name(Verdict v) noexcept;

/// A2 certificate for one shared object.
struct ObjectImmunity {
  std::uint32_t object = 0;
  bool immune = false;
  /// The overriding-closed content set V(o) (possible object values
  /// under kOverriding faults + crashes), or ⊤ when it overflowed.
  bool values_top = false;
  std::vector<Word> values;
  /// Why the object is (or is not) immune, human-readable.
  std::string reason;
};

/// A3 certificate for one control-flow loop (one nontrivial SCC).
struct LoopCertificate {
  enum class Kind : std::uint8_t {
    /// Proved: every cycle passes through a strictly-increasing counter
    /// whose abstract value set is finite — at most `bound` iterations.
    kCounted,
    /// Classified only: the loop contains a shared-memory operation, so
    /// iterations are bounded by the fault/crash budget and scheduling
    /// (the paper's retry loops), not by a static count.  Flagged.
    kCasRetry,
    /// No shared op anywhere in the cycle — the interpreter could spin
    /// without pausing.  Violated (finalize(kFull) rejects these; only
    /// Validate::kSyntaxOnly fixtures can reach the analyzer with one).
    kPausedCycle,
  };
  Kind kind = Kind::kCasRetry;
  std::vector<std::uint32_t> pcs;  ///< the SCC's ops, ascending
  std::string local;               ///< kCounted: the counter local
  std::uint64_t bound = 0;         ///< kCounted: iteration bound
};

/// A4 violation witness: a crash-free path from the recovery entry to a
/// read of `local` with no intervening re-definition.
struct RecoveryWitness {
  std::string local;
  std::uint32_t read_pc = 0;
  std::vector<std::uint32_t> path;  ///< recovery_pc .. read_pc
};

/// A5 violation: `local` is live at pause point `pc` but missing from
/// the encode() layout.
struct CoverageViolation {
  std::uint32_t pc = 0;
  std::string op;  ///< op kind name ("cas", "reg_read", ...)
  std::string local;
};

struct AnalysisReport {
  std::string program;
  bool simulable = false;  ///< !uses_queue(): the CAS simulator runs it
  std::uint32_t num_ops = 0;
  std::uint32_t num_objects = 0;
  bool has_recovery = false;

  // A1 — always computable (fact-producing; verdict stays kProved).
  Verdict a1 = Verdict::kProved;
  std::vector<sched::StaticFootprint> footprints;  ///< indexed by pc
  std::uint32_t shared_sites = 0;
  std::uint32_t exact_sites = 0;

  // A2 — fact-producing; the immunity result itself is the certificate.
  Verdict a2 = Verdict::kProved;
  std::uint64_t immune_objects = 0;  ///< bit o: proved immune
  std::vector<ObjectImmunity> objects;

  // A3 — kViolated on a pause-free cycle, kFlagged on uncounted loops.
  Verdict a3 = Verdict::kProved;
  std::vector<LoopCertificate> loops;

  // A4 — kViolated when a volatile local may be read unrecovered.
  Verdict a4 = Verdict::kProved;
  std::vector<RecoveryWitness> recovery_witnesses;

  // A5 — kViolated on unreachable ops or an uncovered live local.
  Verdict a5 = Verdict::kProved;
  std::vector<std::uint32_t> unreachable_pcs;
  std::vector<CoverageViolation> coverage_violations;
  /// Layout entries never live at any pause — harmless (they only waste
  /// encoding words), reported informationally.
  std::vector<std::string> unused_layout_locals;

  /// True when every obligation holds (no analysis is kViolated).
  [[nodiscard]] bool ok() const noexcept {
    return a1 != Verdict::kViolated && a2 != Verdict::kViolated &&
           a3 != Verdict::kViolated && a4 != Verdict::kViolated &&
           a5 != Verdict::kViolated;
  }
};

/// Runs all five analyses over a finalized program.
[[nodiscard]] AnalysisReport analyze(const Program& program);

/// Distills a report into the scheduler-facing facts (A1 footprints +
/// A2 immunity mask; sched/facts.hpp).
[[nodiscard]] std::shared_ptr<const sched::ProgramFacts> make_facts(
    const AnalysisReport& report);

/// analyze() + make_facts() in one call (what the factories cache).
[[nodiscard]] std::shared_ptr<const sched::ProgramFacts> program_facts(
    const Program& program);

/// Multi-line human report (one block per program, ffcheck's default).
[[nodiscard]] std::string render_human(const AnalysisReport& report);

/// Writes the report as one JSON object into `w` (callers wrap reports
/// in their own array/envelope).
void render_json(const AnalysisReport& report, util::JsonWriter& w);

}  // namespace ff::proto::analysis
