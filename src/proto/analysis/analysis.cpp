#include "proto/analysis/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <mutex>
#include <utility>

#include "proto/genapi.hpp"
#include "proto/machine.hpp"

namespace ff::proto::analysis {

namespace {

// ------------------------------------------------------- abstract domain

/// Small set of word constants, or ⊤.  The empty set is the lattice
/// bottom ("no value reaches here" — unreachable code).  Sets overflow
/// to ⊤ past kMaxValues, which together with the finite op count and
/// local count bounds the fixpoint lattice height.
class ValueSet {
 public:
  static constexpr std::size_t kMaxValues = 8;

  static ValueSet top() {
    ValueSet v;
    v.top_ = true;
    return v;
  }
  static ValueSet none() { return {}; }
  static ValueSet constant(Word w) {
    ValueSet v;
    v.vals_.push_back(w);
    return v;
  }
  /// {0, 1} — the exact range of every comparison/logical operator, a
  /// strictly better answer than ⊤ when an operand is unknown.
  static ValueSet boolean() {
    ValueSet v;
    v.vals_ = {0, 1};
    return v;
  }

  [[nodiscard]] bool is_top() const noexcept { return top_; }
  [[nodiscard]] bool is_none() const noexcept {
    return !top_ && vals_.empty();
  }
  [[nodiscard]] bool is_singleton() const noexcept {
    return !top_ && vals_.size() == 1;
  }
  [[nodiscard]] Word singleton() const { return vals_.front(); }
  [[nodiscard]] const std::vector<Word>& values() const noexcept {
    return vals_;
  }
  [[nodiscard]] bool contains(Word w) const {
    return top_ || std::binary_search(vals_.begin(), vals_.end(), w);
  }
  [[nodiscard]] bool may_be_nonzero() const {
    if (top_) return true;
    for (const Word w : vals_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Adds one value (⊤ past the cap).  Returns whether the set changed.
  bool insert(Word w) {
    if (top_) return false;
    const auto it = std::lower_bound(vals_.begin(), vals_.end(), w);
    if (it != vals_.end() && *it == w) return false;
    vals_.insert(it, w);
    if (vals_.size() > kMaxValues) {
      top_ = true;
      vals_.clear();
    }
    return true;
  }

  bool join(const ValueSet& o) {
    if (top_) return false;
    if (o.top_) {
      top_ = true;
      vals_.clear();
      return true;
    }
    bool changed = false;
    for (const Word w : o.vals_) {
      changed = insert(w) || changed;
      if (top_) break;
    }
    return changed;
  }

 private:
  bool top_ = false;
  std::vector<Word> vals_;  ///< sorted, unique
};

using Env = std::vector<ValueSet>;

[[nodiscard]] bool is_boolean_op(ExprOp op) noexcept {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kGe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
    case ExprOp::kIsBottom:
      return true;
    default:
      return false;
  }
}

/// Concrete semantics of the unary operators, mirroring Program::eval.
[[nodiscard]] Word apply_unary(ExprOp op, Word a) {
  switch (op) {
    case ExprOp::kNot:
      return a == 0 ? 1 : 0;
    case ExprOp::kIsBottom:
      return a == kBottomWord ? 1 : 0;
    case ExprOp::kStage:
      return a >> 32;
    case ExprOp::kValueOf:
    case ExprOp::kU32:
      return a & 0xFFFFFFFFULL;
    default:
      assert(false && "not a unary ExprOp");
      return 0;
  }
}

/// Concrete semantics of the binary operators, mirroring Program::eval.
[[nodiscard]] Word apply_binary(ExprOp op, Word a, Word b) {
  switch (op) {
    case ExprOp::kAdd:
      return a + b;
    case ExprOp::kSub:
      return a - b;
    case ExprOp::kEq:
      return a == b ? 1 : 0;
    case ExprOp::kNe:
      return a != b ? 1 : 0;
    case ExprOp::kLt:
      return a < b ? 1 : 0;
    case ExprOp::kGe:
      return a >= b ? 1 : 0;
    case ExprOp::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case ExprOp::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
    case ExprOp::kPack:
      return ((b & 0xFFFFFFFFULL) << 32) | (a & 0xFFFFFFFFULL);
    default:
      assert(false && "not a binary ExprOp");
      return 0;
  }
}

/// Cartesian abstract evaluation of an expression tree over a local
/// environment.  kInput/kPid are ⊤ (the analysis is input-oblivious, so
/// its facts hold for every input vector and process count).
ValueSet eval_expr(const Program& p, ExprId id, const Env& env) {
  if (id == kNoExpr) return ValueSet::top();
  const ExprNode& e = p.exprs()[id];
  switch (e.op) {
    case ExprOp::kConst:
      return ValueSet::constant(e.imm);
    case ExprOp::kInput:
    case ExprOp::kPid:
      return ValueSet::top();
    case ExprOp::kLocal:
      return env[static_cast<std::size_t>(e.imm)];
    case ExprOp::kSelect: {
      const ValueSet cond = eval_expr(p, e.a, env);
      ValueSet out = ValueSet::none();
      if (cond.may_be_nonzero()) out.join(eval_expr(p, e.b, env));
      if (cond.contains(0)) out.join(eval_expr(p, e.c, env));
      return out;
    }
    default:
      break;
  }
  const ValueSet a = eval_expr(p, e.a, env);
  if (e.b == kNoExpr) {  // unary
    if (a.is_none()) return a;
    if (a.is_top()) {
      return is_boolean_op(e.op) ? ValueSet::boolean() : ValueSet::top();
    }
    ValueSet out = ValueSet::none();
    for (const Word w : a.values()) {
      out.insert(apply_unary(e.op, w));
      if (out.is_top()) break;
    }
    return out;
  }
  const ValueSet b = eval_expr(p, e.b, env);
  if (a.is_none() || b.is_none()) return ValueSet::none();
  if (a.is_top() || b.is_top()) {
    return is_boolean_op(e.op) ? ValueSet::boolean() : ValueSet::top();
  }
  ValueSet out = ValueSet::none();
  for (const Word wa : a.values()) {
    for (const Word wb : b.values()) {
      out.insert(apply_binary(e.op, wa, wb));
      if (out.is_top()) return out;
    }
  }
  return out;
}

/// Branch-guard narrowing: when a branch condition is EXACTLY a
/// comparison of one local against a constant (the universal loop-guard
/// shape: `ge(ref i, cst k)` etc.), the environment propagated along
/// each edge may soundly drop the local's values that contradict the
/// edge — a concrete execution takes the edge only when the comparison
/// came out that way.  This path-sensitivity is what makes loop-counter
/// value sets FINITE at the loop head (without it every counted loop
/// joins an unbounded 0,1,2,… chain into ⊤), so A3's counted
/// certificates and A1's index intervals depend on it.  Conditions of
/// any other shape narrow nothing (the full env flows through).
Env narrowed(const Program& p, ExprId cond, const Env& env, bool taken) {
  const ExprNode& e = p.exprs()[cond];
  ExprOp cmp = e.op;
  if (cmp != ExprOp::kEq && cmp != ExprOp::kNe && cmp != ExprOp::kLt &&
      cmp != ExprOp::kGe) {
    return env;
  }
  const ExprNode& lhs = p.exprs()[e.a];
  const ExprNode& rhs = p.exprs()[e.b];
  std::uint16_t local = 0;
  Word k = 0;
  bool swapped = false;
  if (lhs.op == ExprOp::kLocal && rhs.op == ExprOp::kConst) {
    local = static_cast<std::uint16_t>(lhs.imm);
    k = rhs.imm;
  } else if (lhs.op == ExprOp::kConst && rhs.op == ExprOp::kLocal) {
    local = static_cast<std::uint16_t>(rhs.imm);
    k = lhs.imm;
    swapped = true;  // cst OP local: compare(k, v)
  } else {
    return env;
  }
  const ValueSet& vs = env[local];
  if (vs.is_none()) return env;
  Env out = env;
  if (vs.is_top()) {
    // ⊤ can only narrow to an enumerable set on an equality edge.
    if ((cmp == ExprOp::kEq && taken) || (cmp == ExprOp::kNe && !taken)) {
      out[local] = ValueSet::constant(k);
    }
    return out;
  }
  ValueSet kept = ValueSet::none();
  for (const Word v : vs.values()) {
    const Word cond_val = swapped ? apply_binary(cmp, k, v)
                                  : apply_binary(cmp, v, k);
    if ((cond_val != 0) == taken) kept.insert(v);
  }
  out[local] = kept;
  return out;
}

// ----------------------------------------------------------------- CFG

/// Successor pcs of op `pc` (0–2 entries; crash edges are handled
/// separately by the callers that model them).
void successors(const Program& p, std::uint32_t pc, std::uint32_t out[2],
                int& n) {
  const Op& op = p.ops()[pc];
  n = 0;
  switch (op.kind) {
    case OpKind::kHalt:
      break;
    case OpKind::kGoto:
      out[n++] = op.target;
      break;
    case OpKind::kBranch:
      out[n++] = op.target;
      if (op.target != pc + 1) out[n++] = pc + 1;
      break;
    default:
      out[n++] = pc + 1;
      break;
  }
}

/// Bitmask of the locals read by op `pc`'s operand expressions.
[[nodiscard]] std::uint32_t read_mask(const Program& p, std::uint32_t pc) {
  std::uint32_t mask = 0;
  const auto walk = [&](ExprId id, const auto& self) -> void {
    if (id == kNoExpr) return;
    const ExprNode& e = p.exprs()[id];
    if (e.op == ExprOp::kLocal) {
      mask |= 1u << static_cast<std::uint32_t>(e.imm);
      return;
    }
    if (e.op == ExprOp::kConst || e.op == ExprOp::kInput ||
        e.op == ExprOp::kPid) {
      return;
    }
    self(e.a, self);
    self(e.b, self);
    self(e.c, self);
  };
  const Op& op = p.ops()[pc];
  walk(op.index, walk);
  walk(op.expected, walk);
  walk(op.value, walk);
  return mask;
}

/// True when op `pc` defines a local (its dst is overwritten by the
/// assignment / the delivery).
[[nodiscard]] bool defines_dst(OpKind k) noexcept {
  return is_shared_op(k) || k == OpKind::kSet;
}

[[nodiscard]] const char* op_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kCas:
      return "cas";
    case OpKind::kRegRead:
      return "reg_read";
    case OpKind::kRegWrite:
      return "reg_write";
    case OpKind::kEnqueue:
      return "enqueue";
    case OpKind::kDequeue:
      return "dequeue";
    case OpKind::kSet:
      return "set";
    case OpKind::kBranch:
      return "branch";
    case OpKind::kGoto:
      return "goto";
    case OpKind::kHalt:
      return "halt";
  }
  return "?";
}

// ------------------------------------------------------------ fixpoint

/// How shared-op deliveries are modeled.
enum class Deliveries : std::uint8_t {
  /// Delivery = ⊤.  Over-approximates EVERY fault kind (arbitrary,
  /// invisible, overriding, silent, crashes) — the facts A1/A3/A4/A5
  /// derive from this fixpoint hold unconditionally.
  kUnconstrained,
  /// Overriding-closed semantics: the only writes a CAS object can
  /// experience under kOverriding (+ crashes) are desired values — by a
  /// successful CAS, by the overriding fault itself (which writes
  /// op.desired), or by the crash-after-CAS variant (the CAS effect
  /// lands).  Registers are always correct.  Only A2 may use this.
  kOverridingClosed,
};

struct Fixpoint {
  const Program& p;
  Deliveries mode;
  std::vector<Env> in;          ///< abstract env at each op's entry
  std::vector<bool> reachable;  ///< abstractly reachable pcs
  std::vector<ValueSet> objects;    ///< kOverridingClosed: V(o)
  std::vector<ValueSet> registers;  ///< kOverridingClosed: R(r)

  Fixpoint(const Program& prog, Deliveries m) : p(prog), mode(m) {
    const std::size_t n = p.ops().size();
    const std::size_t nl = p.locals().size();
    in.assign(n, Env(nl, ValueSet::none()));
    reachable.assign(n, false);
    if (mode == Deliveries::kOverridingClosed) {
      objects.assign(p.num_objects(), ValueSet::constant(kBottomWord));
      registers.assign(p.num_registers(), ValueSet::constant(kBottomWord));
    }
    run();
  }

  /// Concrete indices a shared op may address, given its abstract index.
  [[nodiscard]] std::vector<std::uint32_t> touched(const ValueSet& idx,
                                                   std::uint32_t bound) const {
    std::vector<std::uint32_t> out;
    if (idx.is_top()) {
      for (std::uint32_t i = 0; i < bound; ++i) out.push_back(i);
      return out;
    }
    for (const Word w : idx.values()) {
      if (w < bound) out.push_back(static_cast<std::uint32_t>(w));
    }
    return out;
  }

 private:
  void run() {
    const auto n = static_cast<std::uint32_t>(p.ops().size());
    std::deque<std::uint32_t> work;
    std::vector<bool> queued(n, false);
    const auto enqueue = [&](std::uint32_t pc) {
      if (!queued[pc]) {
        queued[pc] = true;
        work.push_back(pc);
      }
    };
    const auto propagate = [&](std::uint32_t to, const Env& env) {
      if (!reachable[to]) {
        in[to] = env;
        reachable[to] = true;
        enqueue(to);
        return;
      }
      bool changed = false;
      for (std::size_t l = 0; l < env.size(); ++l) {
        changed = in[to][l].join(env[l]) || changed;
      }
      if (changed) enqueue(to);
    };
    // A shared-state join makes every CAS/register read stale; re-run
    // them (their dst reads the grown set).
    const auto requeue_shared_readers = [&] {
      for (std::uint32_t pc = 0; pc < n; ++pc) {
        const OpKind k = p.ops()[pc].kind;
        if (reachable[pc] && (k == OpKind::kCas || k == OpKind::kRegRead)) {
          enqueue(pc);
        }
      }
    };

    // Entry env: initializers evaluated with input/pid = ⊤.  finalize()
    // (both modes) rejects initializers that reference locals, so the
    // eval env is irrelevant; ⊤ keeps it sound regardless.
    {
      const Env unknowns(p.locals().size(), ValueSet::top());
      Env entry(p.locals().size(), ValueSet::none());
      for (std::size_t l = 0; l < p.locals().size(); ++l) {
        entry[l] = eval_expr(p, p.locals()[l].init, unknowns);
      }
      propagate(0, entry);
    }

    const bool crashes = p.has_recovery();
    while (!work.empty()) {
      const std::uint32_t pc = work.front();
      work.pop_front();
      queued[pc] = false;
      const Op& op = p.ops()[pc];
      const Env E = in[pc];  // copy: propagate() may touch in[pc] itself
      switch (op.kind) {
        case OpKind::kHalt:
          break;
        case OpKind::kGoto:
          propagate(op.target, E);
          break;
        case OpKind::kBranch: {
          const ValueSet cond = eval_expr(p, op.value, E);
          if (cond.may_be_nonzero()) {
            propagate(op.target, narrowed(p, op.value, E, true));
          }
          if (cond.contains(0)) {
            propagate(pc + 1, narrowed(p, op.value, E, false));
          }
          break;
        }
        case OpKind::kSet: {
          Env out = E;
          out[op.dst] = eval_expr(p, op.value, E);
          propagate(pc + 1, out);
          break;
        }
        default: {  // shared ops — pause points
          // Crash edge: a crash while paused HERE wipes the volatile
          // locals to 0 and re-enters at the recovery pc.
          if (crashes) {
            Env crashed = E;
            for (std::size_t l = 0; l < crashed.size(); ++l) {
              if (!p.locals()[l].persistent) {
                crashed[l] = ValueSet::constant(0);
              }
            }
            propagate(p.recovery_pc(), crashed);
          }
          ValueSet dst = ValueSet::top();
          if (mode == Deliveries::kOverridingClosed) {
            switch (op.kind) {
              case OpKind::kCas: {
                const ValueSet idx = eval_expr(p, op.index, E);
                const ValueSet desired = eval_expr(p, op.value, E);
                dst = ValueSet::none();
                bool shared_changed = false;
                for (const std::uint32_t o : touched(idx, op.index_bound)) {
                  dst.join(objects[o]);  // delivery = old content
                  shared_changed = objects[o].join(desired) || shared_changed;
                }
                if (shared_changed) requeue_shared_readers();
                break;
              }
              case OpKind::kRegRead: {
                const ValueSet idx = eval_expr(p, op.index, E);
                dst = ValueSet::none();
                for (const std::uint32_t r : touched(idx, op.index_bound)) {
                  dst.join(registers[r]);
                }
                break;
              }
              case OpKind::kRegWrite: {
                const ValueSet idx = eval_expr(p, op.index, E);
                const ValueSet val = eval_expr(p, op.value, E);
                bool shared_changed = false;
                for (const std::uint32_t r : touched(idx, op.index_bound)) {
                  shared_changed = registers[r].join(val) || shared_changed;
                }
                if (shared_changed) requeue_shared_readers();
                dst = ValueSet::constant(kBottomWord);  // delivery scratch
                break;
              }
              default:
                break;  // queue ops: A2 is vacuous for queue clients
            }
          }
          Env out = E;
          out[op.dst] = dst;
          propagate(pc + 1, out);
          break;
        }
      }
    }
  }
};

// ------------------------------------------------------------ A3: SCCs

/// Kosaraju strongly-connected components over the op CFG.  Returns the
/// component id of each pc; `nontrivial` lists components that contain a
/// cycle (size > 1, or a self-edge).
struct SccResult {
  std::vector<std::uint32_t> comp;
  std::vector<std::vector<std::uint32_t>> members;  ///< per component
  std::vector<std::uint32_t> nontrivial;            ///< component ids
};

[[nodiscard]] SccResult compute_sccs(const Program& p) {
  const auto n = static_cast<std::uint32_t>(p.ops().size());
  std::vector<std::vector<std::uint32_t>> adj(n);
  std::vector<std::vector<std::uint32_t>> radj(n);
  std::vector<bool> self_edge(n, false);
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    std::uint32_t s[2];
    int cnt = 0;
    successors(p, pc, s, cnt);
    for (int i = 0; i < cnt; ++i) {
      adj[pc].push_back(s[i]);
      radj[s[i]].push_back(pc);
      if (s[i] == pc) self_edge[pc] = true;
    }
  }
  // Pass 1: post-order over the forward graph.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  {
    std::vector<std::uint8_t> state(n, 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    for (std::uint32_t root = 0; root < n; ++root) {
      if (state[root] != 0) continue;
      state[root] = 1;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [u, i] = stack.back();
        if (i < adj[u].size()) {
          const std::uint32_t v = adj[u][i++];
          if (state[v] == 0) {
            state[v] = 1;
            stack.emplace_back(v, 0);
          }
        } else {
          state[u] = 2;
          order.push_back(u);
          stack.pop_back();
        }
      }
    }
  }
  // Pass 2: reverse-graph sweep in reverse finishing order.
  SccResult r;
  r.comp.assign(n, 0xFFFFFFFFu);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (r.comp[*it] != 0xFFFFFFFFu) continue;
    const auto cid = static_cast<std::uint32_t>(r.members.size());
    r.members.emplace_back();
    std::vector<std::uint32_t> stack{*it};
    r.comp[*it] = cid;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      r.members[cid].push_back(u);
      for (const std::uint32_t v : radj[u]) {
        if (r.comp[v] == 0xFFFFFFFFu) {
          r.comp[v] = cid;
          stack.push_back(v);
        }
      }
    }
  }
  for (std::uint32_t cid = 0; cid < r.members.size(); ++cid) {
    auto& m = r.members[cid];
    std::sort(m.begin(), m.end());
    if (m.size() > 1 || self_edge[m.front()]) r.nontrivial.push_back(cid);
  }
  return r;
}

/// True when every cycle inside the SCC passes through one of the
/// `removed` pcs — i.e. the SCC subgraph minus those nodes is acyclic.
[[nodiscard]] bool cycles_all_pass_through(
    const Program& p, const std::vector<std::uint32_t>& scc,
    const SccResult& sccs, const std::vector<bool>& removed) {
  const std::uint32_t cid = sccs.comp[scc.front()];
  std::vector<std::uint32_t> nodes;
  for (const std::uint32_t pc : scc) {
    if (!removed[pc]) nodes.push_back(pc);
  }
  // 3-color DFS over the remaining subgraph.
  enum : std::uint8_t { kNew, kOpen, kDone };
  std::vector<std::uint8_t> state(p.ops().size(), kNew);
  const auto in_sub = [&](std::uint32_t pc) {
    return sccs.comp[pc] == cid && !removed[pc];
  };
  for (const std::uint32_t root : nodes) {
    if (state[root] != kNew) continue;
    std::vector<std::pair<std::uint32_t, int>> stack;
    state[root] = kOpen;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      std::uint32_t s[2];
      int cnt = 0;
      successors(p, u, s, cnt);
      if (i < cnt) {
        const std::uint32_t v = s[i++];
        if (!in_sub(v)) continue;
        if (state[v] == kOpen) return false;  // cycle avoiding `removed`
        if (state[v] == kNew) {
          state[v] = kOpen;
          stack.emplace_back(v, 0);
        }
      } else {
        state[u] = kDone;
        stack.pop_back();
      }
    }
  }
  return true;
}

/// Tries to certify the SCC as a counted loop: a local ℓ whose only
/// in-SCC writes are `ℓ ← ℓ + c` (constant c ≥ 1), through which every
/// in-SCC cycle passes, and whose abstract value set over the SCC is
/// finite.  Each increment strictly advances ℓ (iterates are pairwise
/// distinct far beyond the set size), and every iteration executes an
/// increment — so the loop iterates at most |value set| times.
[[nodiscard]] bool try_counted(const Program& p, const Fixpoint& agnostic,
                               const std::vector<std::uint32_t>& scc,
                               const SccResult& sccs, LoopCertificate& cert) {
  const std::size_t nl = p.locals().size();
  for (std::uint16_t l = 0; l < nl; ++l) {
    std::vector<std::uint32_t> increments;
    bool disqualified = false;
    for (const std::uint32_t pc : scc) {
      const Op& op = p.ops()[pc];
      if (!defines_dst(op.kind) || op.dst != l) continue;
      if (op.kind != OpKind::kSet) {
        disqualified = true;  // a delivery clobbers the counter
        break;
      }
      const ExprNode& e = p.exprs()[op.value];
      const bool is_increment =
          e.op == ExprOp::kAdd && e.a != kNoExpr && e.b != kNoExpr &&
          p.exprs()[e.a].op == ExprOp::kLocal && p.exprs()[e.a].imm == l &&
          p.exprs()[e.b].op == ExprOp::kConst && p.exprs()[e.b].imm >= 1 &&
          p.exprs()[e.b].imm <= 0xFFFFFFFFULL;
      if (!is_increment) {
        disqualified = true;
        break;
      }
      increments.push_back(pc);
    }
    if (disqualified || increments.empty()) continue;
    std::vector<bool> removed(p.ops().size(), false);
    for (const std::uint32_t pc : increments) removed[pc] = true;
    if (!cycles_all_pass_through(p, scc, sccs, removed)) continue;
    ValueSet range = ValueSet::none();
    for (const std::uint32_t pc : scc) {
      range.join(agnostic.in[pc][l]);
      if (range.is_top()) break;
    }
    if (range.is_top() || range.is_none()) continue;
    cert.kind = LoopCertificate::Kind::kCounted;
    cert.local = p.locals()[l].name;
    cert.bound = range.values().size();
    return true;
  }
  return false;
}

// ------------------------------------------------------------ rendering

[[nodiscard]] std::string word_str(Word w) {
  return w == kBottomWord ? std::string("bottom") : std::to_string(w);
}

[[nodiscard]] std::string pc_list(const std::vector<std::uint32_t>& pcs) {
  std::string out = "{";
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(pcs[i]);
  }
  out += "}";
  return out;
}

}  // namespace

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::kProved:
      return "proved";
    case Verdict::kFlagged:
      return "flagged";
    case Verdict::kViolated:
      return "violated";
  }
  return "?";
}

AnalysisReport analyze(const Program& p) {
  AnalysisReport r;
  r.program = p.name();
  r.simulable = !p.uses_queue();
  r.num_ops = static_cast<std::uint32_t>(p.ops().size());
  r.num_objects = p.num_objects();
  r.has_recovery = p.has_recovery();
  const auto n = r.num_ops;
  const auto nl = static_cast<std::uint32_t>(p.locals().size());

  // Delivery-agnostic fixpoint: the substrate of A1/A3 (and sound under
  // every fault kind).
  const Fixpoint agnostic(p, Deliveries::kUnconstrained);

  // ---- A1: static footprints -----------------------------------------
  r.footprints.assign(n, sched::StaticFootprint{});
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const Op& op = p.ops()[pc];
    if (op.kind != OpKind::kCas && op.kind != OpKind::kRegRead &&
        op.kind != OpKind::kRegWrite) {
      continue;  // local ops and queue ops keep Space::kNone
    }
    sched::StaticFootprint& fp = r.footprints[pc];
    fp.space = op.kind == OpKind::kCas
                   ? sched::StaticFootprint::Space::kObject
                   : sched::StaticFootprint::Space::kRegister;
    fp.writes = op.kind != OpKind::kRegRead;
    fp.lo = 0;
    fp.hi = op.index_bound;
    ++r.shared_sites;
    if (!agnostic.reachable[pc]) continue;  // A5 will flag it; keep bound
    const ValueSet idx = eval_expr(p, op.index, agnostic.in[pc]);
    if (idx.is_singleton() && idx.singleton() < op.index_bound) {
      fp.exact = true;
      fp.lo = static_cast<std::uint32_t>(idx.singleton());
      fp.hi = fp.lo + 1;
      ++r.exact_sites;
    } else if (!idx.is_top() && !idx.is_none()) {
      Word lo = kBottomWord;
      Word hi = 0;
      for (const Word w : idx.values()) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
      }
      if (hi < op.index_bound) {
        fp.lo = static_cast<std::uint32_t>(lo);
        fp.hi = static_cast<std::uint32_t>(hi) + 1;
      }
    }
  }

  // ---- A2: overriding immunity ---------------------------------------
  if (r.simulable && p.num_objects() > 0) {
    const Fixpoint ov(p, Deliveries::kOverridingClosed);
    for (std::uint32_t o = 0; o < p.num_objects(); ++o) {
      ObjectImmunity oi;
      oi.object = o;
      // The reachable CAS sites that may address object o.
      std::vector<std::uint32_t> sites;
      for (std::uint32_t pc = 0; pc < n; ++pc) {
        const Op& op = p.ops()[pc];
        if (op.kind != OpKind::kCas || !ov.reachable[pc]) continue;
        const ValueSet idx = eval_expr(p, op.index, ov.in[pc]);
        const auto objs = ov.touched(idx, op.index_bound);
        if (std::find(objs.begin(), objs.end(), o) != objs.end()) {
          sites.push_back(pc);
        }
      }
      const ValueSet& contents = ov.objects[o];
      oi.values_top = contents.is_top();
      if (!contents.is_top()) oi.values = contents.values();
      if (sites.empty()) {
        oi.immune = true;
        oi.reason = "no reachable CAS addresses this object";
      } else if (contents.is_top()) {
        oi.reason = "content set is unbounded (top)";
      } else {
        // Immune iff for every possible content b and every CAS site,
        // every (expected, desired) pair satisfies b==e or b==d — i.e.
        // the expected set or the desired set is exactly {b}.  Then the
        // overriding manifest condition (b≠e ∧ b≠d) is unsatisfiable.
        oi.immune = true;
        for (const std::uint32_t pc : sites) {
          const Op& op = p.ops()[pc];
          const ValueSet exp = eval_expr(p, op.expected, ov.in[pc]);
          const ValueSet des = eval_expr(p, op.value, ov.in[pc]);
          for (const Word b : contents.values()) {
            const bool covered =
                (exp.is_singleton() && exp.singleton() == b) ||
                (des.is_singleton() && des.singleton() == b);
            if (!covered) {
              oi.immune = false;
              oi.reason = "CAS at pc " + std::to_string(pc) +
                          " may see content " + word_str(b) +
                          " with expected!=content and desired!=content";
              break;
            }
          }
          if (!oi.immune) break;
        }
        if (oi.immune) {
          oi.reason =
              "every reachable CAS pins expected or desired to each "
              "possible content value";
        }
      }
      if (oi.immune && o < 64) r.immune_objects |= 1ULL << o;
      r.objects.push_back(std::move(oi));
    }
  }

  // ---- A3: budget boundedness ----------------------------------------
  {
    const SccResult sccs = compute_sccs(p);
    for (const std::uint32_t cid : sccs.nontrivial) {
      LoopCertificate cert;
      cert.pcs = sccs.members[cid];
      bool has_shared = false;
      for (const std::uint32_t pc : cert.pcs) {
        if (is_shared_op(p.ops()[pc].kind)) has_shared = true;
      }
      if (!has_shared) {
        cert.kind = LoopCertificate::Kind::kPausedCycle;
        r.a3 = Verdict::kViolated;
      } else if (!try_counted(p, agnostic, cert.pcs, sccs, cert)) {
        cert.kind = LoopCertificate::Kind::kCasRetry;
        if (r.a3 == Verdict::kProved) r.a3 = Verdict::kFlagged;
      }
      r.loops.push_back(std::move(cert));
    }
  }

  // ---- A4: recovery soundness ----------------------------------------
  if (p.has_recovery()) {
    const std::uint32_t entry = p.recovery_pc();
    const std::uint32_t universe = nl >= 32 ? 0xFFFFFFFFu : (1u << nl) - 1;
    std::uint32_t persist_mask = 0;
    for (std::uint32_t l = 0; l < nl; ++l) {
      if (p.locals()[l].persistent) persist_mask |= 1u << l;
    }
    std::vector<std::uint32_t> def_in(n, universe);
    std::vector<bool> seen(n, false);
    std::deque<std::uint32_t> work;
    def_in[entry] = persist_mask;
    seen[entry] = true;
    work.push_back(entry);
    while (!work.empty()) {
      const std::uint32_t pc = work.front();
      work.pop_front();
      const Op& op = p.ops()[pc];
      std::uint32_t out = def_in[pc];
      if (defines_dst(op.kind)) out |= 1u << op.dst;
      std::uint32_t s[2];
      int cnt = 0;
      successors(p, pc, s, cnt);
      for (int i = 0; i < cnt; ++i) {
        const std::uint32_t to = s[i];
        const std::uint32_t met = seen[to] ? (def_in[to] & out) : out;
        if (!seen[to] || met != def_in[to]) {
          def_in[to] = met;
          seen[to] = true;
          work.push_back(to);
        }
      }
    }
    // A volatile local read before re-definition on some recovery path.
    std::uint32_t reported = 0;  // one witness per local keeps it short
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      if (!seen[pc]) continue;
      const std::uint32_t bad =
          read_mask(p, pc) & ~def_in[pc] & ~persist_mask & universe;
      for (std::uint32_t l = 0; l < nl; ++l) {
        if ((bad & (1u << l)) == 0 || (reported & (1u << l)) != 0) continue;
        reported |= 1u << l;
        RecoveryWitness w;
        w.local = p.locals()[l].name;
        w.read_pc = pc;
        // BFS witness: entry → pc, never crossing a definition of l.
        std::vector<std::uint32_t> parent(n, 0xFFFFFFFFu);
        std::deque<std::uint32_t> q{entry};
        std::vector<bool> vis(n, false);
        vis[entry] = true;
        while (!q.empty()) {
          const std::uint32_t u = q.front();
          q.pop_front();
          if (u == pc) break;
          const Op& uop = p.ops()[u];
          if (defines_dst(uop.kind) && uop.dst == l) continue;
          std::uint32_t us[2];
          int ucnt = 0;
          successors(p, u, us, ucnt);
          for (int i = 0; i < ucnt; ++i) {
            if (!vis[us[i]]) {
              vis[us[i]] = true;
              parent[us[i]] = u;
              q.push_back(us[i]);
            }
          }
        }
        for (std::uint32_t u = pc; u != 0xFFFFFFFFu; u = parent[u]) {
          w.path.push_back(u);
          if (u == entry) break;
        }
        std::reverse(w.path.begin(), w.path.end());
        r.recovery_witnesses.push_back(std::move(w));
        r.a4 = Verdict::kViolated;
      }
    }
  }

  // ---- A5: dead code + encode coverage -------------------------------
  {
    // Syntactic reachability (every branch edge taken): unlike the
    // abstract fixpoint's, this never prunes a defensive branch, so a
    // "dead op" finding is a structural fact about the CFG.
    std::vector<bool> reach(n, false);
    std::deque<std::uint32_t> work{0};
    reach[0] = true;
    if (p.has_recovery() && !reach[p.recovery_pc()]) {
      reach[p.recovery_pc()] = true;
      work.push_back(p.recovery_pc());
    }
    while (!work.empty()) {
      const std::uint32_t pc = work.front();
      work.pop_front();
      std::uint32_t s[2];
      int cnt = 0;
      successors(p, pc, s, cnt);
      for (int i = 0; i < cnt; ++i) {
        if (!reach[s[i]]) {
          reach[s[i]] = true;
          work.push_back(s[i]);
        }
      }
    }
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      if (!reach[pc]) r.unreachable_pcs.push_back(pc);
    }
    if (!r.unreachable_pcs.empty()) r.a5 = Verdict::kViolated;

    // Backward liveness (recomputed independently of finalize()), then
    // the coverage obligation: live-at-pause ⊆ encode() layout.
    std::vector<std::uint32_t> reads(n, 0);
    for (std::uint32_t pc = 0; pc < n; ++pc) reads[pc] = read_mask(p, pc);
    std::vector<std::uint32_t> live(n, 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t i = n; i-- > 0;) {
        const Op& op = p.ops()[i];
        std::uint32_t out = 0;
        std::uint32_t s[2];
        int cnt = 0;
        successors(p, i, s, cnt);
        for (int k = 0; k < cnt; ++k) out |= live[s[k]];
        if (defines_dst(op.kind)) out &= ~(1u << op.dst);
        out |= reads[i];
        if (out != live[i]) {
          live[i] = out;
          changed = true;
        }
      }
    }
    std::uint32_t layout_mask = 0;
    for (const std::uint16_t l : p.layout()) layout_mask |= 1u << l;
    std::uint32_t pause_live = 0;
    for (std::uint32_t pc = 0; pc < n; ++pc) {
      const Op& op = p.ops()[pc];
      if (!is_shared_op(op.kind) && op.kind != OpKind::kHalt) continue;
      pause_live |= live[pc];
      const std::uint32_t missing = live[pc] & ~layout_mask;
      for (std::uint32_t l = 0; l < nl; ++l) {
        if ((missing & (1u << l)) == 0) continue;
        r.coverage_violations.push_back(
            CoverageViolation{pc, op_name(op.kind), p.locals()[l].name});
        r.a5 = Verdict::kViolated;
      }
    }
    for (const std::uint16_t l : p.layout()) {
      if ((pause_live & (1u << l)) == 0) {
        r.unused_layout_locals.push_back(p.locals()[l].name);
      }
    }
  }

  return r;
}

std::shared_ptr<const sched::ProgramFacts> make_facts(
    const AnalysisReport& report) {
  auto facts = std::make_shared<sched::ProgramFacts>();
  facts->footprints = report.footprints;
  facts->immune_objects = report.immune_objects;
  return facts;
}

std::shared_ptr<const sched::ProgramFacts> program_facts(
    const Program& program) {
  return make_facts(analyze(program));
}

// --------------------------------------------------------------- reports

std::string render_human(const AnalysisReport& r) {
  std::string out;
  const auto line = [&](const std::string& s) {
    out += s;
    out += '\n';
  };
  line("ffcheck: " + r.program + " — " + std::to_string(r.num_ops) +
       " ops, " + std::to_string(r.num_objects) + " objects" +
       (r.simulable ? "" : " [queue client: not simulable]") +
       (r.has_recovery ? " [recoverable]" : ""));
  line("  A1 footprints   " + std::string(verdict_name(r.a1)) + "  " +
       std::to_string(r.exact_sites) + "/" + std::to_string(r.shared_sites) +
       " shared sites exact");
  std::uint32_t immune_count = 0;
  for (const auto& oi : r.objects) {
    if (oi.immune) ++immune_count;
  }
  line("  A2 immunity     " + std::string(verdict_name(r.a2)) + "  " +
       std::to_string(immune_count) + "/" + std::to_string(r.objects.size()) +
       " objects overriding-immune");
  for (const auto& oi : r.objects) {
    std::string vals = oi.values_top ? "top" : "{";
    if (!oi.values_top) {
      for (std::size_t i = 0; i < oi.values.size(); ++i) {
        if (i != 0) vals += ",";
        vals += word_str(oi.values[i]);
      }
      vals += "}";
    }
    line(std::string("     object ") + std::to_string(oi.object) + ": " +
         (oi.immune ? "immune" : "not immune") + ", contents " + vals +
         " — " + oi.reason);
  }
  line("  A3 boundedness  " + std::string(verdict_name(r.a3)) + "  " +
       std::to_string(r.loops.size()) + " loop(s)");
  for (const auto& loop : r.loops) {
    switch (loop.kind) {
      case LoopCertificate::Kind::kCounted:
        line("     loop " + pc_list(loop.pcs) + ": counted — at most " +
             std::to_string(loop.bound) + " iterations via counter `" +
             loop.local + "`");
        break;
      case LoopCertificate::Kind::kCasRetry:
        line("     loop " + pc_list(loop.pcs) +
             ": retry through a shared op — bounded by the fault/crash "
             "budget, not statically counted");
        break;
      case LoopCertificate::Kind::kPausedCycle:
        line("     loop " + pc_list(loop.pcs) +
             ": VIOLATION — cycle contains no shared op (could spin "
             "without pausing)");
        break;
    }
  }
  line("  A4 recovery     " + std::string(verdict_name(r.a4)) +
       (r.has_recovery ? "" : "  (no recovery entry: vacuous)"));
  for (const auto& w : r.recovery_witnesses) {
    line("     volatile `" + w.local + "` read at pc " +
         std::to_string(w.read_pc) +
         " before re-definition; witness path " + pc_list(w.path));
  }
  line("  A5 dead/layout  " + std::string(verdict_name(r.a5)));
  if (!r.unreachable_pcs.empty()) {
    line("     unreachable ops at pcs " + pc_list(r.unreachable_pcs));
  }
  for (const auto& cv : r.coverage_violations) {
    line("     local `" + cv.local + "` live at " + cv.op + " (pc " +
         std::to_string(cv.pc) + ") but missing from the encode() layout");
  }
  for (const auto& l : r.unused_layout_locals) {
    line("     note: layout local `" + l +
         "` is never live at a pause (wasted encoding word)");
  }
  return out;
}

void render_json(const AnalysisReport& r, util::JsonWriter& w) {
  const auto u64 = [](auto v) { return static_cast<std::uint64_t>(v); };
  w.begin_object();
  w.kv("program", r.program);
  w.kv("simulable", r.simulable);
  w.kv("ops", u64(r.num_ops));
  w.kv("objects", u64(r.num_objects));
  w.kv("has_recovery", r.has_recovery);
  w.kv("ok", r.ok());

  w.key("a1").begin_object();
  w.kv("verdict", verdict_name(r.a1));
  w.kv("shared_sites", u64(r.shared_sites));
  w.kv("exact_sites", u64(r.exact_sites));
  w.key("footprints").begin_array();
  for (std::uint32_t pc = 0; pc < r.footprints.size(); ++pc) {
    const sched::StaticFootprint& fp = r.footprints[pc];
    if (fp.space == sched::StaticFootprint::Space::kNone) continue;
    w.begin_object();
    w.kv("pc", u64(pc));
    w.kv("space", fp.space == sched::StaticFootprint::Space::kObject
                      ? "object"
                      : "register");
    w.kv("exact", fp.exact);
    w.kv("writes", fp.writes);
    w.kv("lo", u64(fp.lo));
    w.kv("hi", u64(fp.hi));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("a2").begin_object();
  w.kv("verdict", verdict_name(r.a2));
  w.kv("immune_mask", r.immune_objects);
  w.key("objects").begin_array();
  for (const auto& oi : r.objects) {
    w.begin_object();
    w.kv("object", u64(oi.object));
    w.kv("immune", oi.immune);
    w.kv("values_top", oi.values_top);
    w.key("values").begin_array();
    for (const Word v : oi.values) w.value(v);
    w.end_array();
    w.kv("reason", oi.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("a3").begin_object();
  w.kv("verdict", verdict_name(r.a3));
  w.key("loops").begin_array();
  for (const auto& loop : r.loops) {
    w.begin_object();
    const char* kind = loop.kind == LoopCertificate::Kind::kCounted
                           ? "counted"
                           : loop.kind == LoopCertificate::Kind::kCasRetry
                                 ? "cas_retry"
                                 : "paused_cycle";
    w.kv("kind", kind);
    w.key("pcs").begin_array();
    for (const std::uint32_t pc : loop.pcs) w.value(u64(pc));
    w.end_array();
    if (loop.kind == LoopCertificate::Kind::kCounted) {
      w.kv("local", loop.local);
      w.kv("bound", loop.bound);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("a4").begin_object();
  w.kv("verdict", verdict_name(r.a4));
  w.kv("has_recovery", r.has_recovery);
  w.key("witnesses").begin_array();
  for (const auto& wit : r.recovery_witnesses) {
    w.begin_object();
    w.kv("local", wit.local);
    w.kv("read_pc", u64(wit.read_pc));
    w.key("path").begin_array();
    for (const std::uint32_t pc : wit.path) w.value(u64(pc));
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("a5").begin_object();
  w.kv("verdict", verdict_name(r.a5));
  w.key("unreachable").begin_array();
  for (const std::uint32_t pc : r.unreachable_pcs) w.value(u64(pc));
  w.end_array();
  w.key("coverage").begin_array();
  for (const auto& cv : r.coverage_violations) {
    w.begin_object();
    w.kv("pc", u64(cv.pc));
    w.kv("op", cv.op);
    w.kv("local", cv.local);
    w.end_object();
  }
  w.end_array();
  w.key("unused_layout").begin_array();
  for (const auto& l : r.unused_layout_locals) w.value(l);
  w.end_array();
  w.end_object();

  w.end_object();
}

}  // namespace ff::proto::analysis

// Factory-side caches.  Defined here (not in the headers) so machine.hpp
// and genapi.hpp do not depend on the analyzer; the once_flag makes the
// analysis run at most once per factory even when many SimWorlds are
// constructed from it (bench_b3 builds thousands).
namespace ff::proto {

std::shared_ptr<const sched::ProgramFacts> IrMachineFactory::facts() const {
  std::call_once(facts_once_, [this] {
    facts_cache_ = analysis::program_facts(*program_);
  });
  return facts_cache_;
}

namespace gen {

std::shared_ptr<const sched::ProgramFacts> GenMachineFactory::facts() const {
  std::call_once(facts_once_, [this] {
    facts_cache_ = analysis::program_facts(*program_);
  });
  return facts_cache_;
}

}  // namespace gen
}  // namespace ff::proto
