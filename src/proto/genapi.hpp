// Runtime interface of the ffgen-generated machines.
//
// tools/ffgen compiles each grid parameterization of every registry
// protocol into a straight-line StepMachine (no token dispatch) and a
// set of structure-of-arrays batch kernels.  This header is the only
// hand-written seam between that generated tree (src/proto/generated/)
// and the rest of the runtime:
//
//   * GenEntry     — one generated specialization: the fingerprint of the
//                    Program it was compiled from plus its entry points.
//   * find_generated — fingerprint → entry lookup (implemented by the
//                    generated gen_table.cpp).
//   * LaneView     — the column layout batch kernels read and write, so a
//                    StatePool can step thousands of paused machines with
//                    one indirect call per batch instead of one per lane.
//   * GenMachineFactory — MachineFactory adapter selected by
//                    proto::machine_factory() when the fingerprint hits.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "objects/shared_object.hpp"
#include "proto/ir.hpp"
#include "sched/program.hpp"

namespace ff::proto::gen {

/// LaneView.status values.  A halted lane keeps its decision in the
/// decision column and is skipped by batch kernels.
inline constexpr std::uint8_t kLanePaused = 0;
inline constexpr std::uint8_t kLaneHalted = 1;

/// Column-major state pool exposed to the generated batch kernels.
/// Local `i` of lane `l` lives at locals[i * stride + lane]; the op_*
/// columns mirror sched::PendingOp so the pool can rebuild the pending
/// shared op of any lane without touching machine objects.
struct LaneView {
  std::uint64_t* locals = nullptr;
  std::size_t stride = 0;        ///< lane capacity (column pitch)
  std::uint64_t* pid = nullptr;  ///< written by the pool, read on load
  std::uint32_t* pc = nullptr;
  std::uint8_t* status = nullptr;  ///< kLanePaused / kLaneHalted
  std::uint64_t* decision = nullptr;
  std::uint8_t* op_type = nullptr;  ///< sched::OpType of the pending op
  std::uint32_t* op_object = nullptr;
  std::uint64_t* op_expected = nullptr;
  std::uint64_t* op_desired = nullptr;
};

/// Constructs a fresh single-state machine (the machine_factory path).
using GenMakeFn = std::unique_ptr<sched::StepMachine> (*)(
    objects::ProcessId pid, std::uint64_t input);

/// Constructs a machine and stores its initial pause into `lane`.
using GenInitFn = void (*)(const LaneView& view, std::size_t lane,
                           objects::ProcessId pid, std::uint64_t input);

/// Delivers returned[lane] to every paused lane in [0, count) and runs
/// each to its next pause/halt — one indirect call per batch.
using GenBatchFn = void (*)(const LaneView& view, std::size_t count,
                            const std::uint64_t* returned);

struct GenEntry {
  std::uint64_t fingerprint = 0;
  GenMakeFn make = nullptr;
  GenInitFn init = nullptr;
  GenBatchFn batch = nullptr;
};

/// Fingerprint → generated entry, or nullptr when the parameterization
/// was not in the generation grid (callers fall back to IrMachine).
/// Defined by the generated src/proto/generated/gen_table.cpp.
[[nodiscard]] const GenEntry* find_generated(
    std::uint64_t fingerprint) noexcept;

/// MachineFactory whose make() constructs ffgen-generated machines.
/// Metadata (counts, pid-obliviousness, name) still comes from the
/// Program, which is also what tests fingerprint-check against.  Tests
/// detect generated selection via dynamic_cast to this type.
class GenMachineFactory final : public sched::MachineFactory {
 public:
  GenMachineFactory(std::shared_ptr<const Program> program,
                    const GenEntry* entry)
      : program_(std::move(program)), entry_(entry) {
    assert(program_ != nullptr && !program_->uses_queue());
    assert(entry_ != nullptr);
  }

  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override {
    return entry_->make(pid, input);
  }

  [[nodiscard]] std::uint32_t objects_used() const override {
    return program_->num_objects();
  }
  [[nodiscard]] std::uint32_t registers_used() const override {
    return program_->num_registers();
  }
  [[nodiscard]] bool pid_oblivious() const override {
    return !program_->uses_pid();
  }
  [[nodiscard]] std::string name() const override { return program_->name(); }

  /// ffcheck facts for the Program the machines were generated from;
  /// lazy, once per factory (defined in analysis/analysis.cpp).  Sound
  /// for the generated machines because codegen is semantics-preserving
  /// (the census differential in tests/test_codegen.cpp pins that) and
  /// they report the same per-op pcs via pending_site().
  [[nodiscard]] std::shared_ptr<const sched::ProgramFacts> facts()
      const override;

  [[nodiscard]] const std::shared_ptr<const Program>& program()
      const noexcept {
    return program_;
  }
  [[nodiscard]] const GenEntry& entry() const noexcept { return *entry_; }

 private:
  std::shared_ptr<const Program> program_;
  const GenEntry* entry_;
  mutable std::once_flag facts_once_;
  mutable std::shared_ptr<const sched::ProgramFacts> facts_cache_;
};

}  // namespace ff::proto::gen
