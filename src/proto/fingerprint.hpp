// Structural fingerprint of a finalized proto::Program.
//
// The ffgen code generator (tools/ffgen) stamps every emitted machine
// with the fingerprint of the Program it was compiled from, and
// proto::machine_factory() re-computes the fingerprint of the Program it
// just built to decide whether a generated machine exists for it.  The
// fold therefore covers every field that influences machine behaviour —
// ops, expression trees, locals (initializers and persistence), the
// encode() layout, derived operand bounds, pid-dependence and the
// recovery entry — so two Programs share a fingerprint only when the
// generated code for one is the generated code for the other.  A
// parameterization outside the generation grid simply misses the table
// and falls back to the IrMachine interpreter: selection is sound by
// construction, never by convention.
#pragma once

#include <cstdint>

#include "proto/ir.hpp"

namespace ff::proto {

[[nodiscard]] std::uint64_t program_fingerprint(
    const Program& program) noexcept;

}  // namespace ff::proto
