// ProtocolRegistry — the single name → IR + parameter-schema table.
//
// Every front end (examples/fault_explorer, the stress harness, the
// E-/B-series benches, hierarchy probes) resolves protocols here, so the
// simulator, the thread runtime and every report print the SAME canonical
// name — the old skew between Protocol::name() and MachineFactory::name()
// call sites cannot recur, because both adapters read Program::name().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "proto/machine.hpp"
#include "proto/protocol.hpp"

namespace ff::proto {

/// Name → value parameter bag for instantiating a registered protocol.
class Params {
 public:
  Params() = default;
  Params(std::initializer_list<std::pair<const std::string, std::uint64_t>>
             init)
      : kv_(init) {}

  Params& set(const std::string& key, std::uint64_t value) {
    kv_[key] = value;
    return *this;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }
  [[nodiscard]] std::uint64_t get(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::uint64_t> kv_;
};

struct ParamSpec {
  std::string name;
  std::uint64_t fallback = 0;
  std::string help;
};

struct ProtocolInfo {
  std::string name;     ///< canonical name (what every report prints)
  std::string summary;  ///< one-line description for --list-protocols
  std::vector<std::string> aliases;
  std::vector<ParamSpec> params;
  /// False for queue clients: they run under run_queue_client(), not the
  /// CAS simulator / consensus stress harness.
  bool simulable = true;
  std::shared_ptr<const Program> (*build)(const Params&) = nullptr;
};

class ProtocolRegistry {
 public:
  /// The process-wide table (immutable after construction).
  static const ProtocolRegistry& instance();

  /// Looks up a canonical name or alias; nullptr when unknown.
  [[nodiscard]] const ProtocolInfo* find(std::string_view name) const;
  [[nodiscard]] const std::vector<ProtocolInfo>& all() const noexcept {
    return infos_;
  }

 private:
  ProtocolRegistry();
  std::vector<ProtocolInfo> infos_;
};

/// Builds the IR for a registered protocol; throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] std::shared_ptr<const Program> build_program(
    std::string_view name, const Params& params = {});

/// Simulator-side adapter (throws for unknown/non-simulable protocols).
/// Selects the ffgen-generated machine when the Program's structural
/// fingerprint is in the generated table (src/proto/generated/), and
/// falls back to the IrMachine interpreter otherwise.
[[nodiscard]] std::unique_ptr<sched::MachineFactory> machine_factory(
    std::string_view name, const Params& params = {});

/// Same adapter, but always the IrMachine interpreter — the differential
/// oracle the generated machines are cross-checked against (test_codegen,
/// bench_b3 codegen_census_match).
[[nodiscard]] std::unique_ptr<sched::MachineFactory>
machine_factory_interpreted(std::string_view name, const Params& params = {});

/// Thread-side adapter over real shared objects (same IR, same name).
[[nodiscard]] std::unique_ptr<consensus::Protocol> protocol(
    std::string_view name, const Params& params,
    std::vector<objects::CasObject*> objects,
    std::vector<objects::AtomicRegister*> registers = {});

}  // namespace ff::proto
