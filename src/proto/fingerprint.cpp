#include "proto/fingerprint.hpp"

#include "util/rng.hpp"

namespace ff::proto {
namespace {

/// mix64 chain over the structural words.  Not a hot path (one call per
/// factory construction), so every word gets a full avalanche round.
struct Fold {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;

  void word(std::uint64_t v) noexcept { h = util::mix64(h ^ v); }

  void str(const std::string& s) noexcept {
    word(s.size());
    for (const char c : s) word(static_cast<unsigned char>(c));
  }
};

}  // namespace

std::uint64_t program_fingerprint(const Program& p) noexcept {
  Fold f;
  f.str(p.name());

  f.word(p.exprs().size());
  for (const ExprNode& e : p.exprs()) {
    f.word(static_cast<std::uint64_t>(e.op));
    f.word(e.imm);
    f.word(e.a);
    f.word(e.b);
    f.word(e.c);
  }

  f.word(p.ops().size());
  for (const Op& o : p.ops()) {
    f.word(static_cast<std::uint64_t>(o.kind));
    f.word(o.dst);
    f.word(o.index);
    f.word(o.index_bound);
    f.word(o.expected);
    f.word(o.value);
    f.word(o.target);
  }

  f.word(p.locals().size());
  for (const LocalSpec& l : p.locals()) {
    f.word(l.init);
    f.word(l.persistent ? 1 : 0);
  }

  f.word(p.layout().size());
  for (const std::uint16_t l : p.layout()) f.word(l);

  f.word(p.num_objects());
  f.word(p.num_registers());
  f.word(p.uses_pid() ? 1 : 0);
  f.word(p.uses_queue() ? 1 : 0);
  f.word(p.has_recovery() ? p.recovery_pc() : 0xFFFFFFFFULL);
  return f.h;
}

}  // namespace ff::proto
