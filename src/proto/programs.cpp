#include "proto/programs.hpp"

#include "model/tolerance.hpp"

namespace ff::proto {

// Layouts below reproduce the legacy machine encodings word for word:
// status/phase locals mirror the old explicit program counters, and the
// "decision slot" locals start at the input so pre-decision states encode
// the input exactly as the legacy machines did.

std::shared_ptr<const Program> single_cas_program() {
  ProgramBuilder b("single-cas");
  const auto dn = b.local("dn", b.cst(0));       // legacy done_ flag
  const auto out = b.local("out", b.input());    // input, then decision
  const auto r = b.scratch("r");
  b.emit(dn);
  b.emit(out);

  // old ← CAS(O_0, ⊥, out); if old ≠ ⊥ adopt it.
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.set(out, b.select(b.is_bottom(b.ref(r)), b.ref(out), b.ref(r)));
  b.set(dn, b.cst(1));
  b.halt(b.ref(out));
  return b.finalize();
}

std::shared_ptr<const Program> f_plus_one_program(std::uint32_t k) {
  ProgramBuilder b("f-plus-one");
  const auto i = b.local("i", b.cst(0));
  const auto out = b.local("out", b.input());
  b.emit(i);
  b.emit(out);
  if (k == 0) {  // degenerate: no objects, decide the input immediately
    b.halt(b.ref(out));
    return b.finalize();
  }
  const auto r = b.scratch("r");

  const auto loop = b.label();
  const auto done = b.label();
  b.bind(loop);  // for i = 0 to k-1
  b.branch(b.ge(b.ref(i), b.cst(k)), done);
  b.cas(r, b.ref(i), k, b.bottom(), b.ref(out));  // old ← CAS(O_i, ⊥, out)
  b.set(out, b.select(b.is_bottom(b.ref(r)), b.ref(out), b.ref(r)));
  b.set(i, b.add(b.ref(i), b.cst(1)));
  b.jump(loop);
  b.bind(done);
  b.halt(b.ref(out));
  return b.finalize();
}

namespace {

/// Shared body of staged_program / recoverable_staged_program.  The
/// recoverable variant differs ONLY in making the five state locals
/// persistent and binding the entry-point phase dispatch as the crash
/// recovery label — the op stream is identical.
std::shared_ptr<const Program> build_staged_body(const char* name,
                                                 std::uint32_t f,
                                                 std::uint32_t t,
                                                 std::uint32_t max_stage_override,
                                                 bool recoverable) {
  const auto max_stage =
      max_stage_override != 0
          ? max_stage_override
          : static_cast<std::uint32_t>(model::staged_max_stage(f, t));
  ProgramBuilder b(name);
  // Legacy encoding order: {phase, i, s, exp, output}.  phase 0 = main
  // stages, 1 = final stage, 2 = done — a pure encoding mirror of the
  // paused position, never read except by the maxStage = 0 entry guard
  // (and, in the recoverable variant, the crash-recovery dispatch, which
  // IS that same guard).
  const auto declare = [&](const char* local_name, ExprId init) {
    return recoverable ? b.persistent(local_name, init)
                       : b.local(local_name, init);
  };
  const auto phase = declare("phase", b.cst(max_stage == 0 ? 1 : 0));
  const auto i = declare("i", b.cst(0));
  const auto s = declare("s", b.cst(0));
  const auto exp = declare("exp", b.bottom());
  const auto out = declare("out", b.u32(b.input()));
  const auto r = b.scratch("r");
  b.emit(phase);
  b.emit(i);
  b.emit(s);
  b.emit(exp);
  b.emit(out);

  const auto main_loop = b.label();
  const auto adopt = b.label();
  const auto advance = b.label();
  const auto to_final = b.label();
  const auto final_loop = b.label();
  const auto retry_final = b.label();
  const auto set_done = b.label();

  // maxStage = 0 guard: skip straight to the final stage (line 3 never
  // admits a main-stage iteration).  In the recoverable variant this
  // entry dispatch doubles as the `recover:` label — a crashed process
  // resumes the stage walk from its persisted {phase, i, s, exp, out}.
  const auto entry = b.label();
  b.bind(entry);
  if (recoverable) b.recover_at(entry);
  b.branch(b.eq(b.ref(phase), b.cst(1)), final_loop);

  // Lines 5-16: old ← CAS(O_i, exp, ⟨output, s⟩) and the retry ladder.
  b.bind(main_loop);
  b.cas(r, b.ref(i), f, b.ref(exp), b.pack(b.ref(out), b.ref(s)));
  b.branch(b.eq(b.ref(r), b.ref(exp)), advance);  // line 16: success
  b.branch(b.land(b.lnot(b.is_bottom(b.ref(r))),  // line 8: old.stage ≥ s
                  b.ge(b.stage_of(b.ref(r)), b.ref(s))),
           adopt);
  b.set(exp, b.ref(r));  // line 15: repair exp, retry the same object
  b.jump(main_loop);

  // Lines 9-14: adopt the observed ⟨value, stage⟩.
  b.bind(adopt);
  b.set(out, b.value_of(b.ref(r)));  // line 9
  b.set(s, b.stage_of(b.ref(r)));    // line 10
  b.branch(b.eq(b.ref(s), b.cst(max_stage)), set_done);  // lines 11-12
  // Line 13: exp ← ⟨old.val, old.stage − 1⟩ (stage-0 wrap yields a
  // never-matching pair, repaired by line 15 on first use).
  b.set(exp, b.pack(b.value_of(b.ref(r)),
                    b.sub(b.stage_of(b.ref(r)), b.cst(1))));
  b.jump(advance);  // line 14

  // Lines 4 / 17-18: next object; stage rollover with the ⊥ filler.
  b.bind(advance);
  b.set(i, b.add(b.ref(i), b.cst(1)));
  b.branch(b.lt(b.ref(i), b.cst(f)), main_loop);
  b.set(exp, b.pack(b.select(b.is_bottom(b.ref(exp)),
                             b.cst(kStagedNeverValue),
                             b.value_of(b.ref(exp))),
                    b.ref(s)));  // line 17
  b.set(s, b.add(b.ref(s), b.cst(1)));  // line 18
  b.set(i, b.cst(0));
  b.branch(b.ge(b.ref(s), b.cst(max_stage)), to_final);  // line 3 exit
  b.jump(main_loop);

  b.bind(to_final);
  b.set(phase, b.cst(1));
  b.jump(final_loop);

  // Lines 19-23: write ⟨output, maxStage⟩ to O_0 until it sticks.
  b.bind(final_loop);
  b.cas(r, b.cst(0), f, b.ref(exp), b.pack(b.ref(out), b.cst(max_stage)));
  b.branch(b.land(b.ne(b.ref(r), b.ref(exp)),
                  b.lor(b.is_bottom(b.ref(r)),
                        b.lt(b.stage_of(b.ref(r)), b.cst(max_stage)))),
           retry_final);
  b.jump(set_done);  // line 23
  b.bind(retry_final);
  b.set(exp, b.ref(r));  // line 22
  b.jump(final_loop);

  b.bind(set_done);
  b.set(phase, b.cst(2));
  b.halt(b.ref(out));  // line 24
  return b.finalize();
}

}  // namespace

std::shared_ptr<const Program> staged_program(std::uint32_t f,
                                              std::uint32_t t,
                                              std::uint32_t max_stage_override) {
  return build_staged_body("staged", f, t, max_stage_override,
                           /*recoverable=*/false);
}

std::shared_ptr<const Program> recoverable_staged_program(
    std::uint32_t f, std::uint32_t t, std::uint32_t max_stage_override) {
  return build_staged_body("recoverable-staged", f, t, max_stage_override,
                           /*recoverable=*/true);
}

std::shared_ptr<const Program> recoverable_cas_program() {
  ProgramBuilder b("recoverable-cas");
  // dn mirrors done() into the encoding (the single-cas convention: the
  // machine block must determine the paused/halted position).  It is
  // volatile — a crash can only hit a paused machine, where dn = 0, so
  // the wipe is a no-op and dn is never live at recovery.
  const auto dn = b.local("dn", b.cst(0));
  // The proposal is the ONE persistent word (Golab's per-process stable
  // storage); the delivery scratch is volatile and wiped by a crash.
  const auto out = b.persistent("out", b.input());
  const auto r = b.scratch("r");
  b.emit(dn);
  b.emit(out);

  const auto retry = b.label();
  b.bind(retry);
  b.recover_at(retry);
  // old ← CAS(O_0, ⊥, out).  A crash-after loses only the response: the
  // recovery retry observes O_0 = out when we won (CAS returns out, the
  // select keeps it) or the winner's value otherwise — either way the
  // decision equals O_0's settled content, so agreement survives any
  // number of budgeted crashes.
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(out));
  b.set(out, b.select(b.is_bottom(b.ref(r)), b.ref(out), b.ref(r)));
  b.set(dn, b.cst(1));
  b.halt(b.ref(out));
  return b.finalize();
}

std::shared_ptr<const Program> announce_cas_program(std::uint32_t n) {
  ProgramBuilder b("announce-cas");
  const auto st = b.local("st", b.cst(0));   // legacy pc_ mirror
  const auto w = b.local("w", b.cst(0));     // legacy winner_
  const auto d = b.local("d", b.input());    // input, then decision
  const auto r = b.scratch("r");
  b.emit(st);
  b.emit(w);
  b.emit(d);

  b.reg_write(b.pid(), n, b.ref(d));  // announce: A[pid] ← input
  b.set(st, b.cst(1));
  b.cas(r, b.cst(0), 1, b.bottom(), b.pid());  // tiebreak: CAS(O_0, ⊥, pid)
  // Legacy truncates the winner pid to 32 bits (static_cast<ProcessId>).
  b.set(w, b.select(b.is_bottom(b.ref(r)), b.pid(), b.u32(b.ref(r))));
  b.set(st, b.cst(2));
  b.reg_read(r, b.ref(w), n);  // read the winner's announcement
  b.set(d, b.ref(r));
  b.set(st, b.cst(3));
  b.halt(b.ref(d));
  return b.finalize();
}

std::shared_ptr<const Program> tas_program(std::uint32_t n) {
  ProgramBuilder b("tas");
  const auto st = b.local("st", b.cst(0));
  const auto d = b.local("d", b.input());
  const auto r = b.scratch("r");
  b.emit(st);
  b.emit(d);

  const auto won = b.label();

  b.reg_write(b.pid(), n, b.ref(d));  // announce A[pid] ← input
  b.set(st, b.cst(1));
  b.cas(r, b.cst(0), 1, b.bottom(), b.cst(1));  // TAS the bit
  b.branch(b.is_bottom(b.ref(r)), won);
  // Lost: read the other announcement (pid ≥ 2: the naive A[0]).
  b.set(st, b.cst(2));
  b.reg_read(r, b.select(b.lt(b.pid(), b.cst(2)),
                         b.sub(b.cst(1), b.pid()), b.cst(0)),
             n);
  b.set(d, b.ref(r));
  b.set(st, b.cst(3));
  b.halt(b.ref(d));
  b.bind(won);  // won the bit: keep the input
  b.set(st, b.cst(3));
  b.halt(b.ref(d));
  return b.finalize();
}

std::shared_ptr<const Program> retry_silent_program() {
  ProgramBuilder b("retry-silent");
  const auto st = b.local("st", b.cst(0));
  const auto d = b.local("d", b.input());
  const auto r = b.scratch("r");
  b.emit(st);
  b.emit(d);

  const auto attempt = b.label();
  const auto adopt_r = b.label();
  const auto decide_mine = b.label();

  b.bind(attempt);  // old ← CAS(O, ⊥, val)
  b.cas(r, b.cst(0), 1, b.bottom(), b.ref(d));
  b.branch(b.lnot(b.is_bottom(b.ref(r))), adopt_r);  // a write landed
  b.set(st, b.cst(1));
  b.cas(r, b.cst(0), 1, b.ref(d), b.ref(d));  // conf ← CAS(O, val, val)
  b.branch(b.eq(b.ref(r), b.ref(d)), decide_mine);   // content is val
  b.branch(b.lnot(b.is_bottom(b.ref(r))), adopt_r);  // someone else's
  b.set(st, b.cst(0));  // conf = ⊥ ⇒ our write was dropped — retry
  b.jump(attempt);

  b.bind(adopt_r);
  b.set(d, b.ref(r));
  b.bind(decide_mine);
  b.set(st, b.cst(2));
  b.halt(b.ref(d));
  return b.finalize();
}

std::shared_ptr<const Program> queue_client_program(std::uint64_t ops) {
  ProgramBuilder b("queue-client");
  const auto i = b.local("i", b.cst(0));
  const auto j = b.local("j", b.cst(0));
  const auto x = b.scratch("x");
  b.emit(i);
  b.emit(j);

  const auto enq = b.label();
  const auto deq = b.label();
  const auto done = b.label();

  b.bind(enq);  // enqueue 1..ops
  b.branch(b.ge(b.ref(i), b.cst(ops)), deq);
  b.enqueue(b.add(b.ref(i), b.cst(1)));
  b.set(i, b.add(b.ref(i), b.cst(1)));
  b.jump(enq);

  b.bind(deq);  // dequeue ops times
  b.branch(b.ge(b.ref(j), b.cst(ops)), done);
  b.dequeue(x);
  b.set(j, b.add(b.ref(j), b.cst(1)));
  b.jump(deq);

  b.bind(done);
  b.halt(b.cst(0));
  return b.finalize();
}

}  // namespace ff::proto
