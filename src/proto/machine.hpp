// IrMachine — drives a proto::Program inside the deterministic simulator.
//
// Satisfies the full StepMachine contract (sched/program.hpp):
//   * next_op() is pure: the pending op is computed ONCE when the machine
//     pauses and cached, so repeated calls are a load, not a re-eval;
//   * deliver() stores the returned word into the op's dst local and runs
//     the interpreter forward through local ops to the next pause/halt
//     (the run is structurally bounded — finalize() proved every cycle
//     contains a shared op);
//   * encode() emits exactly the Program's declared layout locals, and
//     finalize()'s liveness check proved that layout covers everything a
//     paused machine can still read;
//   * clone() copies the flat local array and shares the immutable
//     Program.
//
// IrMachineFactory derives objects_used(), registers_used() and
// pid_oblivious() from the Program instead of hand-maintained constants.
#pragma once

#include <array>
#include <cassert>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "proto/ir.hpp"
#include "sched/program.hpp"

namespace ff::proto {

class IrMachine final : public sched::StepMachine {
 public:
  IrMachine(std::shared_ptr<const Program> program, objects::ProcessId pid,
            std::uint64_t input)
      : program_(std::move(program)),
        vm_base_(program_->vm_code().data()),
        pid_(pid) {
    assert(!program_->uses_queue());
    const auto& locals = program_->locals();
    for (std::size_t i = 0; i < locals.size(); ++i) {
      locals_[i] = program_->eval(locals[i].init, locals_.data(), pid_, input);
    }
    run_from(program_->vm_offset(0));
  }

  [[nodiscard]] sched::PendingOp next_op() const override {
    return pending_;
  }

  void deliver(model::Value returned) override {
    assert(!halted_);
    locals_[pending_dst_] = returned.raw();
    run_from(resume_tok_);
  }

  [[nodiscard]] bool done() const override { return halted_; }
  [[nodiscard]] std::uint64_t decision() const override { return decision_; }

  void encode(std::vector<std::uint64_t>& out) const override {
    for (const std::uint16_t l : program_->layout()) out.push_back(locals_[l]);
  }

  [[nodiscard]] std::unique_ptr<sched::StepMachine> clone() const override {
    return std::make_unique<IrMachine>(*this);
  }

  /// The paused program counter (differential tests assert the encoding
  /// layout determines it — the dynamic half of encode() soundness).
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }

  /// The pending op's pc doubles as the index into the factory's static
  /// footprint table (sched/facts.hpp).
  [[nodiscard]] std::uint32_t pending_site() const override {
    return halted_ ? sched::kNoSite : pc_;
  }

  /// Tag for the crash-restore constructor below.
  struct CrashRestoreTag {};

  /// Rebuilds the paused machine a crash leaves behind, starting from a
  /// FULL local image (one word per Program local) instead of a live
  /// machine: the volatile locals are wiped, the pending op dropped, and
  /// the program re-entered at its recovery label — word-for-word what
  /// crash() does to a live machine with the same locals.  This is the
  /// scalar crash seam of the batched frontier explorer: ffgen emits no
  /// batch crash kernel (crash branches are rare next to deliveries), so
  /// the frontier arena reconstructs crashed lanes through this
  /// constructor and scatters the resulting locals/pc back into its
  /// columns.
  IrMachine(std::shared_ptr<const Program> program, objects::ProcessId pid,
            const Word* locals, CrashRestoreTag)
      : program_(std::move(program)),
        vm_base_(program_->vm_code().data()),
        pid_(pid) {
    assert(program_->has_recovery());
    const auto& specs = program_->locals();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      locals_[i] = specs[i].persistent ? locals[i] : 0;
    }
    run_from(program_->vm_offset(program_->recovery_pc()));
  }

  /// Full local array (kMaxLocals entries; the first locals().size() are
  /// meaningful) — the frontier arena's scatter seam.
  [[nodiscard]] const Word* locals_data() const noexcept {
    return locals_.data();
  }

  /// Crash–recovery (StepMachine overrides).  A crash wipes every
  /// volatile local to 0, preserves the persistent locals, drops the
  /// pending op, and re-enters the program at the recovery entry —
  /// exactly the state a freshly restarted process observes in Golab's
  /// model (shared memory and its persistent register survive, nothing
  /// else does).  finalize() proved no volatile local is live at the
  /// recovery entry, so the wipe value never influences behaviour.
  [[nodiscard]] bool can_crash() const override {
    return program_->has_recovery() && !halted_;
  }
  void crash() override {
    assert(can_crash());
    const auto& specs = program_->locals();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!specs[i].persistent) locals_[i] = 0;
    }
    pending_ = sched::PendingOp::none();
    run_from(program_->vm_offset(program_->recovery_pc()));
  }

 private:
  /// One dispatch loop over the Program's flat VM stream (see VmCode),
  /// starting at token index `tok`: expression tokens push/combine words
  /// on a fixed-size stack, op terminators consume them.  pc_ is only
  /// materialized at pauses and halts (the states the simulator can
  /// observe), from the terminator's imm; between pauses control lives
  /// in the token pointer alone, and the pause terminators record the
  /// following token in resume_tok_ so deliver() re-enters without
  /// touching the Program at all.
  void run_from(std::uint32_t tok) {
    const VmOp* const base = vm_base_;
    const VmOp* p = base + tok;
    Word stack[kMaxEvalDepth];
    Word* sp = stack;  // points one past the top
    for (;;) {
      const VmOp t = *p;
      switch (t.code) {
        case VmCode::kConst:
          *sp++ = t.imm;
          ++p;
          break;
        case VmCode::kInput:
          // finalize() confines `input` to local initializers, which run
          // through Program::eval in the constructor, never through here.
          assert(false && "`input` token in op code");
          *sp++ = 0;
          ++p;
          break;
        case VmCode::kPid:
          *sp++ = pid_;
          ++p;
          break;
        case VmCode::kLocal:
          *sp++ = locals_[t.imm];
          ++p;
          break;
        case VmCode::kAdd:
          sp[-2] = sp[-2] + sp[-1];
          --sp;
          ++p;
          break;
        case VmCode::kSub:
          sp[-2] = sp[-2] - sp[-1];
          --sp;
          ++p;
          break;
        case VmCode::kEq:
          sp[-2] = sp[-2] == sp[-1] ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kNe:
          sp[-2] = sp[-2] != sp[-1] ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kLt:
          sp[-2] = sp[-2] < sp[-1] ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kGe:
          sp[-2] = sp[-2] >= sp[-1] ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kAnd:
          sp[-2] = (sp[-2] != 0 && sp[-1] != 0) ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kOr:
          sp[-2] = (sp[-2] != 0 || sp[-1] != 0) ? 1 : 0;
          --sp;
          ++p;
          break;
        case VmCode::kNot:
          sp[-1] = sp[-1] == 0 ? 1 : 0;
          ++p;
          break;
        case VmCode::kIsBottom:
          sp[-1] = sp[-1] == kBottomWord ? 1 : 0;
          ++p;
          break;
        case VmCode::kPack:
          sp[-2] =
              ((sp[-1] & 0xFFFFFFFFULL) << 32) | (sp[-2] & 0xFFFFFFFFULL);
          --sp;
          ++p;
          break;
        case VmCode::kStage:
          sp[-1] = sp[-1] >> 32;
          ++p;
          break;
        case VmCode::kValueOf:
        case VmCode::kU32:
          sp[-1] = sp[-1] & 0xFFFFFFFFULL;
          ++p;
          break;
        case VmCode::kSelect:
          sp[-3] = sp[-3] != 0 ? sp[-2] : sp[-1];
          sp -= 2;
          ++p;
          break;
        case VmCode::kAddLC:
          *sp++ = locals_[t.aux] + t.imm;
          ++p;
          break;
        case VmCode::kSubLC:
          *sp++ = locals_[t.aux] - t.imm;
          ++p;
          break;
        case VmCode::kEqLC:
          *sp++ = locals_[t.aux] == t.imm ? 1 : 0;
          ++p;
          break;
        case VmCode::kNeLC:
          *sp++ = locals_[t.aux] != t.imm ? 1 : 0;
          ++p;
          break;
        case VmCode::kLtLC:
          *sp++ = locals_[t.aux] < t.imm ? 1 : 0;
          ++p;
          break;
        case VmCode::kGeLC:
          *sp++ = locals_[t.aux] >= t.imm ? 1 : 0;
          ++p;
          break;
        case VmCode::kAddLL:
          *sp++ = locals_[t.aux] + locals_[t.imm];
          ++p;
          break;
        case VmCode::kSubLL:
          *sp++ = locals_[t.aux] - locals_[t.imm];
          ++p;
          break;
        case VmCode::kEqLL:
          *sp++ = locals_[t.aux] == locals_[t.imm] ? 1 : 0;
          ++p;
          break;
        case VmCode::kNeLL:
          *sp++ = locals_[t.aux] != locals_[t.imm] ? 1 : 0;
          ++p;
          break;
        case VmCode::kLtLL:
          *sp++ = locals_[t.aux] < locals_[t.imm] ? 1 : 0;
          ++p;
          break;
        case VmCode::kGeLL:
          *sp++ = locals_[t.aux] >= locals_[t.imm] ? 1 : 0;
          ++p;
          break;
        case VmCode::kIsBottomL:
          *sp++ = locals_[t.aux] == kBottomWord ? 1 : 0;
          ++p;
          break;
        case VmCode::kNotBottomL:
          *sp++ = locals_[t.aux] != kBottomWord ? 1 : 0;
          ++p;
          break;
        case VmCode::kStageL:
          *sp++ = locals_[t.aux] >> 32;
          ++p;
          break;
        case VmCode::kValueOfL:
          *sp++ = locals_[t.aux] & 0xFFFFFFFFULL;
          ++p;
          break;
        case VmCode::kGeSL:
          *sp++ = (locals_[t.aux] >> 32) >= locals_[t.imm] ? 1 : 0;
          ++p;
          break;
        case VmCode::kLtSC:
          *sp++ = (locals_[t.aux] >> 32) < t.imm ? 1 : 0;
          ++p;
          break;
        case VmCode::kOpSet:
          locals_[t.aux] = *--sp;
          ++p;
          break;
        case VmCode::kOpSetConst:
          locals_[t.aux] = t.imm;
          ++p;
          break;
        case VmCode::kOpSetLocal:
          locals_[t.aux] = locals_[t.imm];
          ++p;
          break;
        case VmCode::kOpBranch:
          p = *--sp != 0 ? base + t.imm : p + 1;
          break;
        case VmCode::kOpBranchEqLL:
          p = locals_[t.aux] == locals_[t.imm & 0xFFFFFFFFULL]
                  ? base + (t.imm >> 32)
                  : p + 1;
          break;
        case VmCode::kOpBranchNeLL:
          p = locals_[t.aux] != locals_[t.imm & 0xFFFFFFFFULL]
                  ? base + (t.imm >> 32)
                  : p + 1;
          break;
        case VmCode::kOpBranchLtLL:
          p = locals_[t.aux] < locals_[t.imm & 0xFFFFFFFFULL]
                  ? base + (t.imm >> 32)
                  : p + 1;
          break;
        case VmCode::kOpBranchGeLL:
          p = locals_[t.aux] >= locals_[t.imm & 0xFFFFFFFFULL]
                  ? base + (t.imm >> 32)
                  : p + 1;
          break;
        case VmCode::kOpBranchEqLC:
          p = locals_[t.aux] == (t.imm & 0xFFFFFFFFULL) ? base + (t.imm >> 32)
                                                        : p + 1;
          break;
        case VmCode::kOpBranchNeLC:
          p = locals_[t.aux] != (t.imm & 0xFFFFFFFFULL) ? base + (t.imm >> 32)
                                                        : p + 1;
          break;
        case VmCode::kOpBranchLtLC:
          p = locals_[t.aux] < (t.imm & 0xFFFFFFFFULL) ? base + (t.imm >> 32)
                                                       : p + 1;
          break;
        case VmCode::kOpBranchGeLC:
          p = locals_[t.aux] >= (t.imm & 0xFFFFFFFFULL) ? base + (t.imm >> 32)
                                                        : p + 1;
          break;
        case VmCode::kOpSetAddLC:
          locals_[t.aux >> 16] = locals_[t.aux & 0xFFFFu] + t.imm;
          ++p;
          break;
        case VmCode::kOpGoto:
          p = base + t.imm;
          break;
        case VmCode::kOpHalt:
          pc_ = static_cast<std::uint32_t>(t.imm);
          decision_ = sp[-1];
          halted_ = true;
          pending_ = sched::PendingOp::none();
          return;
        case VmCode::kOpCas:
          pc_ = static_cast<std::uint32_t>(t.imm);
          pending_dst_ = t.aux;
          resume_tok_ = static_cast<std::uint32_t>(p - base) + 1;
          assert(sp[-3] < program_->ops()[pc_].index_bound);
          pending_ = sched::PendingOp::cas(
              static_cast<objects::ObjectId>(sp[-3]),
              model::Value::of(sp[-2]), model::Value::of(sp[-1]));
          return;
        case VmCode::kOpRegRead:
          pc_ = static_cast<std::uint32_t>(t.imm);
          pending_dst_ = t.aux;
          resume_tok_ = static_cast<std::uint32_t>(p - base) + 1;
          assert(sp[-1] < program_->ops()[pc_].index_bound);
          pending_ = sched::PendingOp::reg_read(
              static_cast<objects::ObjectId>(sp[-1]));
          return;
        case VmCode::kOpRegWrite:
          pc_ = static_cast<std::uint32_t>(t.imm);
          pending_dst_ = t.aux;
          resume_tok_ = static_cast<std::uint32_t>(p - base) + 1;
          assert(sp[-2] < program_->ops()[pc_].index_bound);
          pending_ = sched::PendingOp::reg_write(
              static_cast<objects::ObjectId>(sp[-2]),
              model::Value::of(sp[-1]));
          return;
        case VmCode::kOpEnqueue:
        case VmCode::kOpDequeue:
          assert(false && "queue ops cannot run in the CAS simulator");
          return;
      }
    }
  }

  std::shared_ptr<const Program> program_;
  /// Cached program_->vm_code().data() — shared immutable storage, so
  /// the default copy in clone() stays valid.
  const VmOp* vm_base_;
  objects::ProcessId pid_;
  std::array<Word, kMaxLocals> locals_{};
  std::uint32_t pc_ = 0;
  std::uint32_t pending_dst_ = 0;  ///< dst local of the pending shared op
  std::uint32_t resume_tok_ = 0;   ///< token after the pause terminator
  std::uint64_t decision_ = 0;
  bool halted_ = false;
  sched::PendingOp pending_ = sched::PendingOp::none();
};

/// MachineFactory over a finalized Program.  Counts and pid-obliviousness
/// are DERIVED from the IR (no hand-maintained constants to skew).
class IrMachineFactory final : public sched::MachineFactory {
 public:
  explicit IrMachineFactory(std::shared_ptr<const Program> program)
      : program_(std::move(program)) {
    assert(program_ != nullptr);
    assert(!program_->uses_queue());
  }

  [[nodiscard]] std::unique_ptr<sched::StepMachine> make(
      objects::ProcessId pid, std::uint64_t input) const override {
    return std::make_unique<IrMachine>(program_, pid, input);
  }
  [[nodiscard]] std::uint32_t objects_used() const override {
    return program_->num_objects();
  }
  [[nodiscard]] std::uint32_t registers_used() const override {
    return program_->num_registers();
  }
  [[nodiscard]] bool pid_oblivious() const override {
    return !program_->uses_pid();
  }
  [[nodiscard]] std::string name() const override { return program_->name(); }

  /// ffcheck facts for the Program, computed lazily ONCE per factory and
  /// shared by every SimWorld (defined in analysis/analysis.cpp so this
  /// header does not depend on the analyzer).
  [[nodiscard]] std::shared_ptr<const sched::ProgramFacts> facts()
      const override;

  [[nodiscard]] const std::shared_ptr<const Program>& program()
      const noexcept {
    return program_;
  }

 private:
  std::shared_ptr<const Program> program_;
  mutable std::once_flag facts_once_;
  mutable std::shared_ptr<const sched::ProgramFacts> facts_cache_;
};

}  // namespace ff::proto
