// Protocol IR — one definition, two drivers.
//
// Every protocol in the reproduction used to be written twice: a
// thread-facing consensus::Protocol and a hand-transcribed
// sched::StepMachine twin whose header openly admitted it was a
// "line-for-line transcription" kept honest only by cross-validation
// tests.  This module removes the duplication: a protocol is now a single
// Program — a structured op-list with an explicit program counter, typed
// word locals, object/register operands and deterministic branch/goto
// combinators — and the two executions are *derived*:
//
//   * proto::IrMachine (machine.hpp) steps a Program inside the
//     deterministic simulator, satisfying the full StepMachine contract
//     (pure next_op(), deliver(), encode(), clone());
//   * proto::IrProtocol (protocol.hpp) runs the same Program
//     synchronously against real objects::CasObject/AtomicRegister on
//     real threads for the stress campaigns.
//
// Programs are built per parameterization (f, t, n, k are folded into
// constants by the builder), then finalized.  finalize() performs the
// static checks that make the derivation sound:
//
//   * `input` may appear only in local initializers, and `pid` taints the
//     program as pid-dependent — so a paused machine's behaviour is a
//     function of (pc, locals) alone, and pid-obliviousness (the enabling
//     condition for process-symmetry reduction) is DERIVED, not declared;
//   * every control-flow cycle contains a shared-memory operation, so the
//     run-to-next-pause interpreter loop is structurally bounded;
//   * a backward liveness analysis proves that every local a paused
//     machine can still read is listed in the encoding layout — the static
//     half of the StepMachine guarantee that equal encode() words imply
//     identical behaviour forever (DESIGN.md §3e);
//   * object and register counts are derived from the operand bounds of
//     the ops themselves, retiring the hand-maintained (and easy to get
//     wrong) objects_used()/registers_used() constants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/value.hpp"

namespace ff::proto {

/// All IR values are raw 64-bit words; the all-ones word is ⊥, exactly as
/// in model::Value, so words round-trip through shared objects unchanged.
using Word = std::uint64_t;
inline constexpr Word kBottomWord = ~Word{0};

using ExprId = std::uint16_t;
inline constexpr ExprId kNoExpr = 0xFFFFu;

/// Pure word expressions over locals / pid / input.  No expression has a
/// side effect, so evaluation order never matters and kAnd/kOr need no
/// short-circuit semantics.
enum class ExprOp : std::uint8_t {
  kConst,     ///< imm
  kInput,     ///< the process input (valid only in local initializers)
  kPid,       ///< the process id (taints the program as pid-dependent)
  kLocal,     ///< locals[imm]
  kAdd,       ///< a + b (wrapping)
  kSub,       ///< a - b (wrapping)
  kEq,        ///< a == b
  kNe,        ///< a != b
  kLt,        ///< a < b (unsigned)
  kGe,        ///< a >= b (unsigned)
  kAnd,       ///< (a != 0) && (b != 0)
  kOr,        ///< (a != 0) || (b != 0)
  kNot,       ///< a == 0
  kIsBottom,  ///< a == ⊥
  kPack,      ///< StagedValue(value=a, stage=b).pack(); both truncated to 32
  kStage,     ///< StagedValue::unpack(a).stage()
  kValueOf,   ///< StagedValue::unpack(a).value()
  kSelect,    ///< a != 0 ? b : c
  kU32,       ///< a & 0xFFFFFFFF (the static_cast<uint32_t> of the paper code)
};

struct ExprNode {
  ExprOp op = ExprOp::kConst;
  Word imm = 0;  ///< kConst value / kLocal index
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;
  ExprId c = kNoExpr;
};

/// One step of a flattened (postorder) expression.  finalize() compiles
/// every expression tree into a contiguous run of these so that eval()
/// is a single iterative loop over hot, cache-local code instead of a
/// recursive descent over ExprNodes — the interpreter's per-step cost is
/// what the bench_b3 `ir_overhead` gate measures.
struct PostOp {
  ExprOp op = ExprOp::kConst;
  Word imm = 0;
};

/// Evaluation-stack bound for flattened expressions; finalize() rejects
/// programs whose expressions would need more.
inline constexpr std::size_t kMaxEvalDepth = 16;

/// Opcodes of the flat VM stream finalize() compiles for IrMachine's
/// run-to-pause loop: the first block mirrors ExprOp one-for-one (same
/// numeric values, same stack effect), the rest terminate an op by
/// consuming its operand words from the stack.  One token stream per
/// program means the machine interpreter is a single dispatch loop — no
/// nested per-operand eval() calls on the simulator hot path.
enum class VmCode : std::uint8_t {
  kConst = static_cast<std::uint8_t>(ExprOp::kConst),
  kInput = static_cast<std::uint8_t>(ExprOp::kInput),
  kPid = static_cast<std::uint8_t>(ExprOp::kPid),
  kLocal = static_cast<std::uint8_t>(ExprOp::kLocal),
  kAdd = static_cast<std::uint8_t>(ExprOp::kAdd),
  kSub = static_cast<std::uint8_t>(ExprOp::kSub),
  kEq = static_cast<std::uint8_t>(ExprOp::kEq),
  kNe = static_cast<std::uint8_t>(ExprOp::kNe),
  kLt = static_cast<std::uint8_t>(ExprOp::kLt),
  kGe = static_cast<std::uint8_t>(ExprOp::kGe),
  kAnd = static_cast<std::uint8_t>(ExprOp::kAnd),
  kOr = static_cast<std::uint8_t>(ExprOp::kOr),
  kNot = static_cast<std::uint8_t>(ExprOp::kNot),
  kIsBottom = static_cast<std::uint8_t>(ExprOp::kIsBottom),
  kPack = static_cast<std::uint8_t>(ExprOp::kPack),
  kStage = static_cast<std::uint8_t>(ExprOp::kStage),
  kValueOf = static_cast<std::uint8_t>(ExprOp::kValueOf),
  kSelect = static_cast<std::uint8_t>(ExprOp::kSelect),
  kU32 = static_cast<std::uint8_t>(ExprOp::kU32),
  // --- fused expression tokens (finalize()'s peephole pass; LC = the
  // postfix pair kLocal/kConst feeding a binary op, LL = kLocal twice) ---
  kAddLC,       ///< push locals[aux] + imm
  kSubLC,       ///< push locals[aux] - imm
  kEqLC,        ///< push locals[aux] == imm
  kNeLC,        ///< push locals[aux] != imm
  kLtLC,        ///< push locals[aux] < imm
  kGeLC,        ///< push locals[aux] >= imm
  kAddLL,       ///< push locals[aux] + locals[imm]
  kSubLL,       ///< push locals[aux] - locals[imm]
  kEqLL,        ///< push locals[aux] == locals[imm]
  kNeLL,        ///< push locals[aux] != locals[imm]
  kLtLL,        ///< push locals[aux] < locals[imm]
  kGeLL,        ///< push locals[aux] >= locals[imm]
  kIsBottomL,   ///< push locals[aux] == ⊥
  kNotBottomL,  ///< push locals[aux] != ⊥
  kStageL,      ///< push locals[aux] >> 32
  kValueOfL,    ///< push locals[aux] & 0xFFFFFFFF
  kGeSL,        ///< push (locals[aux] >> 32) >= locals[imm]
  kLtSC,        ///< push (locals[aux] >> 32) < imm
  // --- op terminators ---
  kOpSet,       ///< locals[aux] ← pop
  kOpSetConst,  ///< locals[aux] ← imm (fused kConst + kOpSet)
  kOpSetLocal,  ///< locals[aux] ← locals[imm] (fused kLocal + kOpSet)
  kOpBranch,    ///< if pop ≠ 0 jump to token offset imm
  // Fused compare-and-branch: jump target in imm's high half, the
  // second operand (local index, or a constant that fits 32 bits) in
  // the low half; first operand is locals[aux].
  kOpBranchEqLL,  ///< if locals[aux] == locals[lo32] jump hi32
  kOpBranchNeLL,  ///< if locals[aux] != locals[lo32] jump hi32
  kOpBranchLtLL,  ///< if locals[aux] <  locals[lo32] jump hi32
  kOpBranchGeLL,  ///< if locals[aux] >= locals[lo32] jump hi32
  kOpBranchEqLC,  ///< if locals[aux] == lo32 jump hi32
  kOpBranchNeLC,  ///< if locals[aux] != lo32 jump hi32
  kOpBranchLtLC,  ///< if locals[aux] <  lo32 jump hi32
  kOpBranchGeLC,  ///< if locals[aux] >= lo32 jump hi32
  kOpSetAddLC,    ///< locals[aux >> 16] ← locals[aux & 0xFFFF] + imm
  kOpGoto,      ///< jump to token offset imm
  kOpHalt,      ///< decide pop; imm = op index (pc)
  kOpCas,       ///< pause: CAS(O[s-3], s-2, s-1); imm = op index, aux = dst
  kOpRegRead,   ///< pause: read R[s-1]; imm = op index, aux = dst
  kOpRegWrite,  ///< pause: R[s-2] ← s-1; imm = op index, aux = dst
  kOpEnqueue,   ///< queue clients only; never reaches IrMachine
  kOpDequeue,   ///< queue clients only; never reaches IrMachine
};

struct VmOp {
  VmCode code = VmCode::kConst;
  std::uint32_t aux = 0;  ///< fused-token local index / pause dst local
  Word imm = 0;
};

/// Op kinds.  The first five are SHARED ops: the machine pauses there,
/// the scheduler picks who moves, and the step's result is delivered into
/// `dst`.  The rest are LOCAL ops executed by the interpreter between
/// pauses.
enum class OpKind : std::uint8_t {
  kCas,       ///< dst ← CAS(O[index], expected, value)
  kRegRead,   ///< dst ← R[index]
  kRegWrite,  ///< R[index] ← value; dst receives ⊥ (scratch)
  kEnqueue,   ///< Q.enqueue(value); dst receives ⊥ (queue clients only)
  kDequeue,   ///< dst ← Q.dequeue() (⊥ when empty; queue clients only)
  kSet,       ///< locals[dst] ← value
  kBranch,    ///< if value ≠ 0 goto target
  kGoto,      ///< goto target
  kHalt,      ///< decide value; machine is done
};

[[nodiscard]] constexpr bool is_shared_op(OpKind k) noexcept {
  return k == OpKind::kCas || k == OpKind::kRegRead ||
         k == OpKind::kRegWrite || k == OpKind::kEnqueue ||
         k == OpKind::kDequeue;
}

struct Op {
  OpKind kind = OpKind::kHalt;
  std::uint16_t dst = 0;          ///< result local (shared ops, kSet)
  ExprId index = kNoExpr;         ///< object/register index (shared ops)
  std::uint32_t index_bound = 0;  ///< static exclusive bound on `index`
  ExprId expected = kNoExpr;      ///< kCas only
  ExprId value = kNoExpr;         ///< desired / written / rhs / cond / decision
  std::uint32_t target = 0;       ///< kBranch / kGoto
};

struct LocalSpec {
  std::string name;
  ExprId init = kNoExpr;  ///< evaluated once at machine construction
  /// Survives a process crash (models a persistent per-process register,
  /// as in Golab's recoverable-consensus model).  Non-persistent locals
  /// are wiped to 0 by crash().
  bool persistent = false;
};

/// Hard cap on locals so drivers can keep them in a flat inline array.
inline constexpr std::size_t kMaxLocals = 12;

class ProgramBuilder;

/// An immutable, finalized protocol program.  Shared by all machines and
/// protocol instances derived from it (std::shared_ptr<const Program>).
class Program {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }
  [[nodiscard]] const std::vector<ExprNode>& exprs() const noexcept {
    return exprs_;
  }
  [[nodiscard]] const std::vector<LocalSpec>& locals() const noexcept {
    return locals_;
  }
  /// Ordered local ids emitted by StepMachine::encode().
  [[nodiscard]] const std::vector<std::uint16_t>& layout() const noexcept {
    return layout_;
  }
  /// Derived from kCas operand bounds (satisfies MachineFactory).
  [[nodiscard]] std::uint32_t num_objects() const noexcept {
    return num_objects_;
  }
  /// Derived from kRegRead/kRegWrite operand bounds.
  [[nodiscard]] std::uint32_t num_registers() const noexcept {
    return num_registers_;
  }
  /// True when any expression reads `pid`; pid_oblivious() = !uses_pid().
  [[nodiscard]] bool uses_pid() const noexcept { return uses_pid_; }
  /// True for queue-client programs (kEnqueue/kDequeue); such programs
  /// run under proto::run_queue_client, not the CAS simulator.
  [[nodiscard]] bool uses_queue() const noexcept { return uses_queue_; }

  /// Crash–recovery support: programs that bind a recovery label re-enter
  /// at recovery_pc() after a crash (volatile locals wiped to 0,
  /// persistent locals and shared objects preserved).  Programs without a
  /// recovery label are not crashable — the simulator offers them no
  /// crash branches.
  [[nodiscard]] bool has_recovery() const noexcept {
    return recovery_pc_ != kNoRecoveryPc;
  }
  [[nodiscard]] std::uint32_t recovery_pc() const noexcept {
    return recovery_pc_;
  }

  /// Evaluates expression `id` over `locals` (array of at least
  /// locals().size() words), the process id and the process input.
  /// Defined inline below: an iterative loop over the flattened postfix
  /// code finalize() compiled (expressions are pure and total, so full
  /// postorder evaluation — no short circuit — is semantics-preserving).
  [[nodiscard]] Word eval(ExprId id, const Word* locals, Word pid,
                          Word input) const;

  /// The whole-program VM stream (IrMachine's run-to-pause loop) and the
  /// token offset where op `pc`'s code begins.
  [[nodiscard]] const std::vector<VmOp>& vm_code() const noexcept {
    return vm_;
  }
  [[nodiscard]] std::uint32_t vm_offset(std::uint32_t pc) const noexcept {
    return vm_off_[pc];
  }

 private:
  friend class ProgramBuilder;
  Program() = default;

  std::string name_;
  std::vector<ExprNode> exprs_;
  std::vector<Op> ops_;
  std::vector<LocalSpec> locals_;
  std::vector<std::uint16_t> layout_;
  /// Flattened postfix bodies, one contiguous run per expression:
  /// post_[post_off_[id] .. post_off_[id] + post_len_[id]).
  std::vector<PostOp> post_;
  std::vector<std::uint32_t> post_off_;
  std::vector<std::uint16_t> post_len_;
  /// Whole-program VM stream + per-op start offsets (see VmCode).
  std::vector<VmOp> vm_;
  std::vector<std::uint32_t> vm_off_;
  std::uint32_t num_objects_ = 0;
  std::uint32_t num_registers_ = 0;
  static constexpr std::uint32_t kNoRecoveryPc = 0xFFFFFFFFu;
  std::uint32_t recovery_pc_ = kNoRecoveryPc;
  bool uses_pid_ = false;
  bool uses_queue_ = false;
};

/// How much static validation finalize() performs.
///
/// kFull is the production mode: every check in the class comment runs
/// and a violating program never comes into existence.  kSyntaxOnly
/// keeps just the structural checks that make a Program memory-safe to
/// *inspect and interpret* (label resolution, operand bounds, fall-off,
/// expression-depth limits) while skipping the semantic obligations
/// (pause-free cycles, liveness/layout coverage, recovery liveness).
/// It exists for the analyzer's negative fixtures: ffcheck's A3–A5 must
/// be demonstrably able to REJECT programs that violate exactly the
/// obligations kFull enforces, and such programs are only constructible
/// when finalize() lets them through.  Production builders must never
/// use it — build_program()/the registry always finalize kFull.
enum class Validate : std::uint8_t { kFull, kSyntaxOnly };

/// Builds a Program op by op.  Labels are forward-declarable jump targets;
/// finalize() resolves them and runs the static validation described in
/// the header comment, throwing std::invalid_argument on any violation.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // ---- locals ----------------------------------------------------------
  /// Declares a local initialized to `init` (may reference input/pid).
  std::uint16_t local(std::string name, ExprId init);
  /// Declares a scratch local initialized to 0 (delivery target etc.).
  std::uint16_t scratch(std::string name);
  /// Declares a PERSISTENT local: it survives a crash (crash() preserves
  /// it while wiping every other local to 0).  Only meaningful together
  /// with recover_at().
  std::uint16_t persistent(std::string name, ExprId init);

  // ---- expressions -----------------------------------------------------
  ExprId cst(Word v);
  ExprId input();
  ExprId pid();
  ExprId ref(std::uint16_t local);
  ExprId add(ExprId a, ExprId b);
  ExprId sub(ExprId a, ExprId b);
  ExprId eq(ExprId a, ExprId b);
  ExprId ne(ExprId a, ExprId b);
  ExprId lt(ExprId a, ExprId b);
  ExprId ge(ExprId a, ExprId b);
  ExprId land(ExprId a, ExprId b);
  ExprId lor(ExprId a, ExprId b);
  ExprId lnot(ExprId a);
  ExprId is_bottom(ExprId a);
  ExprId pack(ExprId value, ExprId stage);
  ExprId stage_of(ExprId a);
  ExprId value_of(ExprId a);
  ExprId select(ExprId cond, ExprId then_e, ExprId else_e);
  ExprId u32(ExprId a);
  ExprId bottom() { return cst(kBottomWord); }

  // ---- labels ----------------------------------------------------------
  using Label = std::uint32_t;
  Label label();
  void bind(Label l);
  /// Marks `l` as the crash-recovery entry point (`recover:`): after a
  /// crash the machine re-enters here.  finalize() validates that the
  /// label is bound, in range, and that every local live at the recovery
  /// entry is persistent.
  void recover_at(Label l);

  // ---- ops -------------------------------------------------------------
  void cas(std::uint16_t dst, ExprId index, std::uint32_t index_bound,
           ExprId expected, ExprId desired);
  void reg_read(std::uint16_t dst, ExprId index, std::uint32_t index_bound);
  void reg_write(ExprId index, std::uint32_t index_bound, ExprId value);
  void enqueue(ExprId value);
  void dequeue(std::uint16_t dst);
  void set(std::uint16_t dst, ExprId value);
  void branch(ExprId cond, Label target);
  void jump(Label target);
  void halt(ExprId decision);

  // ---- encoding layout -------------------------------------------------
  /// Appends `local` to the encode() layout (order = emission order).
  void emit(std::uint16_t local);

  /// Validates and freezes the program (see class comment).  The mode
  /// selects how much validation runs (see Validate); the default kFull
  /// is what every production builder uses.
  [[nodiscard]] std::shared_ptr<const Program> finalize(
      Validate mode = Validate::kFull);

 private:
  ExprId push(ExprNode node);
  void push_op(Op op);
  [[nodiscard]] std::uint16_t delivery_scratch();

  Program prog_;
  std::vector<std::uint32_t> label_pcs_;  ///< kUnboundLabel until bind()
  /// (op index, label) pairs patched at finalize().
  std::vector<std::pair<std::uint32_t, Label>> fixups_;
  std::uint16_t delivery_scratch_ = 0xFFFFu;
  Label recovery_label_ = 0xFFFFFFFFu;  ///< unset until recover_at()
  bool finalized_ = false;
};

inline Word Program::eval(ExprId id, const Word* locals, Word pid,
                          Word input) const {
  const PostOp* p = post_.data() + post_off_[id];
  const PostOp* const end = p + post_len_[id];
  Word stack[kMaxEvalDepth];
  Word* sp = stack;  // points one past the top
  for (; p != end; ++p) {
    switch (p->op) {
      case ExprOp::kConst:
        *sp++ = p->imm;
        break;
      case ExprOp::kInput:
        *sp++ = input;
        break;
      case ExprOp::kPid:
        *sp++ = pid;
        break;
      case ExprOp::kLocal:
        *sp++ = locals[p->imm];
        break;
      case ExprOp::kAdd:
        sp[-2] = sp[-2] + sp[-1];
        --sp;
        break;
      case ExprOp::kSub:
        sp[-2] = sp[-2] - sp[-1];
        --sp;
        break;
      case ExprOp::kEq:
        sp[-2] = sp[-2] == sp[-1] ? 1 : 0;
        --sp;
        break;
      case ExprOp::kNe:
        sp[-2] = sp[-2] != sp[-1] ? 1 : 0;
        --sp;
        break;
      case ExprOp::kLt:
        sp[-2] = sp[-2] < sp[-1] ? 1 : 0;
        --sp;
        break;
      case ExprOp::kGe:
        sp[-2] = sp[-2] >= sp[-1] ? 1 : 0;
        --sp;
        break;
      case ExprOp::kAnd:
        sp[-2] = (sp[-2] != 0 && sp[-1] != 0) ? 1 : 0;
        --sp;
        break;
      case ExprOp::kOr:
        sp[-2] = (sp[-2] != 0 || sp[-1] != 0) ? 1 : 0;
        --sp;
        break;
      case ExprOp::kNot:
        sp[-1] = sp[-1] == 0 ? 1 : 0;
        break;
      case ExprOp::kIsBottom:
        sp[-1] = sp[-1] == kBottomWord ? 1 : 0;
        break;
      case ExprOp::kPack:
        // StagedValue(value, stage).pack(): both halves truncated to 32
        // bits, so a u32 stage wrap (stage − 1 at stage 0) matches the
        // legacy protocols' std::uint32_t arithmetic exactly.
        sp[-2] = ((sp[-1] & 0xFFFFFFFFULL) << 32) | (sp[-2] & 0xFFFFFFFFULL);
        --sp;
        break;
      case ExprOp::kStage:
        sp[-1] = sp[-1] >> 32;
        break;
      case ExprOp::kValueOf:
      case ExprOp::kU32:
        sp[-1] = sp[-1] & 0xFFFFFFFFULL;
        break;
      case ExprOp::kSelect:
        sp[-3] = sp[-3] != 0 ? sp[-2] : sp[-1];
        sp -= 2;
        break;
    }
  }
  return sp[-1];
}

}  // namespace ff::proto
