// StatePool — structure-of-arrays batch stepping over many machines of
// one Program.
//
// The single-state StepMachine interface forces one virtual next_op()
// and one virtual deliver() per simulator state per step — fine for a
// DFS that touches one state at a time, hostile to anything that holds
// thousands of paused machines (frontier replays, lockstep harnesses,
// throughput benches).  A StatePool keeps N machine states as columns
// (local i of lane l at locals[i * stride + lane]) and steps ALL paused
// lanes with ONE indirect call into the ffgen-generated batch kernel:
// per lane the kernel is the same straight-line advance() the scalar
// generated machine runs, with no per-lane virtual dispatch.
//
// When the Program's fingerprint has no generated entry the pool falls
// back to a plain vector of IrMachine — the differential oracle path —
// with identical observable behaviour (test_codegen drives both in
// lockstep).  Lane capacity is fixed at construction: growing the
// column pitch would re-lay every column, and every caller knows its
// lane count up front (the same stale-pre-size reasoning as
// sched::detail::table_hint).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "proto/fingerprint.hpp"
#include "proto/genapi.hpp"
#include "proto/machine.hpp"
#include "sched/step.hpp"

namespace ff::proto {

class StatePool {
 public:
  StatePool(std::shared_ptr<const Program> program, std::size_t lane_capacity)
      : program_(std::move(program)),
        entry_(gen::find_generated(program_fingerprint(*program_))),
        capacity_(lane_capacity == 0 ? 1 : lane_capacity) {
    assert(program_ != nullptr && !program_->uses_queue());
    if (entry_ != nullptr) {
      locals_.resize(program_->locals().size() * capacity_, 0);
      pid_.resize(capacity_, 0);
      pc_.resize(capacity_, 0);
      status_.resize(capacity_, gen::kLanePaused);
      decision_.resize(capacity_, 0);
      op_type_.resize(capacity_,
                      static_cast<std::uint8_t>(sched::OpType::kNone));
      op_object_.resize(capacity_, 0);
      op_expected_.resize(capacity_, 0);
      op_desired_.resize(capacity_, 0);
    } else {
      machines_.reserve(capacity_);
    }
  }

  /// True when the generated batch kernel backs this pool (fingerprint
  /// hit); false on the IrMachine oracle fallback.
  [[nodiscard]] bool generated() const noexcept { return entry_ != nullptr; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Adds a fresh machine (run to its first pause) and returns its lane.
  std::size_t add(objects::ProcessId pid, std::uint64_t input) {
    assert(size_ < capacity_);
    const std::size_t lane = size_++;
    if (entry_ != nullptr) {
      pid_[lane] = pid;
      const gen::LaneView v = view();
      entry_->init(v, lane, pid, input);
    } else {
      machines_.emplace_back(program_, pid, input);
    }
    return lane;
  }

  /// Delivers returned[lane] to every paused lane and runs each to its
  /// next pause/halt.  Halted lanes ignore their slot.  One indirect
  /// call total on the generated path; one virtual call per lane on the
  /// oracle fallback.
  void deliver_all(const std::uint64_t* returned) {
    if (entry_ != nullptr) {
      const gen::LaneView v = view();
      entry_->batch(v, size_, returned);
      return;
    }
    for (std::size_t lane = 0; lane < machines_.size(); ++lane) {
      if (!machines_[lane].done()) {
        machines_[lane].deliver(model::Value::of(returned[lane]));
      }
    }
  }

  [[nodiscard]] bool done(std::size_t lane) const {
    assert(lane < size_);
    return entry_ != nullptr ? status_[lane] == gen::kLaneHalted
                             : machines_[lane].done();
  }

  [[nodiscard]] std::uint64_t decision(std::size_t lane) const {
    assert(lane < size_);
    return entry_ != nullptr ? decision_[lane] : machines_[lane].decision();
  }

  [[nodiscard]] sched::PendingOp pending(std::size_t lane) const {
    assert(lane < size_);
    if (entry_ == nullptr) return machines_[lane].next_op();
    return sched::PendingOp{static_cast<sched::OpType>(op_type_[lane]),
                            op_object_[lane],
                            model::Value::of(op_expected_[lane]),
                            model::Value::of(op_desired_[lane])};
  }

  /// Appends the lane's encode() words (the Program's layout locals) —
  /// bit-identical to the scalar machine's encode().
  void encode(std::size_t lane, std::vector<std::uint64_t>& out) const {
    assert(lane < size_);
    if (entry_ == nullptr) {
      machines_[lane].encode(out);
      return;
    }
    for (const std::uint16_t l : program_->layout()) {
      out.push_back(locals_[l * capacity_ + lane]);
    }
  }

  [[nodiscard]] const std::shared_ptr<const Program>& program()
      const noexcept {
    return program_;
  }

  // -------------------------------------------------------------------
  // Batched-frontier staging seams (generated path only).  The frontier
  // explorer's lane arena stores machine states as rows; per wave it
  // gathers the memo-miss lanes into ONE StatePool, runs a single
  // batch_deliver sweep, and scatters the results back
  // (sched/frontier_explorer.cpp).  The seams expose exactly the column
  // state the generated load()/store() pair touches: the full local
  // image, the pid, and the pause pc.
  // -------------------------------------------------------------------

  /// Drops every lane but keeps the column storage, so one staging pool
  /// is reused across waves without re-touching its pages.
  void clear() noexcept { size_ = 0; }

  /// Appends a PAUSED lane reconstructed from a full local image (one
  /// word per Program local) and its pause pc — the gather half of the
  /// frontier's batch sweep.  Generated pools only: the scalar fallback
  /// cannot be rebuilt from words and the frontier steps it per machine.
  std::size_t add_staged(objects::ProcessId pid, const std::uint64_t* locals,
                         std::uint32_t pc) {
    assert(entry_ != nullptr && size_ < capacity_);
    const std::size_t lane = size_++;
    const std::size_t num_locals = program_->locals().size();
    for (std::size_t l = 0; l < num_locals; ++l) {
      locals_[l * capacity_ + lane] = locals[l];
    }
    pid_[lane] = pid;
    pc_[lane] = pc;
    status_[lane] = gen::kLanePaused;
    return lane;
  }

  /// Copies the full local image (locals().size() words) of `lane` — the
  /// scatter half.  Generated pools only.
  void copy_locals(std::size_t lane, std::uint64_t* out) const {
    assert(entry_ != nullptr && lane < size_);
    const std::size_t num_locals = program_->locals().size();
    for (std::size_t l = 0; l < num_locals; ++l) {
      out[l] = locals_[l * capacity_ + lane];
    }
  }

  /// Pause pc of `lane` (meaningful while paused).  Generated pools only.
  [[nodiscard]] std::uint32_t pc(std::size_t lane) const {
    assert(entry_ != nullptr && lane < size_);
    return pc_[lane];
  }

 private:
  [[nodiscard]] gen::LaneView view() {
    gen::LaneView v;
    v.locals = locals_.data();
    v.stride = capacity_;
    v.pid = pid_.data();
    v.pc = pc_.data();
    v.status = status_.data();
    v.decision = decision_.data();
    v.op_type = op_type_.data();
    v.op_object = op_object_.data();
    v.op_expected = op_expected_.data();
    v.op_desired = op_desired_.data();
    return v;
  }

  std::shared_ptr<const Program> program_;
  const gen::GenEntry* entry_;
  std::size_t capacity_;
  std::size_t size_ = 0;

  // Generated path: column-major state (see gen::LaneView).
  std::vector<std::uint64_t> locals_;
  std::vector<std::uint64_t> pid_;
  std::vector<std::uint32_t> pc_;
  std::vector<std::uint8_t> status_;
  std::vector<std::uint64_t> decision_;
  std::vector<std::uint8_t> op_type_;
  std::vector<std::uint32_t> op_object_;
  std::vector<std::uint64_t> op_expected_;
  std::vector<std::uint64_t> op_desired_;

  // Oracle fallback: one interpreter per lane.
  std::vector<IrMachine> machines_;
};

}  // namespace ff::proto
