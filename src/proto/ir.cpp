#include "proto/ir.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <utility>

namespace ff::proto {

namespace {

constexpr std::uint32_t kUnboundLabel = 0xFFFFFFFFu;

[[noreturn]] void fail(const std::string& program, const std::string& why) {
  throw std::invalid_argument("proto IR `" + program + "`: " + why);
}

}  // namespace

// ------------------------------------------------------------- builder

ProgramBuilder::ProgramBuilder(std::string name) {
  prog_.name_ = std::move(name);
}

std::uint16_t ProgramBuilder::local(std::string name, ExprId init) {
  if (prog_.locals_.size() >= kMaxLocals) {
    fail(prog_.name_, "too many locals (max " + std::to_string(kMaxLocals) +
                          ")");
  }
  prog_.locals_.push_back(LocalSpec{std::move(name), init});
  return static_cast<std::uint16_t>(prog_.locals_.size() - 1);
}

std::uint16_t ProgramBuilder::scratch(std::string name) {
  return local(std::move(name), cst(0));
}

std::uint16_t ProgramBuilder::persistent(std::string name, ExprId init) {
  const std::uint16_t id = local(std::move(name), init);
  prog_.locals_[id].persistent = true;
  return id;
}

ExprId ProgramBuilder::push(ExprNode node) {
  if (prog_.exprs_.size() >= kNoExpr) {
    fail(prog_.name_, "expression pool overflow");
  }
  prog_.exprs_.push_back(node);
  return static_cast<ExprId>(prog_.exprs_.size() - 1);
}

ExprId ProgramBuilder::cst(Word v) {
  return push({ExprOp::kConst, v, kNoExpr, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::input() {
  return push({ExprOp::kInput, 0, kNoExpr, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::pid() {
  return push({ExprOp::kPid, 0, kNoExpr, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::ref(std::uint16_t l) {
  return push({ExprOp::kLocal, l, kNoExpr, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::add(ExprId a, ExprId b) {
  return push({ExprOp::kAdd, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::sub(ExprId a, ExprId b) {
  return push({ExprOp::kSub, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::eq(ExprId a, ExprId b) {
  return push({ExprOp::kEq, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::ne(ExprId a, ExprId b) {
  return push({ExprOp::kNe, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::lt(ExprId a, ExprId b) {
  return push({ExprOp::kLt, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::ge(ExprId a, ExprId b) {
  return push({ExprOp::kGe, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::land(ExprId a, ExprId b) {
  return push({ExprOp::kAnd, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::lor(ExprId a, ExprId b) {
  return push({ExprOp::kOr, 0, a, b, kNoExpr});
}
ExprId ProgramBuilder::lnot(ExprId a) {
  return push({ExprOp::kNot, 0, a, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::is_bottom(ExprId a) {
  return push({ExprOp::kIsBottom, 0, a, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::pack(ExprId value, ExprId stage) {
  return push({ExprOp::kPack, 0, value, stage, kNoExpr});
}
ExprId ProgramBuilder::stage_of(ExprId a) {
  return push({ExprOp::kStage, 0, a, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::value_of(ExprId a) {
  return push({ExprOp::kValueOf, 0, a, kNoExpr, kNoExpr});
}
ExprId ProgramBuilder::select(ExprId cond, ExprId then_e, ExprId else_e) {
  return push({ExprOp::kSelect, 0, cond, then_e, else_e});
}
ExprId ProgramBuilder::u32(ExprId a) {
  return push({ExprOp::kU32, 0, a, kNoExpr, kNoExpr});
}

ProgramBuilder::Label ProgramBuilder::label() {
  label_pcs_.push_back(kUnboundLabel);
  return static_cast<Label>(label_pcs_.size() - 1);
}

void ProgramBuilder::bind(Label l) {
  label_pcs_.at(l) = static_cast<std::uint32_t>(prog_.ops_.size());
}

void ProgramBuilder::recover_at(Label l) {
  if (recovery_label_ != kUnboundLabel) {
    fail(prog_.name_, "recover_at() called twice");
  }
  recovery_label_ = l;
}

void ProgramBuilder::push_op(Op op) {
  prog_.ops_.push_back(op);
}

std::uint16_t ProgramBuilder::delivery_scratch() {
  if (delivery_scratch_ == 0xFFFFu) delivery_scratch_ = scratch("_sink");
  return delivery_scratch_;
}

void ProgramBuilder::cas(std::uint16_t dst, ExprId index,
                         std::uint32_t index_bound, ExprId expected,
                         ExprId desired) {
  push_op(Op{OpKind::kCas, dst, index, index_bound, expected, desired, 0});
}
void ProgramBuilder::reg_read(std::uint16_t dst, ExprId index,
                              std::uint32_t index_bound) {
  push_op(Op{OpKind::kRegRead, dst, index, index_bound, kNoExpr, kNoExpr, 0});
}
void ProgramBuilder::reg_write(ExprId index, std::uint32_t index_bound,
                               ExprId value) {
  push_op(Op{OpKind::kRegWrite, delivery_scratch(), index, index_bound,
             kNoExpr, value, 0});
}
void ProgramBuilder::enqueue(ExprId value) {
  push_op(Op{OpKind::kEnqueue, delivery_scratch(), kNoExpr, 0, kNoExpr,
             value, 0});
}
void ProgramBuilder::dequeue(std::uint16_t dst) {
  push_op(Op{OpKind::kDequeue, dst, kNoExpr, 0, kNoExpr, kNoExpr, 0});
}
void ProgramBuilder::set(std::uint16_t dst, ExprId value) {
  push_op(Op{OpKind::kSet, dst, kNoExpr, 0, kNoExpr, value, 0});
}
void ProgramBuilder::branch(ExprId cond, Label target) {
  fixups_.emplace_back(static_cast<std::uint32_t>(prog_.ops_.size()), target);
  push_op(Op{OpKind::kBranch, 0, kNoExpr, 0, kNoExpr, cond, 0});
}
void ProgramBuilder::jump(Label target) {
  fixups_.emplace_back(static_cast<std::uint32_t>(prog_.ops_.size()), target);
  push_op(Op{OpKind::kGoto, 0, kNoExpr, 0, kNoExpr, kNoExpr, 0});
}
void ProgramBuilder::halt(ExprId decision) {
  push_op(Op{OpKind::kHalt, 0, kNoExpr, 0, kNoExpr, decision, 0});
}

void ProgramBuilder::emit(std::uint16_t l) {
  prog_.layout_.push_back(l);
}

// ----------------------------------------------------------- finalize

namespace {

/// Collects the locals read by expression `id` into `out`, and reports
/// whether kInput / kPid occur anywhere in the tree.
struct ExprScan {
  const std::vector<ExprNode>& exprs;
  void walk(ExprId id, std::set<std::uint16_t>& out, bool& uses_input,
            bool& uses_pid) const {
    if (id == kNoExpr) return;
    const ExprNode& e = exprs[id];
    if (e.op == ExprOp::kInput) uses_input = true;
    if (e.op == ExprOp::kPid) uses_pid = true;
    if (e.op == ExprOp::kLocal) {
      out.insert(static_cast<std::uint16_t>(e.imm));
      return;
    }
    if (e.op == ExprOp::kConst) return;
    walk(e.a, out, uses_input, uses_pid);
    walk(e.b, out, uses_input, uses_pid);
    walk(e.c, out, uses_input, uses_pid);
  }
};

}  // namespace

std::shared_ptr<const Program> ProgramBuilder::finalize(Validate mode) {
  if (finalized_) fail(prog_.name_, "finalize() called twice");
  finalized_ = true;
  const std::string& name = prog_.name_;

  // Resolve labels.
  for (const auto& [op_index, l] : fixups_) {
    const std::uint32_t pc = label_pcs_.at(l);
    if (pc == kUnboundLabel) fail(name, "jump to an unbound label");
    prog_.ops_[op_index].target = pc;
  }

  const std::size_t n_ops = prog_.ops_.size();
  if (n_ops == 0) fail(name, "empty program");

  // Resolve the crash-recovery entry (`recover:`).
  if (recovery_label_ != kUnboundLabel) {
    const std::uint32_t pc = label_pcs_.at(recovery_label_);
    if (pc == kUnboundLabel) fail(name, "recovery label is never bound");
    if (pc >= n_ops) fail(name, "recovery label points past the program");
    prog_.recovery_pc_ = pc;
  }
  const ExprScan scan{prog_.exprs_};

  // Per-op structural checks + derived counts + per-op read/write sets.
  std::vector<std::set<std::uint16_t>> uses(n_ops);
  std::vector<bool> runtime_input(n_ops, false);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const Op& op = prog_.ops_[i];
    bool in = false;
    bool pid_used = false;
    scan.walk(op.index, uses[i], in, pid_used);
    scan.walk(op.expected, uses[i], in, pid_used);
    scan.walk(op.value, uses[i], in, pid_used);
    runtime_input[i] = in;
    prog_.uses_pid_ = prog_.uses_pid_ || pid_used;

    if (op.target >= n_ops &&
        (op.kind == OpKind::kBranch || op.kind == OpKind::kGoto)) {
      fail(name, "jump target out of range");
    }
    const bool falls_through =
        op.kind != OpKind::kGoto && op.kind != OpKind::kHalt;
    if (falls_through && i + 1 >= n_ops) {
      fail(name, "control can fall off the end of the program");
    }
    switch (op.kind) {
      case OpKind::kCas:
        if (op.index_bound == 0) fail(name, "kCas with zero index bound");
        prog_.num_objects_ = std::max(prog_.num_objects_, op.index_bound);
        break;
      case OpKind::kRegRead:
      case OpKind::kRegWrite:
        if (op.index_bound == 0) {
          fail(name, "register op with zero index bound");
        }
        prog_.num_registers_ = std::max(prog_.num_registers_, op.index_bound);
        break;
      case OpKind::kEnqueue:
      case OpKind::kDequeue:
        prog_.uses_queue_ = true;
        break;
      default:
        break;
    }
    if (op.dst >= prog_.locals_.size() &&
        (is_shared_op(op.kind) || op.kind == OpKind::kSet)) {
      fail(name, "op writes an undeclared local");
    }
    if (runtime_input[i]) {
      fail(name,
           "`input` referenced outside local initializers — a paused "
           "machine's behaviour must be a function of (pc, locals) alone");
    }
  }

  // Local initializers: input is allowed, pid taints, local refs are not
  // (initializers run before any local is meaningful).
  for (const LocalSpec& l : prog_.locals_) {
    if (l.init == kNoExpr) fail(name, "local without initializer");
    std::set<std::uint16_t> init_reads;
    bool in = false;
    bool pid_used = false;
    scan.walk(l.init, init_reads, in, pid_used);
    prog_.uses_pid_ = prog_.uses_pid_ || pid_used;
    if (!init_reads.empty()) {
      fail(name, "local initializer references another local");
    }
  }

  if (prog_.uses_queue_ &&
      (prog_.num_objects_ != 0 || prog_.num_registers_ != 0)) {
    fail(name, "queue clients may not mix CAS/register ops");
  }
  if (prog_.uses_queue_ && prog_.has_recovery()) {
    fail(name, "queue clients do not support crash recovery");
  }

  // Layout well-formedness is a memory-safety property of encode(), so
  // it holds in BOTH validation modes (kSyntaxOnly programs still get
  // interpreted and encoded by the analyzer's test fixtures).
  for (const std::uint16_t l : prog_.layout_) {
    if (l >= prog_.locals_.size()) {
      fail(name, "layout names an undeclared local");
    }
  }

  // Every control-flow cycle must contain a shared op (a pause), so the
  // interpreter's run-to-next-pause loop is structurally bounded.  DFS
  // over the subgraph induced by the LOCAL ops only: a cycle there is a
  // potential infinite no-pause spin.
  if (mode == Validate::kFull) {
    enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
    std::vector<Mark> mark(n_ops, Mark::kWhite);
    std::vector<std::pair<std::uint32_t, int>> stack;  // (op, next edge)
    const auto succ = [&](std::uint32_t pc, int edge) -> std::uint32_t {
      const Op& op = prog_.ops_[pc];
      if (op.kind == OpKind::kHalt) return kUnboundLabel;
      if (op.kind == OpKind::kGoto) {
        return edge == 0 ? op.target : kUnboundLabel;
      }
      if (op.kind == OpKind::kBranch) {
        if (edge == 0) return op.target;
        if (edge == 1) return pc + 1;
        return kUnboundLabel;
      }
      return edge == 0 ? pc + 1 : kUnboundLabel;  // kSet and shared ops
    };
    for (std::uint32_t root = 0; root < n_ops; ++root) {
      if (mark[root] != Mark::kWhite || is_shared_op(prog_.ops_[root].kind)) {
        continue;
      }
      mark[root] = Mark::kGrey;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [pc, edge] = stack.back();
        const std::uint32_t next = succ(pc, edge++);
        if (next == kUnboundLabel) {
          mark[pc] = Mark::kBlack;
          stack.pop_back();
          continue;
        }
        if (is_shared_op(prog_.ops_[next].kind)) continue;  // pause breaks it
        if (mark[next] == Mark::kGrey) {
          fail(name,
               "control-flow cycle without a shared-memory operation — "
               "the interpreter could spin without pausing");
        }
        if (mark[next] == Mark::kWhite) {
          mark[next] = Mark::kGrey;
          stack.emplace_back(next, 0);
        }
      }
    }
  }

  // Backward liveness: at every pause point (shared op), the locals the
  // machine can still read must all be in the encode() layout — with the
  // pending op's own operand reads counting as live (they ARE the pending
  // step) and its dst counting as defined by the delivery.  This is the
  // static half of the encode() soundness argument (DESIGN.md §3e).
  if (mode == Validate::kFull) {
    std::vector<std::set<std::uint16_t>> live_in(n_ops);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = n_ops; i-- > 0;) {
        const Op& op = prog_.ops_[i];
        std::set<std::uint16_t> out;
        const auto join = [&](std::uint32_t s) {
          if (s < n_ops) out.insert(live_in[s].begin(), live_in[s].end());
        };
        switch (op.kind) {
          case OpKind::kHalt:
            break;
          case OpKind::kGoto:
            join(op.target);
            break;
          case OpKind::kBranch:
            join(op.target);
            join(static_cast<std::uint32_t>(i + 1));
            break;
          default:
            join(static_cast<std::uint32_t>(i + 1));
            break;
        }
        if (is_shared_op(op.kind) || op.kind == OpKind::kSet) {
          out.erase(op.dst);  // delivery / assignment defines dst
        }
        out.insert(uses[i].begin(), uses[i].end());
        if (out != live_in[i]) {
          live_in[i] = std::move(out);
          changed = true;
        }
      }
    }
    const std::set<std::uint16_t> layout_set(prog_.layout_.begin(),
                                             prog_.layout_.end());
    for (std::size_t i = 0; i < n_ops; ++i) {
      if (!is_shared_op(prog_.ops_[i].kind) &&
          prog_.ops_[i].kind != OpKind::kHalt) {
        continue;
      }
      for (const std::uint16_t l : live_in[i]) {
        if (layout_set.count(l) == 0) {
          fail(name, "local `" + prog_.locals_[l].name +
                         "` is live at a pause point but missing from the "
                         "encode() layout — equal encodings would not imply "
                         "equal behaviour");
        }
      }
    }

    // Crash-edge liveness: a crash at ANY pause point re-enters at the
    // recovery pc with every non-persistent local wiped to 0, so a local
    // that is live at the recovery entry reads its pre-crash value only
    // if it is persistent — anything else would make the recovered run
    // depend on wiped (stale) state.  The persistent locals live there
    // additionally carry state across the crash edge, so they must be in
    // the encode() layout or equal encodings at a pause would not pin
    // down post-crash behaviour.
    if (prog_.has_recovery()) {
      for (const std::uint16_t l : live_in[prog_.recovery_pc_]) {
        if (!prog_.locals_[l].persistent) {
          fail(name, "volatile local `" + prog_.locals_[l].name +
                         "` is live at the recovery entry — a recovered "
                         "process would read wiped state; declare it "
                         "persistent() or define it on the recovery path");
        }
        if (layout_set.count(l) == 0) {
          fail(name, "persistent local `" + prog_.locals_[l].name +
                         "` is live at the recovery entry but missing from "
                         "the encode() layout");
        }
      }
    }
  }

  // Flatten every expression tree into contiguous postfix code so that
  // Program::eval (ir.hpp) is an iterative loop — the hot path of both
  // drivers.  The builder only ever hands out ids of already-pushed
  // nodes, so children always have smaller ids and the pool is a DAG;
  // a postorder walk with an explicit stack terminates.  The simulated
  // operand-stack depth doubles as the kMaxEvalDepth check.
  {
    const std::size_t n_exprs = prog_.exprs_.size();
    prog_.post_off_.resize(n_exprs, 0);
    prog_.post_len_.resize(n_exprs, 0);
    std::vector<std::pair<ExprId, bool>> walk;  // (node, children emitted)
    for (ExprId root = 0; root < n_exprs; ++root) {
      const auto off = static_cast<std::uint32_t>(prog_.post_.size());
      prog_.post_off_[root] = off;
      std::size_t depth = 0;
      std::size_t max_depth = 0;
      walk.emplace_back(root, false);
      while (!walk.empty()) {
        auto& [id, emitted] = walk.back();
        const ExprNode& e = prog_.exprs_[id];
        if (!emitted) {
          emitted = true;
          // Push children in reverse so they evaluate a, b, c in order.
          if (e.c != kNoExpr) walk.emplace_back(e.c, false);
          if (e.b != kNoExpr) walk.emplace_back(e.b, false);
          if (e.a != kNoExpr) walk.emplace_back(e.a, false);
          continue;
        }
        walk.pop_back();
        prog_.post_.push_back(PostOp{e.op, e.imm});
        const std::size_t arity = (e.a != kNoExpr ? 1u : 0u) +
                                  (e.b != kNoExpr ? 1u : 0u) +
                                  (e.c != kNoExpr ? 1u : 0u);
        depth = depth - arity + 1;
        max_depth = std::max(max_depth, depth);
      }
      if (max_depth > kMaxEvalDepth) {
        fail(name, "expression exceeds the evaluation-stack bound");
      }
      prog_.post_len_[root] =
          static_cast<std::uint16_t>(prog_.post_.size() - off);
    }
  }

  // Compile the whole op list into one flat VM stream (see VmCode):
  // each op becomes its operands' postfix code followed by a terminator
  // token, so IrMachine's run-to-pause loop is a single dispatch loop.
  // The operand stack is empty at every op boundary (each terminator
  // consumes exactly what its operands pushed), so the per-op simulated
  // depth check below bounds the whole stream by kMaxEvalDepth.
  {
    const auto stack_effect = [](VmCode code) -> int {
      switch (code) {
        case VmCode::kConst:
        case VmCode::kInput:
        case VmCode::kPid:
        case VmCode::kLocal:
        case VmCode::kAddLC:
        case VmCode::kSubLC:
        case VmCode::kEqLC:
        case VmCode::kNeLC:
        case VmCode::kLtLC:
        case VmCode::kGeLC:
        case VmCode::kAddLL:
        case VmCode::kSubLL:
        case VmCode::kEqLL:
        case VmCode::kNeLL:
        case VmCode::kLtLL:
        case VmCode::kGeLL:
        case VmCode::kIsBottomL:
        case VmCode::kNotBottomL:
        case VmCode::kStageL:
        case VmCode::kValueOfL:
        case VmCode::kGeSL:
        case VmCode::kLtSC:
          return 1;
        case VmCode::kNot:
        case VmCode::kIsBottom:
        case VmCode::kStage:
        case VmCode::kValueOf:
        case VmCode::kU32:
          return 0;
        case VmCode::kSelect:
          return -2;
        default:
          return -1;  // binary expression operators
      }
    };
    // Fused counterpart of a binary ExprOp, or kConst when not fusable.
    const auto fused_lc = [](ExprOp op) -> VmCode {
      switch (op) {
        case ExprOp::kAdd:
          return VmCode::kAddLC;
        case ExprOp::kSub:
          return VmCode::kSubLC;
        case ExprOp::kEq:
          return VmCode::kEqLC;
        case ExprOp::kNe:
          return VmCode::kNeLC;
        case ExprOp::kLt:
          return VmCode::kLtLC;
        case ExprOp::kGe:
          return VmCode::kGeLC;
        default:
          return VmCode::kConst;
      }
    };
    const auto fused_ll = [](ExprOp op) -> VmCode {
      switch (op) {
        case ExprOp::kAdd:
          return VmCode::kAddLL;
        case ExprOp::kSub:
          return VmCode::kSubLL;
        case ExprOp::kEq:
          return VmCode::kEqLL;
        case ExprOp::kNe:
          return VmCode::kNeLL;
        case ExprOp::kLt:
          return VmCode::kLtLL;
        case ExprOp::kGe:
          return VmCode::kGeLL;
        default:
          return VmCode::kConst;
      }
    };
    // Fused compare-and-branch counterpart of a single fused compare
    // token, or kConst when the terminator cannot absorb it.
    const auto fused_branch = [](VmCode code) -> VmCode {
      switch (code) {
        case VmCode::kEqLL:
          return VmCode::kOpBranchEqLL;
        case VmCode::kNeLL:
          return VmCode::kOpBranchNeLL;
        case VmCode::kLtLL:
          return VmCode::kOpBranchLtLL;
        case VmCode::kGeLL:
          return VmCode::kOpBranchGeLL;
        case VmCode::kEqLC:
          return VmCode::kOpBranchEqLC;
        case VmCode::kNeLC:
          return VmCode::kOpBranchNeLC;
        case VmCode::kLtLC:
          return VmCode::kOpBranchLtLC;
        case VmCode::kGeLC:
          return VmCode::kOpBranchGeLC;
        default:
          return VmCode::kConst;
      }
    };
    prog_.vm_off_.resize(n_ops, 0);
    // `packed` fixups patch only imm's high half (the low half already
    // carries the fused branch's second operand).
    struct Fixup {
      std::size_t tok;
      std::uint32_t target;
      bool packed;
    };
    std::vector<Fixup> vm_fixups;
    std::vector<VmOp> tmp;  // one op's tokens, pre-peephole
    const auto append_expr = [&](ExprId id) {
      const std::uint32_t off = prog_.post_off_[id];
      for (std::uint32_t k = 0; k < prog_.post_len_[id]; ++k) {
        const PostOp& tok = prog_.post_[off + k];
        tmp.push_back(VmOp{static_cast<VmCode>(tok.op), 0, tok.imm});
      }
    };
    // Peephole over one op's postfix run.  Every rewrite replaces a
    // "push, [push,] combine" suffix whose operands were pushed by the
    // immediately preceding tokens, so it is context-free and exact.
    const auto peephole = [&]() {
      std::vector<VmOp> out;
      out.reserve(tmp.size());
      for (const VmOp& t : tmp) {
        const std::size_t n = out.size();
        if (n >= 2 && out[n - 2].code == VmCode::kLocal &&
            out[n - 1].code == VmCode::kConst &&
            fused_lc(static_cast<ExprOp>(t.code)) != VmCode::kConst) {
          const VmOp fused{fused_lc(static_cast<ExprOp>(t.code)),
                           static_cast<std::uint32_t>(out[n - 2].imm),
                           out[n - 1].imm};
          out.resize(n - 2);
          out.push_back(fused);
          continue;
        }
        if (n >= 2 && out[n - 2].code == VmCode::kLocal &&
            out[n - 1].code == VmCode::kLocal &&
            fused_ll(static_cast<ExprOp>(t.code)) != VmCode::kConst) {
          const VmOp fused{fused_ll(static_cast<ExprOp>(t.code)),
                           static_cast<std::uint32_t>(out[n - 2].imm),
                           out[n - 1].imm};
          out.resize(n - 2);
          out.push_back(fused);
          continue;
        }
        if (n >= 1 && out[n - 1].code == VmCode::kLocal) {
          VmCode fused = VmCode::kConst;
          switch (static_cast<ExprOp>(t.code)) {
            case ExprOp::kIsBottom:
              fused = VmCode::kIsBottomL;
              break;
            case ExprOp::kStage:
              fused = VmCode::kStageL;
              break;
            case ExprOp::kValueOf:
            case ExprOp::kU32:
              fused = VmCode::kValueOfL;
              break;
            default:
              break;
          }
          if (fused != VmCode::kConst) {
            const VmOp rewritten{
                fused, static_cast<std::uint32_t>(out[n - 1].imm), 0};
            out.resize(n - 1);
            out.push_back(rewritten);
            continue;
          }
        }
        if (n >= 1 && out[n - 1].code == VmCode::kIsBottomL &&
            static_cast<ExprOp>(t.code) == ExprOp::kNot) {
          out[n - 1].code = VmCode::kNotBottomL;
          continue;
        }
        // Stage-field compares — the staged protocol's hot-loop guards.
        if (n >= 2 && out[n - 2].code == VmCode::kStageL &&
            out[n - 1].code == VmCode::kLocal &&
            static_cast<ExprOp>(t.code) == ExprOp::kGe) {
          const VmOp fused{VmCode::kGeSL, out[n - 2].aux, out[n - 1].imm};
          out.resize(n - 2);
          out.push_back(fused);
          continue;
        }
        if (n >= 2 && out[n - 2].code == VmCode::kStageL &&
            out[n - 1].code == VmCode::kConst &&
            static_cast<ExprOp>(t.code) == ExprOp::kLt) {
          const VmOp fused{VmCode::kLtSC, out[n - 2].aux, out[n - 1].imm};
          out.resize(n - 2);
          out.push_back(fused);
          continue;
        }
        out.push_back(t);
      }
      tmp = std::move(out);
    };
    // Flushes the op's (peepholed) tokens plus its terminator, checking
    // the simulated stack depth stays within kMaxEvalDepth.
    const auto flush_op = [&](VmOp terminator, int operand_count) {
      peephole();
      // kSet of a single push fuses into the terminator itself.
      if (terminator.code == VmCode::kOpSet && tmp.size() == 1) {
        if (tmp[0].code == VmCode::kConst) {
          terminator = VmOp{VmCode::kOpSetConst, terminator.aux, tmp[0].imm};
          tmp.clear();
          operand_count = 0;
        } else if (tmp[0].code == VmCode::kLocal) {
          terminator = VmOp{VmCode::kOpSetLocal, terminator.aux, tmp[0].imm};
          tmp.clear();
          operand_count = 0;
        } else if (tmp[0].code == VmCode::kAddLC) {
          // dst and src local indices are both < kMaxLocals, so the two
          // halves of aux hold them comfortably.
          terminator = VmOp{VmCode::kOpSetAddLC,
                            (terminator.aux << 16) | tmp[0].aux, tmp[0].imm};
          tmp.clear();
          operand_count = 0;
        }
      }
      int depth = 0;
      for (const VmOp& t : tmp) {
        depth += stack_effect(t.code);
        if (depth > static_cast<int>(kMaxEvalDepth)) {
          fail(prog_.name_, "op operands exceed the evaluation-stack bound");
        }
        prog_.vm_.push_back(t);
      }
      assert(depth == operand_count);
      (void)operand_count;
      prog_.vm_.push_back(terminator);
      tmp.clear();
    };
    for (std::uint32_t i = 0; i < n_ops; ++i) {
      const Op& op = prog_.ops_[i];
      prog_.vm_off_[i] = static_cast<std::uint32_t>(prog_.vm_.size());
      switch (op.kind) {
        case OpKind::kSet:
          append_expr(op.value);
          flush_op(VmOp{VmCode::kOpSet, op.dst, 0}, 1);
          break;
        case OpKind::kBranch: {
          append_expr(op.value);
          peephole();
          // A condition that peepholed down to one fused compare token
          // merges into the terminator itself (the LC forms only when
          // the constant leaves imm's high half free for the target).
          const VmCode fb =
              tmp.size() == 1 ? fused_branch(tmp[0].code) : VmCode::kConst;
          const bool fuse =
              fb != VmCode::kConst && tmp[0].imm <= 0xFFFFFFFFULL;
          if (fuse) {
            prog_.vm_.push_back(VmOp{fb, tmp[0].aux, tmp[0].imm});
            tmp.clear();
          } else {
            flush_op(VmOp{VmCode::kOpBranch, 0, 0}, 1);
          }
          vm_fixups.push_back({prog_.vm_.size() - 1, op.target, fuse});
          break;
        }
        case OpKind::kGoto:
          flush_op(VmOp{VmCode::kOpGoto, 0, 0}, 0);
          vm_fixups.push_back({prog_.vm_.size() - 1, op.target, false});
          break;
        case OpKind::kHalt:
          append_expr(op.value);
          flush_op(VmOp{VmCode::kOpHalt, 0, i}, 1);
          break;
        case OpKind::kCas:
          append_expr(op.index);
          append_expr(op.expected);
          append_expr(op.value);
          flush_op(VmOp{VmCode::kOpCas, op.dst, i}, 3);
          break;
        case OpKind::kRegRead:
          append_expr(op.index);
          flush_op(VmOp{VmCode::kOpRegRead, op.dst, i}, 1);
          break;
        case OpKind::kRegWrite:
          append_expr(op.index);
          append_expr(op.value);
          flush_op(VmOp{VmCode::kOpRegWrite, op.dst, i}, 2);
          break;
        case OpKind::kEnqueue:
          append_expr(op.value);
          flush_op(VmOp{VmCode::kOpEnqueue, op.dst, i}, 1);
          break;
        case OpKind::kDequeue:
          flush_op(VmOp{VmCode::kOpDequeue, op.dst, i}, 0);
          break;
      }
    }
    for (const auto& fx : vm_fixups) {
      const Word off = prog_.vm_off_[fx.target];
      if (fx.packed) {
        prog_.vm_[fx.tok].imm |= off << 32;
      } else {
        prog_.vm_[fx.tok].imm = off;
      }
    }
  }

  auto out = std::shared_ptr<Program>(new Program(std::move(prog_)));
  return out;
}

}  // namespace ff::proto
