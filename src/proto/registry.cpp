#include "proto/registry.hpp"

#include <stdexcept>

#include "proto/fingerprint.hpp"
#include "proto/genapi.hpp"
#include "proto/programs.hpp"

namespace ff::proto {

namespace {

std::shared_ptr<const Program> build_single_cas(const Params&) {
  return single_cas_program();
}

std::shared_ptr<const Program> build_f_plus_one(const Params& p) {
  return f_plus_one_program(static_cast<std::uint32_t>(p.get("k", 2)));
}

std::shared_ptr<const Program> build_staged(const Params& p) {
  return staged_program(static_cast<std::uint32_t>(p.get("f", 1)),
                        static_cast<std::uint32_t>(p.get("t", 1)),
                        static_cast<std::uint32_t>(p.get("max_stage", 0)));
}

std::shared_ptr<const Program> build_announce_cas(const Params& p) {
  return announce_cas_program(static_cast<std::uint32_t>(p.get("n", 2)));
}

std::shared_ptr<const Program> build_tas(const Params& p) {
  return tas_program(static_cast<std::uint32_t>(p.get("n", 2)));
}

std::shared_ptr<const Program> build_retry_silent(const Params&) {
  return retry_silent_program();
}

std::shared_ptr<const Program> build_queue_client(const Params& p) {
  return queue_client_program(p.get("ops", 100));
}

std::shared_ptr<const Program> build_recoverable_cas(const Params&) {
  return recoverable_cas_program();
}

std::shared_ptr<const Program> build_recoverable_staged(const Params& p) {
  return recoverable_staged_program(
      static_cast<std::uint32_t>(p.get("f", 1)),
      static_cast<std::uint32_t>(p.get("t", 1)),
      static_cast<std::uint32_t>(p.get("max_stage", 0)));
}

}  // namespace

ProtocolRegistry::ProtocolRegistry() {
  infos_ = {
      ProtocolInfo{
          "single-cas",
          "Figure 1 / Herlihy: one CAS on O_0, adopt a non-bottom old",
          {"herlihy"},
          {},
          true,
          &build_single_cas},
      ProtocolInfo{
          "f-plus-one",
          "Figure 2: one pass over O_0..O_{k-1}, adopting old values",
          {"fp1"},
          {{"k", 2, "object count (f+1 = Theorem 5; f = Theorem 18)"}},
          true,
          &build_f_plus_one},
      ProtocolInfo{
          "staged",
          "Figure 3: staged protocol, maxStage = t*(4f+f^2)",
          {},
          {{"f", 1, "object count (all possibly faulty)"},
           {"t", 1, "per-object fault bound fixing maxStage"},
           {"max_stage", 0, "non-zero: ablation override of maxStage"}},
          true,
          &build_staged},
      ProtocolInfo{
          "retry-silent",
          "Section 3.4: Herlihy attempt + no-op confirmation probe",
          {},
          {},
          true,
          &build_retry_silent},
      ProtocolInfo{
          "announce-cas",
          "announce to A[pid], tiebreak via CAS, read the winner",
          {"announce"},
          {{"n", 2, "process/register count"}},
          true,
          &build_announce_cas},
      ProtocolInfo{
          "tas",
          "test&set consensus (TAS = CAS(bottom->1)); naive beyond n=2",
          {},
          {{"n", 2, "process/register count"}},
          true,
          &build_tas},
      ProtocolInfo{
          "recoverable-cas",
          "single CAS with a persistent proposal; recovery retries it",
          {"rcas"},
          {},
          true,
          &build_recoverable_cas},
      ProtocolInfo{
          "recoverable-staged",
          "Figure 3 staged with persistent state + recovery dispatch",
          {"rstaged"},
          {{"f", 1, "object count (all possibly faulty)"},
           {"t", 1, "per-object fault bound fixing maxStage"},
           {"max_stage", 0, "non-zero: ablation override of maxStage"}},
          true,
          &build_recoverable_staged},
      ProtocolInfo{
          "queue-client",
          "relaxed-queue client: enqueue 1..ops then dequeue ops times",
          {},
          {{"ops", 100, "enqueue/dequeue pairs"}},
          false,
          &build_queue_client},
  };
}

const ProtocolRegistry& ProtocolRegistry::instance() {
  static const ProtocolRegistry kRegistry;
  return kRegistry;
}

const ProtocolInfo* ProtocolRegistry::find(std::string_view name) const {
  for (const ProtocolInfo& info : infos_) {
    if (info.name == name) return &info;
    for (const std::string& alias : info.aliases) {
      if (alias == name) return &info;
    }
  }
  return nullptr;
}

std::shared_ptr<const Program> build_program(std::string_view name,
                                             const Params& params) {
  const ProtocolInfo* info = ProtocolRegistry::instance().find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown protocol: " + std::string(name));
  }
  return info->build(params);
}

std::unique_ptr<sched::MachineFactory> machine_factory(std::string_view name,
                                                       const Params& params) {
  auto program = build_program(name, params);
  if (program->uses_queue()) {
    throw std::invalid_argument("protocol `" + std::string(name) +
                                "` is a queue client — it cannot run in "
                                "the CAS simulator");
  }
  // Generated when available: ffgen stamped each emitted machine with the
  // structural fingerprint of the Program it was compiled from, so a hit
  // here means "this exact Program".  Parameterizations outside the
  // generation grid miss and run on the IrMachine interpreter, which
  // stays the always-on differential oracle either way (test_codegen,
  // bench_b3 codegen_census_match).
  if (const gen::GenEntry* entry =
          gen::find_generated(program_fingerprint(*program))) {
    return std::make_unique<gen::GenMachineFactory>(std::move(program), entry);
  }
  return std::make_unique<IrMachineFactory>(std::move(program));
}

std::unique_ptr<sched::MachineFactory> machine_factory_interpreted(
    std::string_view name, const Params& params) {
  auto program = build_program(name, params);
  if (program->uses_queue()) {
    throw std::invalid_argument("protocol `" + std::string(name) +
                                "` is a queue client — it cannot run in "
                                "the CAS simulator");
  }
  return std::make_unique<IrMachineFactory>(std::move(program));
}

std::unique_ptr<consensus::Protocol> protocol(
    std::string_view name, const Params& params,
    std::vector<objects::CasObject*> objects,
    std::vector<objects::AtomicRegister*> registers) {
  auto program = build_program(name, params);
  if (program->uses_queue()) {
    throw std::invalid_argument("protocol `" + std::string(name) +
                                "` is a queue client — use "
                                "run_queue_client()");
  }
  return std::make_unique<IrProtocol>(std::move(program), std::move(objects),
                                      std::move(registers));
}

}  // namespace ff::proto
