// Robust shared counters from faulty fetch-and-add objects — the
// framework of Sections 3-4 applied to a second primitive (the paper's
// §7 future work).
//
// Constructions:
//   * MedianCounter  — 2f+1 replicas, each add applied to every replica,
//     reads return the MEDIAN of the replicas.  At quiescence, with at
//     most f faulty replicas (any structured drift, even unbounded-t
//     silent/off-by-one faults), at least f+1 replicas hold the exact
//     sum, so the median IS the exact sum: an (f, ∞)-tolerant exact
//     counter from 2f+1 objects.
//   * DriftBoundedCounter — a SINGLE faulty object with at most t
//     off-by-one (carry) faults: every read is within t of the true sum.
//     This is the functional-fault dividend in miniature — the
//     structured Φ′ (±1 per fault) gives a usable accuracy bound where
//     an arbitrary data fault would give none.
//   * MeanCounter — deliberately NOT robust (mean instead of median);
//     kept for the ablation benchmark, which shows a single drifting
//     replica pulling the mean off while the median stays exact.
//
// All operations are wait-free: adds are one F&A per replica; reads are
// one F&A(0) per replica.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "model/faa_semantics.hpp"
#include "objects/fetch_add.hpp"

namespace ff::counter {

class MedianCounter {
 public:
  /// `replicas` must have odd size 2f+1 to tolerate f faulty objects.
  explicit MedianCounter(std::vector<objects::FetchAddObject*> replicas)
      : replicas_(std::move(replicas)) {
    assert(!replicas_.empty());
    assert(replicas_.size() % 2 == 1);
  }

  void add(model::CounterValue delta, objects::ProcessId caller) {
    for (objects::FetchAddObject* replica : replicas_) {
      replica->fetch_add(delta, caller);
    }
  }

  /// Median of the replica values.  Exact at quiescence with at most
  /// f = (replicas-1)/2 faulty replicas; within the concurrent-add
  /// envelope otherwise.
  [[nodiscard]] model::CounterValue read(objects::ProcessId caller) const {
    std::vector<model::CounterValue> values;
    values.reserve(replicas_.size());
    for (objects::FetchAddObject* replica : replicas_) {
      // F&A(0) is the only read a F&A object offers.
      values.push_back(replica->fetch_add(0, caller));
    }
    auto mid = values.begin() +
               static_cast<std::ptrdiff_t>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    return *mid;
  }

  [[nodiscard]] std::uint32_t tolerated_faulty_objects() const noexcept {
    return static_cast<std::uint32_t>((replicas_.size() - 1) / 2);
  }
  [[nodiscard]] std::uint32_t replicas() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  void reset() {
    for (objects::FetchAddObject* replica : replicas_) replica->reset();
  }

 private:
  std::vector<objects::FetchAddObject*> replicas_;
};

/// Single-object counter whose accuracy degrades gracefully: with at most
/// t manifested off-by-one faults, |read − true sum| ≤ t.
class DriftBoundedCounter {
 public:
  DriftBoundedCounter(objects::FetchAddObject& object, std::uint32_t t)
      : object_(object), t_(t) {}

  void add(model::CounterValue delta, objects::ProcessId caller) {
    object_.fetch_add(delta, caller);
  }
  [[nodiscard]] model::CounterValue read(objects::ProcessId caller) const {
    return object_.fetch_add(0, caller);
  }
  /// The construction's accuracy guarantee.
  [[nodiscard]] model::CounterValue max_error() const noexcept { return t_; }

  void reset() { object_.reset(); }

 private:
  objects::FetchAddObject& object_;
  const std::uint32_t t_;
};

/// Ablation foil: averaging is NOT robust — one unbounded drifter moves
/// the mean arbitrarily.  Do not use; exists to be measured against.
class MeanCounter {
 public:
  explicit MeanCounter(std::vector<objects::FetchAddObject*> replicas)
      : replicas_(std::move(replicas)) {
    assert(!replicas_.empty());
  }

  void add(model::CounterValue delta, objects::ProcessId caller) {
    for (objects::FetchAddObject* replica : replicas_) {
      replica->fetch_add(delta, caller);
    }
  }

  [[nodiscard]] model::CounterValue read(objects::ProcessId caller) const {
    model::CounterValue sum = 0;
    for (objects::FetchAddObject* replica : replicas_) {
      sum += replica->fetch_add(0, caller);
    }
    // Rounded-to-nearest integer mean.
    const auto k = static_cast<model::CounterValue>(replicas_.size());
    return (sum + (sum >= 0 ? k / 2 : -k / 2)) / k;
  }

  void reset() {
    for (objects::FetchAddObject* replica : replicas_) replica->reset();
  }

 private:
  std::vector<objects::FetchAddObject*> replicas_;
};

}  // namespace ff::counter
