// verify::JobSpec — the canonical, hashable description of ONE
// verification run, and the value type every front end (fault_explorer,
// the B-series benches, the differential test harnesses, and the future
// ffd daemon) constructs instead of wiring raw engine option structs.
//
// A job names a protocol (registry name + params), a fault model
// (kind + fault/crash budgets), an engine, the reduction flags, and the
// budget limits.  Two invariants make it the substrate the persistent
// census cache stands on:
//
//   * STRICT VALIDATION.  Illegal combinations are rejected with a
//     thrown std::invalid_argument, never silently ignored — e.g. the
//     frontier engine refuses sleep-set POR (a DFS-path notion a BFS
//     wavefront cannot carry soundly), the stress engine refuses
//     simulator-only fault branching, and unknown protocols/engines name
//     themselves in the error.
//   * CANONICAL JSON.  canonical_json() emits every semantic field in a
//     fixed order with aliases resolved to canonical registry names and
//     params normalized against the protocol's schema (defaults filled,
//     unknown keys dropped), so equal jobs serialize to equal bytes.
//     Execution hints that cannot change the result census — thread and
//     shard counts, spill settings, table pre-sizing — live in a
//     separate "exec" section that is serialized (round-trip) but
//     EXCLUDED from the job fingerprint (DESIGN.md §3j).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "model/fault_kind.hpp"
#include "model/tolerance.hpp"
#include "util/json_parse.hpp"

namespace ff::verify {

enum class Engine : std::uint8_t {
  kDfs,       ///< sequential in-place DFS (sched/explorer.hpp)
  kParallel,  ///< work-stealing parallel DFS (sched/parallel_explorer.hpp)
  kFrontier,  ///< batched owner-computes BFS (sched/frontier_explorer.hpp)
  kFuzz,      ///< coverage-guided schedule fuzzing (sched/fuzzer.hpp)
  kStress,    ///< real-thread trials (runtime/stress.hpp)
};

[[nodiscard]] constexpr std::string_view to_string(Engine e) noexcept {
  switch (e) {
    case Engine::kDfs: return "dfs";
    case Engine::kParallel: return "parallel";
    case Engine::kFrontier: return "frontier";
    case Engine::kFuzz: return "fuzz";
    case Engine::kStress: return "stress";
  }
  return "unknown";
}

/// Parses an engine name; throws std::invalid_argument on anything else.
[[nodiscard]] Engine engine_from_string(std::string_view name);

/// Parses a fault-kind name in the CLI vocabulary (`data` accepted as an
/// alias for `data-corruption`); throws std::invalid_argument otherwise.
[[nodiscard]] model::FaultKind fault_kind_from_string(std::string_view name);

struct JobSpec {
  // --- semantic fields (folded into the job fingerprint) ---------------
  /// Registry name or alias; canonicalized by canonicalized()/validate().
  std::string protocol = "staged";
  /// Protocol parameters; normalized against the registry schema.
  std::map<std::string, std::uint64_t> params;
  model::FaultKind kind = model::FaultKind::kOverriding;
  /// Faults per faulty object (model::kUnbounded = no budget).
  std::uint32_t t = 1;
  /// Max crashes per process (0 = crash branches disabled).
  std::uint32_t crash_budget = 0;
  /// Processes; inputs are 1..n (distinct) or all-1 (equal_inputs).
  std::uint32_t processes = 2;
  bool equal_inputs = false;
  Engine engine = Engine::kDfs;
  /// Force the IrMachine interpreter instead of the generated machines —
  /// the differential-oracle side of codegen comparisons.
  bool interpreted = false;
  bool symmetry_reduction = true;
  /// Sleep-set POR (DFS engines only; rejected for frontier).
  bool sleep_sets = true;
  bool immunity_pruning = true;
  bool killed_is_violation = false;
  bool stop_at_first_violation = true;
  /// Explore-family state cap (0 = unlimited).
  std::uint64_t max_states = 4'000'000;
  /// Also compute the wait-freedom bound (longest execution) after a
  /// complete, violation-free dfs run.
  bool wait_free_bound = false;
  /// Fuzz/stress seed.
  std::uint64_t seed = 1;
  /// Fuzz budgets (steps / wall-clock ms / executions; 0 = unlimited).
  std::uint64_t fuzz_steps = 2'000'000;
  std::uint64_t fuzz_millis = 0;
  std::uint64_t fuzz_execs = 0;
  bool shrink = true;
  /// Stress budget in trials.
  std::uint64_t trials = 100;

  // --- execution hints (serialized, NOT fingerprinted) ------------------
  /// Worker threads for parallel/frontier (0 = hardware concurrency).
  std::uint32_t threads = 0;
  std::uint32_t shard_count = 0;
  std::uint32_t batch_lanes = 1024;
  std::string spill_dir;
  std::uint64_t mem_limit_bytes = 0;
  /// Fingerprint-table pre-size hint (0 = derive from max_states).
  std::uint64_t expected_states = 0;

  /// Throws std::invalid_argument naming the first violated rule.
  void validate() const;

  /// Returns a copy with the protocol alias resolved to its canonical
  /// registry name and params normalized against the schema (defaults
  /// filled in, keys outside the schema dropped).  Validates first.
  [[nodiscard]] JobSpec canonicalized() const;

  /// Full canonical document: {"job": {...semantic...}, "exec": {...}}.
  /// Canonicalizes (and therefore validates) first.
  [[nodiscard]] std::string canonical_json() const;

  /// Inverse of canonical_json(); unknown members are rejected-by-schema
  /// (missing required members throw util::JsonParseError, wrong types
  /// throw too) so a corrupted document can never half-populate a spec.
  [[nodiscard]] static JobSpec from_json(const util::JsonValue& doc);
  [[nodiscard]] static JobSpec parse(std::string_view text);

  /// A job is cacheable iff its result is a pure function of the spec:
  /// real-thread stress trials depend on OS scheduling and a wall-clock
  /// fuzz deadline truncates nondeterministically, so neither is ever
  /// stored or served from the cache.
  [[nodiscard]] bool cacheable() const {
    return engine != Engine::kStress &&
           !(engine == Engine::kFuzz && fuzz_millis != 0);
  }

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// 128-bit canonical job fingerprint: the resolved proto::Program's
/// structural fingerprint (proto/fingerprint.hpp) folded with the
/// canonical semantic-field document, so an IR change and an option
/// change each invalidate exactly the affected cache entries.
struct JobFingerprint {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  /// 32 lowercase hex chars — the cache entry's file stem.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const JobFingerprint&,
                         const JobFingerprint&) = default;
};

/// Computes the fingerprint, resolving the program through the registry
/// (throws like validate() on an invalid spec).  The resolved program
/// fingerprint is also returned via `program_fp` when non-null — the
/// cache stores it separately so a hit can re-verify soundness.
[[nodiscard]] JobFingerprint job_fingerprint(
    const JobSpec& spec, std::uint64_t* program_fp = nullptr);

}  // namespace ff::verify
