#include "verify/run.hpp"

#include <chrono>
#include <deque>
#include <numeric>

#include "objects/atomic_cas.hpp"
#include "objects/register.hpp"
#include "proto/fingerprint.hpp"
#include "proto/registry.hpp"
#include "runtime/stress.hpp"
#include "sched/explorer.hpp"
#include "sched/frontier_explorer.hpp"
#include "sched/fuzzer.hpp"
#include "sched/parallel_explorer.hpp"

namespace ff::verify {

namespace {

sched::ExploreOptions explore_options(const JobSpec& spec) {
  sched::ExploreOptions options;
  options.max_states = spec.max_states;
  options.stop_at_first_violation = spec.stop_at_first_violation;
  options.killed_is_violation = spec.killed_is_violation;
  options.symmetry_reduction = spec.symmetry_reduction;
  options.sleep_sets = spec.sleep_sets;
  options.expected_states = spec.expected_states;
  return options;
}

void fill_census(Report& report, const sched::ExploreResult& result) {
  report.complete = result.complete;
  report.states_visited = result.states_visited;
  report.terminal_states = result.terminal_states;
  report.violations_found = result.violations_found;
  report.violations_by_kind = result.violations_by_kind;
  report.max_depth = result.max_depth;
  report.agreed_values = result.agreed_values;
  report.table_grows = result.table_grows;
  report.immunity_checks = result.immunity_checks;
  report.immunity_skips = result.immunity_skips;
  report.peak_bytes = result.peak_bytes;
  report.violation = result.violation;
}

Report execute_explore_family(const Instance& instance) {
  const JobSpec& spec = instance.spec;
  Report report;
  if (spec.engine == Engine::kFrontier) {
    sched::FrontierExploreOptions options;
    options.explore = explore_options(spec);
    options.num_threads = spec.threads;
    options.shard_count = spec.shard_count;
    options.spill_dir = spec.spill_dir;
    options.mem_limit_bytes = spec.mem_limit_bytes;
    options.batch_lanes = spec.batch_lanes;
    const auto result = sched::frontier_explore(
        instance.config, *instance.factory, instance.inputs, options);
    fill_census(report, result.explore);
    report.frontier = result.stats;
  } else if (spec.engine == Engine::kParallel) {
    sched::ParallelExploreOptions options;
    options.explore = explore_options(spec);
    options.num_threads = spec.threads;
    fill_census(report, sched::parallel_explore(instance.world(), options));
  } else {
    fill_census(report, sched::explore(instance.world(), explore_options(spec)));
  }
  if (spec.wait_free_bound && report.complete && !report.violation) {
    // The bound pass is a sequential DFS regardless of which explorer
    // produced the census above.
    const auto bound =
        sched::longest_execution(instance.world(), explore_options(spec));
    if (bound.complete && bound.bounded) {
      report.wait_free_bound = bound.max_total_steps;
    }
  }
  return report;
}

Report execute_fuzz(const Instance& instance) {
  const JobSpec& spec = instance.spec;
  sched::FuzzOptions options;
  options.seed = spec.seed;
  options.budget.max_units = spec.fuzz_steps;
  options.budget.max_millis = spec.fuzz_millis;
  options.max_execs = spec.fuzz_execs;
  options.killed_is_violation = spec.killed_is_violation;
  options.stop_at_first_violation = spec.stop_at_first_violation;
  options.shrink = spec.shrink;
  options.symmetry_reduction = spec.symmetry_reduction;
  const sched::FuzzResult result = sched::fuzz(instance.world(), options);

  Report report;
  report.complete = result.complete;
  // Coverage fingerprints are the fuzzer's census analogue.
  report.states_visited = result.stats.unique_states;
  report.violations_found = result.stats.violations_found;
  report.violations_by_kind = result.violations_by_kind;
  report.violation = result.violation;
  FuzzSummary summary;
  summary.executions = result.stats.executions;
  summary.total_steps = result.stats.total_steps;
  summary.corpus_entries = result.stats.corpus_entries;
  summary.unique_states = result.stats.unique_states;
  summary.first_violation_exec = result.stats.first_violation_exec;
  summary.witness_steps_found = result.stats.witness_steps_found;
  summary.witness_steps_shrunk = result.stats.witness_steps_shrunk;
  summary.rng_state = result.rng_state;
  report.fuzz = summary;
  return report;
}

Report execute_stress(const Instance& instance) {
  const JobSpec& spec = instance.spec;
  proto::Params params;
  for (const auto& [name, value] : spec.params) params.set(name, value);

  std::deque<objects::AtomicCas> objects;
  std::deque<objects::AtomicRegister> registers;
  std::vector<objects::CasObject*> object_ptrs;
  std::vector<objects::AtomicRegister*> register_ptrs;
  for (std::uint32_t i = 0; i < instance.program->num_objects(); ++i) {
    object_ptrs.push_back(&objects.emplace_back(i));
  }
  for (std::uint32_t i = 0; i < instance.program->num_registers(); ++i) {
    register_ptrs.push_back(&registers.emplace_back(i));
  }
  const auto protocol =
      proto::protocol(spec.protocol, params, object_ptrs, register_ptrs);

  runtime::StressOptions options;
  options.processes = spec.processes;
  options.budget.max_units = spec.trials;
  options.seed = spec.seed;
  const runtime::StressReport result = runtime::run_stress(*protocol, options);

  Report report;
  report.complete = true;  // the campaign ran its whole trial budget
  report.violations_found = result.violations();
  if (result.inconsistent > 0) {
    report.violations_by_kind[sched::ViolationKind::kInconsistent] =
        result.inconsistent;
  }
  if (result.invalid > 0) {
    report.violations_by_kind[sched::ViolationKind::kInvalid] = result.invalid;
  }
  StressSummary summary;
  summary.trials = result.trials;
  summary.ok = result.ok;
  summary.inconsistent = result.inconsistent;
  summary.invalid = result.invalid;
  summary.undecided = result.undecided;
  summary.first_violation = result.first_violation;
  report.stress = summary;
  return report;
}

}  // namespace

Instance instantiate(const JobSpec& spec) {
  Instance instance;
  instance.spec = spec.canonicalized();
  const JobSpec& canonical = instance.spec;

  proto::Params params;
  for (const auto& [name, value] : canonical.params) params.set(name, value);
  instance.program = proto::build_program(canonical.protocol, params);
  instance.program_fingerprint =
      proto::program_fingerprint(*instance.program);

  if (canonical.engine != Engine::kStress) {
    instance.factory =
        canonical.interpreted
            ? proto::machine_factory_interpreted(canonical.protocol, params)
            : proto::machine_factory(canonical.protocol, params);
    instance.config.num_objects = instance.factory->objects_used();
    instance.config.num_registers = instance.factory->registers_used();
    instance.config.kind = canonical.kind;
    instance.config.t = canonical.t;
    instance.config.allow_corruption_steps =
        canonical.kind == model::FaultKind::kDataCorruption;
    instance.config.crash_budget = canonical.crash_budget;
    instance.config.use_immunity_pruning = canonical.immunity_pruning;
  }

  instance.inputs.assign(canonical.processes, 1);
  if (!canonical.equal_inputs) {
    std::iota(instance.inputs.begin(), instance.inputs.end(),
              std::uint64_t{1});
  }
  return instance;
}

Report execute(const Instance& instance) {
  const auto start = std::chrono::steady_clock::now();
  Report report;
  switch (instance.spec.engine) {
    case Engine::kFuzz:
      report = execute_fuzz(instance);
      break;
    case Engine::kStress:
      report = execute_stress(instance);
      break;
    default:
      report = execute_explore_family(instance);
      break;
  }
  report.protocol = instance.spec.protocol;
  report.engine = instance.spec.engine;
  report.engine_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

RunOutcome run(const JobSpec& spec, Cache* cache) {
  Instance instance = instantiate(spec);
  RunOutcome outcome;
  outcome.fingerprint = job_fingerprint(instance.spec);

  const bool use_cache = cache != nullptr && instance.spec.cacheable();
  if (use_cache) {
    if (auto entry = cache->load(outcome.fingerprint)) {
      // Cache-soundness check (DESIGN.md §3j): serve the hit only when
      // the stored program fingerprint equals the freshly resolved one,
      // so an IR edit can never resurface a stale census.
      if (entry->program_fingerprint == instance.program_fingerprint) {
        outcome.report = std::move(entry->report);
        outcome.cache_hit = true;
        return outcome;
      }
    }
  }

  outcome.report = execute(instance);
  outcome.fresh_states_expanded = outcome.report.states_visited;
  if (use_cache) {
    cache->store(outcome.fingerprint, instance.spec,
                 instance.program_fingerprint, outcome.report);
  }
  return outcome;
}

}  // namespace ff::verify
