#include "verify/report.hpp"

#include "util/json.hpp"

namespace ff::verify {

namespace {

sched::ViolationKind violation_kind_from_string(std::string_view name) {
  using sched::ViolationKind;
  if (name == "inconsistent") return ViolationKind::kInconsistent;
  if (name == "invalid") return ViolationKind::kInvalid;
  if (name == "stalled") return ViolationKind::kStalled;
  if (name == "nontermination") return ViolationKind::kNontermination;
  throw util::JsonParseError(
      "unknown violation kind \"" + std::string(name) + '"', 0);
}

/// Witness schedule as [pid, fault, fault_variant, crash] quads — the
/// most compact stable encoding that still replays exactly.
void write_violation(util::JsonWriter& w, const sched::Violation& v) {
  w.begin_object();
  w.kv("kind", sched::to_string(v.kind));
  w.kv("detail", v.detail);
  w.key("schedule").begin_array();
  for (const auto& choice : v.schedule) {
    w.begin_array();
    w.value(std::uint64_t{choice.pid});
    w.value(std::uint64_t{choice.fault ? 1u : 0u});
    w.value(std::uint64_t{choice.fault_variant});
    w.value(std::uint64_t{choice.crash ? 1u : 0u});
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

sched::Violation read_violation(const util::JsonValue& doc) {
  sched::Violation v;
  v.kind = violation_kind_from_string(doc.at("kind").as_string());
  v.detail = doc.at("detail").as_string();
  for (const auto& quad : doc.at("schedule").as_array()) {
    const auto& fields = quad.as_array();
    if (fields.size() != 4) {
      throw util::JsonParseError("witness step is not a 4-tuple", 0);
    }
    sched::Choice choice;
    choice.pid = static_cast<objects::ProcessId>(fields[0].as_u64());
    choice.fault = fields[1].as_u64() != 0;
    choice.fault_variant = static_cast<std::uint32_t>(fields[2].as_u64());
    choice.crash = fields[3].as_u64() != 0;
    v.schedule.push_back(choice);
  }
  return v;
}

void write_optional_u64(util::JsonWriter& w, std::string_view key,
                        const std::optional<std::uint64_t>& v) {
  w.key(key);
  if (v) {
    w.value(*v);
  } else {
    w.null();
  }
}

std::optional<std::uint64_t> read_optional_u64(const util::JsonValue& doc,
                                               std::string_view key) {
  const util::JsonValue& v = doc.at(key);
  if (v.is_null()) return std::nullopt;
  return v.as_u64();
}

}  // namespace

std::string Report::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("protocol", protocol);
  w.kv("engine", verify::to_string(engine));
  w.kv("complete", complete);
  w.kv("states_visited", states_visited);
  w.kv("terminal_states", terminal_states);
  w.kv("violations_found", violations_found);
  w.key("violations_by_kind").begin_object();
  for (const auto& [kind, count] : violations_by_kind) {
    w.kv(sched::to_string(kind), count);
  }
  w.end_object();
  w.kv("max_depth", max_depth);
  w.key("agreed_values").begin_array();
  for (const auto v : agreed_values) w.value(v);
  w.end_array();
  w.kv("table_grows", table_grows);
  w.kv("immunity_checks", immunity_checks);
  w.kv("immunity_skips", immunity_skips);
  w.kv("peak_bytes", peak_bytes);
  w.key("violation");
  if (violation) {
    write_violation(w, *violation);
  } else {
    w.null();
  }
  w.key("frontier");
  if (frontier) {
    w.begin_object();
    w.kv("waves", frontier->waves);
    w.kv("forwarded", frontier->forwarded);
    w.kv("spill_runs", frontier->spill_runs);
    w.kv("spilled_records", frontier->spilled_records);
    w.kv("spill_bytes", frontier->spill_bytes);
    w.kv("batch_sweeps", frontier->batch_sweeps);
    w.kv("batched_lanes", frontier->batched_lanes);
    w.kv("memo_hits", frontier->memo_hits);
    w.kv("arena_lanes", frontier->arena_lanes);
    w.end_object();
  } else {
    w.null();
  }
  w.key("fuzz");
  if (fuzz) {
    w.begin_object();
    w.kv("executions", fuzz->executions);
    w.kv("total_steps", fuzz->total_steps);
    w.kv("corpus_entries", fuzz->corpus_entries);
    w.kv("unique_states", fuzz->unique_states);
    write_optional_u64(w, "first_violation_exec", fuzz->first_violation_exec);
    w.kv("witness_steps_found", fuzz->witness_steps_found);
    w.kv("witness_steps_shrunk", fuzz->witness_steps_shrunk);
    w.key("rng_state").begin_array();
    for (const auto word : fuzz->rng_state) w.value(word);
    w.end_array();
    w.end_object();
  } else {
    w.null();
  }
  w.key("stress");
  if (stress) {
    w.begin_object();
    w.kv("trials", stress->trials);
    w.kv("ok", stress->ok);
    w.kv("inconsistent", stress->inconsistent);
    w.kv("invalid", stress->invalid);
    w.kv("undecided", stress->undecided);
    write_optional_u64(w, "first_violation", stress->first_violation);
    w.end_object();
  } else {
    w.null();
  }
  write_optional_u64(w, "wait_free_bound", wait_free_bound);
  w.kv("engine_micros", engine_micros);
  w.end_object();
  return w.str();
}

Report Report::from_json(const util::JsonValue& doc) {
  Report r;
  r.protocol = doc.at("protocol").as_string();
  r.engine = engine_from_string(doc.at("engine").as_string());
  r.complete = doc.at("complete").as_bool();
  r.states_visited = doc.at("states_visited").as_u64();
  r.terminal_states = doc.at("terminal_states").as_u64();
  r.violations_found = doc.at("violations_found").as_u64();
  for (const auto& [name, count] : doc.at("violations_by_kind").members()) {
    r.violations_by_kind[violation_kind_from_string(name)] = count.as_u64();
  }
  r.max_depth = doc.at("max_depth").as_u64();
  for (const auto& v : doc.at("agreed_values").as_array()) {
    r.agreed_values.insert(v.as_u64());
  }
  r.table_grows = doc.at("table_grows").as_u64();
  r.immunity_checks = doc.at("immunity_checks").as_u64();
  r.immunity_skips = doc.at("immunity_skips").as_u64();
  r.peak_bytes = doc.at("peak_bytes").as_u64();
  if (const auto& v = doc.at("violation"); !v.is_null()) {
    r.violation = read_violation(v);
  }
  if (const auto& f = doc.at("frontier"); !f.is_null()) {
    sched::FrontierStats stats;
    stats.waves = f.at("waves").as_u64();
    stats.forwarded = f.at("forwarded").as_u64();
    stats.spill_runs = f.at("spill_runs").as_u64();
    stats.spilled_records = f.at("spilled_records").as_u64();
    stats.spill_bytes = f.at("spill_bytes").as_u64();
    stats.batch_sweeps = f.at("batch_sweeps").as_u64();
    stats.batched_lanes = f.at("batched_lanes").as_u64();
    stats.memo_hits = f.at("memo_hits").as_u64();
    stats.arena_lanes = f.at("arena_lanes").as_u64();
    r.frontier = stats;
  }
  if (const auto& f = doc.at("fuzz"); !f.is_null()) {
    FuzzSummary s;
    s.executions = f.at("executions").as_u64();
    s.total_steps = f.at("total_steps").as_u64();
    s.corpus_entries = f.at("corpus_entries").as_u64();
    s.unique_states = f.at("unique_states").as_u64();
    s.first_violation_exec = read_optional_u64(f, "first_violation_exec");
    s.witness_steps_found = f.at("witness_steps_found").as_u64();
    s.witness_steps_shrunk = f.at("witness_steps_shrunk").as_u64();
    const auto& rng = f.at("rng_state").as_array();
    if (rng.size() != s.rng_state.size()) {
      throw util::JsonParseError("rng_state is not 4 words", 0);
    }
    for (std::size_t i = 0; i < rng.size(); ++i) {
      s.rng_state[i] = rng[i].as_u64();
    }
    r.fuzz = s;
  }
  if (const auto& s = doc.at("stress"); !s.is_null()) {
    StressSummary sum;
    sum.trials = s.at("trials").as_u64();
    sum.ok = s.at("ok").as_u64();
    sum.inconsistent = s.at("inconsistent").as_u64();
    sum.invalid = s.at("invalid").as_u64();
    sum.undecided = s.at("undecided").as_u64();
    sum.first_violation = read_optional_u64(s, "first_violation");
    r.stress = sum;
  }
  r.wait_free_bound = read_optional_u64(doc, "wait_free_bound");
  r.engine_micros = doc.at("engine_micros").as_u64();
  return r;
}

Report Report::parse(std::string_view text) {
  return from_json(util::JsonValue::parse(text));
}

bool census_equal(const Report& a, const Report& b) {
  return a.states_visited == b.states_visited &&
         a.terminal_states == b.terminal_states &&
         a.violations_by_kind == b.violations_by_kind &&
         a.agreed_values == b.agreed_values;
}

}  // namespace ff::verify
