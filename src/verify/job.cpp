#include "verify/job.hpp"

#include <stdexcept>

#include "proto/fingerprint.hpp"
#include "proto/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ff::verify {

namespace {

/// Resolves the spec's protocol through the registry; throws the
/// validation error for unknown or non-simulable names.
const proto::ProtocolInfo& resolve_info(const JobSpec& spec) {
  const proto::ProtocolInfo* info =
      proto::ProtocolRegistry::instance().find(spec.protocol);
  if (info == nullptr) {
    throw std::invalid_argument("verify::JobSpec: unknown protocol \"" +
                                spec.protocol + '"');
  }
  if (!info->simulable) {
    throw std::invalid_argument(
        "verify::JobSpec: protocol \"" + info->name +
        "\" is a queue client, not a verifiable consensus protocol");
  }
  return *info;
}

/// Emits the semantic ("job") object — the exact bytes the fingerprint
/// folds.  Expects a canonicalized spec.
void write_job_object(util::JsonWriter& w, const JobSpec& spec) {
  w.begin_object();
  w.kv("protocol", spec.protocol);
  w.key("params").begin_object();
  for (const auto& [name, value] : spec.params) w.kv(name, value);
  w.end_object();
  w.kv("kind", model::to_string(spec.kind));
  w.kv("t", std::uint64_t{spec.t});
  w.kv("crash_budget", std::uint64_t{spec.crash_budget});
  w.kv("processes", std::uint64_t{spec.processes});
  w.kv("equal_inputs", spec.equal_inputs);
  w.kv("engine", to_string(spec.engine));
  w.kv("interpreted", spec.interpreted);
  w.kv("symmetry_reduction", spec.symmetry_reduction);
  w.kv("sleep_sets", spec.sleep_sets);
  w.kv("immunity_pruning", spec.immunity_pruning);
  w.kv("killed_is_violation", spec.killed_is_violation);
  w.kv("stop_at_first_violation", spec.stop_at_first_violation);
  w.kv("max_states", spec.max_states);
  w.kv("wait_free_bound", spec.wait_free_bound);
  w.kv("seed", spec.seed);
  w.kv("fuzz_steps", spec.fuzz_steps);
  w.kv("fuzz_millis", spec.fuzz_millis);
  w.kv("fuzz_execs", spec.fuzz_execs);
  w.kv("shrink", spec.shrink);
  w.kv("trials", spec.trials);
  w.end_object();
}

/// The fingerprinted bytes: the canonical semantic object alone.
std::string semantic_json(const JobSpec& canonical) {
  util::JsonWriter w;
  write_job_object(w, canonical);
  return w.str();
}

}  // namespace

Engine engine_from_string(std::string_view name) {
  if (name == "dfs") return Engine::kDfs;
  if (name == "parallel") return Engine::kParallel;
  if (name == "frontier") return Engine::kFrontier;
  if (name == "fuzz") return Engine::kFuzz;
  if (name == "stress") return Engine::kStress;
  throw std::invalid_argument(
      "unknown engine \"" + std::string(name) +
      "\" (expected dfs | parallel | frontier | fuzz | stress)");
}

model::FaultKind fault_kind_from_string(std::string_view name) {
  using model::FaultKind;
  if (name == "none") return FaultKind::kNone;
  if (name == "overriding") return FaultKind::kOverriding;
  if (name == "silent") return FaultKind::kSilent;
  if (name == "invisible") return FaultKind::kInvisible;
  if (name == "arbitrary") return FaultKind::kArbitrary;
  if (name == "nonresponsive") return FaultKind::kNonresponsive;
  if (name == "data" || name == "data-corruption") {
    return FaultKind::kDataCorruption;
  }
  throw std::invalid_argument("unknown fault kind \"" + std::string(name) +
                              '"');
}

void JobSpec::validate() const {
  resolve_info(*this);
  if (processes == 0) {
    throw std::invalid_argument("verify::JobSpec: processes must be >= 1");
  }
  if (engine == Engine::kFrontier && sleep_sets) {
    throw std::invalid_argument(
        "verify::JobSpec: the frontier engine rejects sleep-set POR — "
        "sleep sets are a DFS-path notion a BFS wavefront cannot carry "
        "soundly; set sleep_sets = false (the visited-state census is "
        "identical either way)");
  }
  if (engine == Engine::kStress) {
    // Real threads execute faults probabilistically via policy objects,
    // not as adversary branches; the simulator-only knobs would be
    // silently meaningless here, so they are errors instead.
    if (kind != model::FaultKind::kNone) {
      throw std::invalid_argument(
          "verify::JobSpec: the stress engine runs clean real-thread "
          "trials; fault kinds are simulator adversary branches (use the "
          "dfs/parallel/frontier/fuzz engines)");
    }
    if (crash_budget != 0) {
      throw std::invalid_argument(
          "verify::JobSpec: crash budgets are simulator branches; the "
          "stress engine cannot honor them");
    }
    if (interpreted) {
      throw std::invalid_argument(
          "verify::JobSpec: interpreted selects the simulator-side "
          "IrMachine oracle; the stress engine runs the thread-side "
          "protocol adapter");
    }
  }
}

JobSpec JobSpec::canonicalized() const {
  validate();
  const proto::ProtocolInfo& info = resolve_info(*this);
  JobSpec out = *this;
  out.protocol = info.name;
  out.params.clear();
  for (const auto& param : info.params) {
    const auto it = params.find(param.name);
    out.params[param.name] = it == params.end() ? param.fallback : it->second;
  }
  return out;
}

std::string JobSpec::canonical_json() const {
  const JobSpec canonical = canonicalized();
  util::JsonWriter w;
  w.begin_object();
  w.key("job");
  write_job_object(w, canonical);
  w.key("exec").begin_object();
  w.kv("threads", std::uint64_t{canonical.threads});
  w.kv("shard_count", std::uint64_t{canonical.shard_count});
  w.kv("batch_lanes", std::uint64_t{canonical.batch_lanes});
  w.kv("spill_dir", canonical.spill_dir);
  w.kv("mem_limit_bytes", canonical.mem_limit_bytes);
  w.kv("expected_states", canonical.expected_states);
  w.end_object();
  w.end_object();
  return w.str();
}

JobSpec JobSpec::from_json(const util::JsonValue& doc) {
  const util::JsonValue& job = doc.at("job");
  const util::JsonValue& exec = doc.at("exec");
  JobSpec spec;
  spec.protocol = job.at("protocol").as_string();
  spec.params.clear();
  for (const auto& [name, value] : job.at("params").members()) {
    spec.params[name] = value.as_u64();
  }
  spec.kind = fault_kind_from_string(job.at("kind").as_string());
  spec.t = static_cast<std::uint32_t>(job.at("t").as_u64());
  spec.crash_budget =
      static_cast<std::uint32_t>(job.at("crash_budget").as_u64());
  spec.processes = static_cast<std::uint32_t>(job.at("processes").as_u64());
  spec.equal_inputs = job.at("equal_inputs").as_bool();
  spec.engine = engine_from_string(job.at("engine").as_string());
  spec.interpreted = job.at("interpreted").as_bool();
  spec.symmetry_reduction = job.at("symmetry_reduction").as_bool();
  spec.sleep_sets = job.at("sleep_sets").as_bool();
  spec.immunity_pruning = job.at("immunity_pruning").as_bool();
  spec.killed_is_violation = job.at("killed_is_violation").as_bool();
  spec.stop_at_first_violation = job.at("stop_at_first_violation").as_bool();
  spec.max_states = job.at("max_states").as_u64();
  spec.wait_free_bound = job.at("wait_free_bound").as_bool();
  spec.seed = job.at("seed").as_u64();
  spec.fuzz_steps = job.at("fuzz_steps").as_u64();
  spec.fuzz_millis = job.at("fuzz_millis").as_u64();
  spec.fuzz_execs = job.at("fuzz_execs").as_u64();
  spec.shrink = job.at("shrink").as_bool();
  spec.trials = job.at("trials").as_u64();
  spec.threads = static_cast<std::uint32_t>(exec.at("threads").as_u64());
  spec.shard_count =
      static_cast<std::uint32_t>(exec.at("shard_count").as_u64());
  spec.batch_lanes =
      static_cast<std::uint32_t>(exec.at("batch_lanes").as_u64());
  spec.spill_dir = exec.at("spill_dir").as_string();
  spec.mem_limit_bytes = exec.at("mem_limit_bytes").as_u64();
  spec.expected_states = exec.at("expected_states").as_u64();
  return spec;
}

JobSpec JobSpec::parse(std::string_view text) {
  return from_json(util::JsonValue::parse(text));
}

std::string JobFingerprint::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kHex[(a >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kHex[(b >> (4 * i)) & 0xF];
  }
  return out;
}

JobFingerprint job_fingerprint(const JobSpec& spec,
                               std::uint64_t* program_fp) {
  const JobSpec canonical = spec.canonicalized();
  proto::Params params;
  for (const auto& [name, value] : canonical.params) {
    params.set(name, value);
  }
  const auto program = proto::build_program(canonical.protocol, params);
  const std::uint64_t pfp = proto::program_fingerprint(*program);
  if (program_fp != nullptr) *program_fp = pfp;

  // Two independent splitmix lanes over the canonical semantic bytes,
  // each folded with the program fingerprint — an IR edit or a semantic
  // option edit moves both words.
  const std::string sem = semantic_json(canonical);
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2 = 0x6a09e667f3bcc909ULL;
  for (const char c : sem) {
    const auto byte = static_cast<std::uint64_t>(
        static_cast<unsigned char>(c));
    h1 = util::mix64(h1 ^ byte);
    h2 = util::mix64(h2 + (byte << 1) + 1);
  }
  return JobFingerprint{util::mix64(h1 ^ pfp),
                        util::mix64(h2 ^ util::mix64(pfp ^ h1))};
}

}  // namespace ff::verify
