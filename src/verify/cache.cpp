#include "verify/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "proto/registry.hpp"
#include "util/json.hpp"

namespace ff::verify {

namespace fs = std::filesystem;

namespace {

/// A rename can land between a reader's open and read; one or two
/// re-reads absorb it.  Strictly bounded — a persistently unreadable
/// entry must degrade to a miss, not a spin (fflint R4 governs this
/// directory for exactly this loop shape).
constexpr int kLoadAttempts = 3;

std::string u64_hex(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kHex[(v >> (4 * i)) & 0xF];
  }
  return out;
}

std::optional<std::uint64_t> parse_u64_hex(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

/// True for `<32 lowercase hex>.json` — the only files the cache owns;
/// everything else in the directory is left alone.
bool is_entry_file(const fs::path& path) {
  if (path.extension() != ".json") return false;
  const std::string stem = path.stem().string();
  if (stem.size() != 32) return false;
  for (const char c : stem) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

}  // namespace

Cache::Cache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec && !fs::is_directory(dir_)) {
    throw std::runtime_error("verify::Cache: cannot create cache dir \"" +
                             dir_ + "\": " + ec.message());
  }
}

std::string Cache::entry_path(const JobFingerprint& fp) const {
  return (fs::path(dir_) / (fp.hex() + ".json")).string();
}

std::optional<Cache::Entry> Cache::parse_entry_file(
    const std::string& path) const {
  const auto text = read_file(path);
  if (!text) return std::nullopt;
  try {
    const util::JsonValue doc = util::JsonValue::parse(*text);
    if (doc.at("ff_cache_version").as_u64() != kFormatVersion) {
      return std::nullopt;
    }
    Entry entry;
    const auto pfp =
        parse_u64_hex(doc.at("program_fingerprint").as_string());
    if (!pfp) return std::nullopt;
    entry.program_fingerprint = *pfp;
    entry.spec = JobSpec::from_json(doc.at("spec"));
    entry.report = Report::from_json(doc.at("report"));
    return entry;
  } catch (const util::JsonParseError&) {
    return std::nullopt;
  } catch (const std::invalid_argument&) {
    // e.g. an engine/kind name from a future schema — still just a miss.
    return std::nullopt;
  }
}

std::optional<Cache::Entry> Cache::load(const JobFingerprint& fp) const {
  const std::string path = entry_path(fp);
  for (int attempt = 0; attempt < kLoadAttempts; ++attempt) {
    auto entry = parse_entry_file(path);
    if (entry) return entry;
    std::error_code ec;
    if (!fs::exists(path, ec)) return std::nullopt;  // plain miss
  }
  return std::nullopt;
}

void Cache::store(const JobFingerprint& fp, const JobSpec& canonical_spec,
                  std::uint64_t program_fingerprint,
                  const Report& report) const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("ff_cache_version", kFormatVersion);
  w.kv("fingerprint", fp.hex());
  w.kv("program_fingerprint", u64_hex(program_fingerprint));
  w.end_object();
  // Splice the two pre-serialized documents in verbatim; both are
  // canonical already and re-walking them through the writer could only
  // introduce drift.
  const std::string final_path = entry_path(fp);
  std::string body = w.str();
  body.pop_back();  // reopen the object to append the spliced members
  body += ",\"spec\":" + canonical_spec.canonical_json();
  body += ",\"report\":" + report.to_json();
  body += "}\n";

  // Unique temp name per writer: concurrent same-key stores each publish
  // their own temp file and race only on the atomic rename.
  // ff-lint: allow(R1): temp-file nonce for the store's own publication
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t nonce =
      counter.fetch_add(1, std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 16);
  const std::string tmp_path =
      final_path + ".tmp." + u64_hex(nonce);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << body;
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) fs::remove(tmp_path, ec);
}

Cache::Stats Cache::stats() const {
  Stats stats;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_file(it.path())) continue;
    std::error_code size_ec;
    const auto size = fs::file_size(it.path(), size_ec);
    if (!size_ec) stats.bytes += size;
    if (parse_entry_file(it.path().string())) {
      ++stats.entries;
    } else {
      ++stats.unreadable;
    }
  }
  return stats;
}

std::uint64_t Cache::gc() const {
  std::uint64_t removed = 0;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_file(it.path())) continue;
    if (parse_entry_file(it.path().string())) continue;
    std::error_code rm_ec;
    if (fs::remove(it.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

std::uint64_t Cache::invalidate(std::string_view protocol) const {
  // Accept aliases: entries always store the canonical name.
  std::string canonical(protocol);
  if (const auto* info = proto::ProtocolRegistry::instance().find(protocol)) {
    canonical = info->name;
  }
  std::uint64_t removed = 0;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_file(it.path())) continue;
    const auto entry = parse_entry_file(it.path().string());
    if (!entry || entry->spec.protocol != canonical) continue;
    std::error_code rm_ec;
    if (fs::remove(it.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

}  // namespace ff::verify
