// verify::Report — the unified result of any verification job: a
// superset of sched::ExploreResult, sched::FrontierStats,
// sched::FuzzResult's summary and runtime::StressReport, with a STABLE
// JSON serialization.
//
// Stability contract: to_json() emits a fixed key order with
// integer-only numerics (timing is microseconds, not a decimal), and
// from_json(to_json(r)) == r bit-for-bit.  That is what lets the census
// cache promise "a warm hit is the stored Report, byte-identical" —
// there is no float round-trip to drift through (tests/test_verify_cache
// pins the round-trip; DESIGN.md §3j states the argument).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "sched/explorer.hpp"
#include "sched/frontier_explorer.hpp"
#include "sched/fuzzer.hpp"
#include "util/json_parse.hpp"
#include "verify/job.hpp"

namespace ff::verify {

/// Fuzz-engine summary carried in the Report: the FuzzStats counters
/// plus the final RNG state (campaign resumption); the corpus and
/// coverage set stay with sched::FuzzResult::to_json() — they are bulk
/// campaign state, not a verification verdict.
struct FuzzSummary {
  std::uint64_t executions = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t corpus_entries = 0;
  std::uint64_t unique_states = 0;
  std::optional<std::uint64_t> first_violation_exec;
  std::uint64_t witness_steps_found = 0;
  std::uint64_t witness_steps_shrunk = 0;
  std::array<std::uint64_t, 4> rng_state{};

  friend bool operator==(const FuzzSummary&, const FuzzSummary&) = default;
};

/// Stress-engine summary: the trial census (stress jobs are never
/// cached — OS scheduling makes them non-reproducible — but they print
/// through the same Report pipeline).
struct StressSummary {
  std::uint64_t trials = 0;
  std::uint64_t ok = 0;
  std::uint64_t inconsistent = 0;
  std::uint64_t invalid = 0;
  std::uint64_t undecided = 0;
  std::optional<std::uint64_t> first_violation;

  friend bool operator==(const StressSummary&, const StressSummary&) = default;
};

struct Report {
  /// Canonical protocol name and the engine that produced the result.
  std::string protocol;
  Engine engine = Engine::kDfs;
  bool complete = false;

  // Census (explore family; the fuzzer maps unique_states here so every
  // engine reports comparable coverage numbers).
  std::uint64_t states_visited = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t violations_found = 0;
  std::map<sched::ViolationKind, std::uint64_t> violations_by_kind;
  std::uint64_t max_depth = 0;
  std::set<std::uint64_t> agreed_values;
  std::uint64_t table_grows = 0;
  std::uint64_t immunity_checks = 0;
  std::uint64_t immunity_skips = 0;
  std::uint64_t peak_bytes = 0;

  /// Witness for the reported violation, strictly replayable.
  std::optional<sched::Violation> violation;

  /// Engine-specific sections (absent = engine did not run).
  std::optional<sched::FrontierStats> frontier;
  std::optional<FuzzSummary> fuzz;
  std::optional<StressSummary> stress;

  /// Wait-freedom bound (JobSpec::wait_free_bound after a complete,
  /// violation-free dfs run).
  std::optional<std::uint64_t> wait_free_bound;

  /// Engine wall time in microseconds (integer on purpose — see header).
  std::uint64_t engine_micros = 0;

  [[nodiscard]] std::uint64_t violations_of(sched::ViolationKind kind) const {
    const auto it = violations_by_kind.find(kind);
    return it == violations_by_kind.end() ? 0 : it->second;
  }

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Report from_json(const util::JsonValue& doc);
  [[nodiscard]] static Report parse(std::string_view text);

  friend bool operator==(const Report&, const Report&) = default;
};

/// True when two reports describe the same state-space census — the
/// cross-engine comparison the differential suites gate on (engine
/// counters like max_depth or frontier stats legitimately differ).
[[nodiscard]] bool census_equal(const Report& a, const Report& b);

}  // namespace ff::verify
