// verify::run — the single entry point for executing a verification job:
// resolve the protocol, consult the cache, dispatch to the right engine,
// persist the Report.
//
// Front ends construct a JobSpec and call run(); none of them touch
// ExploreOptions / FrontierExploreOptions / FuzzOptions / StressOptions
// directly anymore.  Harnesses that drive an engine themselves (the
// differential suites replaying witnesses, the benches timing one engine
// in a loop) use instantiate() to get the resolved world from the same
// canonical description instead of re-deriving SimConfig by hand.
#pragma once

#include <memory>
#include <vector>

#include "proto/ir.hpp"
#include "sched/program.hpp"
#include "sched/sim_world.hpp"
#include "verify/cache.hpp"
#include "verify/job.hpp"
#include "verify/report.hpp"

namespace ff::verify {

/// A JobSpec resolved against the registry: the program, its structural
/// fingerprint, the machine factory (generated or interpreted per
/// spec.interpreted), the SimConfig and the input vector.  The factory
/// must outlive any world built from it (frontier_explore holds the
/// reference through the whole search).
struct Instance {
  JobSpec spec;  ///< canonicalized
  std::shared_ptr<const proto::Program> program;
  std::uint64_t program_fingerprint = 0;
  std::unique_ptr<sched::MachineFactory> factory;
  sched::SimConfig config;
  std::vector<std::uint64_t> inputs;

  [[nodiscard]] sched::SimWorld world() const {
    return sched::SimWorld(config, *factory, inputs);
  }
};

/// Validates and resolves; throws std::invalid_argument like
/// JobSpec::validate().  `factory` is null for stress jobs (real threads
/// run the protocol adapter, not StepMachines).
[[nodiscard]] Instance instantiate(const JobSpec& spec);

struct RunOutcome {
  Report report;
  /// True iff the report came from the cache (soundness-checked: the
  /// stored program fingerprint equalled the freshly resolved one).
  bool cache_hit = false;
  JobFingerprint fingerprint;
  /// States the engine expanded IN THIS CALL — 0 on a cache hit (the
  /// report's own census still describes the original run).
  std::uint64_t fresh_states_expanded = 0;
};

/// Runs the job, cache-first when `cache` is non-null and the spec is
/// cacheable().  Never throws on cache trouble — a broken entry is a
/// miss and a failed store is silent; spec errors throw as validate().
[[nodiscard]] RunOutcome run(const JobSpec& spec, Cache* cache = nullptr);

/// Executes the engine on an already-resolved instance (no cache).
/// The building block run() and the paired-round benches share.
[[nodiscard]] Report execute(const Instance& instance);

}  // namespace ff::verify
