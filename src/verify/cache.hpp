// verify::Cache — the persistent fingerprint-keyed census store.
//
// One directory, one JSON file per job: `<hex 128-bit fingerprint>.json`
// holding {format version, job fingerprint, program fingerprint, the
// canonical JobSpec, the Report}.  Design rules (DESIGN.md §3j):
//
//   * ATOMIC PUBLICATION.  store() writes to a uniquely-named temp file
//     in the same directory and renames it over the final name; readers
//     never observe a half-written entry, and concurrent same-key
//     writers converge — rename is atomic, last writer wins, and both
//     wrote byte-identical content (the Report is a pure function of the
//     spec for every cacheable engine).
//   * CORRUPTION TOLERANCE.  A missing, truncated, unparsable,
//     version-mismatched or schema-violating entry is a MISS, never a
//     crash: load() re-reads a bounded number of times (a rename may
//     land mid-read) and then gives up cleanly.
//   * SOUNDNESS RE-CHECK.  load() returns the STORED program fingerprint
//     so the caller (verify::run) can require it to equal the freshly
//     resolved program's fingerprint before serving a hit — an IR edit
//     can therefore never be served a stale census even if the 128-bit
//     key collided.
//
// gc() evicts entries that no longer load (corrupt or stale-version);
// invalidate(protocol) evicts all entries for one canonical protocol
// name — the manual knob for "I changed this protocol's semantics".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "verify/job.hpp"
#include "verify/report.hpp"

namespace ff::verify {

class Cache {
 public:
  /// Bumped whenever the entry schema changes; mismatched entries are
  /// misses and gc() fodder, never parse attempts.
  static constexpr std::uint64_t kFormatVersion = 1;

  /// Opens (creating if needed) the store at `dir`.  Throws
  /// std::runtime_error when the directory cannot be created.
  explicit Cache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  struct Entry {
    JobSpec spec;
    std::uint64_t program_fingerprint = 0;
    Report report;
  };

  /// Bounded-retry read; any failure is a miss (nullopt).
  [[nodiscard]] std::optional<Entry> load(const JobFingerprint& fp) const;

  /// Atomic write-rename publication.  Failures are swallowed (a cache
  /// that cannot persist degrades to a pass-through, it never fails the
  /// verification run).
  void store(const JobFingerprint& fp, const JobSpec& canonical_spec,
             std::uint64_t program_fingerprint, const Report& report) const;

  struct Stats {
    std::uint64_t entries = 0;      ///< loadable entries
    std::uint64_t bytes = 0;        ///< bytes across all entry files
    std::uint64_t unreadable = 0;   ///< corrupt or stale-version files
  };
  [[nodiscard]] Stats stats() const;

  /// Removes every entry that no longer loads; returns how many.
  std::uint64_t gc() const;

  /// Removes every entry whose stored spec names `protocol` (canonical
  /// name or registry alias); returns how many.
  std::uint64_t invalidate(std::string_view protocol) const;

 private:
  [[nodiscard]] std::string entry_path(const JobFingerprint& fp) const;
  [[nodiscard]] std::optional<Entry> parse_entry_file(
      const std::string& path) const;

  std::string dir_;
};

}  // namespace ff::verify
