// Explorer — exhaustive search over all interleavings AND all legal fault
// placements of a protocol run in SimWorld.
//
// The search is a depth-first traversal of the state graph with
// memoization: global states are fingerprinted (128-bit) and each state is
// expanded once.  Because fault firing is an explicit adversary branch,
// a completed exploration is a proof (up to fingerprint collisions,
// probability ~ |states|²/2^128) that NO schedule and NO fault placement
// within the configured (f, t) budget violates the checked property —
// this is how the upper-bound theorems are validated, and how the
// impossibility theorems' violating executions are found automatically.
//
// Detected violations:
//   * kInconsistent — a terminal state where two processes decided
//     different values;
//   * kInvalid      — a terminal state where a decision is not an input;
//   * kStalled      — a terminal state with a killed (nonresponsive)
//     process, when the caller opted in;
//   * kNontermination — a reachable cycle containing at least one process
//     step: some schedule lets a process run forever without deciding,
//     violating wait-freedom.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sched/sim_world.hpp"

namespace ff::sched {

enum class ViolationKind : std::uint8_t {
  kInconsistent,
  kInvalid,
  kStalled,
  kNontermination,
};

[[nodiscard]] constexpr std::string_view to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kInconsistent: return "inconsistent";
    case ViolationKind::kInvalid: return "invalid";
    case ViolationKind::kStalled: return "stalled";
    case ViolationKind::kNontermination: return "nontermination";
  }
  return "unknown";
}

struct Violation {
  ViolationKind kind;
  /// Witness schedule from the initial state (choice sequence).
  std::vector<Choice> schedule;
  std::string detail;

  [[nodiscard]] std::string schedule_string() const {
    std::string s;
    for (const Choice& c : schedule) {
      if (!s.empty()) s += ' ';
      s += c.to_string();
    }
    return s;
  }

  friend bool operator==(const Violation&, const Violation&) = default;
};

struct ExploreOptions {
  /// Abort after this many distinct states (0 = unlimited).
  std::uint64_t max_states = 20'000'000;
  /// Stop at the first violation (otherwise keep counting them).
  bool stop_at_first_violation = true;
  /// Count terminal states with killed processes as kStalled violations.
  bool killed_is_violation = false;
  /// Memoize on canonical fingerprints (process-permutation orbits) when
  /// the world is processes_symmetric(): the search visits one
  /// representative per orbit.  All checked properties are orbit-
  /// invariant (DESIGN.md §3d), counts become per-orbit counts, and
  /// witnesses stay directly replayable.  No effect on asymmetric worlds.
  bool symmetry_reduction = true;
  /// Sleep-set partial-order reduction: prune interleavings of
  /// independent steps (sched/reduce.hpp).  Prunes transitions only —
  /// visited states, terminal census and verdicts are unchanged.
  bool sleep_sets = true;
  /// Hint for pre-sizing the fingerprint table and search containers
  /// (0 = derive from max_states, capped).
  std::uint64_t expected_states = 0;
};

struct ExploreResult {
  std::uint64_t states_visited = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t violations_found = 0;
  /// Violations per kind (useful with stop_at_first_violation = false,
  /// e.g. for graceful-degradation analysis: which properties break and
  /// which survive when budgets are exceeded).
  std::map<ViolationKind, std::uint64_t> violations_by_kind;
  std::uint64_t max_depth = 0;
  /// True iff the whole reachable state space was covered within limits
  /// (when a first-violation stop occurs this is false).
  bool complete = false;
  std::optional<Violation> violation;
  /// Agreed values observed across consistent terminal states.
  std::set<std::uint64_t> agreed_values;
  /// Mid-run rehashes of the fingerprint table.  0 exactly when
  /// expected_states pre-sized the table for the whole census — the
  /// regression signal for the stale-pre-size path (batched pools size
  /// their columns from the same hint).
  std::uint64_t table_grows = 0;
  /// A2 immunity-pruning tallies for THIS search (deltas of the world's
  /// shared counters): overriding-fault enabling conditions evaluated
  /// brute-force vs skipped outright via a proved-immune object.  The
  /// prune factor (checks+skips)/checks ≥ 1 measures the branch-factor
  /// reduction ffcheck's A2 bought (bench_b3's `immune_prune_factor`).
  std::uint64_t immunity_checks = 0;
  std::uint64_t immunity_skips = 0;
  /// Peak bytes the engine's search structures held: fingerprint table,
  /// frontier/stack containers, record and edge arenas, and (frontier
  /// engine) spill I/O buffers.  An end-of-run capacity census of the
  /// monotone structures, not an allocator trace — the comparable signal
  /// spill-watermark tuning needs, cheap enough to always collect.
  std::uint64_t peak_bytes = 0;

  [[nodiscard]] std::uint64_t violations_of(ViolationKind kind) const {
    const auto it = violations_by_kind.find(kind);
    return it == violations_by_kind.end() ? 0 : it->second;
  }
};

[[nodiscard]] ExploreResult explore(const SimWorld& initial,
                                    const ExploreOptions& options = {});

/// Replays a witness schedule from a fresh copy of `initial`, returning
/// the resulting world (for inspecting / pretty-printing violations).
[[nodiscard]] SimWorld replay(const SimWorld& initial,
                              const std::vector<Choice>& schedule);

/// Breadth-first search for a MINIMAL-length violating execution.
/// Returns the violation with the shortest possible witness schedule, or
/// nullopt when no violation is reachable within `max_states` (which,
/// when the search completes, is a proof of correctness like explore()).
/// More memory-hungry than explore() — every frontier state is retained —
/// so use it on configurations already known (or suspected) to violate,
/// where the frontier stays small.  Detects terminal-state violations
/// only (no cycle/nontermination detection — use explore() for that).
struct ShortestViolationResult {
  std::optional<Violation> violation;
  std::uint64_t states_visited = 0;
  bool complete = false;
};
[[nodiscard]] ShortestViolationResult find_shortest_violation(
    const SimWorld& initial, const ExploreOptions& options = {});

/// Longest execution (in total steps) over ALL schedules and fault
/// placements — a machine-checked wait-freedom bound for the
/// configuration: every process finishes within max_total_steps steps of
/// the system no matter the adversary.  `bounded` is false when the
/// state graph contains a cycle (some execution never ends); `complete`
/// is false when the state cap was hit first.
struct LongestExecutionResult {
  bool bounded = true;
  bool complete = false;
  std::uint64_t max_total_steps = 0;
  std::uint64_t states_visited = 0;
};
[[nodiscard]] LongestExecutionResult longest_execution(
    const SimWorld& initial, const ExploreOptions& options = {});

}  // namespace ff::sched
