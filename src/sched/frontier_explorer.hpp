// Batched owner-computes frontier explorer (DESIGN.md §3i).
//
// A breadth-first wavefront engine over the same state graph the
// sequential DFS (sched/explorer.hpp) and the work-stealing parallel DFS
// (sched/parallel_explorer.hpp) explore, built around three ideas:
//
//   * OWNER-COMPUTES SHARDING.  The canonical-fingerprint space is
//     hash-partitioned into shards, each owned by exactly one worker.  A
//     successor whose fingerprint lands in another worker's shard is
//     FORWARDED through a bounded SPSC handoff ring (util/handoff.hpp)
//     instead of being inserted under a striped lock, so every
//     fingerprint table has a single writer and needs no locking at all.
//     Every fingerprint is tested for novelty by exactly one owner, so
//     the visit-once invariant of the sequential search is preserved.
//
//   * BATCHED LANE STEPPING.  Process states are hash-consed into a lane
//     arena (a machine's encoded block determines its behaviour — the
//     StepMachine contract), so stepping is memoized per (lane, returned
//     value) transition.  Memo misses of a wave are gathered into one
//     proto::StatePool and stepped with a single batch_deliver sweep per
//     block (one indirect call), falling back to per-machine scalar
//     stepping when the program has no generated kernels.
//
//   * DISK-SPILLED CENSUSES.  When the in-memory census exceeds a
//     watermark, each worker sorts its shard's (fingerprint, parent_fp,
//     choice) records by fingerprint and appends them as a run file to
//     `spill_dir`; later waves deduplicate by merge-joining their sorted
//     candidates against the runs, and witness reconstruction walks the
//     parent-fingerprint back-pointers through the runs by binary
//     search.  Peak census memory is bounded by the watermark (plus the
//     never-spilled edge list the nontermination scan needs).
//
// The result satisfies the ExploreResult contract: the census
// (states_visited, terminal_states, agreed_values, violation counts per
// terminal kind) is BIT-EQUAL to the sequential explorer's on every
// input, with symmetry reduction composing through the same
// sched/reduce.hpp canonical fingerprints.  Differences by design,
// mirroring parallel_explore:
//
//   * Sleep-set POR is REJECTED: ExploreOptions::sleep_sets = true makes
//     frontier_explore throw std::invalid_argument (it used to be
//     silently ignored).  Sleep sets are a DFS-path notion (the
//     not-chosen alternatives of THIS path are put to sleep along the
//     chosen branch); a BFS wave has no path context to carry them
//     soundly, and because sleep sets prune transitions but never
//     states, the visited-state census is identical anyway (see
//     find_shortest_violation, which makes the same argument).
//     verify::JobSpec::validate() enforces the same rule up front.
//   * kNontermination counts process edges inside cyclic SCCs of the
//     explored graph, not DFS back-edges; compare presence, not counts.
//   * max_depth is the BFS radius (longest SHORTEST path from the
//     root), not the longest DFS path.
//   * Which violation is reported first differs from DFS order; the
//     frontier picks the lexicographically least (depth, fingerprint)
//     violating state, so ITS choice is deterministic across thread and
//     shard counts.  Witnesses strictly replay either way.
#pragma once

#include <cstdint>
#include <string>

#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {

struct FrontierExploreOptions {
  ExploreOptions explore;  ///< sleep_sets = true throws (see header note)
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t num_threads = 0;
  /// Fingerprint-space shards (rounded up to a power of two); 0 picks
  /// max(64, workers).  Each shard is owned by worker (shard % workers),
  /// so any count >= workers keeps every worker busy; the census is
  /// invariant under the shard count.
  std::uint32_t shard_count = 0;
  /// Directory for sorted spill runs.  Empty disables spilling (the
  /// engine then ignores mem_limit_bytes and keeps everything in RAM).
  std::string spill_dir;
  /// In-memory watermark over the spillable census structures
  /// (fingerprint tables + witness records).  0 = never spill.
  std::uint64_t mem_limit_bytes = 0;
  /// Lanes per staging StatePool block (the batch_deliver sweep width).
  std::uint32_t batch_lanes = 1024;
};

/// Counters specific to the frontier engine, reported next to the
/// ExploreResult census by the CLI/bench front ends.
struct FrontierStats {
  std::uint64_t waves = 0;             ///< BFS levels expanded
  std::uint64_t forwarded = 0;         ///< cross-shard handoffs
  std::uint64_t spill_runs = 0;        ///< sorted runs written
  std::uint64_t spilled_records = 0;   ///< records in those runs
  std::uint64_t spill_bytes = 0;       ///< bytes written to spill_dir
  std::uint64_t batch_sweeps = 0;      ///< batch_deliver indirect calls
  std::uint64_t batched_lanes = 0;     ///< lanes stepped by those calls
  std::uint64_t memo_hits = 0;         ///< transitions answered by memo
  std::uint64_t arena_lanes = 0;       ///< distinct hash-consed lanes

  friend bool operator==(const FrontierStats&,
                         const FrontierStats&) = default;
};

struct FrontierExploreResult {
  ExploreResult explore;
  FrontierStats stats;
};

/// Explores the full state graph of `SimWorld(config, factory, inputs)`
/// breadth-first.  The factory reference must outlive the call; the
/// engine detects IR-backed factories (IrMachineFactory /
/// GenMachineFactory) to unlock the batched generated path and falls
/// back to scalar StepMachine stepping for anything else.
[[nodiscard]] FrontierExploreResult frontier_explore(
    const SimConfig& config, const MachineFactory& factory,
    const std::vector<std::uint64_t>& inputs,
    const FrontierExploreOptions& options = {});

}  // namespace ff::sched
