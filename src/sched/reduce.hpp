// State-space reduction engine: process-symmetry canonicalization and a
// sleep-set partial-order independence relation, shared by the sequential
// explorer, the parallel explorer, the BFS witness minimizer and the
// fuzzer's novelty signal.  DESIGN.md §3d carries the soundness argument;
// the short version:
//
//   * Symmetry.  When every machine is pid-oblivious
//     (MachineFactory::pid_oblivious) and no fault rule names a process
//     (SimWorld::processes_symmetric), any permutation π of process ids
//     maps executions to executions: shared objects, registers and fault
//     budgets are process-anonymous, and a machine's behaviour is a
//     function of its encoded block alone.  All checked properties
//     (agreement, validity, stall, nontermination) are invariant under π,
//     so it suffices to visit one representative per orbit.  We keep REAL
//     worlds on the search structures and only canonicalize the
//     memoization key: the canonical fingerprint hashes the shared prefix
//     followed by the per-process blocks in sorted order.  Witnesses
//     therefore remain directly replayable schedules.
//
//   * Sleep sets.  Two choices are independent when they are steps of
//     different processes touching disjoint shared locations (CAS object
//     vs. register namespaces; a fault branch footprints the object of
//     the faulted operation, so budget accounting stays per-location).
//     Adversary corruption steps are dependent with everything — their
//     enabledness reads every object's value and budget.  Executing
//     independent steps in either order reaches the same state and
//     preserves enabledness, so a DFS may put the not-chosen independent
//     alternatives "to sleep" along the chosen branch (Godefroid's sleep
//     sets, with the state-matching refinement for revisits).  Sleep sets
//     prune transitions, never states: the census of visited states and
//     terminal violations is bit-identical to the unreduced search.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/explore_common.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {

// ---------------------------------------------------------------------------
// Block-structured encodings.
// ---------------------------------------------------------------------------

/// One encoded SimWorld in block form: the shared prefix followed by one
/// block per process (pid order), with offsets so individual blocks can
/// be compared, re-sorted and patched without re-encoding the world.
struct EncodedState {
  std::vector<std::uint64_t> words;
  std::uint32_t shared_len = 0;
  /// block_off[p]..block_off[p+1] is process p's block; size processes+1.
  std::vector<std::uint32_t> block_off;

  [[nodiscard]] std::uint32_t processes() const noexcept {
    return block_off.empty()
               ? 0
               : static_cast<std::uint32_t>(block_off.size() - 1);
  }
};

/// Encoder with reusable scratch buffers: full encodes for roots, and
/// incremental patches for children (only the shared prefix and the
/// stepping process's block are re-encoded; an adversary step re-encodes
/// the shared prefix alone).
class StateEncoder {
 public:
  /// Full block-structured encode of `world` into `out`.
  void encode(const SimWorld& world, EncodedState& out);

  /// Incremental encode of `child`, which differs from the world encoded
  /// as `parent` by one applied Choice of process `changed_pid`
  /// (kAdversaryPid for adversary corruption steps).
  void patch(const SimWorld& child, const EncodedState& parent,
             objects::ProcessId changed_pid, EncodedState& out);

 private:
  std::vector<std::uint64_t> scratch_;
};

/// The canonical block order: process indices sorted by lexicographic
/// block content, ties by pid (so the order is deterministic).  Appends
/// nothing to `e`; writes the permutation into `order`.
void canonical_order(const EncodedState& e, std::vector<std::uint32_t>& order);

/// Inverse of canonical_order: slot_of[pid] = position of pid's block in
/// the canonical order.
void canonical_slots(const EncodedState& e, std::vector<std::uint32_t>& slot_of);

/// FpFold hash of one contiguous block of words (the per-process block
/// hash feeding the canonical fingerprint's multiset combine).
[[nodiscard]] detail::Fingerprint hash_block(const std::uint64_t* begin,
                                             const std::uint64_t* end);

/// Canonical fingerprint from precombined parts: folds the shared
/// prefix, then the order-insensitive block-hash sums.  An engine that
/// maintains (sum_a, sum_b) incrementally — one process block changes
/// per transition, so subtract the old block's hash_block and add the
/// new one — gets the exact value fingerprint_state(e, true) computes
/// from scratch, without materializing the child encoding.
[[nodiscard]] detail::Fingerprint fingerprint_shared_sum(
    const std::uint64_t* shared, std::uint32_t shared_len,
    std::uint64_t sum_a, std::uint64_t sum_b);

/// Fingerprint of the state.  `canonical` folds the shared prefix and
/// an order-insensitive combine of the per-process block hashes, so two
/// states equal up to a process permutation collide on purpose;
/// otherwise this equals detail::fingerprint(e.words).
[[nodiscard]] detail::Fingerprint fingerprint_state(const EncodedState& e,
                                                    bool canonical);

/// Materialized canonical word sequence (shared prefix + sorted blocks).
/// Test/diagnostic helper; the explorers only ever hash it.
[[nodiscard]] std::vector<std::uint64_t> canonical_words(const EncodedState& e);

/// A permutation π with mate's block at π[p] equal to base's block at p
/// (and equal shared prefixes) — i.e. mate = π·base up to encoding.
/// nullopt when the states are not orbit-mates.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> match_permutation(
    const EncodedState& base, const EncodedState& mate);

/// Applies π to the pids of a schedule (adversary steps are fixed points).
[[nodiscard]] std::vector<Choice> permute_pids(
    const std::vector<Choice>& schedule, const std::vector<std::uint32_t>& pi);

/// Symmetric-cycle closure.  `segment` leads from `ancestor` to an
/// orbit-mate of it (equal canonical encodings).  Returns an extended
/// schedule that leads from `ancestor` back to a state with the EXACT
/// same encoding, by replaying the segment under successive powers of the
/// matched permutation (at most `max_laps` laps — the permutation's order
/// is at most lcm(1..n), tiny for explorable n).  nullopt only if the
/// states are not actually orbit-mates or the lap cap is hit.
[[nodiscard]] std::optional<std::vector<Choice>> close_symmetric_cycle(
    const SimWorld& ancestor, const std::vector<Choice>& segment,
    std::uint32_t max_laps = 5040);

// ---------------------------------------------------------------------------
// Independence relation for sleep-set POR.
// ---------------------------------------------------------------------------

/// The shared location a choice touches at a given state.
struct Footprint {
  enum class Space : std::uint8_t {
    kNone,      ///< no pending operation (not a schedulable choice)
    kObject,    ///< a CAS object (clean or faulted — budget is per-object)
    kRegister,  ///< a read/write register (disjoint namespace)
    kGlobal,    ///< adversary corruption: dependent with everything
  };
  Space space = Space::kNone;
  objects::ObjectId id = 0;
  /// False only for register reads; CAS steps always count as writes.
  bool writes = true;
};

[[nodiscard]] Footprint footprint_of(const SimWorld& world, const Choice& c);

/// Two choices commute at the state the footprints were taken in: steps
/// of different processes whose locations are disjoint (or both reads of
/// the same register), neither being an adversary step.
[[nodiscard]] bool independent(const Choice& ca, const Footprint& fa,
                               const Choice& cb, const Footprint& fb);

/// Canonical sleep-set key of a choice: the pid is replaced by its
/// canonical slot when `slot_of` is non-empty (symmetry active), making
/// stored sleep sets comparable across orbit representatives.  Adversary
/// choices never enter sleep sets (they are dependent with everything).
[[nodiscard]] inline std::uint64_t sleep_key(
    const Choice& c, const std::vector<std::uint32_t>& slot_of) {
  const std::uint64_t slot =
      (c.pid == kAdversaryPid || slot_of.empty()) ? c.pid : slot_of[c.pid];
  return (slot << 34) | (static_cast<std::uint64_t>(c.crash ? 1 : 0) << 33) |
         (static_cast<std::uint64_t>(c.fault ? 1 : 0) << 32) | c.fault_variant;
}

/// Inverse of sleep_key: resolves a canonical key against a concrete
/// representative's canonical order (`order` empty = identity).  Among
/// processes with equal blocks any resolution is interchangeable; the
/// deterministic order makes it reproducible.
[[nodiscard]] inline Choice resolve_sleep_key(
    std::uint64_t key, const std::vector<std::uint32_t>& order) {
  const auto slot = static_cast<std::uint32_t>(key >> 34);
  Choice c;
  c.pid = order.empty() ? slot : order.at(slot);
  c.crash = ((key >> 33) & 1) != 0;
  c.fault = ((key >> 32) & 1) != 0;
  c.fault_variant = static_cast<std::uint32_t>(key & 0xFFFFFFFFULL);
  return c;
}

/// Normal form of a schedule under the independence relation: adjacent
/// independent choices are bubbled into ascending (pid, fault, variant)
/// order.  Trace-equivalent schedules (equal up to swapping independent
/// neighbours) normalize to the same sequence and reach the same state.
[[nodiscard]] std::vector<Choice> normalize_trace(const SimWorld& initial,
                                                  std::vector<Choice> schedule);

}  // namespace ff::sched
