#include "sched/random_walk.hpp"

#include <set>
#include <vector>

namespace ff::sched {

WalkOutcome random_walk(SimWorld world, const WalkOptions& options) {
  util::Xoshiro256 rng(options.seed);
  WalkOutcome outcome;
  runtime::BudgetMeter meter(options.budget);

  std::vector<Choice> faulty;
  std::vector<Choice> clean;
  while (!world.terminal()) {
    if (meter.expired() || !meter.charge(1)) {
      return outcome;  // terminal stays false: suspected non-termination
    }
    const auto choices = world.enabled();
    faulty.clear();
    clean.clear();
    for (const Choice& c : choices) {
      (c.fault ? faulty : clean).push_back(c);
    }
    const std::vector<Choice>& pool =
        (!faulty.empty() && rng.chance(options.fault_bias)) ? faulty : clean;
    const std::vector<Choice>& chosen_pool = pool.empty() ? choices : pool;
    world.apply(chosen_pool[rng.below(chosen_pool.size())]);
    ++outcome.steps;
  }

  outcome.terminal = true;
  outcome.any_killed = world.any_killed();
  const auto decisions = world.decisions();
  const std::set<std::uint64_t> input_set(world.inputs().begin(),
                                          world.inputs().end());
  for (const auto& d : decisions) {
    if (!d) continue;
    if (!input_set.contains(*d)) outcome.valid = false;
    if (!outcome.agreed) {
      outcome.agreed = *d;
    } else if (*outcome.agreed != *d) {
      outcome.consistent = false;
    }
  }
  return outcome;
}

WalkCampaignReport run_walk_campaign(const SimWorld& initial,
                                     std::uint64_t walks,
                                     WalkOptions options) {
  WalkCampaignReport report;
  for (std::uint64_t i = 0; i < walks; ++i) {
    options.seed = options.seed + 1;
    const WalkOutcome outcome = random_walk(initial, options);
    ++report.walks;
    report.steps.add(static_cast<double>(outcome.steps));
    if (outcome.ok()) {
      ++report.ok;
      continue;
    }
    if (!outcome.terminal) ++report.nonterminating;
    if (outcome.terminal && !outcome.consistent) ++report.inconsistent;
    if (outcome.terminal && !outcome.valid) ++report.invalid;
    if (outcome.any_killed) ++report.stalled;
    if (!report.first_bad_seed) report.first_bad_seed = options.seed;
  }
  return report;
}

}  // namespace ff::sched
