#include "sched/sim_world.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace ff::sched {

namespace {

/// Deterministic invisible-fault corruptor used by the simulator: the
/// returned old value is off by one, never equal to the true content.
model::Value corrupt_return(model::Value before) {
  return model::Value::of(before.raw() + 1);
}

}  // namespace

SimWorld::SimWorld(SimConfig config, const MachineFactory& factory,
                   std::vector<std::uint64_t> inputs)
    : config_(std::move(config)),
      inputs_(std::move(inputs)),
      facts_(factory.facts()),
      prune_(std::make_shared<PruneCounters>()),
      objects_(config_.num_objects, model::Value::bottom()),
      registers_(config_.num_registers, model::Value::bottom()),
      faults_used_(config_.num_objects, 0),
      crashes_used_(inputs_.size(), 0),
      killed_(inputs_.size(), false),
      symmetric_machines_(factory.pid_oblivious()) {
  machines_.reserve(inputs_.size());
  for (std::uint32_t pid = 0; pid < inputs_.size(); ++pid) {
    machines_.push_back(factory.make(pid, inputs_[pid]));
  }
  if (config_.arbitrary_candidates.empty()) {
    config_.arbitrary_candidates.push_back(model::Value::bottom());
    std::set<std::uint64_t> seen;
    for (const std::uint64_t in : inputs_) {
      if (seen.insert(in).second) {
        config_.arbitrary_candidates.push_back(model::Value::of(in));
      }
    }
  }
}

SimWorld::SimWorld(const SimWorld& other)
    : config_(other.config_),
      inputs_(other.inputs_),
      facts_(other.facts_),
      prune_(other.prune_),  // counters are shared, not duplicated
      objects_(other.objects_),
      registers_(other.registers_),
      faults_used_(other.faults_used_),
      crashes_used_(other.crashes_used_),
      killed_(other.killed_),
      total_steps_(other.total_steps_),
      symmetric_machines_(other.symmetric_machines_) {
  machines_.reserve(other.machines_.size());
  for (const auto& m : other.machines_) machines_.push_back(m->clone());
}

SimWorld& SimWorld::operator=(const SimWorld& other) {
  if (this == &other) return *this;
  SimWorld copy(other);
  *this = std::move(copy);
  return *this;
}

PendingOp SimWorld::pending(objects::ProcessId pid) const {
  if (killed_.at(pid) || machines_.at(pid)->done()) return PendingOp::none();
  return machines_.at(pid)->next_op();
}

bool SimWorld::fault_allowed(objects::ProcessId pid,
                             objects::ObjectId object) const {
  if (config_.kind == model::FaultKind::kNone) return false;
  if (!config_.object_faulty(object)) return false;
  if (config_.t != model::kUnbounded && faults_used_[object] >= config_.t) {
    return false;
  }
  if (pid != kAdversaryPid && !config_.faulting_processes.empty() &&
      !config_.faulting_processes.contains(pid)) {
    return false;
  }
  return true;
}

void SimWorld::append_fault_choices(objects::ProcessId pid,
                                    const PendingOp& op,
                                    std::vector<Choice>& out) const {
  if (!fault_allowed(pid, op.object)) return;
  const model::Value before = objects_[op.object];
  const model::CasCall call{op.expected, op.desired};
  switch (config_.kind) {
    case model::FaultKind::kOverriding:
      // Static pruning first: when the analyzer proved this object
      // overriding-immune (every reachable CAS pairs a ⊥ expected with
      // one uniform desired value), the manifest condition below is
      // unsatisfiable and the branch can be skipped without evaluating
      // it.  The debug build re-checks the certificate dynamically.
      if (config_.use_immunity_pruning && facts_ != nullptr &&
          facts_->object_immune(op.object)) {
        prune_->skips.fetch_add(1, std::memory_order_relaxed);
        assert(!(before != op.expected && before != op.desired) &&
               "A2 overriding-immunity certificate violated at runtime");
        break;
      }
      prune_->checks.fetch_add(1, std::memory_order_relaxed);
      // Manifests only when the comparison would fail AND the written
      // value actually changes the content (Definition 1: the outcome
      // must violate Φ; overwriting a value with itself does not).
      if (before != op.expected && before != op.desired) {
        out.push_back({pid, true, 0});
      }
      break;
    case model::FaultKind::kSilent:
      // Manifests only when the comparison would succeed and the write
      // would have changed the content.
      if (before == op.expected && before != op.desired) {
        out.push_back({pid, true, 0});
      }
      break;
    case model::FaultKind::kInvisible:
      out.push_back({pid, true, 0});  // corrupted output always deviates
      break;
    case model::FaultKind::kNonresponsive:
      out.push_back({pid, true, 0});  // the operation never returns
      break;
    case model::FaultKind::kArbitrary: {
      const model::CasEffect correct = model::cas_apply(before, call);
      for (std::uint32_t v = 0;
           v < config_.arbitrary_candidates.size(); ++v) {
        if (config_.arbitrary_candidates[v] != correct.after) {
          out.push_back({pid, true, v});
        }
      }
      break;
    }
    case model::FaultKind::kDataCorruption:
      // Handled via adversary corruption steps, not per-operation faults.
      break;
    case model::FaultKind::kNone:
      break;
  }
}

std::vector<Choice> SimWorld::enabled() const {
  std::vector<Choice> out;
  bool any_live = false;
  for (std::uint32_t pid = 0; pid < machines_.size(); ++pid) {
    const PendingOp op = pending(pid);
    if (op.type == OpType::kNone) continue;
    any_live = true;
    out.push_back({pid, false, 0});
    // Register operations are always correct; only CAS steps may fault.
    if (op.type == OpType::kCas) append_fault_choices(pid, op, out);
    // Crash branches (crash_budget > 0 and a recoverable machine only).
    // Variant 0 = crash-before: the pending op never reaches the object.
    // Variant 1 = crash-after: the op's effect lands but the response is
    // lost with the crash — offered only when the effect would actually
    // change shared state (a lost response to a no-op is observationally
    // identical to crash-before, mirroring the Definition 1 manifest
    // pruning); reads never change shared state, so they only get
    // variant 0.
    if (config_.crash_budget > 0 &&
        crashes_used_[pid] < config_.crash_budget &&
        machines_[pid]->can_crash()) {
      out.push_back({pid, false, 0, true});
      if (op.type == OpType::kCas) {
        const model::CasEffect effect = model::cas_apply(
            objects_[op.object], model::CasCall{op.expected, op.desired});
        if (effect.after != objects_[op.object]) {
          out.push_back({pid, false, 1, true});
        }
      } else if (op.type == OpType::kRegWrite &&
                 registers_[op.object] != op.desired) {
        out.push_back({pid, false, 1, true});
      }
    }
  }
  if (any_live && config_.allow_corruption_steps &&
      config_.kind == model::FaultKind::kDataCorruption) {
    const auto num_candidates =
        static_cast<std::uint32_t>(config_.arbitrary_candidates.size());
    for (objects::ObjectId obj = 0; obj < config_.num_objects; ++obj) {
      if (!fault_allowed(kAdversaryPid, obj)) continue;
      for (std::uint32_t v = 0; v < num_candidates; ++v) {
        // A corruption that does not change the content is not a fault.
        if (config_.arbitrary_candidates[v] == objects_[obj]) continue;
        out.push_back({kAdversaryPid, true, obj * num_candidates + v});
      }
    }
  }
  return out;
}

void SimWorld::apply(const Choice& choice) {
  if (choice.pid == kAdversaryPid) {
    const auto num_candidates =
        static_cast<std::uint32_t>(config_.arbitrary_candidates.size());
    const objects::ObjectId obj = choice.fault_variant / num_candidates;
    const std::uint32_t v = choice.fault_variant % num_candidates;
    assert(fault_allowed(kAdversaryPid, obj));
    const model::Value displaced = objects_[obj];
    objects_[obj] = config_.arbitrary_candidates[v];
    ++faults_used_[obj];
    ++total_steps_;
    if (config_.sink != nullptr) {
      faults::CasEvent ev;
      ev.object = obj;
      ev.caller = kAdversaryPid;
      ev.fired = model::FaultKind::kDataCorruption;
      ev.manifested = true;
      ev.obs = {displaced, objects_[obj], model::Value::bottom()};
      config_.sink->on_cas(ev);
    }
    return;
  }

  StepMachine& machine = *machines_.at(choice.pid);
  assert(!killed_[choice.pid] && !machine.done());
  const PendingOp op = machine.next_op();
  ++total_steps_;

  if (choice.crash) {
    assert(config_.crash_budget > 0 &&
           crashes_used_[choice.pid] < config_.crash_budget);
    assert(machine.can_crash());
    if (choice.fault_variant == 1) {
      // Crash-after: the operation's effect reaches the object, but the
      // process crashes before observing the response.
      if (op.type == OpType::kCas) {
        const model::Value before = objects_[op.object];
        const model::CasEffect effect = model::cas_apply(
            before, model::CasCall{op.expected, op.desired});
        objects_[op.object] = effect.after;
        if (config_.sink != nullptr) {
          faults::CasEvent ev;
          ev.object = op.object;
          ev.caller = choice.pid;
          ev.call = {op.expected, op.desired};
          ev.obs = {before, effect.after, effect.returned};
          config_.sink->on_cas(ev);
        }
      } else if (op.type == OpType::kRegWrite) {
        registers_.at(op.object) = op.desired;
      }
    }
    ++crashes_used_[choice.pid];
    machine.crash();
    return;
  }

  if (op.type == OpType::kRegRead) {
    assert(!choice.fault);
    machine.deliver(registers_.at(op.object));
    return;
  }
  if (op.type == OpType::kRegWrite) {
    assert(!choice.fault);
    registers_.at(op.object) = op.desired;
    machine.deliver(model::Value::bottom());
    return;
  }

  assert(op.type == OpType::kCas);
  const model::Value before = objects_[op.object];
  const model::CasCall call{op.expected, op.desired};

  faults::CasEvent ev;
  ev.object = op.object;
  ev.caller = choice.pid;
  ev.call = call;
  ev.fired = choice.fault ? config_.kind : model::FaultKind::kNone;
  ev.manifested = choice.fault;  // fault branches only exist when they
                                 // manifest (Definition 1 pruning)

  if (!choice.fault) {
    const model::CasEffect effect = model::cas_apply(before, call);
    objects_[op.object] = effect.after;
    ev.obs = {before, effect.after, effect.returned};
    if (config_.sink != nullptr) config_.sink->on_cas(ev);
    machine.deliver(effect.returned);
    return;
  }

  assert(fault_allowed(choice.pid, op.object));
  ++faults_used_[op.object];
  switch (config_.kind) {
    case model::FaultKind::kOverriding:
      objects_[op.object] = op.desired;
      ev.obs = {before, op.desired, before};
      machine.deliver(before);
      break;
    case model::FaultKind::kSilent:
      ev.obs = {before, before, before};
      machine.deliver(before);  // content unchanged, output correct
      break;
    case model::FaultKind::kInvisible: {
      const model::CasEffect effect = model::cas_apply(before, call);
      objects_[op.object] = effect.after;
      ev.obs = {before, effect.after, corrupt_return(before)};
      machine.deliver(corrupt_return(before));
      break;
    }
    case model::FaultKind::kNonresponsive:
      killed_[choice.pid] = true;  // the operation never responds
      ev.obs = {before, before, model::Value::bottom()};
      break;
    case model::FaultKind::kArbitrary: {
      const model::Value garbage =
          config_.arbitrary_candidates.at(choice.fault_variant);
      objects_[op.object] = garbage;
      ev.obs = {before, garbage, before};
      machine.deliver(before);
      break;
    }
    case model::FaultKind::kDataCorruption:
    case model::FaultKind::kNone:
      assert(false && "not a per-operation fault kind");
      break;
  }
  if (config_.sink != nullptr) config_.sink->on_cas(ev);
}

void SimWorld::apply_with_undo(const Choice& choice, StepUndo& undo) {
  undo.pid = choice.pid;
  undo.objects = objects_;
  undo.registers = registers_;
  undo.faults_used = faults_used_;
  undo.crashes_used = crashes_used_;
  undo.killed = killed_;
  undo.total_steps = total_steps_;
  if (choice.pid != kAdversaryPid) {
    undo.machine = machines_[choice.pid]->clone();
  } else {
    undo.machine.reset();
  }
  apply(choice);
}

void SimWorld::undo_step(StepUndo& undo) {
  // Swap, not copy: the undo buffers keep the (now dead) post-step
  // values and their capacity for the next save.
  objects_.swap(undo.objects);
  registers_.swap(undo.registers);
  faults_used_.swap(undo.faults_used);
  crashes_used_.swap(undo.crashes_used);
  killed_.swap(undo.killed);
  total_steps_ = undo.total_steps;
  if (undo.machine != nullptr) {
    machines_[undo.pid] = std::move(undo.machine);
  }
}

bool SimWorld::terminal() const {
  for (std::uint32_t pid = 0; pid < machines_.size(); ++pid) {
    if (!killed_[pid] && !machines_[pid]->done()) return false;
  }
  return true;
}

bool SimWorld::any_killed() const {
  for (const bool k : killed_) {
    if (k) return true;
  }
  return false;
}

std::vector<std::optional<std::uint64_t>> SimWorld::decisions() const {
  std::vector<std::optional<std::uint64_t>> out;
  out.reserve(machines_.size());
  for (std::uint32_t pid = 0; pid < machines_.size(); ++pid) {
    if (!killed_[pid] && machines_[pid]->done()) {
      out.emplace_back(machines_[pid]->decision());
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

void SimWorld::encode_shared(std::vector<std::uint64_t>& out) const {
  for (const model::Value v : objects_) out.push_back(v.raw());
  for (const model::Value v : registers_) out.push_back(v.raw());
  // Only the remaining headroom min(used, t) is semantically relevant;
  // with t = ∞ the counters never matter.  Encoding the raw counts would
  // make livelocking executions look like fresh states forever and defeat
  // both memoization and cycle detection.
  for (const std::uint32_t used : faults_used_) {
    out.push_back(config_.t == model::kUnbounded
                      ? 0
                      : std::min(used, config_.t));
  }
}

void SimWorld::encode_process(objects::ProcessId pid,
                              std::vector<std::uint64_t>& out) const {
  out.push_back(0xFEEDFACEFEEDFACEULL);  // separator guards alignment
  out.push_back(killed_.at(pid) ? 1 : 0);
  // The crash counter is per-process state (it gates this process's
  // remaining crash branches), so it lives in the process block — and
  // only when crashes are enabled at all, so budget-0 encodings are
  // bit-identical to the crash-free ones.  The counter is monotone and
  // encoded, so a crash edge can never close a cycle: recovery loops are
  // budgeted by construction.
  if (config_.crash_budget > 0) out.push_back(crashes_used_.at(pid));
  machines_.at(pid)->encode(out);
}

std::vector<std::uint64_t> SimWorld::encode() const {
  std::vector<std::uint64_t> out;
  out.reserve(shared_words() + machines_.size() * 8);
  encode_shared(out);
  for (std::uint32_t pid = 0; pid < machines_.size(); ++pid) {
    encode_process(pid, out);
  }
  return out;
}

}  // namespace ff::sched
