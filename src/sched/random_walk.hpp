// Random playouts through SimWorld for configurations too large to
// explore exhaustively.
//
// A walk picks uniformly among the enabled choices (with a configurable
// bias towards fault choices, since violations typically need faults to
// fire) until the world is terminal or the step cap is hit.  Walks are
// fully deterministic in their seed — a reported violating seed can be
// replayed exactly.
#pragma once

#include <cstdint>
#include <optional>

#include "runtime/budget.hpp"
#include "sched/sim_world.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ff::sched {

struct WalkOptions {
  std::uint64_t seed = 1;
  /// Probability of preferring a fault choice when one is enabled.
  double fault_bias = 0.5;
  /// Walk budget (shared abstraction — see runtime/budget.hpp): units
  /// are simulated steps.  A walk that exhausts it gives up with
  /// terminal = false (suspected non-termination / truncation), never a
  /// fabricated verdict.
  runtime::BudgetSpec budget{.max_units = 1'000'000, .max_millis = 0};
};

struct WalkOutcome {
  bool terminal = false;     ///< reached a terminal state
  bool consistent = true;    ///< decided processes agree
  bool valid = true;         ///< decisions are input values
  bool any_killed = false;   ///< a nonresponsive fault killed a process
  std::uint64_t steps = 0;
  std::optional<std::uint64_t> agreed;

  [[nodiscard]] bool ok() const noexcept {
    return terminal && consistent && valid && !any_killed;
  }
};

[[nodiscard]] WalkOutcome random_walk(SimWorld world,
                                      const WalkOptions& options);

struct WalkCampaignReport {
  std::uint64_t walks = 0;
  std::uint64_t ok = 0;
  std::uint64_t inconsistent = 0;
  std::uint64_t invalid = 0;
  std::uint64_t nonterminating = 0;
  std::uint64_t stalled = 0;
  util::StreamingStats steps;
  std::optional<std::uint64_t> first_bad_seed;

  [[nodiscard]] bool all_ok() const noexcept { return ok == walks; }
};

/// Runs `walks` random playouts with seeds base_seed, base_seed+1, ...
[[nodiscard]] WalkCampaignReport run_walk_campaign(
    const SimWorld& initial, std::uint64_t walks, WalkOptions options);

}  // namespace ff::sched
