#include "sched/reduce.hpp"

#include <algorithm>
#include <cassert>

namespace ff::sched {

namespace {

/// Lexicographic comparison of two blocks inside the same word vector.
[[nodiscard]] bool block_less(const std::vector<std::uint64_t>& words,
                              std::uint32_t a_begin, std::uint32_t a_end,
                              std::uint32_t b_begin, std::uint32_t b_end) {
  return std::lexicographical_compare(
      words.begin() + a_begin, words.begin() + a_end,
      words.begin() + b_begin, words.begin() + b_end);
}

[[nodiscard]] bool block_equal(const std::vector<std::uint64_t>& a_words,
                               std::uint32_t a_begin, std::uint32_t a_end,
                               const std::vector<std::uint64_t>& b_words,
                               std::uint32_t b_begin, std::uint32_t b_end) {
  return std::equal(a_words.begin() + a_begin, a_words.begin() + a_end,
                    b_words.begin() + b_begin, b_words.begin() + b_end);
}

}  // namespace

void StateEncoder::encode(const SimWorld& world, EncodedState& out) {
  const std::uint32_t n = world.processes();
  out.words.clear();
  out.words.reserve(world.shared_words() + std::size_t{n} * 8);
  out.block_off.clear();
  out.block_off.reserve(n + 1);
  world.encode_shared(out.words);
  out.shared_len = static_cast<std::uint32_t>(out.words.size());
  for (std::uint32_t pid = 0; pid < n; ++pid) {
    out.block_off.push_back(static_cast<std::uint32_t>(out.words.size()));
    world.encode_process(pid, out.words);
  }
  out.block_off.push_back(static_cast<std::uint32_t>(out.words.size()));
}

void StateEncoder::patch(const SimWorld& child, const EncodedState& parent,
                         objects::ProcessId changed_pid, EncodedState& out) {
  assert(&out != &parent);
  out.words.assign(parent.words.begin(), parent.words.end());
  out.shared_len = parent.shared_len;
  out.block_off.assign(parent.block_off.begin(), parent.block_off.end());

  // The shared prefix has fixed length for a given configuration.
  scratch_.clear();
  child.encode_shared(scratch_);
  assert(scratch_.size() == out.shared_len);
  std::copy(scratch_.begin(), scratch_.end(), out.words.begin());

  if (changed_pid == kAdversaryPid) return;  // no block changed

  scratch_.clear();
  child.encode_process(changed_pid, scratch_);
  const std::uint32_t begin = out.block_off.at(changed_pid);
  const std::uint32_t end = out.block_off.at(changed_pid + 1);
  const auto old_len = static_cast<std::size_t>(end - begin);
  if (scratch_.size() == old_len) {
    std::copy(scratch_.begin(), scratch_.end(), out.words.begin() + begin);
    return;
  }
  // Variable-length machine encodings: splice and shift later offsets.
  const auto delta = static_cast<std::int64_t>(scratch_.size()) -
                     static_cast<std::int64_t>(old_len);
  out.words.erase(out.words.begin() + begin, out.words.begin() + end);
  out.words.insert(out.words.begin() + begin, scratch_.begin(),
                   scratch_.end());
  for (std::size_t p = changed_pid + 1; p < out.block_off.size(); ++p) {
    out.block_off[p] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(out.block_off[p]) + delta);
  }
}

void canonical_order(const EncodedState& e,
                     std::vector<std::uint32_t>& order) {
  const std::uint32_t n = e.processes();
  order.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) order[p] = p;
  std::sort(order.begin(), order.end(),
            [&e](std::uint32_t a, std::uint32_t b) {
              if (block_less(e.words, e.block_off[a], e.block_off[a + 1],
                             e.block_off[b], e.block_off[b + 1])) {
                return true;
              }
              if (block_less(e.words, e.block_off[b], e.block_off[b + 1],
                             e.block_off[a], e.block_off[a + 1])) {
                return false;
              }
              return a < b;
            });
}

void canonical_slots(const EncodedState& e,
                     std::vector<std::uint32_t>& slot_of) {
  std::vector<std::uint32_t> order;
  canonical_order(e, order);
  slot_of.resize(order.size());
  for (std::uint32_t slot = 0; slot < order.size(); ++slot) {
    slot_of[order[slot]] = slot;
  }
}

detail::Fingerprint hash_block(const std::uint64_t* begin,
                               const std::uint64_t* end) {
  detail::FpFold f;
  for (const std::uint64_t* w = begin; w != end; ++w) f.fold(*w);
  return f.done();
}

detail::Fingerprint fingerprint_shared_sum(const std::uint64_t* shared,
                                           std::uint32_t shared_len,
                                           std::uint64_t sum_a,
                                           std::uint64_t sum_b) {
  detail::FpFold f;
  for (std::uint32_t i = 0; i < shared_len; ++i) f.fold(shared[i]);
  f.fold(sum_a);
  f.fold(sum_b);
  return f.done();
}

detail::Fingerprint fingerprint_state(const EncodedState& e, bool canonical) {
  if (!canonical) return detail::fingerprint(e.words);
  // Canonical fingerprint = shared prefix + an order-insensitive
  // multiset combine of per-block hashes: summing the 128-bit block
  // hashes mod 2^64 per half is permutation-invariant by construction,
  // so no block sort is needed, and the value is maintainable
  // incrementally when a transition rewrites one process block.  Equal
  // sums for distinct block multisets are a hash collision of the same
  // grade every fingerprint table here already accepts.  Block lengths
  // are folded into each block hash (FpFold::done mixes len), so block
  // boundaries cannot alias across variable-length encodings.
  std::uint64_t sum_a = 0;
  std::uint64_t sum_b = 0;
  const std::uint32_t n = e.processes();
  for (std::uint32_t p = 0; p < n; ++p) {
    const detail::Fingerprint h =
        hash_block(e.words.data() + e.block_off[p],
                   e.words.data() + e.block_off[p + 1]);
    sum_a += h.a;
    sum_b += h.b;
  }
  return fingerprint_shared_sum(e.words.data(), e.shared_len, sum_a, sum_b);
}

std::vector<std::uint64_t> canonical_words(const EncodedState& e) {
  std::vector<std::uint64_t> out;
  out.reserve(e.words.size());
  out.insert(out.end(), e.words.begin(), e.words.begin() + e.shared_len);
  std::vector<std::uint32_t> order;
  canonical_order(e, order);
  for (const std::uint32_t p : order) {
    out.insert(out.end(), e.words.begin() + e.block_off[p],
               e.words.begin() + e.block_off[p + 1]);
  }
  return out;
}

std::optional<std::vector<std::uint32_t>> match_permutation(
    const EncodedState& base, const EncodedState& mate) {
  const std::uint32_t n = base.processes();
  if (mate.processes() != n || base.shared_len != mate.shared_len) {
    return std::nullopt;
  }
  if (!std::equal(base.words.begin(), base.words.begin() + base.shared_len,
                  mate.words.begin())) {
    return std::nullopt;
  }
  std::vector<std::uint32_t> pi(n, 0);
  std::vector<bool> used(n, false);
  for (std::uint32_t p = 0; p < n; ++p) {
    bool matched = false;
    for (std::uint32_t q = 0; q < n; ++q) {
      if (used[q]) continue;
      if (block_equal(base.words, base.block_off[p], base.block_off[p + 1],
                      mate.words, mate.block_off[q], mate.block_off[q + 1])) {
        pi[p] = q;
        used[q] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return std::nullopt;
  }
  return pi;
}

std::vector<Choice> permute_pids(const std::vector<Choice>& schedule,
                                 const std::vector<std::uint32_t>& pi) {
  std::vector<Choice> out;
  out.reserve(schedule.size());
  for (Choice c : schedule) {
    if (c.pid != kAdversaryPid) c.pid = pi.at(c.pid);
    out.push_back(c);
  }
  return out;
}

std::optional<std::vector<Choice>> close_symmetric_cycle(
    const SimWorld& ancestor, const std::vector<Choice>& segment,
    std::uint32_t max_laps) {
  StateEncoder enc;
  EncodedState base;
  enc.encode(ancestor, base);

  SimWorld world = ancestor;
  for (const Choice& c : segment) world.apply(c);
  EncodedState cur;
  enc.encode(world, cur);
  if (cur.words == base.words) return segment;  // exact revisit already

  const auto pi = match_permutation(base, cur);
  if (!pi) return std::nullopt;

  // world == π·ancestor (up to encoding, which is behaviourally complete),
  // so replaying π^k(segment) advances π^k·ancestor to π^{k+1}·ancestor.
  // The walk returns to the exact ancestor encoding after order(π) laps.
  std::vector<Choice> out = segment;
  std::vector<Choice> lap = segment;
  for (std::uint32_t k = 1; k < max_laps; ++k) {
    lap = permute_pids(lap, *pi);
    for (const Choice& c : lap) {
      // Equivariance guarantees enabledness; guard against misuse anyway.
      if (c.pid != kAdversaryPid && world.process_done(c.pid)) {
        return std::nullopt;
      }
      world.apply(c);
      out.push_back(c);
    }
    enc.encode(world, cur);
    if (cur.words == base.words) return out;
  }
  return std::nullopt;
}

Footprint footprint_of(const SimWorld& world, const Choice& c) {
  if (c.pid == kAdversaryPid) {
    return Footprint{Footprint::Space::kGlobal, 0, true};
  }
  // Crash choices inherit the pending op's footprint: crash-after may
  // write that location, crash-before touches only per-process state
  // (always dependent with same-pid choices anyway) — conservative but
  // sound for the sleep-set commutation argument.
  const PendingOp op = world.pending(c.pid);
  Footprint dyn{Footprint::Space::kNone, 0, true};
  switch (op.type) {
    case OpType::kCas:
      dyn = Footprint{Footprint::Space::kObject, op.object, true};
      break;
    case OpType::kRegRead:
      dyn = Footprint{Footprint::Space::kRegister, op.object, false};
      break;
    case OpType::kRegWrite:
      dyn = Footprint{Footprint::Space::kRegister, op.object, true};
      break;
    case OpType::kNone:
      break;
  }
  // Static independence relation (ffcheck A1): when the machine names its
  // pending pc and the analyzer proved that site's index is a single
  // constant, the static footprint IS the dynamic one at every reachable
  // state — use it, and let debug builds cross-check the claim.  A
  // non-exact entry only bounds the dynamic location, so it is kept as a
  // containment assert and the dynamic footprint stays authoritative.
  if (const ProgramFacts* facts = world.facts();
      facts != nullptr && dyn.space != Footprint::Space::kNone) {
    const std::uint32_t site = world.machine(c.pid).pending_site();
    if (site < facts->footprints.size()) {
      const StaticFootprint& sf = facts->footprints[site];
      assert((sf.space == StaticFootprint::Space::kObject) ==
             (dyn.space == Footprint::Space::kObject));
      assert((sf.space == StaticFootprint::Space::kRegister) ==
             (dyn.space == Footprint::Space::kRegister));
      if (sf.exact) {
        assert(sf.lo == dyn.id && sf.writes == dyn.writes);
        return Footprint{dyn.space, sf.lo, sf.writes};
      }
      assert(sf.lo <= dyn.id && dyn.id < sf.hi);
    }
  }
  return dyn;
}

bool independent(const Choice& ca, const Footprint& fa, const Choice& cb,
                 const Footprint& fb) {
  if (ca.pid == cb.pid) return false;  // same process: program order
  if (fa.space == Footprint::Space::kGlobal ||
      fb.space == Footprint::Space::kGlobal) {
    return false;  // adversary steps are dependent with everything
  }
  if (fa.space == Footprint::Space::kNone ||
      fb.space == Footprint::Space::kNone) {
    return false;  // not schedulable — be conservative
  }
  if (fa.space != fb.space) return true;  // disjoint namespaces
  if (fa.id != fb.id) return true;        // disjoint locations
  return !fa.writes && !fb.writes;        // read/read commutes
}

std::vector<Choice> normalize_trace(const SimWorld& initial,
                                    std::vector<Choice> schedule) {
  const auto key = [](const Choice& c) {
    return (static_cast<std::uint64_t>(c.pid) << 34) |
           (static_cast<std::uint64_t>(c.crash ? 1 : 0) << 33) |
           (static_cast<std::uint64_t>(c.fault ? 1 : 0) << 32) |
           c.fault_variant;
  };
  // Bubble passes: each pass replays the prefix worlds so footprints are
  // taken at the state where the adjacent pair actually executes.  A pass
  // with no swap terminates the loop; n passes always suffice.
  const std::size_t len = schedule.size();
  for (std::size_t pass = 0; pass < len; ++pass) {
    bool swapped = false;
    SimWorld world = initial;
    for (std::size_t i = 0; i + 1 < len; ++i) {
      Choice& a = schedule[i];
      Choice& b = schedule[i + 1];
      const Footprint faa = footprint_of(world, a);
      const Footprint fbb = footprint_of(world, b);
      if (independent(a, faa, b, fbb) && key(b) < key(a)) {
        std::swap(a, b);
        swapped = true;
      }
      world.apply(schedule[i]);
    }
    if (!swapped) break;
  }
  return schedule;
}

}  // namespace ff::sched
