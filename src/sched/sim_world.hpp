// SimWorld — deterministic simulated execution state.
//
// Holds the shared CAS registers, the per-process StepMachines, and the
// fault accounting for one execution prefix.  The scheduler/adversary is
// external: at each state, enabled() lists every legal Choice — which
// process steps next, and whether (and how) a fault fires on that step —
// and apply() advances the world by one such choice.  SimWorld is
// copyable (machines are cloned), which is what lets the explorer
// snapshot states for depth-first search, and encodable, which is what
// lets it memoize visited states.
//
// Fault branching follows Definition 1 exactly: a fault choice is only
// enabled when its outcome would differ from the correct outcome (an
// overriding fault on a CAS whose comparison succeeds anyway is not a
// fault, and is not offered as a branch — this also prunes the search).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "faults/trace.hpp"
#include "model/cas_semantics.hpp"
#include "model/fault_kind.hpp"
#include "model/tolerance.hpp"
#include "sched/program.hpp"
#include "sched/step.hpp"

namespace ff::sched {

/// Pseudo-process id for adversary data-corruption steps.
inline constexpr objects::ProcessId kAdversaryPid = 0xFFFFFFFFu;

struct SimConfig {
  std::uint32_t num_objects = 1;
  /// Read/write registers available to the protocol (always correct —
  /// the lower bounds allow unboundedly many of them; Theorem 18).
  std::uint32_t num_registers = 0;
  /// Fault kind the designated faulty objects may exhibit.
  model::FaultKind kind = model::FaultKind::kOverriding;
  /// Designation mask (size num_objects); empty = all objects faulty.
  std::vector<bool> faulty;
  /// Max manifested faults per faulty object (kUnbounded = ∞).
  std::uint32_t t = model::kUnbounded;
  /// If non-empty, only steps by these processes may fault (the
  /// Theorem 18 reduced model uses {p_1-style single process}).
  std::set<objects::ProcessId> faulting_processes;
  /// Values an arbitrary fault / data corruption may write.  Empty
  /// defaults to {⊥} ∪ {inputs} at construction.
  std::vector<model::Value> arbitrary_candidates;
  /// Enables adversary corruption steps (Afek data-fault model): before
  /// any process step the adversary may overwrite a designated object
  /// with any candidate value, consuming budget.
  bool allow_corruption_steps = false;
  /// Max crashes per process (0 = crashes disabled).  A crash is a
  /// per-process nondeterministic branch at a pause point: the process
  /// loses its volatile locals and re-enters at its recovery label
  /// (StepMachine::crash()); shared objects and persistent locals
  /// survive.  Only machines with a recovery entry (can_crash()) are
  /// offered crash branches, so budget 0 — and every non-recoverable
  /// protocol — reproduces the crash-free state space exactly.
  std::uint32_t crash_budget = 0;
  /// Skip overriding-fault branches on objects the factory's static
  /// analysis proved immune (ProgramFacts::immune_objects).  Sound —
  /// the skipped branches can never manifest, so the census is
  /// bit-identical either way (DESIGN.md §3h); off switches to the
  /// brute-force enabling check for A/B measurement.
  bool use_immunity_pruning = true;
  /// Optional CAS-event recorder (borrowed).  Only meaningful for LINEAR
  /// drives of one world — random walks, adversaries, witness replays.
  /// The DFS explorer interleaves branches through copies that share
  /// this pointer; leave it null there.
  faults::TraceSink* sink = nullptr;

  [[nodiscard]] bool object_faulty(objects::ObjectId id) const {
    return faulty.empty() || (id < faulty.size() && faulty[id]);
  }
};

class SimWorld {
 public:
  SimWorld(SimConfig config, const MachineFactory& factory,
           std::vector<std::uint64_t> inputs);

  SimWorld(const SimWorld& other);
  SimWorld& operator=(const SimWorld& other);
  SimWorld(SimWorld&&) noexcept = default;
  SimWorld& operator=(SimWorld&&) noexcept = default;

  /// All legal choices at the current state.  Empty iff terminal.
  [[nodiscard]] std::vector<Choice> enabled() const;

  /// Advances by one choice (must be one returned by enabled()).
  void apply(const Choice& choice);

  /// Saved pre-step state for the explorers' expand-and-roll-back fast
  /// path.  One step changes at most: the shared vectors, one kill flag,
  /// the step counter, and ONE machine — so a child that turns out to be
  /// an already-visited duplicate costs one machine clone instead of a
  /// full world copy (which clones every machine and every vector).
  /// Reuse the same StepUndo across steps: its buffers keep their
  /// capacity and the per-step saves stop allocating.
  struct StepUndo {
    std::unique_ptr<StepMachine> machine;  ///< pre-step clone (process steps)
    objects::ProcessId pid = kAdversaryPid;
    std::vector<model::Value> objects;
    std::vector<model::Value> registers;
    std::vector<std::uint32_t> faults_used;
    std::vector<std::uint32_t> crashes_used;
    std::vector<bool> killed;
    std::uint64_t total_steps = 0;
  };

  /// apply(), but first saves everything the step may change into `undo`
  /// so undo_step() can roll this world back to the pre-step state.
  void apply_with_undo(const Choice& choice, StepUndo& undo);

  /// Rolls back the mutation of the matching apply_with_undo.  Call at
  /// most once per apply_with_undo, with no intervening apply.
  void undo_step(StepUndo& undo);

  /// Terminal: every process is done or killed (nonresponsive).
  [[nodiscard]] bool terminal() const;

  /// True when some process was killed by a nonresponsive fault.
  [[nodiscard]] bool any_killed() const;

  /// Decisions of the completed processes (nullopt for killed ones).
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> decisions() const;

  /// Serializes the full semantic state for memoization.  Layout:
  /// shared prefix (encode_shared) followed by one block per process
  /// (encode_process, in pid order).  The block structure is what lets
  /// sched/reduce.hpp canonicalize symmetric states by sorting blocks
  /// and patch a parent encoding incrementally after a step.
  [[nodiscard]] std::vector<std::uint64_t> encode() const;

  /// Appends the process-independent state: object values, register
  /// values, and the semantically relevant fault-budget headroom.  Fixed
  /// length for a given configuration.
  void encode_shared(std::vector<std::uint64_t>& out) const;

  /// Appends process `pid`'s block: separator, kill flag, machine locals.
  /// Only a step by `pid` (or by nobody, for adversary steps) changes it.
  void encode_process(objects::ProcessId pid,
                      std::vector<std::uint64_t>& out) const;

  /// Words encode_shared() appends (fixed per configuration).
  [[nodiscard]] std::uint32_t shared_words() const noexcept {
    return config_.num_objects * 2 + config_.num_registers;
  }

  /// True when process ids are interchangeable: the factory declared its
  /// machines pid-oblivious and no fault rule singles out a process.
  /// This is the soundness precondition for symmetry reduction.
  [[nodiscard]] bool processes_symmetric() const noexcept {
    return symmetric_machines_ && config_.faulting_processes.empty();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] std::uint32_t processes() const noexcept {
    return static_cast<std::uint32_t>(machines_.size());
  }
  [[nodiscard]] model::Value object_value(objects::ObjectId id) const {
    return objects_.at(id);
  }
  [[nodiscard]] model::Value register_value(objects::ObjectId id) const {
    return registers_.at(id);
  }
  [[nodiscard]] std::uint32_t faults_used(objects::ObjectId id) const {
    return faults_used_.at(id);
  }
  [[nodiscard]] std::uint32_t crashes_used(objects::ProcessId pid) const {
    return crashes_used_.at(pid);
  }
  [[nodiscard]] std::uint64_t total_steps() const noexcept {
    return total_steps_;
  }
  [[nodiscard]] bool killed(objects::ProcessId pid) const {
    return killed_.at(pid);
  }
  [[nodiscard]] bool process_done(objects::ProcessId pid) const {
    return killed_.at(pid) || machines_.at(pid)->done();
  }
  [[nodiscard]] const StepMachine& machine(objects::ProcessId pid) const {
    return *machines_.at(pid);
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Next pending operation of a live process (kNone when done/killed).
  [[nodiscard]] PendingOp pending(objects::ProcessId pid) const;

  /// Static facts attached by the machine factory (nullptr when none).
  [[nodiscard]] const ProgramFacts* facts() const noexcept {
    return facts_.get();
  }

  /// A2 immunity-pruning counters, shared (monotone) across every copy
  /// of this world — the explorers copy worlds per branch, so per-copy
  /// counters would double count.  `checks` counts overriding-fault
  /// enabling conditions evaluated the brute-force way, `skips` the ones
  /// pruned by a proved-immune object.  Harvest as deltas around a
  /// search (ExploreResult::immunity_checks / immunity_skips).
  [[nodiscard]] std::uint64_t immunity_checks() const noexcept {
    return prune_->checks.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t immunity_skips() const noexcept {
    return prune_->skips.load(std::memory_order_relaxed);
  }

 private:
  /// Enumerates manifesting fault variants for the pending CAS of `pid`.
  void append_fault_choices(objects::ProcessId pid, const PendingOp& op,
                            std::vector<Choice>& out) const;
  [[nodiscard]] bool fault_allowed(objects::ProcessId pid,
                                   objects::ObjectId object) const;

  struct PruneCounters {
    // ff-lint: allow(R1): checker-internal prune tally, never protocol-visible
    std::atomic<std::uint64_t> checks{0};
    // ff-lint: allow(R1): checker-internal prune tally, never protocol-visible
    std::atomic<std::uint64_t> skips{0};
  };

  SimConfig config_;
  std::vector<std::uint64_t> inputs_;
  std::shared_ptr<const ProgramFacts> facts_;  ///< from the factory
  std::shared_ptr<PruneCounters> prune_;       ///< shared by all copies
  std::vector<std::unique_ptr<StepMachine>> machines_;
  std::vector<model::Value> objects_;
  std::vector<model::Value> registers_;
  std::vector<std::uint32_t> faults_used_;
  std::vector<std::uint32_t> crashes_used_;  ///< per process
  std::vector<bool> killed_;
  std::uint64_t total_steps_ = 0;
  bool symmetric_machines_ = false;
};

}  // namespace ff::sched
