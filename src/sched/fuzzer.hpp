// Coverage-guided schedule fuzzer over SimWorld — the tool for hunting
// violating schedules at (f, t, n) sizes where the exhaustive explorers
// are intractable and unguided random walks rarely leave the well-trodden
// part of the state space.
//
// How it works:
//   * Generation.  Each execution either performs a fresh PCT-style
//     priority walk (random process priorities with a few priority-change
//     points, faults fired with a configurable bias — after Burckhardt et
//     al.'s probabilistic concurrency testing) or mutates a schedule from
//     the corpus: splice two schedules, truncate-and-replay with a random
//     tail, swap two process identities throughout, or nudge fault points
//     (toggle/move/revariant a fault).  Mutated schedules are re-resolved
//     against the live world step by step, so every recorded schedule is
//     a real, replayable choice sequence from the initial state.
//   * Coverage.  The 128-bit state fingerprints of the explorers double
//     as the novelty signal: an execution enters the corpus iff it
//     reached a fingerprint never seen before.  See DESIGN.md §3b for
//     why this is a sound novelty signal under fault nondeterminism.
//   * Oracle.  Terminal states are checked exactly like the explorers
//     (consistency, validity, optional stall); a revisited state with a
//     process step in the repeated segment is a machine-checked
//     wait-freedom violation (the cycle is real, not a timeout guess).
//   * Shrinking.  shrink_witness() reduces a violating schedule to a
//     locally-minimal witness: no contiguous chunk (any size) can be
//     removed and no single choice can be replaced by a smaller enabled
//     one without losing the violation.  Deterministic and idempotent;
//     every candidate is verified by strict replay.
//
// Determinism: with no wall-clock deadline configured, the entire run —
// corpus, coverage set, violation schedules, final RNG state — is a pure
// function of (initial world, FuzzOptions).  FuzzResult::to_json()
// serializes all of it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/budget.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Fuzzing budget (shared abstraction — see runtime/budget.hpp):
  /// units are simulated steps summed over all executions; the deadline,
  /// if set, is polled between executions.  An exhausted budget stops
  /// the run with complete = false and fabricates nothing.
  runtime::BudgetSpec budget{.max_units = 2'000'000, .max_millis = 0};
  /// Stop after this many executions (0 = run until the budget ends).
  std::uint64_t max_execs = 0;
  /// Per-execution step cap — gives up on one execution (not the run)
  /// when no terminal state and no state revisit surfaced first.
  std::uint64_t max_steps_per_exec = 4'096;
  /// Probability of a fresh PCT walk instead of a corpus mutation (a
  /// fresh walk is always used while the corpus is empty).
  double fresh_walk_prob = 0.3;
  /// Priority-change points per fresh PCT walk.
  std::uint32_t pct_change_points = 3;
  /// Probability of taking an enabled fault choice (walk tails and
  /// fresh walks).
  double fault_bias = 0.5;
  /// Count terminal states with killed processes as kStalled.
  bool killed_is_violation = false;
  /// Stop the whole run at the first violation (complete stays false,
  /// mirroring the explorers' early-stop semantics).
  bool stop_at_first_violation = true;
  /// Stop once a witness for every kind in this set has been found
  /// (empty = no such stop).  Used by differential tests that know the
  /// explorer's violation census.
  std::set<ViolationKind> stop_after_kinds;
  /// Run shrink_witness on the first violation before returning it.
  bool shrink = true;
  /// Use canonical (process-permutation orbit) fingerprints for the
  /// coverage/novelty signal when the world is processes_symmetric(), so
  /// the fuzzer does not waste budget re-discovering permuted replays of
  /// states it has already covered.  The in-execution cycle oracle keeps
  /// EXACT fingerprints regardless: a nontermination verdict still
  /// requires a strict state revisit.  No effect on asymmetric worlds.
  bool symmetry_reduction = true;
  /// Corpus size cap (schedules retained for mutation).
  std::size_t max_corpus = 4'096;
};

struct FuzzStats {
  std::uint64_t executions = 0;       ///< completed (evaluated) executions
  std::uint64_t total_steps = 0;      ///< budget units consumed
  std::uint64_t corpus_entries = 0;
  std::uint64_t unique_states = 0;    ///< coverage fingerprints seen
  std::uint64_t violations_found = 0;
  std::optional<std::uint64_t> first_violation_exec;
  /// Witness lengths before/after shrinking (0/0 when nothing shrunk).
  std::uint64_t witness_steps_found = 0;
  std::uint64_t witness_steps_shrunk = 0;
};

struct FuzzResult {
  /// True iff the run finished its requested work (max_execs reached or
  /// stop_after_kinds satisfied) without exhausting the budget.  Early
  /// stop at the first violation and budget/deadline truncation both
  /// report false, mirroring ExploreResult::complete.
  bool complete = false;
  FuzzStats stats;
  std::map<ViolationKind, std::uint64_t> violations_by_kind;
  /// First witness found per kind, exactly as discovered (unshrunk).
  std::map<ViolationKind, Violation> first_by_kind;
  /// First violation overall; shrunk when options.shrink is set.
  std::optional<Violation> violation;
  /// The same violation exactly as discovered (always unshrunk).
  std::optional<Violation> original_violation;
  /// Coverage-novel schedules, each replayable from the initial world.
  std::vector<std::vector<Choice>> corpus;
  /// Sorted 128-bit coverage fingerprints (a, b) — the novelty set.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> coverage;
  /// Final PRNG state (xoshiro256**), for resuming a campaign exactly.
  std::array<std::uint64_t, 4> rng_state{};

  [[nodiscard]] std::uint64_t violations_of(ViolationKind kind) const {
    const auto it = violations_by_kind.find(kind);
    return it == violations_by_kind.end() ? 0 : it->second;
  }

  /// Serializes the whole result — stats, census, witnesses, corpus,
  /// coverage set, RNG state — as a single JSON object.
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] FuzzResult fuzz(const SimWorld& initial,
                              const FuzzOptions& options = {});

/// Strictly replays `schedule` from a fresh copy of `initial` (each
/// choice must be enabled at its state — otherwise nullopt) and returns
/// the violation kind it exhibits, if any: a violating terminal state,
/// or a final state equal to an earlier one with a process step in the
/// repeated segment (nontermination).
[[nodiscard]] std::optional<ViolationKind> classify_schedule(
    const SimWorld& initial, const std::vector<Choice>& schedule,
    bool killed_is_violation = false);

/// Delta-debugging minimizer: returns a schedule that still exhibits
/// violation kind `kind` (verified by strict replay at every candidate)
/// and is locally minimal — removing ANY contiguous chunk of ANY size
/// no longer violates, and no choice can be canonicalized to a smaller
/// enabled one (lower pid, clean instead of faulty, lower variant).
/// Deterministic and idempotent; returns the input unchanged if it does
/// not itself exhibit `kind`.
[[nodiscard]] std::vector<Choice> shrink_witness(
    const SimWorld& initial, const std::vector<Choice>& schedule,
    ViolationKind kind, bool killed_is_violation = false);

}  // namespace ff::sched
