// Parallel exhaustive explorer — the multi-core counterpart of explore().
//
// N worker threads expand a work-stealing frontier of SimWorld states over
// a sharded, striped-lock 128-bit fingerprint table.  Each distinct state
// is claimed by exactly one worker at table-insertion time, so every state
// is expanded once, exactly as in the sequential depth-first search — the
// two explorers visit the SAME reachable set and therefore agree on
// states_visited, terminal_states, per-terminal violation counts and the
// agreed-value set (the differential harness in
// tests/test_parallel_explorer.cpp asserts this on a protocol × fault ×
// budget grid).
//
// Witnesses are reconstructed from per-state parent/choice back-pointers
// recorded at first discovery; nontermination (a reachable cycle with a
// process step) is detected after the frontier drains by a sequential
// Tarjan SCC pass over the recorded transition edges — cycle detection
// cannot ride on DFS back-edges here, because with a shared visited table
// no single worker owns a root-to-state path.
//
// Differences from the sequential explorer, by design:
//   * `violation` holds SOME violation, not the DFS-first one; its witness
//     replays to a violation of the reported kind, but which violating
//     state is chosen depends on worker timing.
//   * `max_depth` measures discovery-tree depth, not DFS stack depth.
//   * kNontermination is counted as the number of process-step edges
//     inside cyclic SCCs (order-independent), where the sequential DFS
//     counts traversal-order-dependent back-edges.  Presence/absence
//     always agrees.
//   * On an aborted run (state cap, stop-at-first) the partial counters
//     depend on worker timing, exactly as sequential partial counters
//     depend on DFS order.  `complete` semantics are identical.
#pragma once

#include "sched/explorer.hpp"
#include "sched/sim_world.hpp"

namespace ff::sched {

struct ParallelExploreOptions {
  /// Property/limit options shared with the sequential explorer.
  ExploreOptions explore;
  /// Worker threads (0 = std::thread::hardware_concurrency()).
  std::uint32_t num_threads = 0;
  /// Stripes of the fingerprint table (rounded up to a power of two).
  std::uint32_t shard_count = 64;
  /// States a thief moves per steal; also the local-queue share donated.
  std::uint32_t chunk_size = 16;
};

[[nodiscard]] ExploreResult parallel_explore(
    const SimWorld& initial, const ParallelExploreOptions& options = {});

}  // namespace ff::sched
